"""Unit tests for the binary-reflected Gray code."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.codes import bits, gray


class TestGrayEncodeDecode:
    def test_first_eight_codes(self):
        expected = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]
        assert [gray.gray_encode(i) for i in range(8)] == expected

    @given(st.integers(0, 2**30))
    def test_decode_inverts_encode(self, v):
        assert gray.gray_decode(gray.gray_encode(v)) == v

    @given(st.integers(0, 2**30))
    def test_encode_inverts_decode(self, v):
        assert gray.gray_encode(gray.gray_decode(v)) == v

    @given(st.integers(0, 2**20 - 1))
    def test_consecutive_codes_adjacent(self, v):
        assert bits.hamming(gray.gray_encode(v), gray.gray_encode(v + 1)) == 1

    def test_encode_is_bijection_on_width(self):
        codes = {gray.gray_encode(i) for i in range(256)}
        assert codes == set(range(256))

    def test_array_versions_match_scalar(self):
        v = np.arange(1024)
        enc = gray.gray_encode_array(v)
        assert enc.tolist() == [gray.gray_encode(i) for i in range(1024)]
        dec = gray.gray_decode_array(enc, 10)
        assert dec.tolist() == list(range(1024))

    def test_adjacency_checker(self):
        for width in range(7):
            assert gray.gray_neighbors_differ_by_one_bit(width)


class TestGrayToBinaryPath:
    @given(st.integers(1, 10), st.data())
    def test_path_endpoints(self, width, data):
        code = data.draw(st.integers(0, 2**width - 1))
        path = gray.gray_to_binary_path(code, width)
        assert path[0] == code
        assert path[-1] == gray.gray_decode(code)

    @given(st.integers(1, 10), st.data())
    def test_path_steps_are_cube_edges(self, width, data):
        code = data.draw(st.integers(0, 2**width - 1))
        path = gray.gray_to_binary_path(code, width)
        for a, b in zip(path, path[1:]):
            assert bits.hamming(a, b) == 1

    @given(st.integers(1, 10), st.data())
    def test_path_length_at_most_width_minus_one(self, width, data):
        code = data.draw(st.integers(0, 2**width - 1))
        path = gray.gray_to_binary_path(code, width)
        assert len(path) - 1 <= max(width - 1, 0)

    def test_fixed_point_path_is_trivial(self):
        # G^{-1}(0) = 0 and G^{-1}(1) = 1: no movement required.
        assert gray.gray_to_binary_path(0, 4) == [0]
        assert gray.gray_to_binary_path(1, 4) == [1]
