"""Unit tests for repro.codes.bits."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes import bits


class TestBitQueries:
    def test_bit_extracts_each_position(self):
        value = 0b1011001
        expected = [1, 0, 0, 1, 1, 0, 1]  # bits 0..6
        for i, e in enumerate(expected):
            assert bits.bit(value, i) == e

    def test_bit_rejects_negative_index(self):
        with pytest.raises(ValueError):
            bits.bit(5, -1)

    def test_set_bit_on_and_off(self):
        assert bits.set_bit(0b1000, 1, 1) == 0b1010
        assert bits.set_bit(0b1010, 1, 0) == 0b1000
        assert bits.set_bit(0b1010, 1, 1) == 0b1010

    def test_set_bit_rejects_bad_value(self):
        with pytest.raises(ValueError):
            bits.set_bit(0, 0, 2)

    def test_complement_bit_is_involution(self):
        for v in range(32):
            for i in range(5):
                assert bits.complement_bit(bits.complement_bit(v, i), i) == v

    def test_complement_bit_moves_one_cube_dimension(self):
        assert bits.hamming(13, bits.complement_bit(13, 3)) == 1


class TestSwapBits:
    def test_swap_distinct_bits(self):
        assert bits.swap_bits(0b10, 0, 1) == 0b01

    def test_swap_equal_bits_is_identity(self):
        assert bits.swap_bits(0b11, 0, 1) == 0b11
        assert bits.swap_bits(0b00, 0, 1) == 0b00

    def test_swap_same_index_is_identity(self):
        assert bits.swap_bits(0b101, 2, 2) == 0b101

    @given(st.integers(0, 2**16 - 1), st.integers(0, 15), st.integers(0, 15))
    def test_swap_is_involution(self, v, i, j):
        assert bits.swap_bits(bits.swap_bits(v, i, j), i, j) == v

    @given(st.integers(0, 2**16 - 1), st.integers(0, 15), st.integers(0, 15))
    def test_swap_preserves_popcount(self, v, i, j):
        assert bits.bit_count(bits.swap_bits(v, i, j)) == bits.bit_count(v)


class TestHamming:
    def test_identical_addresses(self):
        assert bits.hamming(42, 42) == 0

    def test_known_distance(self):
        assert bits.hamming(0b1010, 0b0101) == 4
        assert bits.hamming(0, 0b111) == 3

    @given(st.integers(0, 2**30), st.integers(0, 2**30))
    def test_symmetry(self, a, b):
        assert bits.hamming(a, b) == bits.hamming(b, a)

    @given(st.integers(0, 2**20), st.integers(0, 2**20), st.integers(0, 2**20))
    def test_triangle_inequality(self, a, b, c):
        assert bits.hamming(a, c) <= bits.hamming(a, b) + bits.hamming(b, c)

    def test_array_matches_scalar(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2**40, size=200)
        b = rng.integers(0, 2**40, size=200)
        got = bits.hamming_array(a, b)
        expected = [bits.hamming(int(x), int(y)) for x, y in zip(a, b)]
        assert got.tolist() == expected

    def test_array_broadcasts_scalar(self):
        a = np.arange(16)
        got = bits.hamming_array(a, 0)
        assert got.tolist() == [bits.bit_count(i) for i in range(16)]


class TestParity:
    def test_scalar_values(self):
        assert bits.parity(0) == 0
        assert bits.parity(0b1011) == 1
        assert bits.parity(0b11) == 0

    def test_array_matches_scalar(self):
        v = np.arange(256)
        assert bits.parity_array(v).tolist() == [bits.parity(i) for i in range(256)]


class TestRotations:
    def test_rotate_left_basic(self):
        assert bits.rotate_left(0b1000, 1, 4) == 0b0001
        assert bits.rotate_left(0b0011, 2, 4) == 0b1100

    def test_rotate_right_basic(self):
        assert bits.rotate_right(0b0001, 1, 4) == 0b1000

    def test_rotate_full_width_is_identity(self):
        for v in range(16):
            assert bits.rotate_left(v, 4, 4) == v

    def test_zero_width(self):
        assert bits.rotate_left(0, 3, 0) == 0
        assert bits.rotate_right(0, 3, 0) == 0

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            bits.rotate_left(16, 1, 4)

    @given(st.integers(0, 2**10 - 1), st.integers(0, 30))
    def test_left_then_right_identity(self, v, k):
        assert bits.rotate_right(bits.rotate_left(v, k, 10), k, 10) == v

    @given(st.integers(0, 2**10 - 1), st.integers(0, 9), st.integers(0, 9))
    def test_rotation_composition(self, v, j, k):
        via_two = bits.rotate_left(bits.rotate_left(v, j, 10), k, 10)
        assert via_two == bits.rotate_left(v, j + k, 10)


class TestBitReverse:
    def test_known_values(self):
        assert bits.bit_reverse(0b100, 3) == 0b001
        assert bits.bit_reverse(0b110, 3) == 0b011
        assert bits.bit_reverse(0b1011, 4) == 0b1101

    @given(st.integers(0, 2**12 - 1))
    def test_involution(self, v):
        assert bits.bit_reverse(bits.bit_reverse(v, 12), 12) == v

    def test_array_matches_scalar(self):
        v = np.arange(64)
        got = bits.bit_reverse_array(v, 6)
        assert got.tolist() == [bits.bit_reverse(i, 6) for i in range(64)]

    def test_palindrome_fixed_points(self):
        assert bits.bit_reverse(0b101, 3) == 0b101
        assert bits.bit_reverse(0b0110, 4) == 0b0110


class TestFields:
    def test_extract_field(self):
        # w = (u || v) with p = q = 3, u = 0b101, v = 0b011.
        w = (0b101 << 3) | 0b011
        assert bits.extract_field(w, 3, 3) == 0b101
        assert bits.extract_field(w, 0, 3) == 0b011

    def test_insert_field_roundtrip(self):
        w = 0b110010
        f = bits.extract_field(w, 2, 3)
        assert bits.insert_field(w, 2, 3, f) == w

    def test_insert_field_replaces(self):
        assert bits.insert_field(0b111111, 1, 3, 0b000) == 0b110001

    def test_insert_field_rejects_oversized(self):
        with pytest.raises(ValueError):
            bits.insert_field(0, 0, 2, 0b100)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 12), st.integers(0, 4))
    def test_extract_insert_roundtrip(self, w, low, size):
        f = bits.extract_field(w, low, size)
        assert bits.insert_field(w, low, size, f) == w


class TestBitsTupleConversion:
    def test_to_bits_msb_first(self):
        assert bits.to_bits(0b101, 3) == (1, 0, 1)
        assert bits.to_bits(0b001, 4) == (0, 0, 0, 1)

    def test_from_bits_inverse(self):
        for v in range(64):
            assert bits.from_bits(bits.to_bits(v, 6)) == v

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits.from_bits((0, 2, 1))
