"""Tests for the shuffle operator and Lemmas 1-3 of the paper."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes import bits, shuffle


class TestShuffleAddress:
    def test_shuffle_matches_definition(self):
        # sh^1 on 4 bits: (w3 w2 w1 w0) element ends at (w2 w1 w0 w3).
        assert shuffle.shuffle_address(0b1000, 4) == 0b0001
        assert shuffle.shuffle_address(0b0110, 4) == 0b1100

    def test_unshuffle_inverts_shuffle(self):
        for w in range(32):
            s = shuffle.shuffle_address(w, 5)
            assert shuffle.unshuffle_address(s, 5) == w

    @given(st.integers(0, 2**8 - 1), st.integers(0, 20))
    def test_k_shuffles_compose(self, w, k):
        by_k = shuffle.shuffle_address(w, 8, k)
        step = w
        for _ in range(k):
            step = shuffle.shuffle_address(step, 8)
        assert by_k == step

    def test_sh_k_equals_sh_minus_m_minus_k(self):
        # sh^k = sh^{-(m-k)} (§2).
        m = 6
        for w in range(2**m):
            for k in range(m):
                assert shuffle.shuffle_address(w, m, k) == shuffle.unshuffle_address(
                    w, m, m - k
                )


class TestShufflePermutation:
    def test_permutation_is_bijection(self):
        perm = shuffle.shuffle_permutation(6)
        assert sorted(perm.tolist()) == list(range(64))

    def test_permutation_matches_scalar(self):
        perm = shuffle.shuffle_permutation(5, 2)
        expected = [shuffle.shuffle_address(w, 5, 2) for w in range(32)]
        assert perm.tolist() == expected

    def test_width_zero(self):
        assert shuffle.shuffle_permutation(0).tolist() == [0]

    def test_lemma1_transpose_via_shuffles(self):
        """Lemma 1: A^T = sh^p A for a 2^p x 2^q matrix.

        The address of a(u, v) is (u || v); the transposed matrix stores
        a(u, v) at address (v || u).  sh^p applied p times rotates the
        p row bits from the top of the address to the bottom.
        """
        p, q = 2, 3
        m = p + q
        A = np.arange(2**m).reshape(2**p, 2**q)
        flat = A.reshape(-1)  # flat[u||v] = a(u, v)
        perm = shuffle.shuffle_permutation(m, p)
        shuffled = np.empty_like(flat)
        shuffled[perm] = flat  # element at w moves to location sh^p(w)
        assert np.array_equal(shuffled.reshape(2**q, 2**p), A.T)

    def test_lemma1_via_unshuffle_q(self):
        p, q = 3, 2
        m = p + q
        A = np.arange(2**m).reshape(2**p, 2**q)
        flat = A.reshape(-1)
        w = np.arange(2**m)
        perm = np.array([shuffle.unshuffle_address(int(x), m, q) for x in w])
        shuffled = np.empty_like(flat)
        shuffled[perm] = flat
        assert np.array_equal(shuffled.reshape(2**q, 2**p), A.T)


class TestMaxShuffleHamming:
    @pytest.mark.parametrize(
        "m,k", [(m, k) for m in range(1, 11) for k in range(m)]
    )
    def test_closed_form_matches_exhaustive(self, m, k):
        w = np.arange(2**m, dtype=np.int64)
        mask = (1 << m) - 1
        kk = k % m
        shuffled = ((w << kk) | (w >> (m - kk))) & mask if kk else w
        exhaustive = int(bits.hamming_array(w, shuffled).max())
        assert shuffle.max_shuffle_hamming(m, k) == exhaustive

    def test_lemma2_even_m_single_shuffle(self):
        # For m even there exists w with Hamming(w, sh w) = m.
        for m in (2, 4, 6, 8):
            assert shuffle.max_shuffle_hamming(m, 1) == m

    def test_lemma2_odd_m_single_shuffle(self):
        for m in (3, 5, 7, 9):
            assert shuffle.max_shuffle_hamming(m, 1) == m - 1

    def test_corollary2_half_rotation(self):
        # For m even, max_w Hamming(w, sh^{m/2} w) = m.
        for m in (2, 4, 6, 8, 10):
            assert shuffle.max_shuffle_hamming(m, m // 2) == m

    def test_lemma3_lower_bound(self):
        # For 0 <= k < m the maximum distance is at least k.
        for m in range(1, 12):
            for k in range(m):
                assert shuffle.max_shuffle_hamming(m, k) >= k

    def test_zero_rotation(self):
        assert shuffle.max_shuffle_hamming(8, 0) == 0
        assert shuffle.max_shuffle_hamming(8, 8) == 0
