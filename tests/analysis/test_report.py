"""Tests for the algorithm advisor (analysis.report)."""

import pytest

from repro.analysis.report import (
    AlgorithmEstimate,
    estimate_transpose_options,
    format_report,
)
from repro.machine.presets import connection_machine, custom_machine, intel_ipsc
from repro.machine.params import PortModel


class TestEstimates:
    def test_sorted_fastest_first(self):
        options = estimate_transpose_options(intel_ipsc(6), 1 << 16)
        times = [o.time for o in options]
        assert times == sorted(times)

    def test_one_port_offers_ipsc_algorithms(self):
        names = {o.name for o in estimate_transpose_options(intel_ipsc(6), 1 << 14)}
        assert "exchange (buffered)" in names
        assert "SPT (step-by-step)" in names
        assert "MPT" not in names  # MPT assumes n-port

    def test_n_port_offers_mpt_family(self):
        names = {
            o.name
            for o in estimate_transpose_options(connection_machine(6), 1 << 14)
        }
        assert {"MPT", "DPT", "SPT (pipelined)", "all-to-all (SBnT)"} <= names

    def test_odd_cube_skips_two_dim(self):
        names = {
            o.name
            for o in estimate_transpose_options(
                custom_machine(5, port_model=PortModel.N_PORT), 1 << 12
            )
        }
        assert names == {"all-to-all (SBnT)"}

    def test_buffered_beats_unbuffered_on_big_cube(self):
        options = {
            o.name: o.time
            for o in estimate_transpose_options(intel_ipsc(8), 1 << 16)
        }
        assert options["exchange (buffered)"] < options["exchange (unbuffered)"]

    def test_estimate_is_frozen_dataclass(self):
        est = AlgorithmEstimate("x", "1D", 1.0)
        with pytest.raises(AttributeError):
            est.time = 2.0


class TestReport:
    def test_contains_ranking_and_regime(self):
        text = format_report(intel_ipsc(6), 1 << 16)
        assert "Theorem 3 lower bound" in text
        assert "rank" in text
        assert "regime" in text

    def test_transfer_bound_regime_detected(self):
        text = format_report(connection_machine(4), 1 << 20)
        assert "transfer bound" in text

    def test_startup_bound_regime_detected(self):
        text = format_report(intel_ipsc(8), 1 << 10)
        assert "start-up bound" in text

    def test_zero_tau_report_omits_regime(self):
        params = custom_machine(4, tau=0.0, t_c=1.0)
        text = format_report(params, 1 << 10)
        assert "regime" not in text
