"""Tests of the closed-form models against the simulator and each other."""

import math

import numpy as np
import pytest

from repro.analysis import models as md
from repro.analysis.bounds import (
    all_to_all_lower_bound,
    one_to_all_lower_bound,
    transpose_lower_bound,
)
from repro.analysis.crossover import (
    break_even_processors,
    compare_one_vs_two_dim,
    one_dim_nport_min_time,
)
from repro.comm.all_to_all import all_to_all_exchange, all_to_all_personalized_data
from repro.comm.one_to_all import personalized_data, scatter_tree
from repro.cube.trees import spanning_binomial_tree
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.two_dim import two_dim_transpose_spt


def machine(n, **kw):
    kw.setdefault("tau", 3.0)
    kw.setdefault("t_c", 1.0)
    kw.setdefault("packet_capacity", 2**30)
    return custom_machine(n, **kw)


class TestOneToAllModels:
    def test_simulated_sbt_matches_formula(self):
        n, K = 4, 8
        params = machine(n)
        net = CubeNetwork(params)
        personalized_data(net, 0, K)
        scatter_tree(net, spanning_binomial_tree(n), schedule="subtree")
        M = (1 << n) * K
        assert net.time == pytest.approx(md.one_to_all_sbt_min_time(params, M))

    def test_packetized_formula_exceeds_min(self):
        params = machine(5, packet_capacity=16)
        M = 4096
        assert md.one_to_all_sbt_time(params, M) > md.one_to_all_sbt_min_time(
            params, M
        )

    def test_nport_min_is_n_times_cheaper_transfer(self):
        params = machine(4, tau=0.0)
        M = 1 << 12
        assert md.one_to_all_nport_min_time(params, M) == pytest.approx(
            md.one_to_all_sbt_min_time(params, M) / 4
        )

    def test_within_factor_two_of_lower_bound(self):
        params = machine(5)
        M = 1 << 14
        t = md.one_to_all_sbt_min_time(params, M)
        lb = one_to_all_lower_bound(params, M)
        assert lb <= t <= 2 * lb


class TestAllToAllModels:
    def test_simulated_exchange_matches_formula(self):
        n, K = 3, 4
        params = machine(n)
        net = CubeNetwork(params)
        all_to_all_personalized_data(net, K)
        all_to_all_exchange(net)
        M = (1 << n) * (1 << n) * K
        assert net.time == pytest.approx(md.all_to_all_min_time(params, M))

    def test_exchange_time_with_packets(self):
        params = machine(4, packet_capacity=8)
        M = 1 << 12
        N = 16
        per_step = M / (2 * N)
        expected = 4 * per_step + 4 * math.ceil(per_step / 8) * 3.0
        assert md.all_to_all_exchange_time(params, M) == pytest.approx(expected)

    def test_nport_within_factor_two_of_lower_bound(self):
        """§3.2: SBnT n-port routing is within 2x of max(M/(2N) t_c, n tau);
        the one-port exchange pays the ~n/2 average distance serially."""
        params = machine(6)
        M = 1 << 16
        t = md.all_to_all_nport_min_time(params, M)
        lb = all_to_all_lower_bound(params, M)
        assert lb <= t <= 2 * lb
        # One-port: n/2-fold transfer blow-up relative to the link bound.
        t1 = md.all_to_all_min_time(params, M)
        assert t1 <= params.n * (lb + params.tau)

    def test_nport_min(self):
        params = machine(4)
        M = 1 << 12
        expected = M / 32 * 1.0 + 4 * 3.0
        assert md.all_to_all_nport_min_time(params, M) == pytest.approx(expected)


class TestSomeToAllModel:
    def test_degenerate_cases(self):
        """l = n, k = 0 gives all-to-all; l = 0, k = n gives one-to-all."""
        params = machine(4)
        M = 1 << 10
        a2a = md.some_to_all_time(params, M, k=0, l=params.n)
        # all-to-all: n steps of M/2^{n+1} each = n M/(2N).
        assert a2a == pytest.approx(md.all_to_all_min_time(params, M))
        o2a = md.some_to_all_time(params, M, k=params.n, l=0)
        assert o2a == pytest.approx(md.one_to_all_sbt_min_time(params, M))

    def test_nport_cheaper(self):
        params = machine(4)
        M = 1 << 10
        one = md.some_to_all_time(params, M, k=2, l=2)
        multi = md.some_to_all_time(params, M, k=2, l=2, n_port=True)
        assert multi < one

    def test_invalid_kl(self):
        params = machine(3)
        with pytest.raises(ValueError):
            md.some_to_all_time(params, 64, k=2, l=2)


class TestSptDptModels:
    def test_simulated_spt_matches_model(self):
        p, half = 4, 2
        n = 2 * half
        params = machine(n, port_model=PortModel.N_PORT)
        before = pt.two_dim_cyclic(p, p, half, half)
        A = np.arange(1 << (2 * p), dtype=np.float64).reshape(1 << p, 1 << p)
        net = CubeNetwork(params)
        B = 4
        two_dim_transpose_spt(
            net, DistributedMatrix.from_global(A, before), before, packet_size=B
        )
        M = 1 << (2 * p)
        assert net.time == pytest.approx(md.spt_time(params, M, B))

    def test_min_at_optimal_packet(self):
        params = machine(6)
        M = 1 << 16
        b_opt = md.spt_optimal_packet(params, M)
        t_opt = md.spt_time(params, M, max(1, round(b_opt)))
        t_min = md.spt_min_time(params, M)
        # Discrete packet sizes approach the continuous optimum.
        assert t_min <= t_opt <= 1.1 * t_min
        for b in (max(1, round(b_opt / 4)), round(b_opt * 4)):
            assert md.spt_time(params, M, b) >= t_opt * 0.999

    def test_dpt_transfer_half_of_spt(self):
        params = machine(6, tau=0.0)
        M = 1 << 16
        assert md.dpt_min_time(params, M) == pytest.approx(
            md.spt_min_time(params, M) / 2
        )

    def test_bad_packet_rejected(self):
        params = machine(4)
        with pytest.raises(ValueError):
            md.spt_time(params, 64, 0)
        with pytest.raises(ValueError):
            md.dpt_time(params, 64, 0)


class TestMptModel:
    def test_theorem2_regimes_continuous(self):
        """The piecewise T_min stays within the neighbouring branches."""
        M = 1 << 18
        for n in (2, 4, 6, 8, 10, 12):
            params = machine(n)
            t = md.mpt_min_time(params, M)
            lb = transpose_lower_bound(params, M)
            assert t >= lb * 0.99
            assert t <= 4 * lb + 10 * params.tau

    def test_startup_bound_branch(self):
        params = machine(8, tau=1e6)  # enormous tau: start-up bound
        M = 1 << 10
        n = 8
        expected = (n + 1) * params.tau + (n + 1) / (2 * n) * (M / 256) * params.t_c
        assert md.mpt_min_time(params, M) == pytest.approx(expected)

    def test_transfer_bound_branch(self):
        params = machine(4, tau=1e-9)
        M = 1 << 20
        L = M / 16
        expected = (math.sqrt(params.tau) + math.sqrt(L / 2)) ** 2
        assert md.mpt_min_time(params, M) == pytest.approx(expected, rel=1e-6)

    def test_mpt_time_vs_simulation(self):
        from repro.transpose.two_dim import two_dim_transpose_mpt

        p, half = 4, 2
        n = 2 * half
        params = machine(n, port_model=PortModel.N_PORT)
        before = pt.two_dim_cyclic(p, p, half, half)
        A = np.arange(1 << (2 * p), dtype=np.float64).reshape(1 << p, 1 << p)
        net = CubeNetwork(params)
        k = 2
        two_dim_transpose_mpt(
            net, DistributedMatrix.from_global(A, before), before, rounds=k
        )
        M = 1 << (2 * p)
        model = md.mpt_time(params, M, k)
        # The simulation's phase costs are dominated by the H=1 classes'
        # larger packets; the model prices the anti-diagonal class.  They
        # agree within a factor ~2.
        assert model / 2 <= net.time <= 2.5 * model

    def test_odd_cube_rejected(self):
        with pytest.raises(ValueError):
            md.mpt_min_time(machine(5), 1 << 10)
        with pytest.raises(ValueError):
            md.mpt_optimal_packet(machine(5), 1 << 10)
        with pytest.raises(ValueError):
            md.mpt_time(machine(4), 64, 0)

    def test_optimal_packet_branches(self):
        M = 1 << 20
        # Start-up bound (n > sqrt(M t_c / (2 N tau))): n/2 = 2 even,
        # B_opt = ceil(L / (n + 4)).
        big_tau = machine(4, tau=1e9)
        assert md.mpt_optimal_packet(big_tau, M) == math.ceil((M / 16) / 8)
        # n/2 odd variant: B_opt = ceil(L / (n + 2)).
        big_tau6 = machine(6, tau=1e9)
        assert md.mpt_optimal_packet(big_tau6, M) == math.ceil((M / 64) / 8)
        # Transfer bound: continuous optimum sqrt(M tau / (2 N t_c)).
        small_tau = machine(8, tau=1e-6)
        expected = math.sqrt(M * 1e-6 / (2 * 256 * 1.0))
        assert md.mpt_optimal_packet(small_tau, M) == pytest.approx(expected)


class TestIpscModels:
    def test_unbuffered_grows_linearly_in_N(self):
        from repro.machine.presets import intel_ipsc

        M = 1 << 16
        times = [md.ipsc_one_dim_unbuffered_time(intel_ipsc(n), M) for n in (4, 6, 8)]
        # Start-up term ~N: quadrupling N should eventually dominate.
        assert times[2] > times[1] > times[0] * 0.9

    def test_buffered_beats_unbuffered_on_large_cube(self):
        from repro.machine.presets import intel_ipsc

        params = intel_ipsc(8)
        M = 1 << 16
        assert md.ipsc_one_dim_buffered_time(params, M) < md.ipsc_one_dim_unbuffered_time(
            params, M
        )

    def test_two_dim_estimate(self):
        params = machine(4, t_copy=0.5, packet_capacity=8)
        M = 1 << 10
        L = M / 16
        expected = (L * 1.0 + math.ceil(L / 8) * 3.0) * 4 + 2 * L * 0.5
        assert md.ipsc_two_dim_time(params, M) == pytest.approx(expected)


class TestCrossover:
    def test_one_dim_wins_in_startup_bound_regime(self):
        """§9: for n >= sqrt(M t_c / (N tau)) the 1D partitioning wins
        by about one start-up."""
        params = machine(8, tau=100.0)
        M = 1 << 10
        cmp = compare_one_vs_two_dim(params, M)
        assert cmp.winner == "1d"
        assert cmp.t_two_dim - cmp.t_one_dim <= 2 * params.tau

    def test_one_dim_wins_in_transfer_bound_regime(self):
        params = machine(2, tau=1e-6)
        M = 1 << 20
        cmp = compare_one_vs_two_dim(params, M)
        assert cmp.winner == "1d"

    def test_comparison_winner_labels(self):
        params = machine(4)
        cmp = compare_one_vs_two_dim(params, 1 << 12)
        assert cmp.winner in ("1d", "2d", "tie")
        assert cmp.t_one_dim == pytest.approx(
            one_dim_nport_min_time(params, 1 << 12)
        )

    def test_break_even_estimate(self):
        N = break_even_processors(M=1 << 20, t_c=1e-6, tau=5e-3, c=0.75)
        assert N > 1
        with pytest.raises(ValueError):
            break_even_processors(M=0, t_c=1.0, tau=1.0)
        with pytest.raises(ValueError):
            break_even_processors(M=10, t_c=1.0, tau=1.0, c=-1)

    def test_small_r_clamps_to_one(self):
        assert break_even_processors(M=1, t_c=1.0, tau=1.0) == 1.0


class TestBounds:
    def test_transpose_lower_bound_branches(self):
        startup_bound = machine(8, tau=1e9)
        assert transpose_lower_bound(startup_bound, 64) == pytest.approx(8e9)
        transfer_bound = machine(2, tau=0.0)
        assert transpose_lower_bound(transfer_bound, 64) == pytest.approx(8.0)

    def test_one_to_all_nport_divides_transfer(self):
        params = machine(4, tau=0.0)
        one = one_to_all_lower_bound(params, 1 << 10)
        multi = one_to_all_lower_bound(params, 1 << 10, n_port=True)
        assert multi == pytest.approx(one / 4)


class TestSbntScatterModel:
    def test_large_packets_reach_min(self):
        import math as _math

        params = machine(5)
        M = 1 << 14
        t = md.one_to_all_sbnt_time(params, M)
        assert t == pytest.approx(md.one_to_all_nport_min_time(params, M))

    def test_small_packets_cost_more(self):
        params = machine(5, packet_capacity=8)
        M = 1 << 14
        assert md.one_to_all_sbnt_time(params, M) > md.one_to_all_nport_min_time(
            params, M
        )

    def test_min_packet_approximation(self):
        """max_i C(n,i)/n * M/N ~ sqrt(2/pi) M / n^{3/2} (§3.1)."""
        import math as _math

        for n in (6, 8, 10, 12):
            params = machine(n)
            M = 1 << 20
            exact = md.one_to_all_sbnt_min_packet(params, M)
            approx = _math.sqrt(2 / _math.pi) * M / n ** 1.5
            assert 0.5 < exact / approx < 2.0


class TestIpscModelsVsSimulation:
    """The blocked exchange strategy reproduces the §8.1 step structure
    (2^{j-1} fragments at step j), so the paper's closed forms price the
    simulation essentially exactly."""

    def _run(self, n, mode):
        from repro.machine.presets import intel_ipsc
        from repro.transpose.exchange import BufferPolicy
        from repro.transpose.one_dim import one_dim_transpose_exchange

        bits = 14
        p = bits // 2
        params = intel_ipsc(n)
        before = pt.row_consecutive(p, bits - p, n)
        after = pt.row_consecutive(bits - p, p, n)
        dm = DistributedMatrix.from_global(
            np.zeros((1 << p, 1 << (bits - p))), before
        )
        net = CubeNetwork(params)
        one_dim_transpose_exchange(net, dm, after, policy=BufferPolicy(mode))
        return net.time, params

    def test_unbuffered_model_matches_simulation(self):
        for n in (4, 6):
            sim, params = self._run(n, "unbuffered")
            model = md.ipsc_one_dim_unbuffered_time(params, 1 << 14)
            assert sim == pytest.approx(model, rel=0.02), n
        # Boundary regime (huge messages on a tiny cube): the paper's
        # start-up count omits the extra B_m packet splitting.
        sim, params = self._run(2, "unbuffered")
        model = md.ipsc_one_dim_unbuffered_time(params, 1 << 14)
        assert 1.0 <= sim / model <= 3.0

    def test_buffered_model_matches_simulation(self):
        for n in (2, 4, 6):
            sim, params = self._run(n, "threshold")
            model = md.ipsc_one_dim_buffered_time(params, 1 << 14)
            assert sim == pytest.approx(model, rel=0.05), n
