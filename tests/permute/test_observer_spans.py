"""Observer span emission through the §7 permutation algorithms."""

import numpy as np

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.obs import Instrumentation
from repro.permute.bit_reversal import bit_reversal_permute
from repro.permute.dimperm import apply_dimension_permutation
from repro.permute.general import arbitrary_node_permutation


def distributed(n: int):
    layout = pt.row_cyclic(3, 3, n)
    flat = np.arange(1 << layout.m, dtype=np.float64)
    return DistributedMatrix.from_global(flat.reshape(8, 8), layout)


class TestBitReversalSpans:
    def test_span_emitted_with_observer(self):
        hub = Instrumentation(phase_spans=False)
        net = CubeNetwork(custom_machine(2))
        bit_reversal_permute(net, distributed(2), observer=hub)
        names = [s.name for s in hub.spans]
        assert "bit-reversal" in names
        span = next(s for s in hub.spans if s.name == "bit-reversal")
        assert span.category == "algorithm"
        assert span.attrs["m"] == 6

    def test_no_observer_still_works(self):
        net = CubeNetwork(custom_machine(2))
        out = bit_reversal_permute(net, distributed(2))
        assert out is not None


class TestDimPermSpans:
    def test_rounds_become_child_spans(self):
        hub = Instrumentation(phase_spans=False)
        n = 3
        net = CubeNetwork(custom_machine(n))
        local = np.arange((1 << n) * 4, dtype=np.float64).reshape(1 << n, 4)
        apply_dimension_permutation(net, local, [1, 2, 0], observer=hub)
        by_name = {s.name: s for s in hub.spans}
        assert "dimension-permutation" in by_name
        outer = by_name["dimension-permutation"]
        assert outer.category == "algorithm"
        assert outer.attrs["n"] == n
        rounds = [s for s in hub.spans if s.name == "parallel-swapping"]
        assert rounds
        assert all(s.parent_id == outer.span_id for s in rounds)
        assert outer.attrs["rounds"] == len(rounds)


class TestGeneralPermutationSpans:
    def test_two_routing_rounds_become_child_spans(self):
        hub = Instrumentation(phase_spans=False)
        n = 2
        net = CubeNetwork(custom_machine(n))
        local = np.arange((1 << n) * 4, dtype=np.float64).reshape(1 << n, 4)
        pi = [(i + 1) % (1 << n) for i in range(1 << n)]
        arbitrary_node_permutation(net, local, pi, observer=hub)
        by_name = {s.name: s for s in hub.spans}
        assert "node-permutation" in by_name
        outer = by_name["node-permutation"]
        assert outer.attrs["nodes"] == 1 << n
        children = [
            s for s in hub.spans if s.name in ("scatter", "forward")
        ]
        assert {s.name for s in children} == {"scatter", "forward"}
        assert all(s.parent_id == outer.span_id for s in children)
