"""Tests for §7: bit-reversal, dimension permutations, general permutations."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.bits import bit_reverse
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.permute.bit_reversal import bit_reversal_pairs, bit_reversal_permute
from repro.permute.dimperm import (
    apply_dimension_permutation,
    decompose_parallel_swappings,
)
from repro.permute.general import arbitrary_node_permutation


class TestBitReversal:
    def test_pairs(self):
        assert bit_reversal_pairs(6) == [(5, 0), (4, 1), (3, 2)]
        assert bit_reversal_pairs(5) == [(4, 0), (3, 1)]
        assert bit_reversal_pairs(1) == []

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_permutes_data(self, n):
        layout = pt.row_cyclic(3, 3, n)
        m = layout.m
        flat = np.arange(1 << m, dtype=np.float64)
        dm = DistributedMatrix.from_global(flat.reshape(1 << 3, 1 << 3), layout)
        net = CubeNetwork(custom_machine(n))
        out = bit_reversal_permute(net, dm)
        result = out.to_global().reshape(-1)
        for w in range(1 << m):
            assert result[bit_reverse(w, m)] == flat[w]

    def test_is_involution(self):
        layout = pt.row_cyclic(2, 2, 2)
        dm = DistributedMatrix.iota(layout)
        net = CubeNetwork(custom_machine(2))
        once = bit_reversal_permute(net, dm)
        twice = bit_reversal_permute(net, once)
        assert np.array_equal(twice.local_data, dm.local_data)


class TestDecomposeParallelSwappings:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 10), st.data())
    def test_rounds_bounded_by_log(self, n, data):
        delta = data.draw(st.permutations(range(n)))
        rounds = decompose_parallel_swappings(delta)
        assert len(rounds) <= max(1, math.ceil(math.log2(n)))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 10), st.data())
    def test_swaps_within_round_disjoint(self, n, data):
        delta = data.draw(st.permutations(range(n)))
        for swaps in decompose_parallel_swappings(delta):
            touched = [d for pair in swaps for d in pair]
            assert len(touched) == len(set(touched))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 10), st.data())
    def test_composition_realizes_delta(self, n, data):
        delta = data.draw(st.permutations(range(n)))
        content = list(range(n))
        for swaps in decompose_parallel_swappings(delta):
            for a, b in swaps:
                content[a], content[b] = content[b], content[a]
        assert content == list(delta)

    def test_identity_has_no_rounds(self):
        assert decompose_parallel_swappings([0, 1, 2, 3]) == []

    def test_invalid_permutation_rejected(self):
        with pytest.raises(ValueError):
            decompose_parallel_swappings([0, 0, 1])

    def test_shuffle_is_dimension_permutation(self):
        """§7 note: k-shuffles fall in the dimension permutation class."""
        n = 8
        delta = [(i - 1) % n for i in range(n)]  # one-step rotation
        rounds = decompose_parallel_swappings(delta)
        assert len(rounds) <= math.ceil(math.log2(n))


class TestApplyDimensionPermutation:
    @pytest.mark.parametrize(
        "delta",
        [
            [1, 0, 2],       # single swap
            [2, 0, 1],       # 3-cycle
            [0, 1, 2],       # identity
            [3, 2, 1, 0],    # full reversal
            [1, 2, 3, 0],    # rotation (shuffle)
        ],
    )
    def test_blocks_land_at_rho(self, delta):
        n = len(delta)
        N = 1 << n
        rng = np.random.default_rng(0)
        local = rng.standard_normal((N, 4))
        net = CubeNetwork(custom_machine(n))
        out = apply_dimension_permutation(net, local, delta)
        for x in range(N):
            y = 0
            for i in range(n):
                y |= ((x >> delta[i]) & 1) << i
            assert np.array_equal(out[y], local[x])

    def test_wrong_length_rejected(self):
        net = CubeNetwork(custom_machine(3))
        with pytest.raises(ValueError):
            apply_dimension_permutation(net, np.zeros((8, 1)), [1, 0])

    def test_wrong_row_count_rejected(self):
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            apply_dimension_permutation(net, np.zeros((3, 1)), [1, 0])


class TestArbitraryPermutation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_permutation(self, seed):
        n = 3
        N = 1 << n
        rng = np.random.default_rng(seed)
        pi = rng.permutation(N).tolist()
        local = rng.standard_normal((N, N + 3))
        net = CubeNetwork(custom_machine(n))
        out = arbitrary_node_permutation(net, local, pi)
        for x in range(N):
            assert np.allclose(out[pi[x]], local[x])

    def test_identity_permutation(self):
        n = 2
        N = 1 << n
        local = np.arange(N * N, dtype=np.float64).reshape(N, N)
        net = CubeNetwork(custom_machine(n))
        out = arbitrary_node_permutation(net, local, list(range(N)))
        assert np.array_equal(out, local)

    def test_too_little_data_rejected(self):
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            arbitrary_node_permutation(net, np.zeros((4, 2)), [1, 0, 3, 2])

    def test_invalid_pi_rejected(self):
        net = CubeNetwork(custom_machine(1))
        with pytest.raises(ValueError):
            arbitrary_node_permutation(net, np.zeros((2, 4)), [0, 0])

    def test_costlier_than_direct_transpose(self):
        """§7: realizing the transpose by two all-to-alls moves more data
        than the dedicated pairwise algorithm."""
        from repro.cube.paths import transpose_partner
        from repro.layout import partition as pt2
        from repro.transpose.two_dim import two_dim_transpose_spt

        n = 4
        N = 1 << n
        before = pt2.two_dim_cyclic(4, 4, 2, 2)
        after = pt2.two_dim_cyclic(4, 4, 2, 2)
        A = np.arange(256, dtype=np.float64).reshape(16, 16)
        dm = DistributedMatrix.from_global(A, before)

        direct = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        two_dim_transpose_spt(direct, dm, after)

        via_a2a = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        pi = [transpose_partner(x, n) for x in range(N)]
        arbitrary_node_permutation(via_a2a, dm.local_data, pi)
        assert via_a2a.stats.element_hops > direct.stats.element_hops
