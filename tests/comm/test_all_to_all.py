"""Tests for all-to-all personalized communication (§3.2)."""

import numpy as np
import pytest

from repro.comm.all_to_all import (
    all_to_all_exchange,
    all_to_all_personalized_data,
    all_to_all_sbnt,
    dimension_sweep,
)
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel


def all_delivered(net):
    n = net.params.n
    N = 1 << n
    for dst in range(N):
        mem = net.memory(dst)
        got = {k for k in mem.keys()}
        expected = {("a2a", src, dst) for src in range(N) if src != dst}
        assert got == expected, f"node {dst}"
        for src in range(N):
            if src != dst:
                assert np.all(mem.get(("a2a", src, dst)).data == src * N + dst)


class TestExchange:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_delivers_everything(self, n):
        net = CubeNetwork(custom_machine(n))
        all_to_all_personalized_data(net, 2)
        phases = all_to_all_exchange(net)
        assert phases == n
        all_delivered(net)

    def test_ascending_order_also_works(self):
        net = CubeNetwork(custom_machine(3))
        all_to_all_personalized_data(net, 2)
        all_to_all_exchange(net, descending=False)
        all_delivered(net)

    def test_one_port_time_matches_formula(self):
        """T = n (PQ/(2N) t_c + tau) for B_m >= PQ/(2N)."""
        n = 3
        K = 4  # elements per (src, dst) pair
        net = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        all_to_all_personalized_data(net, K)
        all_to_all_exchange(net)
        N = 1 << n
        PQ = N * N * K  # total data: N nodes x N destinations x K
        expected = n * (PQ / (2 * N) * 1.0 + 1.0)
        assert net.time == pytest.approx(expected)

    def test_per_step_volume_is_half_local_data(self):
        """Each exchange step moves PQ/(2N) elements over each busy link."""
        n = 3
        K = 8
        net = CubeNetwork(custom_machine(n))
        all_to_all_personalized_data(net, K)
        all_to_all_exchange(net)
        N = 1 << n
        per_step = N * K // 2
        # every directed link in each of the n dimensions carried the
        # same load; max accumulates only once per dimension pairing.
        assert net.stats.max_link_elements == per_step

    def test_dimension_sweep_validates_dims(self):
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            dimension_sweep(net, [5])


class TestSbnt:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_delivers_everything(self, n):
        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        all_to_all_personalized_data(net, 2)
        phases = all_to_all_sbnt(net)
        assert phases <= n
        all_delivered(net)

    def test_n_port_beats_one_port_exchange(self):
        """§3.2: SBnT routing with n ports approaches PQ/(2N) t_c + n tau,
        an ~n-fold transfer-time win over the one-port exchange."""
        n = 4
        K = 32
        ex = CubeNetwork(custom_machine(n, tau=0.0, t_c=1.0))
        all_to_all_personalized_data(ex, K)
        all_to_all_exchange(ex)

        sb = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        all_to_all_personalized_data(sb, K)
        all_to_all_sbnt(sb)
        assert sb.time < ex.time / (n / 2)

    def test_n_port_time_near_lower_bound(self):
        """Transfer time within a small factor of PQ/(2N) t_c."""
        n = 4
        K = 16
        net = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        all_to_all_personalized_data(net, K)
        all_to_all_sbnt(net)
        N = 1 << n
        lower = N * K / 2  # PQ/(2N) t_c with PQ = N^2 K
        assert net.time >= lower * 0.99
        assert net.time <= 2.5 * lower

    def test_exchange_and_sbnt_agree_on_payloads(self):
        n = 3
        a = CubeNetwork(custom_machine(n))
        b = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        for net in (a, b):
            all_to_all_personalized_data(net, 3)
        all_to_all_exchange(a)
        all_to_all_sbnt(b)
        for x in range(1 << n):
            assert sorted(a.memory(x).keys()) == sorted(b.memory(x).keys())


class TestPipelinedExchange:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_delivers_everything(self, n):
        from repro.comm.all_to_all import all_to_all_pipelined_exchange

        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        all_to_all_personalized_data(net, 2)
        phases = all_to_all_pipelined_exchange(net)
        assert phases == n
        all_delivered(net)

    def test_suboptimal_versus_sbnt(self):
        """§3.2: "pipelining can be employed in the exchange algorithm,
        but the algorithm so modified is suboptimal" — the descending
        routing order funnels half the traffic through one port."""
        from repro.comm.all_to_all import all_to_all_pipelined_exchange

        n, K = 6, 8
        pipe = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        all_to_all_personalized_data(pipe, K)
        all_to_all_pipelined_exchange(pipe)

        sb = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        all_to_all_personalized_data(sb, K)
        all_to_all_sbnt(sb)
        # The handicap grows with n (first-hop funnelling); ~2x by n = 6.
        assert pipe.time > 1.8 * sb.time

    def test_still_beats_unpipelined_on_n_port(self):
        from repro.comm.all_to_all import all_to_all_pipelined_exchange

        n, K = 4, 32
        pipe = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        all_to_all_personalized_data(pipe, K)
        all_to_all_pipelined_exchange(pipe)

        plain = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        all_to_all_personalized_data(plain, K)
        all_to_all_exchange(plain)
        assert pipe.time < plain.time


class TestSbntDistributedTranscription:
    """The literal §5 pseudocode (per-node buffers, no global state) must
    behave *identically* to the route-precomputing implementation."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_delivers_everything(self, n):
        from repro.comm.all_to_all import all_to_all_sbnt_distributed

        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        all_to_all_personalized_data(net, 2)
        phases = all_to_all_sbnt_distributed(net)
        assert phases <= n
        all_delivered(net)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_identical_to_route_based(self, n):
        from repro.comm.all_to_all import all_to_all_sbnt_distributed

        a = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0, port_model=PortModel.N_PORT))
        b = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0, port_model=PortModel.N_PORT))
        for net in (a, b):
            all_to_all_personalized_data(net, 3)
        pa = all_to_all_sbnt(a)
        pb = all_to_all_sbnt_distributed(b)
        assert pa == pb
        assert a.time == pytest.approx(b.time)
        assert a.stats.element_hops == b.stats.element_hops
        for x in range(1 << n):
            assert sorted(a.memory(x).keys()) == sorted(b.memory(x).keys())

    def test_base_port_balance(self):
        """The first-hop buffers are near-evenly split over the n ports —
        the whole point of base() routing."""
        from repro.cube.trees import rotation_base

        n = 6
        counts = [0] * n
        for d in range(1, 1 << n):
            counts[rotation_base(d, n)] += 1
        total = (1 << n) - 1
        for c in counts:
            assert total / (2 * n) <= c <= 2 * total / n


class TestLinkBalance:
    """Quantify the load-balance claims behind the §3.2 running times."""

    def test_sbnt_balances_link_loads(self):
        n, K = 5, 8
        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        all_to_all_personalized_data(net, K)
        all_to_all_sbnt(net)
        loads = list(net.stats.link_elements.values())
        mean = sum(loads) / len(loads)
        assert max(loads) <= 2.0 * mean

    def test_pipelined_exchange_skews_first_phase(self):
        """Aggregate per-dimension loads are uniform (every block crosses
        each differing dimension once); the pipeline's handicap is
        *temporal* — its first phase funnels half of all traffic through
        dimension n-1 alone, where the SBnT's first phase already uses
        every port."""
        from repro.comm.all_to_all import all_to_all_pipelined_exchange
        from repro.machine import TraceRecorder

        n, K = 5, 8
        pipe = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        rec_p = TraceRecorder()
        pipe.observer = rec_p
        all_to_all_personalized_data(pipe, K)
        all_to_all_pipelined_exchange(pipe)

        sb = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        rec_s = TraceRecorder()
        sb.observer = rec_s
        all_to_all_personalized_data(sb, K)
        all_to_all_sbnt(sb)

        def phase0_volume_by_dim(rec):
            from repro.cube.topology import dimension_of_edge

            vol = {}
            for src, dst, elements in rec.comm_events[0].transfers:
                d = dimension_of_edge(src, dst)
                vol[d] = vol.get(d, 0) + elements
            return vol

        pipe_vol = phase0_volume_by_dim(rec_p)
        sb_vol = phase0_volume_by_dim(rec_s)
        # Pipelined: dim n-1 carries 2^{n-1} destinations' worth per node
        # while dim 0 carries exactly one destination's worth.
        assert pipe_vol[n - 1] >= 8 * pipe_vol[0]
        # SBnT: all dimensions within a factor ~2 of each other.
        assert max(sb_vol.values()) <= 2.5 * min(sb_vol.values())
