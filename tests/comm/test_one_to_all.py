"""Tests for one-to-all personalized communication (§3.1)."""

import numpy as np
import pytest

from repro.comm.one_to_all import (
    personalized_data,
    scatter_rotated_sbts,
    scatter_sbnt,
    scatter_tree,
)
from repro.cube.trees import spanning_balanced_tree, spanning_binomial_tree
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel


def everyone_got_their_block(net, root, parts=1):
    n = net.params.n
    for dst in range(1 << n):
        if dst == root:
            continue
        mem = net.memory(dst)
        for i in range(parts):
            key = ("p13n", dst, i)
            assert key in mem, f"node {dst} missing part {i}"
            assert np.all(mem.get(key).data == dst)
    # Nothing stranded elsewhere.
    for x in range(1 << n):
        for key in net.memory(x).keys():
            assert key[1] == x


class TestPersonalizedData:
    def test_places_blocks_at_root(self):
        net = CubeNetwork(custom_machine(3))
        personalized_data(net, 0, 8)
        assert len(net.memory(0)) == 7
        assert net.memory(0).get(("p13n", 5, 0)).size == 8

    def test_parts_must_divide(self):
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            personalized_data(net, 0, 5, parts=2)
        with pytest.raises(ValueError):
            personalized_data(net, 0, 2, parts=4)


class TestScatterSbtSubtree:
    @pytest.mark.parametrize("root", [0, 5])
    def test_delivers_everything(self, root):
        net = CubeNetwork(custom_machine(3))
        personalized_data(net, root, 4)
        tree = spanning_binomial_tree(3, root=root)
        scatter_tree(net, tree, schedule="subtree")
        everyone_got_their_block(net, root)

    def test_one_port_time_matches_formula(self):
        """T = (1 - 1/N) * PQ * t_c + n * tau with unbounded packets."""
        n = 4
        K = 16  # elements per destination
        net = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        personalized_data(net, 0, K)
        tree = spanning_binomial_tree(n)
        phases = scatter_tree(net, tree, schedule="subtree")
        N = 1 << n
        PQ = N * K
        expected = (1 - 1 / N) * PQ * 1.0 + n * 1.0
        assert phases == n
        assert net.time == pytest.approx(expected)

    def test_empty_root_is_noop(self):
        net = CubeNetwork(custom_machine(3))
        tree = spanning_binomial_tree(3)
        assert scatter_tree(net, tree) == 0

    def test_unknown_schedule_rejected(self):
        net = CubeNetwork(custom_machine(2))
        personalized_data(net, 0, 2)
        with pytest.raises(ValueError):
            scatter_tree(net, spanning_binomial_tree(2), schedule="magic")


class TestScatterReverseBfs:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_delivers_everything(self, n):
        net = CubeNetwork(
            custom_machine(n, port_model=PortModel.N_PORT)
        )
        personalized_data(net, 0, 4)
        tree = spanning_binomial_tree(n)
        phases = scatter_tree(net, tree, schedule="reverse-bfs")
        everyone_got_their_block(net, 0)
        assert phases == n  # pipeline drains in max-depth phases

    def test_sbnt_faster_than_sbt_on_n_port(self):
        """§3.1: SBnT transfer time beats the SBT by ~n/2 on n ports,
        because the SBT's heaviest port carries half the data."""
        n = 4
        K = 64
        t_sbt = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        personalized_data(t_sbt, 0, K)
        scatter_tree(t_sbt, spanning_binomial_tree(n), schedule="reverse-bfs")

        t_bal = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        personalized_data(t_bal, 0, K)
        scatter_sbnt(t_bal, spanning_balanced_tree(n))
        assert t_bal.time < t_sbt.time / (n / 2 - 1)

    def test_sbnt_delivers(self):
        net = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
        personalized_data(net, 0, 2)
        scatter_sbnt(net, spanning_balanced_tree(4))
        everyone_got_their_block(net, 0)

    def test_sbnt_nonzero_root(self):
        root = 0b1010
        net = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
        personalized_data(net, root, 2)
        scatter_sbnt(net, spanning_balanced_tree(4, root=root))
        everyone_got_their_block(net, root)


class TestRotatedSbts:
    def test_delivers_all_parts(self):
        n = 3
        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        personalized_data(net, 0, 6, parts=n)
        scatter_rotated_sbts(net, 0)
        everyone_got_their_block(net, 0, parts=n)

    def test_n_port_speedup_over_single_sbt(self):
        """Splitting over n rotated SBTs cuts transfer time ~n-fold."""
        n = 4
        K = 4 * n
        single = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        personalized_data(single, 0, K)
        scatter_tree(
            single, spanning_binomial_tree(n), schedule="reverse-bfs"
        )
        rotated = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        personalized_data(rotated, 0, K, parts=n)
        scatter_rotated_sbts(rotated, 0)
        assert rotated.time < single.time / (n / 2)

    def test_nonzero_root(self):
        n = 3
        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        personalized_data(net, 6, 3, parts=n)
        scatter_rotated_sbts(net, 6)
        everyone_got_their_block(net, 6, parts=n)
