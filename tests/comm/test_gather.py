"""Tests for all-to-one personalized communication (gather)."""

import numpy as np
import pytest

from repro.comm.gather import gather_data, gather_tree
from repro.comm.one_to_all import personalized_data, scatter_tree
from repro.cube.trees import spanning_balanced_tree, spanning_binomial_tree
from repro.machine import CubeNetwork, custom_machine


class TestGather:
    @pytest.mark.parametrize("root_kind", ["zero", "last"])
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_everything_arrives_at_root(self, root_kind, n):
        root = 0 if root_kind == "zero" else (1 << n) - 1
        net = CubeNetwork(custom_machine(n))
        gather_data(net, root, 4)
        gather_tree(net, spanning_binomial_tree(n, root=root))
        mem = net.memory(root)
        for src in range(1 << n):
            if src == root:
                continue
            assert ("a2o", src) in mem
            assert np.all(mem.get(("a2o", src)).data == src)
        # Nothing left anywhere else.
        for x in range(1 << n):
            if x != root:
                assert len(net.memory(x)) == 0

    def test_works_on_balanced_tree(self):
        n = 4
        net = CubeNetwork(custom_machine(n))
        gather_data(net, 0, 2)
        gather_tree(net, spanning_balanced_tree(n))
        assert len(net.memory(0)) == (1 << n) - 1

    def test_gather_time_mirrors_scatter(self):
        """All-to-one and one-to-all are the same primitive reversed, so
        their one-port times coincide."""
        n, K = 4, 8
        tree = spanning_binomial_tree(n)
        sc = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        personalized_data(sc, 0, K)
        scatter_tree(sc, tree, schedule="subtree")
        ga = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        gather_data(ga, 0, K)
        gather_tree(ga, tree)
        assert ga.time == pytest.approx(sc.time)

    def test_phase_count(self):
        n = 4
        net = CubeNetwork(custom_machine(n))
        gather_data(net, 0, 1)
        phases = gather_tree(net, spanning_binomial_tree(n))
        assert phases == n

    def test_invalid_element_count(self):
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            gather_data(net, 0, 0)
