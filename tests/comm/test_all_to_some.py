"""Tests for some-to-all / all-to-some personalized communication (§3.3)."""

import numpy as np
import pytest

from repro.comm.all_to_some import all_to_some_gather, some_to_all_scatter
from repro.machine import Block, CubeNetwork, custom_machine


def load_sources(net, split_dims, elements=2):
    """Sources = subcube with split dims zero; each holds data for every node."""
    n = net.params.n
    N = 1 << n
    split_mask = sum(1 << d for d in split_dims)
    sources = [x for x in range(N) if not x & split_mask]
    for src in sources:
        for dst in range(N):
            if dst == src:
                continue
            net.place(
                src,
                Block(("s2a", src, dst), data=np.full(elements, dst)),
            )
    return sources


def check_delivery(net):
    n = net.params.n
    for dst in range(1 << n):
        for key in net.memory(dst).keys():
            assert key[2] == dst


class TestSomeToAll:
    @pytest.mark.parametrize("split_first", [True, False])
    def test_delivers(self, split_first):
        n = 4
        net = CubeNetwork(custom_machine(n))
        split_dims = [3, 2]
        a2a_dims = [1, 0]
        load_sources(net, split_dims)
        phases = some_to_all_scatter(
            net, split_dims, a2a_dims, split_first=split_first
        )
        assert phases == n
        check_delivery(net)
        # every node received something from each source in its column
        for dst in range(1 << n):
            assert len(net.memory(dst)) >= 1

    def test_theorem1_split_first_moves_fewer_elements(self):
        """Theorem 1: splitting first lowers the transfer volume, because
        the all-to-all then runs on already-fanned-out (smaller) sets."""
        n = 4
        split_dims, a2a_dims = [3, 2], [1, 0]

        net_good = CubeNetwork(custom_machine(n))
        load_sources(net_good, split_dims)
        some_to_all_scatter(net_good, split_dims, a2a_dims, split_first=True)

        net_bad = CubeNetwork(custom_machine(n))
        load_sources(net_bad, split_dims)
        some_to_all_scatter(net_bad, split_dims, a2a_dims, split_first=False)

        check_delivery(net_good)
        check_delivery(net_bad)
        assert net_good.time <= net_bad.time
        assert net_good.stats.element_hops <= net_bad.stats.element_hops

    def test_overlapping_dims_rejected(self):
        net = CubeNetwork(custom_machine(3))
        with pytest.raises(ValueError):
            some_to_all_scatter(net, [2, 1], [1, 0])

    def test_out_of_range_dim_rejected(self):
        net = CubeNetwork(custom_machine(3))
        with pytest.raises(ValueError):
            some_to_all_scatter(net, [5], [0])


class TestAllToSome:
    @pytest.mark.parametrize("accumulate_last", [True, False])
    def test_concentrates(self, accumulate_last):
        n = 4
        net = CubeNetwork(custom_machine(n))
        gather_dims = [3]
        targets_mask = 1 << 3
        N = 1 << n
        # Every node sends private data to every target (nodes with bit 3 = 0).
        for src in range(N):
            for dst in range(N):
                if dst & targets_mask or dst == src:
                    continue
                net.place(src, Block(("a2s", src, dst), data=np.full(2, dst)))
        all_to_some_gather(
            net, gather_dims, [2, 1, 0], accumulate_last=accumulate_last
        )
        check_delivery(net)
        # non-targets hold nothing
        for x in range(N):
            if x & targets_mask:
                assert len(net.memory(x)) == 0

    def test_accumulate_last_is_cheaper(self):
        n = 4
        gather_dims, a2a_dims = [3, 2], [1, 0]
        N = 1 << n
        mask = (1 << 3) | (1 << 2)

        def build():
            net = CubeNetwork(custom_machine(n))
            for src in range(N):
                for dst in range(N):
                    if dst & mask or dst == src:
                        continue
                    net.place(
                        src, Block(("a2s", src, dst), data=np.full(2, dst))
                    )
            return net

        good = build()
        all_to_some_gather(good, gather_dims, a2a_dims, accumulate_last=True)
        bad = build()
        all_to_some_gather(bad, gather_dims, a2a_dims, accumulate_last=False)
        assert good.stats.element_hops <= bad.stats.element_hops
        assert good.time <= bad.time
