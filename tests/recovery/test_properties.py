"""Property: checkpoint -> fault -> rollback -> resume is lossless.

For any seeded random fault plan whose surviving topology stays
connected, a recovered run of a captured transpose plan must end
bit-identical to the fault-free run of the same plan — same blocks, same
nodes, same array contents — and conserve the element totals.  The
checkpoint cadence is drawn alongside the fault plan so the property
covers "checkpoint every phase" through "one checkpoint for the run".
"""

import functools

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine import CubeNetwork
from repro.machine.faults import FaultPlan
from repro.machine.presets import connection_machine
from repro.plans.batch import resolve_problem
from repro.plans.recorder import RecordingNetwork, synthetic_matrix
from repro.recovery import (
    RecoveryFailedError,
    RecoveryPolicy,
    execute_with_recovery,
    outcomes_equivalent,
)
from repro.transpose.planner import default_after_layout, transpose

N = 4


@functools.lru_cache(maxsize=4)
def captured(algorithm, elements):
    params = connection_machine(N)
    before, after = resolve_problem(N, elements, "2d")
    recorder = RecordingNetwork(params, record_payloads=True)
    result = transpose(
        recorder, synthetic_matrix(before), after, algorithm=algorithm
    )
    plan = recorder.compile(
        algorithm=result.algorithm,
        before=before,
        after=after if after is not None else default_after_layout(before),
        requested=algorithm,
    )
    return params, plan, recorder.payloads


def totals(outcome):
    return sum(block.size for _, block in outcome.collected.values()) + sum(
        size for _, size in outcome.residual.values()
    )


@given(
    seed=st.integers(min_value=0, max_value=9999),
    algorithm=st.sampled_from(["mpt", "spt"]),
    checkpoint_every=st.integers(min_value=1, max_value=8),
    link_rate=st.floats(min_value=0.0, max_value=0.05),
    transient_rate=st.floats(min_value=0.0, max_value=0.2),
    window=st.integers(min_value=4, max_value=32),
)
@settings(max_examples=25, deadline=None)
def test_recovered_run_is_bit_identical_to_fault_free_run(
    seed, algorithm, checkpoint_every, link_rate, transient_rate, window
):
    params, plan, payloads = captured(algorithm, 256)
    faults = FaultPlan.random(
        N,
        seed=seed,
        link_rate=link_rate,
        transient_rate=transient_rate,
        window=window,
    )
    assume(faults.surviving_connected())
    policy = RecoveryPolicy(checkpoint_every=checkpoint_every)
    clean = execute_with_recovery(
        plan, CubeNetwork(params), policy=policy, payloads=payloads
    )
    assert clean.verified

    network = CubeNetwork(params, faults=faults)
    try:
        recovered = execute_with_recovery(
            plan, network, policy=policy, payloads=payloads
        )
    except RecoveryFailedError:
        # Out of the resume property's scope: the caller documented
        # fallback is the degradation ladder (soaked in test_chaos).
        assume(False)
        return

    assert recovered.verified
    assert outcomes_equivalent(recovered, clean)
    assert totals(recovered) == totals(clean) > 0
    if recovered.report.rollbacks:
        # Resume must beat restart: each rollback replays at most one
        # checkpoint interval, never the whole prefix.
        assert recovered.report.replayed_phases <= (
            recovered.report.rollbacks * checkpoint_every
        )
