"""Checkpoint snapshots: consistency, cadence, retention, rollback."""

import pytest

from repro.machine import Block, CubeNetwork, Message, custom_machine
from repro.recovery import CheckpointManager
from repro.recovery.policy import RecoveryPolicy


def fresh(n=3):
    return CubeNetwork(custom_machine(n))


class TestMemorySnapshots:
    def test_snapshot_then_restore_round_trips(self):
        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        net.place(1, Block("b", virtual_size=4))
        snaps = net.snapshot_memories()
        net.execute_phase([Message(0, 1, ["a"])])
        assert "a" not in net.memories[0]
        net.restore_memories(snaps)
        assert net.memories[0].get("a").size == 8
        assert net.memories[1].get("b").size == 4

    def test_snapshot_is_isolated_from_later_mutation(self):
        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        snaps = net.snapshot_memories()
        net.memories[0].pop("a")
        assert "a" in snaps[0]

    def test_restore_rejects_wrong_node_count(self):
        net = fresh()
        with pytest.raises(ValueError):
            net.restore_memories([{}])


class TestCheckpointManager:
    def test_cadence(self):
        net = fresh()
        mgr = CheckpointManager(every=3, retain=4)
        taken = [
            mgr.maybe_take(net, cursor=i) is not None for i in range(7)
        ]
        assert taken == [False, False, True, False, False, True, False]

    def test_retention_drops_oldest(self):
        net = fresh()
        mgr = CheckpointManager(every=1, retain=2)
        for cursor in range(5):
            mgr.take(net, cursor=cursor)
        assert len(mgr) == 2
        assert mgr.latest.cursor == 4

    def test_rollback_restores_memories_and_keeps_snapshot(self):
        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        mgr = CheckpointManager(every=1, retain=2)
        mgr.take(net, cursor=7, mask=0b10)
        net.execute_phase([Message(0, 1, ["a"])])
        ckpt = mgr.rollback(net)
        assert ckpt.cursor == 7 and ckpt.mask == 0b10
        assert net.memories[0].get("a").size == 8
        # The same snapshot can absorb a second fault.
        assert mgr.rollback(net).cursor == 7

    def test_rollback_without_snapshot_is_an_error(self):
        with pytest.raises(RuntimeError):
            CheckpointManager().rollback(fresh())

    def test_take_counts_on_stats(self):
        net = fresh()
        mgr = CheckpointManager()
        mgr.take(net)
        mgr.take(net)
        assert net.stats.checkpoints == 2

    def test_reset_clears_everything(self):
        net = fresh()
        mgr = CheckpointManager(every=1)
        mgr.take(net)
        mgr.reset()
        assert len(mgr) == 0 and mgr.latest is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointManager(every=0)
        with pytest.raises(ValueError):
            CheckpointManager(retain=0)

    def test_resident_elements(self):
        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        net.place(2, Block("b", virtual_size=3))
        ckpt = CheckpointManager().take(net)
        assert ckpt.resident_elements == 11


class TestEngineHook:
    def test_live_engine_checkpoints_on_cadence(self):
        net = fresh()
        net.checkpoints = CheckpointManager(every=2)
        net.place(0, Block("a", virtual_size=4))
        for _ in range(4):
            net.execute_phase([Message(0, 1, ["a"])])
            net.execute_phase([Message(1, 0, ["a"])])
        # 8 phases at cadence 2 -> 4 snapshots.
        assert net.stats.checkpoints == 4

    def test_idle_phases_count_toward_cadence(self):
        net = fresh()
        net.checkpoints = CheckpointManager(every=2)
        for _ in range(4):
            net.idle_phase()
        assert net.stats.checkpoints == 2


class TestRecoveryPolicy:
    def test_defaults_and_describe(self):
        policy = RecoveryPolicy()
        assert policy.checkpoint_every == 8
        assert "surgery=on" in policy.describe()

    def test_with_override(self):
        policy = RecoveryPolicy().with_(checkpoint_every=2)
        assert policy.checkpoint_every == 2
        assert policy.max_checkpoints == RecoveryPolicy().max_checkpoints

    def test_from_spec(self):
        policy = RecoveryPolicy.from_spec(
            "every=4,retain=2,rollbacks=9,backoff=17,surgery=off,relabel=on"
        )
        assert policy.checkpoint_every == 4
        assert policy.max_checkpoints == 2
        assert policy.max_rollbacks == 9
        assert policy.max_backoff_phases == 17
        assert policy.allow_surgery is False
        assert policy.allow_relabel is True

    def test_from_spec_empty_is_defaults(self):
        assert RecoveryPolicy.from_spec("") == RecoveryPolicy()

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="wibble"):
            RecoveryPolicy.from_spec("wibble=3")

    def test_from_spec_rejects_bad_boolean(self):
        with pytest.raises(ValueError, match="on or off"):
            RecoveryPolicy.from_spec("surgery=yes")

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(checkpoint_every=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_checkpoints=0)


class TestDigestSeal:
    def test_take_seals_and_validates(self):
        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        ckpt = CheckpointManager().take(net)
        assert ckpt.digest is not None
        assert ckpt.validate()

    def test_unsealed_checkpoints_are_trusted(self):
        net = fresh()
        ckpt = CheckpointManager().take(net)
        ckpt.digest = None  # e.g. deserialized from an older format
        assert ckpt.validate()

    def test_tampered_snapshot_fails_validation(self):
        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        ckpt = CheckpointManager().take(net)
        ckpt.memories[0]["a"] = Block("a", virtual_size=999)
        assert not ckpt.validate()

    def test_rollback_skips_corrupted_snapshot(self):
        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        mgr = CheckpointManager(every=1, retain=3)
        mgr.take(net, cursor=1)
        mgr.take(net, cursor=2)
        mgr.latest.memories[0]["a"] = Block("a", virtual_size=999)
        ckpt = mgr.rollback(net)
        assert ckpt.cursor == 1  # the damaged newest one was discarded
        assert net.memories[0].get("a").size == 8
        assert len(mgr) == 1

    def test_rollback_refuses_when_every_snapshot_is_corrupt(self):
        from repro.integrity.errors import CorruptedCheckpointError

        net = fresh()
        net.place(0, Block("a", virtual_size=8))
        mgr = CheckpointManager(every=1, retain=2)
        mgr.take(net, cursor=1)
        mgr.take(net, cursor=2)
        for ckpt in list(mgr._snapshots):
            ckpt.memories[0]["a"] = Block("a", virtual_size=999)
        with pytest.raises(CorruptedCheckpointError) as exc:
            mgr.rollback(net)
        assert exc.value.discarded == 2
        assert len(mgr) == 0
