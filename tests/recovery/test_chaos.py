"""Chaos soak harness: every seeded trial must verify or reject."""

import pytest

from repro.recovery import RecoveryPolicy, run_chaos
from repro.recovery.chaos import ChaosTrial


def small_soak(**overrides):
    kwargs = dict(
        n=4,
        elements=256,
        seeds=3,
        policy=RecoveryPolicy(checkpoint_every=2),
    )
    kwargs.update(overrides)
    return run_chaos(**kwargs)


class TestRunChaos:
    def test_small_soak_is_clean(self):
        report = small_soak()
        assert report.ok
        assert len(report.trials) == 3 * 3  # seeds x modes
        assert all(
            t.outcome in ("verified", "rejected-disconnected")
            for t in report.trials
        )

    def test_explicit_seed_sequence(self):
        report = small_soak(seeds=[7, 11], modes=("replay",))
        assert [t.seed for t in report.trials] == [7, 11]
        assert all(t.mode == "replay" for t in report.trials)

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            small_soak(modes=("replay", "wat"))

    def test_progress_callback_streams_trials(self):
        seen = []
        report = small_soak(seeds=2, modes=("cached",), progress=seen.append)
        assert seen == report.trials

    def test_report_as_dict_shape(self):
        report = small_soak(seeds=2, modes=("replay", "live"))
        doc = report.as_dict()
        assert doc["ok"] is True
        assert doc["config"]["seeds"] == 2
        assert doc["config"]["modes"] == ["replay", "live"]
        assert sum(doc["outcomes"].values()) == len(doc["trials"])
        assert set(doc["totals"]) == {
            "trials",
            "fault_encounters",
            "rollbacks",
            "replayed_phases",
            "backoff_phases",
            "wasted_elements",
            "corrupted_deliveries",
            "retransmits",
            "quarantined_links",
        }

    def test_summary_mentions_verdict(self):
        report = small_soak(seeds=1, modes=("replay",))
        assert "verdict: OK" in report.summary()

    def test_resolutions_count_only_verified_trials(self):
        report = small_soak(seeds=4)
        counted = sum(report.resolution_counts().values())
        assert counted == report.outcome_counts().get("verified", 0)

    def test_failures_surface_in_report(self):
        report = small_soak(seeds=1, modes=("replay",))
        report.trials.append(
            ChaosTrial(99, "replay", "failed", detail="synthetic")
        )
        assert not report.ok
        assert report.failures()[-1].seed == 99
        assert "FAILED seed=99" in report.summary()


class TestCorruptionSweep:
    def test_corruption_sweep_is_clean_and_accounted(self):
        report = small_soak(corrupt_rate=0.08)
        assert report.ok
        assert report.corrupt_rate == 0.08
        totals = report.as_dict()["totals"]
        assert totals["corrupted_deliveries"] > 0
        assert all(
            t.outcome in ("verified", "rejected-disconnected")
            for t in report.trials
        )

    def test_corruption_counters_reach_trials_and_summary(self):
        report = small_soak(corrupt_rate=0.08)
        assert any(t.corrupted_deliveries for t in report.trials)
        doc = report.as_dict()
        assert doc["config"]["corrupt_rate"] == 0.08
        assert "corrupted_deliveries" in doc["trials"][0]
        assert "undetected" in report.summary()

    def test_corruption_free_soak_reports_zero_integrity_activity(self):
        report = small_soak()
        totals = report.as_dict()["totals"]
        assert totals["corrupted_deliveries"] == 0
        assert totals["retransmits"] == 0
        assert totals["quarantined_links"] == 0
