"""Plan surgery: detour expansion, XOR relabeling, symbolic validation."""

import pytest

from repro.plans.ir import (
    CollectOp,
    IdleOp,
    PhaseOp,
    PlaceOp,
    PlanMessage,
    RemapOp,
)
from repro.plans.symbolic import simulate_ops
from repro.recovery import SurgeryError, physicalize, plan_surgery
from repro.recovery.surgery import _bfs_path, _relabel_candidate


def phase(*messages, exclusive=True):
    return PhaseOp(tuple(messages), exclusive)


def msg(src, dst, elements, *keys):
    return PlanMessage(src, dst, elements, keys)


class TestPhysicalize:
    def test_folds_remaps_into_node_ids(self):
        ops = (
            RemapOp(0b01),
            phase(msg(0, 1, 4, "k")),
            RemapOp(0b01),
            CollectOp(1, "k"),
        )
        out = physicalize(ops)
        assert not any(isinstance(op, RemapOp) for op in out)
        # First phase runs under mask 1: 0->1 becomes 1->0.
        assert out[0].messages[0].src == 1
        assert out[0].messages[0].dst == 0
        # The collect runs after the mask cancelled back to 0.
        assert out[1].node == 1

    def test_initial_mask_applies(self):
        out = physicalize((CollectOp(0, "k"),), mask=0b10)
        assert out[0].node == 2

    def test_identity_without_remaps(self):
        ops = (phase(msg(0, 1, 4, "k")), IdleOp())
        assert physicalize(ops) == ops


class TestBfs:
    def test_direct_edge(self):
        assert _bfs_path(0, 1, 3, set(), set()) == [0, 1]

    def test_routes_around_dead_link(self):
        path = _bfs_path(0, 1, 3, {(0, 1)}, set())
        assert path[0] == 0 and path[-1] == 1 and len(path) == 4
        assert (0, 1) not in set(zip(path, path[1:]))

    def test_routes_around_dead_node(self):
        path = _bfs_path(0, 3, 3, set(), {1})
        assert 1 not in path

    def test_unreachable_returns_none(self):
        # Node 0 of a 2-cube with both outgoing links dead is marooned.
        assert _bfs_path(0, 3, 2, {(0, 1), (0, 2)}, set()) is None


class TestDetour:
    def test_single_dead_link_detours_and_validates(self):
        ops = (phase(msg(0, 1, 4, "k")), CollectOp(1, "k"))
        holdings = {"k": 0}
        result = plan_surgery(
            ops,
            n=3,
            dead_links={(0, 1)},
            dead_nodes=set(),
            holdings=holdings,
            sizes={"k": 4},
            allow_relabel=False,
        )
        assert result.strategy == "detour"
        assert result.detoured_messages == 1
        assert result.added_element_hops == 8  # two extra hops of 4 elements
        state = simulate_ops(
            result.ops,
            holdings,
            n=3,
            forbidden_links=frozenset({(0, 1)}),
        )
        assert state.collected == {"k": 1}

    def test_untouched_messages_keep_their_phase(self):
        ops = (
            phase(msg(0, 1, 4, "a"), msg(6, 7, 4, "b")),
            CollectOp(1, "a"),
            CollectOp(7, "b"),
        )
        result = plan_surgery(
            ops,
            n=3,
            dead_links={(0, 1)},
            dead_nodes=set(),
            holdings={"a": 0, "b": 6},
            sizes={"a": 4, "b": 4},
            allow_relabel=False,
        )
        first = result.ops[0]
        assert isinstance(first, PhaseOp)
        assert first.exclusive  # kept subset stays exclusive
        assert [m.keys for m in first.messages] == [("b",)]
        # Detour hop phases are non-exclusive.
        assert all(
            not op.exclusive
            for op in result.ops[1:]
            if isinstance(op, PhaseOp) and op.messages
        )

    def test_marooned_source_is_an_error(self):
        # Both of node 0's outgoing links are dead: no candidate works.
        ops = (phase(msg(0, 1, 4, "k")), CollectOp(1, "k"))
        with pytest.raises(SurgeryError, match="no rewrite"):
            plan_surgery(
                ops,
                n=2,
                dead_links={(0, 1), (0, 2)},
                dead_nodes=set(),
                holdings={"k": 0},
                sizes={"k": 4},
            )


class TestRelabel:
    def test_relabel_candidate_avoids_dead_dimension(self):
        ops = (phase(msg(0, 1, 4, "k")), CollectOp(1, "k"))
        result = _relabel_candidate(
            ops,
            n=3,
            dead_links={(0, 1)},
            dead_nodes=set(),
            holdings={"k": 0},
            sizes={"k": 4},
        )
        assert result.strategy == "relabel"
        assert result.relabel_mask & 1 == 0  # dimension 0 is dead
        state = simulate_ops(
            result.ops,
            {"k": 0},
            n=3,
            forbidden_links=frozenset({(0, 1)}),
        )
        assert state.collected == {"k": 1}
        # Out and back over popcount(r) dimensions of a 4-element block.
        popcount = bin(result.relabel_mask).count("1")
        assert result.added_element_hops == 2 * popcount * 4

    def test_relabel_refuses_pending_placements(self):
        ops = (
            PlaceOp(0, 4, "k"),
            phase(msg(0, 1, 4, "k")),
            CollectOp(1, "k"),
        )
        with pytest.raises(SurgeryError, match="placement"):
            _relabel_candidate(
                ops,
                n=3,
                dead_links={(0, 1)},
                dead_nodes=set(),
                holdings={},
                sizes={"k": 4},
            )

    def test_relabel_refuses_dead_nodes(self):
        ops = (phase(msg(0, 1, 4, "k")),)
        with pytest.raises(SurgeryError, match="dead nodes"):
            _relabel_candidate(
                ops,
                n=3,
                dead_links=set(),
                dead_nodes={5},
                holdings={"k": 0},
                sizes={"k": 4},
            )


class TestPlanSurgery:
    def test_picks_a_validated_candidate(self):
        ops = (phase(msg(0, 1, 4, "k")), CollectOp(1, "k"))
        result = plan_surgery(
            ops,
            n=3,
            dead_links={(0, 1)},
            dead_nodes=set(),
            holdings={"k": 0},
            sizes={"k": 4},
        )
        assert result.strategy in ("detour", "relabel")
        reference = simulate_ops(ops, {"k": 0}, n=3)
        assert simulate_ops(result.ops, {"k": 0}, n=3) == reference

    def test_block_on_dead_node_is_unrecoverable(self):
        ops = (phase(msg(5, 4, 4, "k")),)
        with pytest.raises(SurgeryError, match="unreachable"):
            plan_surgery(
                ops,
                n=3,
                dead_links=set(),
                dead_nodes={5},
                holdings={"k": 5},
                sizes={"k": 4},
            )

    def test_requires_physicalized_sequence(self):
        with pytest.raises(SurgeryError, match="physicalized"):
            plan_surgery(
                (RemapOp(1),),
                n=3,
                dead_links=set(),
                dead_nodes=set(),
                holdings={},
                sizes={},
            )

    def test_routes_around_dead_intermediate_node(self):
        # Message 1 -> 2 (two hops in any routing); node 0 and 3 both
        # work as intermediates, so killing 3 must not break surgery.
        ops = (phase(msg(1, 0, 4, "k")), phase(msg(0, 2, 4, "k")),
               CollectOp(2, "k"))
        result = plan_surgery(
            ops,
            n=2,
            dead_links={(0, 2)},
            dead_nodes=set(),
            holdings={"k": 1},
            sizes={"k": 4},
            allow_relabel=False,
        )
        state = simulate_ops(
            result.ops,
            {"k": 1},
            n=2,
            forbidden_links=frozenset({(0, 2)}),
        )
        assert state.collected == {"k": 2}
