"""Recovery executor: resume on transients, surgery on permanents."""

import numpy as np
import pytest

from repro.machine import CubeNetwork
from repro.machine.faults import FaultPlan
from repro.machine.presets import connection_machine
from repro.plans.batch import resolve_problem
from repro.plans.ir import IdleOp, PhaseOp
from repro.plans.recorder import RecordingNetwork, synthetic_matrix
from repro.plans.replay import PlanReplayError
from repro.recovery import (
    RecoveryFailedError,
    RecoveryPolicy,
    execute_with_recovery,
    outcomes_equivalent,
)
from repro.transpose.planner import default_after_layout, transpose


def captured(n=4, elements=256, algorithm="mpt", payloads=False):
    """Capture one clean transpose as a compiled plan (+payload ledger)."""
    params = connection_machine(n)
    before, after = resolve_problem(n, elements, "2d")
    recorder = RecordingNetwork(params, record_payloads=payloads)
    result = transpose(
        recorder, synthetic_matrix(before), after, algorithm=algorithm
    )
    plan = recorder.compile(
        algorithm=result.algorithm,
        before=before,
        after=after if after is not None else default_after_layout(before),
        requested=algorithm,
    )
    return params, plan, recorder.payloads


def plan_phases(plan):
    return sum(1 for op in plan.ops if isinstance(op, (PhaseOp, IdleOp)))


TRANSIENT = "tlinks=0-1@1-3"
PERMANENT = "links=0-1"


class TestCleanRun:
    def test_clean_run_verifies_and_stays_clean(self):
        params, plan, _ = captured()
        outcome = execute_with_recovery(plan, CubeNetwork(params))
        assert outcome.verified
        assert outcome.report.resolved == "clean"
        assert not outcome.report.recovered
        assert outcome.report.fault_encounters == 0
        assert outcome.report.checkpoints_taken >= 1

    def test_rejects_incompatible_network(self):
        params, plan, _ = captured(n=4)
        other = CubeNetwork(connection_machine(3))
        with pytest.raises(PlanReplayError, match="compiled for"):
            execute_with_recovery(plan, other)


class TestTransientResume:
    def test_backoff_then_resume(self):
        params, plan, _ = captured()
        net = CubeNetwork(params, faults=FaultPlan.from_spec(4, TRANSIENT))
        outcome = execute_with_recovery(
            plan, net, policy=RecoveryPolicy(checkpoint_every=2)
        )
        assert outcome.verified
        assert outcome.report.resolved == "resume"
        assert outcome.report.rollbacks >= 1
        assert outcome.report.backoff_phases >= 1
        assert outcome.report.mttr and all(d > 0 for d in outcome.report.mttr)

    def test_resume_replays_strictly_fewer_phases_than_restart(self):
        params, plan, _ = captured()
        net = CubeNetwork(params, faults=FaultPlan.from_spec(4, TRANSIENT))
        outcome = execute_with_recovery(
            plan, net, policy=RecoveryPolicy(checkpoint_every=2)
        )
        # A restart would re-run every phase before the fault; resume
        # replays at most the checkpoint cadence.
        assert 0 < outcome.report.replayed_phases < plan_phases(plan)
        assert outcome.report.replayed_phases <= 2 * outcome.report.rollbacks

    def test_phase_clock_never_rolls_back(self):
        params, plan, _ = captured()
        net = CubeNetwork(params, faults=FaultPlan.from_spec(4, TRANSIENT))
        execute_with_recovery(
            plan, net, policy=RecoveryPolicy(checkpoint_every=2)
        )
        clean_net = CubeNetwork(params)
        execute_with_recovery(plan, clean_net)
        # Backoff and replay phases advance the clock; rollback never
        # rewinds it, so the faulted run ends later than the clean one.
        assert net.phase_index > clean_net.phase_index

    def test_backoff_budget_exhaustion(self):
        params, plan, _ = captured()
        net = CubeNetwork(
            params, faults=FaultPlan.from_spec(4, "tlinks=0-1@1-100")
        )
        with pytest.raises(RecoveryFailedError, match="backoff budget"):
            execute_with_recovery(
                plan,
                net,
                policy=RecoveryPolicy(
                    checkpoint_every=2, max_backoff_phases=3
                ),
            )

    def test_rollback_budget_exhaustion_carries_report(self):
        params, plan, _ = captured()
        net = CubeNetwork(params, faults=FaultPlan.from_spec(4, TRANSIENT))
        with pytest.raises(RecoveryFailedError, match="rollback budget") as e:
            execute_with_recovery(
                plan, net, policy=RecoveryPolicy(max_rollbacks=0)
            )
        assert e.value.report.fault_encounters == 1


class TestPermanentSurgery:
    def test_surgery_repairs_and_verifies(self):
        params, plan, _ = captured()
        net = CubeNetwork(params, faults=FaultPlan.from_spec(4, PERMANENT))
        outcome = execute_with_recovery(
            plan, net, policy=RecoveryPolicy(checkpoint_every=2)
        )
        assert outcome.verified
        assert outcome.report.resolved.startswith("surgery-")
        assert outcome.report.surgeries
        surgery = outcome.report.surgeries[0]
        assert surgery["strategy"] in ("detour", "relabel")
        assert surgery["added_element_hops"] > 0

    def test_surgery_disabled_fails_over(self):
        params, plan, _ = captured()
        net = CubeNetwork(params, faults=FaultPlan.from_spec(4, PERMANENT))
        with pytest.raises(RecoveryFailedError, match="surgery disabled"):
            execute_with_recovery(
                plan, net, policy=RecoveryPolicy(allow_surgery=False)
            )


class TestPayloadIdentity:
    def test_recovered_payloads_match_fault_free_run(self):
        params, plan, payloads = captured(payloads=True)
        policy = RecoveryPolicy(checkpoint_every=2)
        clean = execute_with_recovery(
            plan, CubeNetwork(params), policy=policy, payloads=payloads
        )
        for spec in (TRANSIENT, PERMANENT):
            net = CubeNetwork(params, faults=FaultPlan.from_spec(4, spec))
            faulted = execute_with_recovery(
                plan, net, policy=policy, payloads=payloads
            )
            assert faulted.verified
            assert faulted.report.recovered
            assert outcomes_equivalent(faulted, clean)

    def test_collected_blocks_carry_real_arrays(self):
        params, plan, payloads = captured(payloads=True)
        outcome = execute_with_recovery(
            plan, CubeNetwork(params), payloads=payloads
        )
        assert outcome.collected
        for _key, (_node, block) in outcome.collected.items():
            assert isinstance(block.data, np.ndarray)

    def test_element_totals_conserved_through_recovery(self):
        params, plan, payloads = captured(payloads=True)

        def totals(outcome):
            return sum(
                b.size for _, b in outcome.collected.values()
            ) + sum(size for _, size in outcome.residual.values())

        clean = execute_with_recovery(
            plan, CubeNetwork(params), payloads=payloads
        )
        net = CubeNetwork(params, faults=FaultPlan.from_spec(4, TRANSIENT))
        outcome = execute_with_recovery(
            plan,
            net,
            policy=RecoveryPolicy(checkpoint_every=2),
            payloads=payloads,
        )
        assert outcome.report.recovered
        assert totals(outcome) == totals(clean) > 0
