"""Tests for the fault-injection subsystem: plans and engine enforcement."""

import numpy as np
import pytest

from repro.machine import (
    Block,
    CubeNetwork,
    FaultKind,
    FaultPlan,
    LinkFailureError,
    LinkFault,
    Message,
    NodeFailureError,
    NodeFault,
    TraceRecorder,
    custom_machine,
)


class TestFaultDescriptions:
    def test_link_fault_requires_cube_edge(self):
        # Edge validation lives in FaultPlan (which knows the topology):
        # the same (0, 3) is a torus ring link but not a cube edge.
        with pytest.raises(ValueError, match="not a cube edge"):
            FaultPlan(4, (LinkFault(0, 3),))  # Hamming distance 2

    def test_activity_window(self):
        f = LinkFault(0, 1, start=2, end=5)
        assert not f.active(1)
        assert f.active(2)
        assert f.active(4)
        assert not f.active(5)
        assert f.kind is FaultKind.TRANSIENT

    def test_permanent_is_active_forever(self):
        f = NodeFault(3)
        assert f.active(0) and f.active(10**9)
        assert f.kind is FaultKind.PERMANENT

    def test_degenerate_window_rejected(self):
        with pytest.raises(ValueError):
            LinkFault(0, 1, start=4, end=4)
        with pytest.raises(ValueError):
            NodeFault(0, start=-1)


class TestFaultPlan:
    def test_single_link(self):
        plan = FaultPlan.single_link(3, 0, 4)
        assert plan.link_fault(0, 4, 0) is not None
        assert plan.link_fault(4, 0, 0) is None  # directed
        assert plan.faulted_links_ever() == {(0, 4)}
        assert not plan.is_empty

    def test_out_of_cube_faults_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(1, (LinkFault(2, 3),))
        with pytest.raises(ValueError):
            FaultPlan(1, node_faults=(NodeFault(5),))

    def test_random_is_deterministic(self):
        a = FaultPlan.random(4, seed=11, link_rate=0.1, transient_rate=0.1)
        b = FaultPlan.random(4, seed=11, link_rate=0.1, transient_rate=0.1)
        assert a.link_faults == b.link_faults
        c = FaultPlan.random(4, seed=12, link_rate=0.1, transient_rate=0.1)
        assert a.link_faults != c.link_faults

    def test_from_spec(self):
        plan = FaultPlan.from_spec(3, "seed=7,nodes=3+5,links=0-1+6-4")
        assert plan.faulted_nodes_ever() == {3, 5}
        assert {(0, 1), (6, 4)} <= plan.faulted_links_ever()
        assert plan.seed == 7

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec(3, "nonsense")
        with pytest.raises(ValueError):
            FaultPlan.from_spec(3, "bogus_key=1")

    def test_last_transient_phase(self):
        plan = FaultPlan(
            2, (LinkFault(0, 1), LinkFault(0, 2, start=1, end=9))
        )
        assert plan.last_transient_phase() == 9
        assert FaultPlan.single_link(2, 0, 1).last_transient_phase() == -1

    def test_surviving_connected(self):
        assert FaultPlan(2).surviving_connected()
        # One dead directed link: the reverse and the long way remain.
        assert FaultPlan.single_link(2, 0, 1).surviving_connected()
        # All four directed links of node 0: it is cut off.
        iso = FaultPlan(
            2,
            tuple(
                LinkFault(a, b)
                for a, b in ((0, 1), (1, 0), (0, 2), (2, 0))
            ),
        )
        assert not iso.surviving_connected()
        # A dead *node* does not disconnect the others.
        assert FaultPlan(2, node_faults=(NodeFault(0),)).surviving_connected()

    def test_describe_counts(self):
        plan = FaultPlan(
            2,
            (LinkFault(0, 1), LinkFault(0, 2, 0, 4)),
            (NodeFault(3),),
            seed=5,
        )
        text = plan.describe()
        assert "1 permanent + 1 transient link" in text
        assert "1 permanent + 0 transient node" in text
        assert "seed=5" in text


class TestEngineEnforcement:
    def make(self, plan, n=2):
        return CubeNetwork(custom_machine(n), faults=plan)

    def test_plan_dimension_must_match(self):
        with pytest.raises(ValueError):
            CubeNetwork(custom_machine(3), faults=FaultPlan(2))

    def test_faulted_link_delivery_raises_and_preserves_memory(self):
        net = self.make(FaultPlan.single_link(2, 0, 1))
        net.place(0, Block("a", data=np.arange(4)))
        with pytest.raises(LinkFailureError) as err:
            net.execute_phase([Message(0, 1, ("a",))])
        assert (err.value.src, err.value.dst) == (0, 1)
        assert net.find_block("a") == 0  # nothing moved
        assert net.stats.link_fault_events == 1
        assert net.stats.phases == 0  # the aborted phase was not charged

    def test_reverse_direction_still_works(self):
        net = self.make(FaultPlan.single_link(2, 0, 1))
        net.place(1, Block("a", virtual_size=4))
        net.execute_phase([Message(1, 0, ("a",))])
        assert net.find_block("a") == 0

    def test_faulted_node_blocks_send_and_receive(self):
        plan = FaultPlan(2, node_faults=(NodeFault(1),))
        net = self.make(plan)
        net.place(1, Block("a", virtual_size=2))
        with pytest.raises(NodeFailureError):
            net.execute_phase([Message(1, 3, ("a",))])
        net2 = self.make(plan)
        net2.place(0, Block("b", virtual_size=2))
        with pytest.raises(NodeFailureError):
            net2.execute_phase([Message(0, 1, ("b",))])
        assert net2.stats.node_fault_events == 1

    def test_transient_fault_heals_with_the_phase_clock(self):
        plan = FaultPlan(2, (LinkFault(0, 1, start=0, end=2),))
        net = self.make(plan)
        net.place(0, Block("a", virtual_size=2))
        with pytest.raises(LinkFailureError):
            net.execute_phase([Message(0, 1, ("a",))])
        net.idle_phase()
        net.idle_phase()
        assert net.phase_index == 2  # the fault window [0, 2) has passed
        net.execute_phase([Message(0, 1, ("a",))])
        assert net.find_block("a") == 1

    def test_observer_sees_fault_events(self):
        net = self.make(FaultPlan.single_link(2, 2, 3))
        net.observer = rec = TraceRecorder()
        net.place(2, Block("a", virtual_size=2))
        with pytest.raises(LinkFailureError):
            net.execute_phase([Message(2, 3, ("a",))])
        assert len(rec.fault_events) == 1
        event = rec.fault_events[0]
        assert event.transfers == ((2, 3, 0),)
        assert "link@phase0" in event.detail

    def test_idle_phase_is_free_but_counted(self):
        net = CubeNetwork(custom_machine(2))
        assert net.idle_phase() == 0.0
        assert net.phase_index == 1
        assert net.time == 0.0


class TestExecuteLocalElements:
    def test_scalar_elements_recorded(self):
        net = CubeNetwork(custom_machine(2))
        net.execute_local(1.5, 64)
        assert net.stats.copied_elements == 64
        assert net.stats.copy_time == pytest.approx(1.5)

    def test_mapping_elements_summed(self):
        net = CubeNetwork(custom_machine(2))
        net.execute_local({0: 1.0, 1: 2.0}, {0: 10, 1: 30})
        assert net.stats.copied_elements == 40
        assert net.stats.copy_time == pytest.approx(2.0)

    def test_default_remains_zero(self):
        net = CubeNetwork(custom_machine(2))
        net.execute_local(1.0)
        assert net.stats.copied_elements == 0

    def test_negative_counts_rejected(self):
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            net.execute_local(1.0, -3)


class TestDuplicateKeyHardening:
    def test_same_key_twice_from_one_node_is_a_clear_error(self):
        net = CubeNetwork(custom_machine(2))
        net.place(0, Block("a", virtual_size=2))
        with pytest.raises(ValueError, match="'a' at node 0"):
            net.execute_phase(
                [Message(0, 1, ("a",)), Message(0, 2, ("a",))]
            )
        assert net.find_block("a") == 0  # aborted before any pop

    def test_error_names_both_messages(self):
        net = CubeNetwork(custom_machine(2))
        net.place(0, Block("k", virtual_size=2))
        with pytest.raises(ValueError, match=r"0->1 and 0->2"):
            net.execute_phase(
                [Message(0, 1, ("k",)), Message(0, 2, ("k",))]
            )

    def test_same_key_at_different_nodes_is_fine(self):
        net = CubeNetwork(custom_machine(2))
        net.place(0, Block("a", virtual_size=2))
        net.place(3, Block("a", virtual_size=2))
        net.execute_phase([Message(0, 1, ("a",)), Message(3, 2, ("a",))])
        assert net.memory(1).get("a") is not None
        assert net.memory(2).get("a") is not None


class TestStatsFaultCounters:
    def test_merge_carries_fault_counters(self):
        from repro.machine.metrics import TransferStats

        a = TransferStats()
        a.record_fault(node=False)
        a.record_retry()
        b = TransferStats()
        b.record_fault(node=True)
        b.record_detour()
        b.record_stall()
        a.merge(b)
        assert a.link_fault_events == 1
        assert a.node_fault_events == 1
        assert a.fault_events == 2
        assert a.retries == 1
        assert a.detour_hops == 1
        assert a.stall_phases == 1

    def test_summary_mentions_faults_only_when_present(self):
        from repro.machine.metrics import TransferStats

        clean = TransferStats()
        assert "faults" not in clean.summary()
        clean.record_fault(node=False)
        assert "faults=1" in clean.summary()
