"""Tests for the phase-synchronous cube network engine."""

import numpy as np
import pytest

from repro.machine import (
    Block,
    CubeNetwork,
    LinkConflictError,
    Message,
    custom_machine,
)
from repro.machine.message import merge_messages
from repro.machine.params import PortModel


def make_network(n=3, **kw):
    return CubeNetwork(custom_machine(n, **kw))


class TestBlocks:
    def test_block_requires_payload_or_size(self):
        with pytest.raises(ValueError):
            Block("k")
        with pytest.raises(ValueError):
            Block("k", data=np.ones(3), virtual_size=3)

    def test_block_sizes(self):
        assert Block("k", data=np.ones((2, 3))).size == 6
        assert Block("k", virtual_size=17).size == 17
        assert Block("k", virtual_size=17).is_virtual

    def test_split_real_block(self):
        b = Block("k", data=np.arange(10))
        parts = b.split(3)
        assert [p.size for p in parts] == [4, 3, 3]
        assert np.concatenate([p.data for p in parts]).tolist() == list(range(10))
        assert [p.key for p in parts] == [("k", 0), ("k", 1), ("k", 2)]

    def test_split_virtual_block(self):
        parts = Block("k", virtual_size=10).split(4)
        assert [p.size for p in parts] == [3, 3, 2, 2]

    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message(1, 1, ("k",))
        with pytest.raises(ValueError):
            Message(0, 1, ())

    def test_merge_messages(self):
        merged = merge_messages(
            [Message(0, 1, ("a",)), Message(0, 2, ("b",)), Message(0, 1, ("c",))]
        )
        assert merged == [Message(0, 1, ("a", "c")), Message(0, 2, ("b",))]


class TestPhaseExecution:
    def test_delivers_payload(self):
        net = make_network()
        net.place(0, Block("x", data=np.arange(4)))
        net.execute_phase([Message(0, 1, ("x",))])
        assert "x" in net.memory(1)
        assert "x" not in net.memory(0)
        assert net.memory(1).get("x").data.tolist() == [0, 1, 2, 3]

    def test_sending_unheld_block_fails(self):
        net = make_network()
        with pytest.raises(KeyError):
            net.execute_phase([Message(0, 1, ("ghost",))])

    def test_non_edge_rejected(self):
        net = make_network()
        net.place(0, Block("x", virtual_size=1))
        with pytest.raises(ValueError):
            net.execute_phase([Message(0, 3, ("x",))])

    def test_symmetric_exchange_in_one_phase(self):
        net = make_network()
        net.place(0, Block("a", virtual_size=5))
        net.place(1, Block("b", virtual_size=5))
        net.execute_phase([Message(0, 1, ("a",)), Message(1, 0, ("b",))])
        assert net.find_block("a") == 1
        assert net.find_block("b") == 0

    def test_link_conflict_raises_in_exclusive_mode(self):
        net = make_network()
        net.place(0, Block("a", virtual_size=1))
        net.place(0, Block("b", virtual_size=1))
        with pytest.raises(LinkConflictError):
            net.execute_phase(
                [Message(0, 1, ("a",)), Message(0, 1, ("b",))], exclusive=True
            )

    def test_shared_link_serializes_by_default(self):
        net = CubeNetwork(custom_machine(3, tau=1.0, t_c=1.0))
        net.place(0, Block("a", virtual_size=2))
        net.place(0, Block("b", virtual_size=2))
        duration = net.execute_phase([Message(0, 1, ("a",)), Message(0, 1, ("b",))])
        # Two messages serialize on the link: 2 * (1 + 2).
        assert duration == pytest.approx(6.0)

    def test_empty_phase_is_free(self):
        net = make_network()
        assert net.execute_phase([]) == 0.0
        assert net.time == 0.0


class TestTimeAccounting:
    def test_single_message_cost(self):
        net = make_network(tau=2.0, t_c=3.0, packet_capacity=10)
        net.place(0, Block("x", virtual_size=25))
        duration = net.execute_phase([Message(0, 1, ("x",))])
        # ceil(25/10)=3 startups + 25 transfers: 3*2 + 25*3 = 81.
        assert duration == pytest.approx(81.0)
        assert net.time == pytest.approx(81.0)
        assert net.stats.startups == 3
        assert net.stats.element_hops == 25

    def test_exchange_costs_one_send(self):
        """Bidirectional model: an exchange takes the time of one send."""
        net = make_network(tau=1.0, t_c=1.0)
        net.place(0, Block("a", virtual_size=4))
        net.place(1, Block("b", virtual_size=4))
        duration = net.execute_phase([Message(0, 1, ("a",)), Message(1, 0, ("b",))])
        assert duration == pytest.approx(5.0)

    def test_one_port_serializes_sends(self):
        net = make_network(tau=1.0, t_c=1.0)
        net.place(0, Block("a", virtual_size=4))
        net.place(0, Block("b", virtual_size=4))
        duration = net.execute_phase(
            [Message(0, 1, ("a",)), Message(0, 2, ("b",))]
        )
        assert duration == pytest.approx(10.0)

    def test_one_port_serializes_receives(self):
        net = make_network(tau=1.0, t_c=1.0)
        net.place(1, Block("a", virtual_size=4))
        net.place(2, Block("b", virtual_size=4))
        duration = net.execute_phase(
            [Message(1, 0, ("a",)), Message(2, 0, ("b",))]
        )
        assert duration == pytest.approx(10.0)

    def test_n_port_sends_concurrently(self):
        net = make_network(tau=1.0, t_c=1.0, port_model=PortModel.N_PORT)
        net.place(0, Block("a", virtual_size=4))
        net.place(0, Block("b", virtual_size=4))
        duration = net.execute_phase(
            [Message(0, 1, ("a",)), Message(0, 2, ("b",))]
        )
        assert duration == pytest.approx(5.0)

    def test_phase_time_is_system_maximum(self):
        net = make_network(tau=1.0, t_c=1.0)
        net.place(0, Block("a", virtual_size=1))
        net.place(2, Block("b", virtual_size=100))
        duration = net.execute_phase(
            [Message(0, 1, ("a",)), Message(2, 3, ("b",))]
        )
        assert duration == pytest.approx(101.0)

    def test_multi_block_message_packs_together(self):
        """One message of two blocks pays start-ups on the combined size."""
        net = make_network(tau=10.0, t_c=0.0, packet_capacity=8)
        net.place(0, Block("a", virtual_size=4))
        net.place(0, Block("b", virtual_size=4))
        duration = net.execute_phase([Message(0, 1, ("a", "b"))])
        assert duration == pytest.approx(10.0)  # one packet

    def test_local_charges(self):
        net = make_network(t_copy=0.5)
        d = net.charge_copy({0: 10, 1: 20})
        assert d == pytest.approx(10.0)  # max(5, 10)
        assert net.stats.copied_elements == 30
        assert net.stats.copy_time == pytest.approx(10.0)
        net.execute_local(3.0)
        assert net.time == pytest.approx(13.0)

    def test_stats_summary_runs(self):
        net = make_network()
        net.place(0, Block("x", virtual_size=1))
        net.execute_phase([Message(0, 1, ("x",))])
        assert "phases=1" in net.stats.summary()


class TestExchangeMessagesHelper:
    def test_builds_symmetric_messages(self):
        from repro.machine.engine import exchange_messages

        msgs = exchange_messages(
            [(0, 1), (2, 3)],
            {0: ["a"], 2: ["c"]},
            {1: ["b"], 3: ["d"]},
        )
        assert Message(0, 1, ("a",)) in msgs
        assert Message(1, 0, ("b",)) in msgs
        assert Message(2, 3, ("c",)) in msgs
        assert Message(3, 2, ("d",)) in msgs

    def test_pairs_normalized_and_one_sided(self):
        from repro.machine.engine import exchange_messages

        # Pair given high-to-low; only the high side has data (virtual
        # elements need not be communicated, §5).
        msgs = exchange_messages([(3, 2)], {}, {3: ["x"]})
        assert msgs == [Message(3, 2, ("x",))]

    def test_empty_sides_skipped(self):
        from repro.machine.engine import exchange_messages

        assert exchange_messages([(0, 1)], {}, {}) == []
