"""Tests for fault-tolerant e-cube routing: detours, retries, stalls."""

import numpy as np
import pytest

from repro.machine import (
    Block,
    CubeNetwork,
    FaultPlan,
    LinkFault,
    NodeFailureError,
    NodeFault,
    RoutingStalledError,
    custom_machine,
)
from repro.machine.routing import RoutedTransfer, route_messages


def fresh(n=2, plan=None, **kw):
    return CubeNetwork(custom_machine(n, **kw), faults=plan)


class TestBaselineUnchanged:
    def test_empty_plan_keeps_exact_round_counts(self):
        """An attached-but-empty plan must not perturb the oblivious router."""
        net = fresh(n=3, plan=FaultPlan(3))
        net.place(0, Block("x", data=np.arange(3)))
        rounds = route_messages(net, [RoutedTransfer(0, 7, ("x",))])
        assert rounds == 3
        assert net.find_block("x") == 7
        assert net.stats.detour_hops == 0
        assert net.stats.retries == 0


class TestDetours:
    def test_detour_around_permanent_link(self):
        """0 -> 1 with link 0->1 dead misroutes 0 -> 2 -> 3 -> 1."""
        net = fresh(plan=FaultPlan.single_link(2, 0, 1))
        net.place(0, Block("x", data=np.arange(2)))
        rounds = route_messages(net, [RoutedTransfer(0, 1, ("x",))])
        assert net.find_block("x") == 1
        assert rounds == 3
        assert net.stats.detour_hops == 1
        assert (0, 2) in net.stats.link_elements
        assert (0, 1) not in net.stats.link_elements

    def test_detour_around_dead_intermediate_node(self):
        """0 -> 3 avoids dead node 1 by taking the dimension-1 hop first."""
        plan = FaultPlan(2, node_faults=(NodeFault(1),))
        net = fresh(plan=plan)
        net.place(0, Block("x", virtual_size=2))
        rounds = route_messages(net, [RoutedTransfer(0, 3, ("x",))])
        assert net.find_block("x") == 3
        assert rounds == 2  # the other profitable dimension was healthy
        assert net.stats.detour_hops == 0

    def test_budget_zero_forbids_misrouting(self):
        net = fresh(plan=FaultPlan.single_link(2, 0, 1))
        net.place(0, Block("x", virtual_size=2))
        with pytest.raises(RoutingStalledError, match="detour budget"):
            route_messages(
                net, [RoutedTransfer(0, 1, ("x",))], detour_budget=0
            )


class TestTransientFaults:
    def test_waits_out_a_transient_window(self):
        plan = FaultPlan(2, (LinkFault(0, 1, start=0, end=2),))
        net = fresh(plan=plan)
        net.place(0, Block("x", virtual_size=2))
        rounds = route_messages(net, [RoutedTransfer(0, 1, ("x",))])
        assert net.find_block("x") == 1
        assert rounds == 3  # two stall rounds, then the delivering hop
        assert net.stats.retries == 2
        assert net.stats.stall_phases == 2
        assert net.stats.detour_hops == 0

    def test_retry_limit_zero_detours_instead_of_waiting(self):
        plan = FaultPlan(2, (LinkFault(0, 1, start=0, end=50),))
        net = fresh(plan=plan)
        net.place(0, Block("x", virtual_size=2))
        rounds = route_messages(
            net, [RoutedTransfer(0, 1, ("x",))], retry_limit=0
        )
        assert net.find_block("x") == 1
        assert rounds == 3  # 0 -> 2 -> 3 -> 1, no waiting
        assert net.stats.detour_hops == 1


class TestStallDiagnosis:
    def test_permanent_wall_raises_instead_of_spinning(self):
        plan = FaultPlan(2, (LinkFault(0, 1), LinkFault(0, 2)))
        net = fresh(plan=plan)
        net.place(0, Block("x", virtual_size=2))
        with pytest.raises(RoutingStalledError):
            route_messages(net, [RoutedTransfer(0, 1, ("x",))])

    def test_round_cap(self):
        net = fresh(n=3)
        net.place(0, Block("x", virtual_size=2))
        with pytest.raises(RoutingStalledError, match="round cap"):
            route_messages(
                net, [RoutedTransfer(0, 7, ("x",))], max_rounds=2
            )

    def test_diagnosis_names_the_stuck_transfer(self):
        plan = FaultPlan(2, (LinkFault(0, 1), LinkFault(0, 2)))
        net = fresh(plan=plan)
        net.place(0, Block("stuck-key", virtual_size=2))
        with pytest.raises(RoutingStalledError, match="stuck-key"):
            route_messages(net, [RoutedTransfer(0, 1, ("stuck-key",))])

    def test_permanently_dead_endpoint_fails_fast(self):
        plan = FaultPlan(2, node_faults=(NodeFault(3),))
        net = fresh(plan=plan)
        net.place(0, Block("x", virtual_size=2))
        with pytest.raises(NodeFailureError):
            route_messages(net, [RoutedTransfer(0, 3, ("x",))])


class TestFaultedPermutation:
    def test_full_transpose_survives_single_dead_link(self):
        """Fig. 14b's permutation delivers on every single-link-dead cube."""
        n = 4
        half = n // 2
        mask = (1 << half) - 1
        for dead_src in (0, 5, 9):
            for d in range(n):
                dead_dst = dead_src ^ (1 << d)
                plan = FaultPlan.single_link(n, dead_src, dead_dst)
                net = fresh(n=n, plan=plan, tau=1.0, t_c=1.0)
                transfers = []
                for x in range(1 << n):
                    tr = ((x & mask) << half) | (x >> half)
                    if tr == x:
                        continue
                    net.place(x, Block(("blk", x), virtual_size=4))
                    transfers.append(RoutedTransfer(x, tr, (("blk", x),)))
                route_messages(net, transfers)
                for x in range(1 << n):
                    tr = ((x & mask) << half) | (x >> half)
                    if tr != x:
                        assert net.find_block(("blk", x)) == tr
