"""FaultPlan.from_spec validation: every error names the offending token."""

import pytest

from repro.machine.faults import FaultKind, FaultPlan


class TestWellFormedSpecs:
    def test_empty_spec_is_no_faults(self):
        assert FaultPlan.from_spec(4, "").is_empty

    def test_permanent_links_and_nodes(self):
        plan = FaultPlan.from_spec(4, "links=0-1+2-3,nodes=5")
        assert {(f.src, f.dst) for f in plan.link_faults} == {(0, 1), (2, 3)}
        assert [f.node for f in plan.node_faults] == [5]
        assert all(
            f.kind is FaultKind.PERMANENT
            for f in plan.link_faults + plan.node_faults
        )

    def test_transient_link_window(self):
        plan = FaultPlan.from_spec(4, "tlinks=0-1@2-9")
        (fault,) = plan.link_faults
        assert fault.kind is FaultKind.TRANSIENT
        assert (fault.start, fault.end) == (2, 9)

    def test_seeded_random_spec_is_deterministic(self):
        spec = "seed=3,link_rate=0.1,transient_rate=0.2,window=16"
        a = FaultPlan.from_spec(4, spec)
        b = FaultPlan.from_spec(4, spec)
        assert a.link_faults == b.link_faults

    def test_whitespace_is_tolerated(self):
        plan = FaultPlan.from_spec(4, " links = 0-1 , seed = 2 ")
        assert len(plan.link_faults) == 1


class TestMalformedItems:
    def test_item_without_equals_names_the_item(self):
        with pytest.raises(ValueError, match=r"'links' is not of the form"):
            FaultPlan.from_spec(4, "links")

    def test_unknown_key_is_named_and_alternatives_listed(self):
        with pytest.raises(
            ValueError, match=r"unknown fault spec key 'wibble'.*tlinks"
        ):
            FaultPlan.from_spec(4, "wibble=1")

    def test_non_integer_seed_names_key_and_value(self):
        with pytest.raises(ValueError, match=r"seed='x'.*not an integer"):
            FaultPlan.from_spec(4, "seed=x")

    def test_non_numeric_rate_names_key_and_value(self):
        with pytest.raises(
            ValueError, match=r"link_rate='fast'.*not a number"
        ):
            FaultPlan.from_spec(4, "link_rate=fast")

    def test_out_of_range_rate_names_key(self):
        with pytest.raises(
            ValueError, match=r"transient_rate='1.5'.*lie in \[0, 1\]"
        ):
            FaultPlan.from_spec(4, "transient_rate=1.5")


class TestMalformedTokens:
    def test_link_token_without_dash_is_named(self):
        with pytest.raises(
            ValueError, match=r"links token '01'.*form src-dst"
        ):
            FaultPlan.from_spec(4, "links=01")

    def test_node_outside_cube_names_token_and_range(self):
        with pytest.raises(
            ValueError, match=r"nodes token '16'.*valid ids are 0\.\.15"
        ):
            FaultPlan.from_spec(4, "nodes=16")

    def test_link_endpoint_outside_cube_names_token(self):
        with pytest.raises(
            ValueError, match=r"links token '0-99'.*node 99"
        ):
            FaultPlan.from_spec(4, "links=0-99")

    def test_non_edge_link_is_rejected(self):
        with pytest.raises(ValueError, match=r"not a cube edge"):
            FaultPlan.from_spec(4, "links=0-3")

    def test_tlink_without_window_is_named(self):
        with pytest.raises(
            ValueError, match=r"tlinks token '0-1'.*src-dst@start-end"
        ):
            FaultPlan.from_spec(4, "tlinks=0-1")

    def test_tlink_with_malformed_window_is_named(self):
        with pytest.raises(
            ValueError, match=r"tlinks token '0-1@7'.*start-end"
        ):
            FaultPlan.from_spec(4, "tlinks=0-1@7")

    def test_tlink_with_empty_window_is_inverted(self):
        with pytest.raises(
            ValueError, match=r"tlinks token '0-1@5-2'.*0 <= start < end"
        ):
            FaultPlan.from_spec(4, "tlinks=0-1@5-2")

    def test_second_bad_token_in_a_list_is_the_one_named(self):
        with pytest.raises(ValueError, match=r"links token '4-x'"):
            FaultPlan.from_spec(4, "links=0-1+4-x")


class TestTransientNodeTokens:
    def test_tnode_window(self):
        plan = FaultPlan.from_spec(4, "tnodes=5@2-9")
        (fault,) = plan.node_faults
        assert fault.kind is FaultKind.TRANSIENT
        assert (fault.node, fault.start, fault.end) == (5, 2, 9)

    def test_tnodes_combine_with_permanent_nodes(self):
        plan = FaultPlan.from_spec(4, "nodes=3,tnodes=5@0-4+6@2-8")
        kinds = {(f.node, f.kind) for f in plan.node_faults}
        assert kinds == {
            (3, FaultKind.PERMANENT),
            (5, FaultKind.TRANSIENT),
            (6, FaultKind.TRANSIENT),
        }

    def test_tnode_without_window_is_named(self):
        with pytest.raises(
            ValueError, match=r"tnodes token '5'.*node@start-end"
        ):
            FaultPlan.from_spec(4, "tnodes=5")

    def test_tnode_with_malformed_window_is_named(self):
        with pytest.raises(
            ValueError, match=r"tnodes token '5@7'.*start-end"
        ):
            FaultPlan.from_spec(4, "tnodes=5@7")

    def test_tnode_with_inverted_window_is_named(self):
        with pytest.raises(
            ValueError, match=r"tnodes token '5@9-2'.*0 <= start < end"
        ):
            FaultPlan.from_spec(4, "tnodes=5@9-2")

    def test_tnode_outside_cube_names_token_and_range(self):
        with pytest.raises(
            ValueError, match=r"tnodes token '16@0-4'.*valid ids are 0\.\.15"
        ):
            FaultPlan.from_spec(4, "tnodes=16@0-4")


class TestCorruptionTokens:
    def test_clink_window_arms_full_rate_corruption(self):
        plan = FaultPlan.from_spec(4, "clinks=0-1@0-16,seed=3")
        (fault,) = plan.corruption_faults
        assert (fault.src, fault.dst) == (0, 1)
        assert (fault.start, fault.end) == (0, 16)
        assert fault.rate == 1.0
        assert not plan.is_empty
        assert plan.corrupting_links_ever() == {(0, 1)}

    def test_corruption_does_not_poison_failstop_views(self):
        # Corrupting links stay schedulable: quarantine is reactive,
        # so the planner's proactive feasibility views exclude them.
        plan = FaultPlan.from_spec(4, "clinks=0-1@0-16")
        assert plan.faulted_links_ever() == set()
        assert plan.permanent_links() == set()

    def test_seeded_corrupt_rate_is_deterministic(self):
        spec = "seed=3,corrupt_rate=0.3"
        a = FaultPlan.from_spec(4, spec)
        b = FaultPlan.from_spec(4, spec)
        assert a.corruption_faults == b.corruption_faults
        assert a.corruption_faults

    def test_corrupt_rate_zero_leaves_existing_plans_unchanged(self):
        # The corruption draw must consume no RNG state when disabled,
        # so seeded plans from earlier releases replay byte-identically.
        spec = "seed=3,link_rate=0.1,transient_rate=0.2,window=16"
        a = FaultPlan.from_spec(4, spec)
        b = FaultPlan.from_spec(4, spec + ",corrupt_rate=0")
        assert a.link_faults == b.link_faults

    def test_clink_without_window_is_named(self):
        with pytest.raises(
            ValueError, match=r"clinks token '0-1'.*src-dst@start-end"
        ):
            FaultPlan.from_spec(4, "clinks=0-1")

    def test_clink_non_edge_is_rejected(self):
        with pytest.raises(ValueError, match=r"not a cube edge"):
            FaultPlan.from_spec(4, "clinks=0-3@0-4")

    def test_corrupt_rate_out_of_range_names_key(self):
        with pytest.raises(
            ValueError, match=r"corrupt_rate='1.5'.*lie in \[0, 1\]"
        ):
            FaultPlan.from_spec(4, "corrupt_rate=1.5")

    def test_unknown_key_message_lists_new_keys(self):
        with pytest.raises(
            ValueError, match=r"unknown fault spec key.*tnodes.*clinks"
        ):
            FaultPlan.from_spec(4, "wibble=1")
