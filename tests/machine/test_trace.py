"""Tests for the execution trace recorder."""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import Block, CubeNetwork, Message, TraceRecorder, custom_machine
from repro.transpose.two_dim import two_dim_transpose_spt


class TestTraceRecorder:
    def test_records_phases(self):
        net = CubeNetwork(custom_machine(2, tau=1.0, t_c=1.0))
        rec = TraceRecorder()
        net.observer = rec
        net.place(0, Block("a", virtual_size=3))
        net.execute_phase([Message(0, 1, ("a",))])
        assert len(rec.events) == 1
        e = rec.events[0]
        assert e.kind == "comm"
        assert e.transfers == ((0, 1, 3),)
        assert e.duration == pytest.approx(4.0)
        assert e.dimensions == (0,)
        assert e.total_elements == 3

    def test_records_local_work(self):
        net = CubeNetwork(custom_machine(2, t_copy=1.0))
        rec = TraceRecorder()
        net.observer = rec
        net.charge_copy({0: 5})
        net.execute_local(2.0)
        kinds = [e.kind for e in rec.events]
        assert kinds == ["local", "local"]

    def test_spt_trace_structure(self):
        """The step-by-step SPT trace shows each dimension in turn."""
        layout = pt.two_dim_cyclic(3, 3, 1, 1)
        A = np.arange(64, dtype=np.float64).reshape(8, 8)
        net = CubeNetwork(custom_machine(2))
        rec = TraceRecorder()
        net.observer = rec
        two_dim_transpose_spt(
            net, DistributedMatrix.from_global(A, layout), layout
        )
        comm = rec.comm_events
        assert len(comm) == 2  # two hops of the single (u0, v0) pair
        # Each hop uses exactly one dimension, and the two differ.
        assert all(len(e.dimensions) == 1 for e in comm)
        assert comm[0].dimensions != comm[1].dimensions

    def test_dimension_histogram(self):
        layout = pt.row_consecutive(3, 3, 2)
        from repro.transpose.one_dim import one_dim_transpose_exchange

        net = CubeNetwork(custom_machine(2))
        rec = TraceRecorder()
        net.observer = rec
        dm = DistributedMatrix.iota(layout).copy()
        dm.local_data = dm.local_data.astype(np.float64)
        one_dim_transpose_exchange(net, dm, pt.row_consecutive(3, 3, 2))
        hist = rec.dimension_histogram()
        assert set(hist) == {0, 1}  # both cube dimensions carried data
        assert sum(hist.values()) == net.stats.element_hops

    def test_busiest_phase_and_render(self):
        net = CubeNetwork(custom_machine(2, tau=1.0, t_c=1.0))
        rec = TraceRecorder()
        net.observer = rec
        net.place(0, Block("a", virtual_size=1))
        net.place(1, Block("b", virtual_size=50))
        net.execute_phase([Message(0, 1, ("a",))])
        net.execute_phase([Message(1, 3, ("b",))])
        assert rec.busiest_phase().index == 1
        text = rec.render()
        assert "phase" in text
        # header + two events + totals footer
        assert len(text.splitlines()) == 4
        assert text.splitlines()[-1].startswith("total")

    def test_busiest_requires_events(self):
        with pytest.raises(ValueError):
            TraceRecorder().busiest_phase()

    def test_render_truncation(self):
        net = CubeNetwork(custom_machine(1, tau=1.0, t_c=0.0))
        rec = TraceRecorder()
        net.observer = rec
        for i in range(6):
            net.place(0, Block(("x", i), virtual_size=1))
            net.execute_phase([Message(0, 1, (("x", i),))])
            net.place(1, Block(("y", i), virtual_size=1))
            net.execute_phase([Message(1, 0, (("y", i),))])
        text = rec.render(max_phases=4)
        assert "more" in text
        # The footer still accounts for every event past the truncation.
        footer = text.splitlines()[-1]
        assert footer.startswith("total")
        assert f"{len(rec.events)} event(s)" in footer
        assert f"{sum(e.total_elements for e in rec.events)} elements" in footer

    def test_local_events_have_no_synthetic_transfers(self):
        """on_local must not fabricate (0, 0, n) self-loop transfers."""
        net = CubeNetwork(custom_machine(2, t_copy=1.0))
        rec = TraceRecorder()
        net.observer = rec
        net.charge_copy({0: 7})
        (event,) = rec.events
        assert event.kind == "local"
        assert event.transfers == ()
        assert event.elements == 7
        assert event.total_elements == 7
        assert event.dimensions == ()  # no dimension_of_edge(0, 0) blow-up
        assert rec.dimension_histogram() == {}
