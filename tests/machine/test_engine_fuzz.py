"""Fuzz the engine's phase accounting against an independent reference.

Hypothesis generates random valid phases (random cube size, random
neighbour messages, random machine constants); the phase duration is
recomputed here with a deliberately different formulation, and the two
must agree exactly.  This pins down the cost semantics the whole
benchmark suite rests on.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Block, CubeNetwork, Message, custom_machine
from repro.machine.params import PortModel


@st.composite
def random_phase(draw):
    n = draw(st.integers(1, 4))
    N = 1 << n
    tau = draw(st.floats(0, 10, allow_nan=False, allow_infinity=False))
    t_c = draw(st.floats(0, 5, allow_nan=False, allow_infinity=False))
    B_m = draw(st.integers(1, 64))
    port = draw(st.sampled_from([PortModel.ONE_PORT, PortModel.N_PORT]))
    pipelined = draw(st.booleans())
    count = draw(st.integers(1, 12))
    msgs = []
    for i in range(count):
        src = draw(st.integers(0, N - 1))
        dim = draw(st.integers(0, n - 1))
        size = draw(st.integers(1, 200))
        msgs.append((src, src ^ (1 << dim), size))
    return n, tau, t_c, B_m, port, pipelined, msgs


def reference_duration(params, msgs):
    """Independent recomputation of the phase-time rule."""

    def cost(size):
        packets = 1 if params.pipelined else math.ceil(size / params.packet_capacity)
        return packets * params.tau + size * params.t_c

    link = {}
    for src, dst, size in msgs:
        link[(src, dst)] = link.get((src, dst), 0.0) + cost(size)
    if params.port_model is PortModel.N_PORT:
        return max(link.values())
    send, recv = {}, {}
    for (src, dst), c in link.items():
        send[src] = send.get(src, 0.0) + c
        recv[dst] = recv.get(dst, 0.0) + c
    return max(list(send.values()) + list(recv.values()))


@settings(max_examples=150, deadline=None)
@given(random_phase())
def test_phase_duration_matches_reference(case):
    n, tau, t_c, B_m, port, pipelined, msgs = case
    params = custom_machine(
        n,
        tau=tau,
        t_c=t_c,
        packet_capacity=B_m,
        port_model=port,
        pipelined=pipelined,
    )
    net = CubeNetwork(params)
    messages = []
    for i, (src, dst, size) in enumerate(msgs):
        key = ("fz", i)
        net.place(src, Block(key, virtual_size=size))
        messages.append(Message(src, dst, (key,)))
    duration = net.execute_phase(messages)
    assert duration == pytest.approx(reference_duration(params, msgs))
    # Accounting invariants.
    assert net.stats.element_hops == sum(size for _, _, size in msgs)
    assert net.stats.messages == len(msgs)
    assert net.time == pytest.approx(duration)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(1, 4),
    seed=st.integers(0, 2**16),
    count=st.integers(1, 10),
)
def test_router_fuzz_always_delivers(n, seed, count):
    """Random multi-hop transfers always arrive, whatever the conflicts."""
    from repro.machine.routing import RoutedTransfer, route_messages

    rng = np.random.default_rng(seed)
    N = 1 << n
    net = CubeNetwork(custom_machine(n))
    transfers = []
    for i in range(count):
        src = int(rng.integers(0, N))
        dst = int(rng.integers(0, N))
        if dst == src:
            dst = src ^ 1
        key = ("fz", i)
        net.place(src, Block(key, virtual_size=int(rng.integers(1, 50))))
        transfers.append(RoutedTransfer(src, dst, (key,)))
    route_messages(net, transfers)
    for i, t in enumerate(transfers):
        assert ("fz", i) in net.memory(t.dst)
