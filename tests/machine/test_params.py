"""Tests for the machine cost model and presets."""

import pytest

from repro.machine import MachineParams, PortModel, connection_machine, custom_machine, intel_ipsc
from repro.machine.presets import IPSC_PACKET_ELEMENTS, IPSC_T_C, IPSC_T_COPY, IPSC_TAU


class TestMachineParams:
    def test_num_procs(self):
        assert custom_machine(0).num_procs == 1
        assert custom_machine(6).num_procs == 64

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(n=-1, tau=1, t_c=1, packet_capacity=1)
        with pytest.raises(ValueError):
            MachineParams(n=2, tau=-1, t_c=1, packet_capacity=1)
        with pytest.raises(ValueError):
            MachineParams(n=2, tau=1, t_c=1, packet_capacity=0)

    def test_packets_for_rounds_up(self):
        m = custom_machine(3, packet_capacity=256)
        assert m.packets_for(1) == 1
        assert m.packets_for(256) == 1
        assert m.packets_for(257) == 2
        assert m.packets_for(1024) == 4

    def test_packets_for_rejects_empty(self):
        with pytest.raises(ValueError):
            custom_machine(3).packets_for(0)

    def test_pipelined_single_startup(self):
        m = custom_machine(3, packet_capacity=4, pipelined=True)
        assert m.packets_for(1000) == 1

    def test_message_time(self):
        m = custom_machine(3, tau=10.0, t_c=2.0, packet_capacity=5)
        # 12 elements -> 3 packets -> 3*10 + 12*2 = 54.
        assert m.message_time(12) == pytest.approx(54.0)

    def test_copy_time(self):
        m = custom_machine(3, t_copy=0.5)
        assert m.copy_time(10) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            m.copy_time(-1)

    def test_with_dimension_and_ports(self):
        m = intel_ipsc(4)
        m2 = m.with_dimension(6)
        assert m2.n == 6 and m2.tau == m.tau
        m3 = m.with_ports(PortModel.N_PORT)
        assert m3.port_model is PortModel.N_PORT


class TestPresets:
    def test_ipsc_constants_match_paper(self):
        m = intel_ipsc(5)
        assert m.tau == pytest.approx(5e-3)  # "tau ~ 5 msec"
        assert m.t_c == pytest.approx(4e-6)  # 1 us/byte, 4-byte elements
        assert m.packet_capacity == 256  # 1 KByte packets
        assert m.port_model is PortModel.ONE_PORT
        assert not m.pipelined

    def test_ipsc_copy_calibration(self):
        """Fig. 9: 1024 floats copy in ~37 ms; §8.1: the two-sided
        buffering break-even sits at ~64 elements."""
        m = intel_ipsc(5)
        assert m.copy_time(1024) == pytest.approx(37e-3)
        break_even = m.tau / (2 * m.t_copy)
        assert 60 <= break_even <= 75

    def test_cm_is_pipelined_n_port(self):
        m = connection_machine(10)
        assert m.port_model is PortModel.N_PORT
        assert m.pipelined
        assert m.packets_for(10**6) == 1

    def test_cm_much_faster_startup_than_ipsc(self):
        assert connection_machine(8).tau < intel_ipsc(8).tau / 50

    def test_preset_module_constants(self):
        assert IPSC_PACKET_ELEMENTS == 256
        assert IPSC_TAU / (2 * IPSC_T_COPY) == pytest.approx(69.2, abs=0.5)
        assert IPSC_T_C == pytest.approx(4e-6)
