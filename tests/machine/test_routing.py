"""Tests for the store-and-forward e-cube routing baseline."""

import numpy as np
import pytest

from repro.machine import Block, CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.machine.routing import RoutedTransfer, route_messages


def fresh(n=3, **kw):
    return CubeNetwork(custom_machine(n, **kw))


class TestRouting:
    def test_single_transfer_delivers(self):
        net = fresh()
        net.place(0, Block("x", data=np.arange(3)))
        rounds = route_messages(net, [RoutedTransfer(0, 7, ("x",))])
        assert rounds == 3  # Hamming(0, 7) hops
        assert net.find_block("x") == 7
        assert net.memory(7).get("x").data.tolist() == [0, 1, 2]

    def test_transfer_requires_distinct_endpoints(self):
        net = fresh()
        with pytest.raises(ValueError):
            route_messages(net, [RoutedTransfer(2, 2, ("x",))])

    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            RoutedTransfer(0, 1, ())

    def test_disjoint_transfers_share_rounds(self):
        net = fresh(tau=1.0, t_c=0.0)
        net.place(0, Block("a", virtual_size=1))
        net.place(7, Block("b", virtual_size=1))
        rounds = route_messages(
            net, [RoutedTransfer(0, 3, ("a",)), RoutedTransfer(7, 4, ("b",))]
        )
        assert rounds == 2
        assert net.time == pytest.approx(2.0)

    def test_conflicting_transfers_serialize(self):
        """Two messages that both need link 0->1 first queue behind each other."""
        net = fresh(tau=1.0, t_c=0.0)
        net.place(0, Block("a", virtual_size=1))
        net.place(0, Block("b", virtual_size=1))
        rounds = route_messages(
            net, [RoutedTransfer(0, 1, ("a",)), RoutedTransfer(0, 3, ("b",))]
        )
        # one-port: node 0 sends one message per round; 'b' then needs 2 hops.
        assert rounds == 3
        assert net.find_block("a") == 1
        assert net.find_block("b") == 3

    def test_n_port_allows_parallel_fanout(self):
        net = fresh(tau=1.0, t_c=0.0, port_model=PortModel.N_PORT)
        net.place(0, Block("a", virtual_size=1))
        net.place(0, Block("b", virtual_size=1))
        rounds = route_messages(
            net, [RoutedTransfer(0, 1, ("a",)), RoutedTransfer(0, 2, ("b",))]
        )
        assert rounds == 1

    def test_descending_route_order(self):
        net = fresh()
        net.place(0, Block("x", virtual_size=1))
        route_messages(net, [RoutedTransfer(0, 5, ("x",))], ascending=False)
        # Link loads reveal the path taken: 0 -> 4 -> 5.
        assert (0, 4) in net.stats.link_elements
        assert (4, 5) in net.stats.link_elements

    def test_full_transpose_permutation_delivers(self):
        """Route every node's block to its transpose partner (Fig. 14b style)."""
        n = 4
        net = fresh(n=n, tau=1.0, t_c=1.0)
        half = n // 2
        mask = (1 << half) - 1
        transfers = []
        for x in range(1 << n):
            net.place(x, Block(("blk", x), virtual_size=4))
            tr = ((x & mask) << half) | (x >> half)
            if tr != x:
                transfers.append(RoutedTransfer(x, tr, (("blk", x),)))
        route_messages(net, transfers)
        for x in range(1 << n):
            tr = ((x & mask) << half) | (x >> half)
            assert net.find_block(("blk", x)) == tr
