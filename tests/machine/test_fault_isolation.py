"""Regression: fault state must be isolated between concurrent machines.

A ``FaultPlan`` is a frozen dataclass, but every instance carries
per-instance lookup indexes (``_links_by_edge`` / ``_nodes_by_id`` —
plain dicts of lists built in ``__post_init__``).  A serving pool that
attached one parsed plan to many machines would share those containers
across worker threads.  :meth:`FaultPlan.fork` exists so each machine
gets an equal-by-value but storage-disjoint copy; these tests pin the
disjointness and the bit-identity of concurrent faulted runs against
solo runs of the same spec.
"""

import threading

from repro.machine import CubeNetwork
from repro.machine.faults import FaultPlan
from repro.machine.presets import connection_machine
from repro.plans.batch import resolve_problem
from repro.plans.recorder import synthetic_matrix
from repro.transpose.planner import transpose

SPEC = "seed=3,link_rate=0.05,transient_rate=0.6,window=4"


def _faulted_run(plan: FaultPlan, algorithm: str = "mpt") -> dict:
    params = connection_machine(4)
    before, after = resolve_problem(4, 256, "2d")
    net = CubeNetwork(params, faults=plan)
    result = transpose(net, synthetic_matrix(before), after, algorithm=algorithm)
    doc = result.stats.as_dict()
    doc["algorithm"] = result.algorithm
    doc["fallbacks"] = list(result.fallbacks)
    return doc


class TestFork:
    def test_fork_equal_by_value_disjoint_in_storage(self):
        plan = FaultPlan.from_spec(4, SPEC)
        copy = plan.fork()
        assert copy == plan
        assert copy is not plan
        assert copy._links_by_edge is not plan._links_by_edge
        assert copy._nodes_by_id is not plan._nodes_by_id
        for edge, faults in plan._links_by_edge.items():
            assert copy._links_by_edge[edge] is not faults
        for node, faults in plan._nodes_by_id.items():
            assert copy._nodes_by_id[node] is not faults

    def test_fork_of_empty_plan(self):
        plan = FaultPlan(3)
        assert plan.fork() == plan
        assert plan.fork().is_empty


class TestConcurrentIsolation:
    def test_concurrent_faulted_runs_bit_identical_to_solo(self):
        parsed = FaultPlan.from_spec(4, SPEC)
        solo = _faulted_run(parsed.fork())

        threads_n = 6
        results = {}
        errors = []
        barrier = threading.Barrier(threads_n)

        def worker(tid):
            try:
                barrier.wait()
                results[tid] = _faulted_run(parsed.fork())
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        assert len(results) == threads_n
        for doc in results.values():
            assert doc == solo
