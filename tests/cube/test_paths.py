"""Tests for the SPT/DPT/MPT path families of §6.1, including the paper's
worked example and the disjointness lemmas (Lemmas 9-14)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.bits import hamming
from repro.cube import paths as cp
from repro.cube.topology import is_edge, path_dims_to_nodes


def edges_of(src: int, dims: list[int]) -> list[tuple[int, int]]:
    nodes = path_dims_to_nodes(src, dims)
    return list(zip(nodes, nodes[1:]))


class TestTransposePartner:
    def test_swaps_halves(self):
        assert cp.transpose_partner(0b100100, 6) == 0b100100
        assert cp.transpose_partner(0b000111, 6) == 0b111000
        assert cp.transpose_partner(0b10010100, 8) == 0b01001001

    def test_is_involution(self):
        for x in range(64):
            assert cp.transpose_partner(cp.transpose_partner(x, 6), 6) == x

    def test_odd_cube_rejected(self):
        with pytest.raises(ValueError):
            cp.transpose_partner(0, 5)

    def test_hamming_relationship(self):
        for x in range(256):
            h = cp.transpose_hamming(x, 8)
            assert hamming(x, cp.transpose_partner(x, 8)) == 2 * h


class TestPaperExample:
    """x = (1001 || 0100), section 6.1.3: the six published paths."""

    X = 0b10010100
    N = 8

    def test_h_and_partner(self):
        assert cp.transpose_hamming(self.X, self.N) == 3
        assert cp.transpose_partner(self.X, self.N) == 0b01001001

    def test_all_six_paths(self):
        expected = {
            0: [7, 3, 6, 2, 4, 0],
            1: [4, 0, 7, 3, 6, 2],
            2: [6, 2, 4, 0, 7, 3],
            3: [3, 7, 2, 6, 0, 4],
            4: [0, 4, 3, 7, 2, 6],
            5: [2, 6, 0, 4, 3, 7],
        }
        for p, dims in expected.items():
            assert cp.mpt_path_dims(self.X, self.N, p) == dims, f"path {p}"

    def test_path0_node_sequence(self):
        nodes = path_dims_to_nodes(self.X, cp.mpt_path_dims(self.X, self.N, 0))
        assert nodes == [
            0b10010100,
            0b00010100,
            0b00011100,
            0b01011100,
            0b01011000,
            0b01001000,
            0b01001001,
        ]

    def test_spt_is_path_zero(self):
        assert cp.spt_path(self.X, self.N) == cp.mpt_path_dims(self.X, self.N, 0)

    def test_dpt_is_paths_zero_and_h(self):
        assert cp.dpt_paths(self.X, self.N) == [
            cp.mpt_path_dims(self.X, self.N, 0),
            cp.mpt_path_dims(self.X, self.N, 3),
        ]


class TestPathStructure:
    @given(st.integers(0, 255))
    def test_paths_reach_partner(self, x):
        n = 8
        tr = cp.transpose_partner(x, n)
        for dims in cp.mpt_paths(x, n):
            nodes = path_dims_to_nodes(x, dims)
            assert nodes[-1] == tr
            for a, b in zip(nodes, nodes[1:]):
                assert is_edge(a, b)

    @given(st.integers(0, 255))
    def test_lemma9_paths_of_one_node_edge_disjoint(self, x):
        n = 8
        all_edges: set[tuple[int, int]] = set()
        count = 0
        for dims in cp.mpt_paths(x, n):
            for e in edges_of(x, dims):
                all_edges.add(e)
                count += 1
        assert len(all_edges) == count

    @given(st.integers(0, 255))
    def test_path_lengths(self, x):
        n = 8
        h = cp.transpose_hamming(x, n)
        for dims in cp.mpt_paths(x, n):
            assert len(dims) == 2 * h

    def test_diagonal_node_has_no_paths(self):
        assert cp.mpt_paths(0b101101, 6) == []
        assert cp.spt_path(0b101101, 6) == []
        assert cp.dpt_paths(0b101101, 6) == []


class TestDisjointnessLemmas:
    N = 6

    def test_lemma13_distinct_classes_share_no_edges(self):
        """If x' !~_s x'' then Paths(x') and Paths(x'') are edge-disjoint."""
        n = self.N
        by_class: dict[tuple[int, int], set[tuple[int, int]]] = {}
        for x in range(1 << n):
            key = cp.same_set_relation(x, n)
            acc = by_class.setdefault(key, set())
            for dims in cp.mpt_paths(x, n):
                acc |= set(edges_of(x, dims))
        keys = list(by_class)
        for i in range(len(keys)):
            for j in range(i + 1, len(keys)):
                assert not (by_class[keys[i]] & by_class[keys[j]])

    def test_lemma14_two_two_h_disjoint_schedule(self):
        """Packets injected on every path of every node during cycles 1 and 2
        never contend for a directed edge in the same cycle."""
        n = self.N
        # occupancy[cycle] = set of directed edges in use that cycle
        occupancy: dict[int, set[tuple[int, int]]] = {}
        for x in range(1 << n):
            h = cp.transpose_hamming(x, n)
            if h == 0:
                continue
            for dims in cp.mpt_paths(x, n):
                nodes = path_dims_to_nodes(x, dims)
                for inject in (0, 1):  # cycles 1 and 2 of the period
                    for hop, e in enumerate(zip(nodes, nodes[1:])):
                        cycle = inject + hop
                        used = occupancy.setdefault(cycle, set())
                        assert e not in used, (
                            f"edge {e} reused in cycle {cycle}"
                        )
                        used.add(e)

    def test_even_nodes_stay_in_class(self):
        """Corollary 8: nodes at even distance along a path are ~_s x."""
        n = self.N
        for x in range(1 << n):
            key = cp.same_set_relation(x, n)
            for dims in cp.mpt_paths(x, n):
                nodes = path_dims_to_nodes(x, dims)
                for e in range(2, len(nodes), 2):
                    assert cp.same_set_relation(nodes[e], n) == key

    def test_odd_nodes_leave_antidiagonal(self):
        """Lemma 10: odd-distance nodes are off the anti-diagonal class."""
        n = self.N
        for x in range(1 << n):
            ad = cp.anti_diagonal_class(x, n)
            for dims in cp.mpt_paths(x, n):
                nodes = path_dims_to_nodes(x, dims)
                for e in range(1, len(nodes), 2):
                    assert cp.anti_diagonal_class(nodes[e], n) != ad


class TestItineraries:
    """Unit tests for the synchronized (padded) SPT/DPT schedules."""

    def test_spt_itinerary_length_and_padding(self):
        from repro.cube.paths import spt_itinerary

        n = 6
        for x in range(1 << n):
            slots = spt_itinerary(x, n)
            assert len(slots) == n
            active = [d for d in slots if d is not None]
            assert active == cp.spt_path(x, n)

    def test_spt_itinerary_slot_positions(self):
        """Slot 2i holds alpha_{H-1-i}'s global position: every node is
        either on-dimension or idle at each ordinal."""
        from repro.cube.paths import spt_itinerary

        n = 6
        half = n // 2
        order = [d for k in range(half - 1, -1, -1) for d in (k + half, k)]
        for x in range(1 << n):
            for s, d in enumerate(spt_itinerary(x, n)):
                assert d is None or d == order[s]

    def test_dpt_itineraries_pairwise_permuted(self):
        from repro.cube.paths import dpt_itineraries

        n = 6
        for x in range(1 << n):
            its = dpt_itineraries(x, n)
            if cp.transpose_hamming(x, n) == 0:
                assert its == []
                continue
            first, second = its
            # The second path permutes each (row, column) pair.
            for s in range(0, n, 2):
                assert (first[s], first[s + 1]) == (second[s + 1], second[s])

    def test_diagonal_nodes_idle_everywhere(self):
        from repro.cube.paths import spt_itinerary

        assert spt_itinerary(0b101101, 6) == [None] * 6
