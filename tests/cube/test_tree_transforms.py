"""Tests for SpanningTree transformations (Definitions 8-9, §3.2)."""

import pytest

from repro.codes.bits import rotate_left
from repro.cube.trees import spanning_binomial_tree


class TestTranslate:
    def test_translation_relabels_by_xor(self):
        """§3.2: the tree rooted at s is the XOR-translation of the tree
        rooted at 0."""
        n = 4
        base = spanning_binomial_tree(n)
        for s in (0b0101, 0b1111):
            t = base.translate(s)
            assert t.root == s
            for x in range(1 << n):
                assert t.parent[x ^ s] == base.parent[x] ^ s

    def test_translate_matches_rooted_constructor(self):
        n = 4
        s = 0b1010
        assert (
            spanning_binomial_tree(n).translate(s).parent
            == spanning_binomial_tree(n, root=s).parent
        )

    def test_double_translation_is_identity(self):
        t = spanning_binomial_tree(3)
        assert t.translate(5).translate(5).parent == t.parent


class TestRotate:
    def test_rotate_relabels_by_shuffle(self):
        n = 4
        base = spanning_binomial_tree(n)
        rot = base.rotate(1)
        for x in range(1 << n):
            assert rot.parent[rotate_left(x, 1, n)] == rotate_left(
                base.parent[x], 1, n
            )

    def test_rotate_matches_rotation_constructor(self):
        n = 4
        assert (
            spanning_binomial_tree(n).rotate(2).parent
            == spanning_binomial_tree(n, rotation=2).parent
        )

    def test_full_rotation_is_identity(self):
        t = spanning_binomial_tree(3)
        assert t.rotate(3).parent == t.parent

    def test_rotation_preserves_depth_multiset(self):
        n = 4
        base = spanning_binomial_tree(n)
        rot = base.rotate(1)
        base_depths = sorted(base.depth(x) for x in range(16))
        rot_depths = sorted(rot.depth(x) for x in range(16))
        assert base_depths == rot_depths


class TestQueries:
    def test_subtree_nodes_partition(self):
        t = spanning_binomial_tree(4)
        seen = [t.root]
        for c in t.children(t.root):
            seen += t.subtree_nodes(c)
        assert sorted(seen) == list(range(16))

    def test_height(self):
        assert spanning_binomial_tree(5).height() == 5

    def test_port_of_root_child(self):
        t = spanning_binomial_tree(3)
        assert sorted(t.port_of_root_child(c) for c in t.children(0)) == [0, 1, 2]
        with pytest.raises(ValueError):
            t.port_of_root_child(0b011)  # not a root child

    def test_reflection_relationship(self):
        """Definition 9: the reflected SBT is the bit-reversal image."""
        from repro.codes.bits import bit_reverse

        n = 4
        plain = spanning_binomial_tree(n)
        refl = spanning_binomial_tree(n, reflected=True)
        for x in range(1 << n):
            assert refl.parent[bit_reverse(x, n)] == bit_reverse(
                plain.parent[x], n
            )
