"""Tests for spanning binomial trees and spanning balanced n-trees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.bits import bit_count, hamming, rotate_left
from repro.cube import trees
from repro.cube.topology import num_nodes


class TestSpanningBinomialTree:
    def test_root_children_are_all_dimensions(self):
        t = trees.spanning_binomial_tree(4)
        assert sorted(t.children(0)) == [1, 2, 4, 8]

    def test_depth_equals_popcount(self):
        t = trees.spanning_binomial_tree(5)
        for x in range(32):
            assert t.depth(x) == bit_count(x)

    def test_subtree_sizes_are_binomial(self):
        """Plain SBT: nodes descend from the child at their lowest set bit,
        so the subtree behind dimension d holds 2^(n-1-d) nodes."""
        n = 5
        t = trees.spanning_binomial_tree(n)
        sizes = t.root_subtree_sizes()
        assert sizes == {d: 2 ** (n - 1 - d) for d in range(n)}

    def test_reflected_subtree_sizes(self):
        n = 5
        t = trees.spanning_binomial_tree(n, reflected=True)
        sizes = t.root_subtree_sizes()
        assert sizes == {d: 2**d for d in range(n)}

    @given(st.integers(1, 6), st.data())
    def test_translation_preserves_shape(self, n, data):
        root = data.draw(st.integers(0, 2**n - 1))
        t = trees.spanning_binomial_tree(n, root=root)
        base = trees.spanning_binomial_tree(n)
        for x in range(2**n):
            assert t.depth(x) == base.depth(x ^ root)

    def test_rotation_is_isomorphic(self):
        n = 4
        base = trees.spanning_binomial_tree(n)
        rot = trees.spanning_binomial_tree(n, rotation=2)
        for x in range(16):
            assert rot.depth(rotate_left(x, 2, n)) == base.depth(x)

    def test_rotated_trees_have_distinct_root_edges(self):
        """The n rotated SBTs give the root n distinct heaviest ports."""
        n = 4
        heavy_ports = set()
        for k in range(n):
            t = trees.spanning_binomial_tree(n, rotation=k)
            sizes = t.root_subtree_sizes()
            heavy_ports.add(max(sizes, key=sizes.get))
        assert len(heavy_ports) == n

    def test_height_is_n(self):
        for n in range(1, 7):
            assert trees.spanning_binomial_tree(n).height() == n

    def test_path_from_root(self):
        t = trees.spanning_binomial_tree(4)
        assert t.path_from_root(0b1010) == [0, 0b0010, 0b1010]

    def test_bad_root_rejected(self):
        with pytest.raises(ValueError):
            trees.spanning_binomial_tree(3, root=8)


class TestSpanningTreeValidation:
    def test_non_cube_edge_rejected(self):
        # parent of 3 is 0: not a cube edge.
        with pytest.raises(ValueError):
            trees.SpanningTree(2, 0, (0, 0, 0, 0))

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            trees.SpanningTree(2, 0, (0, 0, 0))

    def test_root_not_self_parent_rejected(self):
        with pytest.raises(ValueError):
            trees.SpanningTree(1, 0, (1, 0))


class TestRotationBase:
    def test_examples(self):
        assert trees.rotation_base(0b100, 3) == 2
        assert trees.rotation_base(0b110, 3) == 1
        assert trees.rotation_base(0b101, 3) == 2
        assert trees.rotation_base(0b001, 3) == 0

    @given(st.integers(1, 8), st.data())
    def test_bit_base_is_one(self, n, data):
        v = data.draw(st.integers(1, 2**n - 1))
        b = trees.rotation_base(v, n)
        assert (v >> b) & 1 == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            trees.rotation_base(0, 3)


class TestSbntRoute:
    @given(st.integers(1, 8), st.data())
    def test_route_crosses_exactly_set_bits(self, n, data):
        rel = data.draw(st.integers(1, 2**n - 1))
        dims = trees.sbnt_route_dims(rel, n)
        assert sorted(dims) == [d for d in range(n) if (rel >> d) & 1]

    @given(st.integers(1, 8), st.data())
    def test_route_is_shortest(self, n, data):
        rel = data.draw(st.integers(1, 2**n - 1))
        assert len(trees.sbnt_route_dims(rel, n)) == bit_count(rel)

    def test_route_order_is_cyclic_ascending_from_base(self):
        # rel = 0b1011, base 3 -> order 3, 0, 1.
        assert trees.sbnt_route_dims(0b1011, 4) == [3, 0, 1]
        # rel = 0b101, base 2 -> order 2, 0.
        assert trees.sbnt_route_dims(0b101, 3) == [2, 0]


class TestSpanningBalancedTree:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_is_spanning(self, n):
        t = trees.spanning_balanced_tree(n)
        assert sorted(t.subtree_nodes(0)) == list(range(num_nodes(n)))

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_depth_equals_distance(self, n):
        """SBnT routes are shortest paths, so tree depth = Hamming distance."""
        t = trees.spanning_balanced_tree(n)
        for x in range(num_nodes(n)):
            assert t.depth(x) == bit_count(x)

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_root_subtrees_are_balanced(self, n):
        """Subtree sizes sum to N - 1 and stay near (N - 1)/n."""
        t = trees.spanning_balanced_tree(n)
        sizes = t.root_subtree_sizes()
        total = num_nodes(n) - 1
        assert sum(sizes.values()) == total
        expected = total / n
        for s in sizes.values():
            assert s <= 2 * expected + 1
            assert s >= expected / 2 - 1

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_tree_path_matches_route(self, n):
        """The route of every node is its path down the SBnT."""
        t = trees.spanning_balanced_tree(n)
        for x in range(1, num_nodes(n)):
            dims = trees.sbnt_route_dims(x, n)
            nodes = [0]
            cur = 0
            for d in dims:
                cur ^= 1 << d
                nodes.append(cur)
            assert t.path_from_root(x) == nodes

    def test_translated_root(self):
        n = 4
        root = 0b1010
        t = trees.spanning_balanced_tree(n, root=root)
        assert sorted(t.subtree_nodes(root)) == list(range(16))
        for x in range(16):
            assert t.depth(x) == hamming(x, root)
