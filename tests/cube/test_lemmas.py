"""Direct checks of the paper's small lemmas and corollaries that are
not already embedded in an algorithm test."""

import numpy as np
import pytest

from repro.codes.bits import hamming
from repro.codes.shuffle import max_shuffle_hamming
from repro.cube.paths import transpose_partner
from repro.cube.topology import diameter_pairs, distance


class TestLemma5:
    """p = q, u and v equal except in one bit: Hamming((u||v),(v||u)) = 2."""

    @pytest.mark.parametrize("q", [2, 3, 4])
    def test_single_differing_bit(self, q):
        for u in range(1 << q):
            for i in range(q):
                v = u ^ (1 << i)
                w1 = (u << q) | v
                w2 = (v << q) | u
                assert hamming(w1, w2) == 2


class TestCorollary4:
    """With one element per node, the transpose needs m/2 exchanges, each
    over distance 2 — and that matches the Corollary 2 lower bound."""

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_exchange_count_and_distance(self, q):
        m = 2 * q
        # Each exchange pairs (u_i, v_i): m/2 pairs, each moving data
        # across exactly two dimensions (Lemma 5).
        assert m // 2 == q
        # Lower bound: max_w Hamming(w, sh^{m/2} w) = m (Corollary 2),
        # i.e. some element must cross all m dimensions; q exchanges of
        # distance 2 provide exactly 2q = m crossings.
        assert max_shuffle_hamming(m, m // 2) == m


class TestCorollary5:
    """1D partitioning with |R_b| = |R_a|: some element traverses all
    |R_b| dimensions — the transpose partner of some node is antipodal
    within the processor subspace."""

    def test_exists_full_distance_element(self):
        from repro.layout import partition as pt

        p = q = 4
        n = 3
        before = pt.row_consecutive(p, q, n)
        after = pt.row_consecutive(q, p, n)
        w = np.arange(1 << (p + q), dtype=np.int64)
        src = before.owner_array(w)
        u, v = w >> q, w & ((1 << q) - 1)
        dst = after.owner_array((v << p) | u)
        assert int(np.max([distance(int(a), int(b)) for a, b in zip(src, dst)])) == n


class TestAntipodalTranspose:
    """The anti-diagonal nodes of the 2D layout are at distance n from
    their partner (the start-up lower bound of Theorem 3)."""

    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_antidiagonal_at_full_distance(self, n):
        half = n // 2
        mask = (1 << half) - 1
        full = [
            x
            for x in range(1 << n)
            if distance(x, transpose_partner(x, n)) == n
        ]
        # Exactly the nodes with x_c = complement of x_r.
        expected = [
            (r << half) | (~r & mask) for r in range(1 << half)
        ]
        assert sorted(full) == sorted(expected)

    def test_diameter_pairs_helper(self):
        pairs = diameter_pairs(3)
        assert len(pairs) == 8
        for a, b in pairs:
            assert distance(a, b) == 3
