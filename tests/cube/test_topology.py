"""Tests for Boolean n-cube topology primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.bits import hamming
from repro.cube import topology


class TestNeighbors:
    def test_node_count(self):
        assert topology.num_nodes(0) == 1
        assert topology.num_nodes(6) == 64

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            topology.num_nodes(-1)

    def test_neighbor_count_and_distance(self):
        n = 5
        for x in (0, 7, 31):
            nbrs = topology.neighbors(x, n)
            assert len(nbrs) == n
            assert all(hamming(x, y) == 1 for y in nbrs)
            assert len(set(nbrs)) == n

    def test_node_outside_cube_rejected(self):
        with pytest.raises(ValueError):
            topology.neighbors(8, 3)

    def test_is_edge(self):
        assert topology.is_edge(0b000, 0b100)
        assert not topology.is_edge(0b000, 0b110)
        assert not topology.is_edge(5, 5)

    def test_dimension_of_edge(self):
        assert topology.dimension_of_edge(0b0010, 0b1010) == 3
        with pytest.raises(ValueError):
            topology.dimension_of_edge(0, 3)


class TestEcubeRoute:
    def test_route_endpoints_and_steps(self):
        route = topology.ecube_route(0b000, 0b101, 3)
        assert route[0] == 0b000
        assert route[-1] == 0b101
        assert route == [0b000, 0b001, 0b101]

    def test_descending_order(self):
        route = topology.ecube_route(0b000, 0b101, 3, ascending=False)
        assert route == [0b000, 0b100, 0b101]

    def test_trivial_route(self):
        assert topology.ecube_route(6, 6, 3) == [6]

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_route_length_is_hamming_distance(self, src, dst):
        route = topology.ecube_route(src, dst, 6)
        assert len(route) - 1 == hamming(src, dst)
        for a, b in zip(route, route[1:]):
            assert topology.is_edge(a, b)


class TestDisjointPaths:
    @given(st.integers(0, 31), st.integers(0, 31))
    def test_saad_schultz_structure(self, src, dst):
        """n paths: H of length H, n-H of length H+2 (§2)."""
        n = 5
        if src == dst:
            return
        h = hamming(src, dst)
        paths = topology.disjoint_paths(src, dst, n)
        assert len(paths) == n
        lengths = sorted(len(p) - 1 for p in paths)
        assert lengths == [h] * h + [h + 2] * (n - h)

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_paths_valid_and_interior_disjoint(self, src, dst):
        n = 5
        if src == dst:
            return
        paths = topology.disjoint_paths(src, dst, n)
        interiors = []
        for p in paths:
            assert p[0] == src and p[-1] == dst
            for a, b in zip(p, p[1:]):
                assert topology.is_edge(a, b)
            interiors.append(set(p[1:-1]))
        for i in range(len(interiors)):
            for j in range(i + 1, len(interiors)):
                assert not (interiors[i] & interiors[j])

    def test_same_endpoints_rejected(self):
        with pytest.raises(ValueError):
            topology.disjoint_paths(3, 3, 4)


class TestSubcubes:
    def test_full_cube(self):
        assert topology.subcube_nodes(3, {}) == list(range(8))

    def test_pinned_dimension(self):
        assert topology.subcube_nodes(3, {2: 1}) == [4, 5, 6, 7]
        assert topology.subcube_nodes(3, {0: 0}) == [0, 2, 4, 6]

    def test_two_pins(self):
        assert topology.subcube_nodes(3, {0: 1, 2: 0}) == [1, 3]

    def test_invalid_pin_rejected(self):
        with pytest.raises(ValueError):
            topology.subcube_nodes(3, {5: 0})
        with pytest.raises(ValueError):
            topology.subcube_nodes(3, {0: 2})

    def test_subcubes_partition_the_cube(self):
        seen = []
        for v0 in (0, 1):
            for v1 in (0, 1):
                seen += topology.subcube_nodes(4, {1: v0, 3: v1})
        assert sorted(seen) == list(range(16))
