"""Tests that the layout constructors match the paper's Definitions 6-7
and Tables 1-2 (ownership formulas for cyclic/consecutive/combined)."""

import pytest

from repro.layout import partition as pt


P_BITS, Q_BITS = 4, 3
P, Q = 1 << P_BITS, 1 << Q_BITS


def w_of(u: int, v: int) -> int:
    return (u << Q_BITS) | v


class TestOneDimensional:
    def test_row_cyclic_matches_mod(self):
        n = 2
        lay = pt.row_cyclic(P_BITS, Q_BITS, n)
        for u in range(P):
            for v in range(Q):
                assert lay.owner(w_of(u, v)) == u % (1 << n)

    def test_row_consecutive_matches_floor(self):
        n = 2
        lay = pt.row_consecutive(P_BITS, Q_BITS, n)
        rows_per = P // (1 << n)
        for u in range(P):
            for v in range(Q):
                assert lay.owner(w_of(u, v)) == u // rows_per

    def test_column_cyclic_matches_mod(self):
        n = 2
        lay = pt.column_cyclic(P_BITS, Q_BITS, n)
        for u in range(P):
            for v in range(Q):
                assert lay.owner(w_of(u, v)) == v % (1 << n)

    def test_column_consecutive_matches_floor(self):
        n = 2
        lay = pt.column_consecutive(P_BITS, Q_BITS, n)
        cols_per = Q // (1 << n)
        for u in range(P):
            for v in range(Q):
                assert lay.owner(w_of(u, v)) == v // cols_per

    def test_too_many_partitions_rejected(self):
        with pytest.raises(ValueError):
            pt.row_cyclic(2, 4, 3)
        with pytest.raises(ValueError):
            pt.column_consecutive(4, 2, 3)

    def test_full_partitioning_one_row_each(self):
        lay = pt.row_consecutive(P_BITS, Q_BITS, P_BITS)
        assert lay.local_size == Q
        for u in range(P):
            assert lay.owner(w_of(u, 0)) == u


class TestTwoDimensional:
    def test_cyclic_matches_definition(self):
        nr, nc = 2, 1
        lay = pt.two_dim_cyclic(P_BITS, Q_BITS, nr, nc)
        for u in range(P):
            for v in range(Q):
                expected = ((u % (1 << nr)) << nc) | (v % (1 << nc))
                assert lay.owner(w_of(u, v)) == expected

    def test_consecutive_matches_definition(self):
        nr, nc = 2, 2
        lay = pt.two_dim_consecutive(P_BITS, Q_BITS, nr, nc)
        rows_per = P // (1 << nr)
        cols_per = Q // (1 << nc)
        for u in range(P):
            for v in range(Q):
                expected = ((u // rows_per) << nc) | (v // cols_per)
                assert lay.owner(w_of(u, v)) == expected

    def test_mixed_consecutive_rows_cyclic_columns(self):
        nr, nc = 1, 2
        lay = pt.two_dim_mixed(P_BITS, Q_BITS, nr, nc)
        rows_per = P // (1 << nr)
        for u in range(P):
            for v in range(Q):
                expected = ((u // rows_per) << nc) | (v % (1 << nc))
                assert lay.owner(w_of(u, v)) == expected

    def test_mixed_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            pt.two_dim_mixed(3, 3, 1, 1, rows="diagonal")
        with pytest.raises(ValueError):
            pt.two_dim_mixed(3, 3, 1, 1, cols="diagonal")

    def test_local_size(self):
        lay = pt.two_dim_cyclic(P_BITS, Q_BITS, 2, 1)
        assert lay.local_size == (P * Q) // 8


class TestCombined:
    def test_offset_zero_is_consecutive(self):
        a = pt.combined_contiguous(P_BITS, Q_BITS, 2, offset=0, axis="row")
        b = pt.row_consecutive(P_BITS, Q_BITS, 2)
        assert a.proc_dims == b.proc_dims

    def test_max_offset_is_cyclic(self):
        a = pt.combined_contiguous(P_BITS, Q_BITS, 2, offset=P_BITS - 2, axis="row")
        b = pt.row_cyclic(P_BITS, Q_BITS, 2)
        assert a.proc_dims == b.proc_dims

    def test_interior_offset_field(self):
        lay = pt.combined_contiguous(P_BITS, Q_BITS, 2, offset=1, axis="row")
        # Field is (u_{p-2} u_{p-3}) = element dims (q + 2, q + 1).
        assert lay.proc_dims == (Q_BITS + 2, Q_BITS + 1)

    def test_column_axis(self):
        lay = pt.combined_contiguous(P_BITS, Q_BITS, 2, offset=1, axis="column")
        assert lay.proc_dims == (1, 0)

    def test_out_of_range_offset_rejected(self):
        with pytest.raises(ValueError):
            pt.combined_contiguous(P_BITS, Q_BITS, 2, offset=3, axis="row")
        with pytest.raises(ValueError):
            pt.combined_contiguous(P_BITS, Q_BITS, 2, offset=-1, axis="row")
        with pytest.raises(ValueError):
            pt.combined_contiguous(P_BITS, Q_BITS, 2, offset=0, axis="banana")

    def test_blocks_assigned_cyclically_above_field(self):
        """Bits above the field act cyclically: consecutive super-blocks
        wrap around the processors."""
        lay = pt.combined_contiguous(P_BITS, Q_BITS, 1, offset=1, axis="row")
        # Field is u_2; u = 0..3 -> owner of u_2: 0,0,0,0 then u=4..7 -> 1...
        owners = [lay.owner(w_of(u, 0)) for u in range(P)]
        assert owners == [0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1]
