"""Tests for the Figure 1/2 renderer and the vectorized inverse mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Layout, ProcField
from repro.layout import partition as pt


class TestAddressOfArray:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: pt.row_cyclic(3, 4, 2),
            lambda: pt.two_dim_consecutive(3, 4, 2, 2, gray=True),
            lambda: Layout(3, 4, (ProcField((6, 2), gray=True), ProcField((4, 0)))),
        ],
    )
    def test_matches_scalar(self, make):
        lay = make()
        for proc in range(lay.num_procs):
            offsets = np.arange(lay.local_size)
            got = lay.address_of_array(proc, offsets)
            expected = [lay.address_of(proc, int(j)) for j in offsets]
            assert got.tolist() == expected

    def test_broadcasts(self):
        lay = pt.row_cyclic(2, 2, 1)
        procs = np.array([[0], [1]])
        offsets = np.arange(lay.local_size)
        got = lay.address_of_array(procs, offsets)
        assert got.shape == (2, lay.local_size)

    def test_rejects_out_of_range(self):
        lay = pt.row_cyclic(2, 2, 1)
        with pytest.raises(ValueError):
            lay.address_of_array(2, 0)
        with pytest.raises(ValueError):
            lay.address_of_array(0, lay.local_size)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 4), st.data())
    def test_inverse_of_owner_offset(self, p, q, data):
        n = data.draw(st.integers(0, min(p, 3)))
        lay = pt.row_consecutive(p, q, n, gray=data.draw(st.booleans()))
        w = np.arange(1 << (p + q), dtype=np.int64)
        back = lay.address_of_array(lay.owner_array(w), lay.offset_array(w))
        assert np.array_equal(back, w)


class TestRenderAssignment:
    def test_figure1_cyclic_stripes(self):
        """Figure 1, cyclic: row u belongs to processor u mod N."""
        lay = pt.row_cyclic(3, 2, 2)
        lines = lay.render_assignment().splitlines()
        assert lines[0].split() == ["P0"] * 4
        assert lines[1].split() == ["P1"] * 4
        assert lines[4].split() == ["P0"] * 4  # wraps around

    def test_figure1_consecutive_blocks(self):
        lay = pt.row_consecutive(3, 2, 2)
        lines = lay.render_assignment().splitlines()
        assert lines[0].split() == ["P0"] * 4
        assert lines[1].split() == ["P0"] * 4
        assert lines[2].split() == ["P1"] * 4

    def test_figure2_two_dim_cyclic(self):
        """Figure 2, cyclic 2D: the P0..P8-style repeating tile (here 2x2)."""
        lay = pt.two_dim_cyclic(2, 2, 1, 1)
        lines = lay.render_assignment().splitlines()
        assert lines[0].split() == ["P0", "P1", "P0", "P1"]
        assert lines[1].split() == ["P2", "P3", "P2", "P3"]
        assert lines[2].split() == ["P0", "P1", "P0", "P1"]

    def test_figure2_two_dim_consecutive(self):
        lay = pt.two_dim_consecutive(2, 2, 1, 1)
        lines = lay.render_assignment().splitlines()
        assert lines[0].split() == ["P0", "P0", "P1", "P1"]
        assert lines[3].split() == ["P2", "P2", "P3", "P3"]

    def test_truncation(self):
        lay = pt.row_cyclic(6, 6, 2)
        text = lay.render_assignment(max_rows=4, max_cols=4)
        lines = text.splitlines()
        assert len(lines) == 5  # 4 rows + "..."
        assert lines[-1] == "..."
        assert lines[0].endswith("...")
