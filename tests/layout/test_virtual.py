"""Tests for virtual-element squaring (Definition 2)."""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.layout.virtual import (
    extend_columns,
    extend_rows,
    padding_overhead,
    restrict_to,
    square_up,
)
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.two_dim import two_dim_transpose_mpt, two_dim_transpose_spt


def rect_matrix(p, q, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10**6, size=(1 << p, 1 << q)).astype(np.float64)


class TestExtend:
    def test_extend_columns_shifts_row_dims(self):
        lay = pt.row_consecutive(4, 2, 2)  # u dims at 5, 4
        ext = extend_columns(lay, 4)
        assert ext.q == 4
        assert ext.proc_dims == (7, 6)  # shifted by 2

    def test_extend_columns_keeps_column_dims(self):
        lay = pt.column_cyclic(4, 2, 2)  # v dims at 1, 0
        ext = extend_columns(lay, 4)
        assert ext.proc_dims == (1, 0)

    def test_extend_rows_keeps_everything(self):
        lay = pt.column_cyclic(2, 4, 2)
        ext = extend_rows(lay, 4)
        assert ext.p == 4
        assert ext.proc_dims == lay.proc_dims

    def test_shrinking_rejected(self):
        lay = pt.row_cyclic(3, 3, 1)
        with pytest.raises(ValueError):
            extend_columns(lay, 2)
        with pytest.raises(ValueError):
            extend_rows(lay, 2)

    def test_real_data_keeps_owner(self):
        """Extension must not move any real element."""
        lay = pt.two_dim_cyclic(4, 2, 1, 1)
        ext = extend_columns(lay, 4)
        for u in range(1 << 4):
            for v in range(1 << 2):
                w_small = (u << 2) | v
                w_big = (u << 4) | v
                assert lay.owner(w_small) == ext.owner(w_big)


class TestSquareUp:
    def test_square_matrix_is_untouched(self):
        dm = DistributedMatrix.iota(pt.row_cyclic(3, 3, 2))
        sq = square_up(dm)
        assert sq.matrix is dm
        assert sq.padded_axis == "none"

    def test_wide_matrix_pads_rows(self):
        A = rect_matrix(2, 4)
        dm = DistributedMatrix.from_global(A, pt.column_cyclic(2, 4, 2))
        sq = square_up(dm, fill=-1.0)
        assert sq.padded_axis == "rows"
        big = sq.matrix.to_global()
        assert big.shape == (16, 16)
        assert np.array_equal(big[:4, :], A)
        assert np.all(big[4:, :] == -1.0)

    def test_tall_matrix_pads_columns(self):
        A = rect_matrix(4, 2)
        dm = DistributedMatrix.from_global(A, pt.row_consecutive(4, 2, 2))
        sq = square_up(dm)
        assert sq.padded_axis == "columns"
        assert sq.matrix.to_global().shape == (16, 16)

    def test_restrict_round_trip(self):
        lay = pt.row_consecutive(4, 2, 2)
        A = rect_matrix(4, 2)
        dm = DistributedMatrix.from_global(A, lay)
        sq = square_up(dm)
        back = restrict_to(sq.matrix, lay)
        assert np.array_equal(back.to_global(), A)

    def test_restrict_rejects_growth(self):
        dm = DistributedMatrix.iota(pt.row_cyclic(2, 2, 1))
        with pytest.raises(ValueError):
            restrict_to(dm, pt.row_cyclic(3, 3, 1))

    def test_padding_overhead(self):
        assert padding_overhead(4, 4) == 0.0
        assert padding_overhead(4, 2) == pytest.approx(0.75)
        assert padding_overhead(2, 4) == pytest.approx(0.75)


class TestRectangularTransposeViaSquaring:
    """Definition 2's purpose: the square-only algorithms on P != Q."""

    @pytest.mark.parametrize("p,q", [(4, 2), (2, 4), (5, 3)])
    def test_spt_on_rectangular(self, p, q):
        half = 2
        A = rect_matrix(p, q)
        lay = pt.two_dim_cyclic(p, q, min(half, p), min(half, q))
        # Lay out the padded square directly with equal partitions.
        dm = DistributedMatrix.from_global(A, lay)
        sq = square_up(dm)
        sq_layout = sq.matrix.layout
        net = CubeNetwork(custom_machine(sq_layout.n))
        out = two_dim_transpose_spt(net, sq.matrix, sq_layout)
        target = pt.two_dim_cyclic(q, p, min(half, q), min(half, p))
        # The transposed padded matrix restricted to Q x P equals A.T —
        # needs matching processor fields, so rebuild via the global view.
        result = restrict_to(out, target)
        assert np.array_equal(result.to_global(), A.T)

    def test_mpt_on_rectangular(self):
        p, q = 5, 3
        A = rect_matrix(p, q)
        lay = pt.two_dim_cyclic(p, q, 2, 2)
        dm = DistributedMatrix.from_global(A, lay)
        sq = square_up(dm)
        net = CubeNetwork(
            custom_machine(sq.matrix.layout.n, port_model=PortModel.N_PORT)
        )
        out = two_dim_transpose_mpt(net, sq.matrix, sq.matrix.layout)
        result = restrict_to(out, pt.two_dim_cyclic(q, p, 2, 2))
        assert np.array_equal(result.to_global(), A.T)

    def test_overhead_matches_moved_elements(self):
        """Every virtual element travels, so the hop count scales by the
        padding factor relative to an equal-sized square of real data."""
        p, q = 4, 2
        lay = pt.two_dim_cyclic(p, q, 1, 1)
        dm = DistributedMatrix.from_global(rect_matrix(p, q), lay)
        sq = square_up(dm)
        net = CubeNetwork(custom_machine(sq.matrix.layout.n))
        two_dim_transpose_spt(net, sq.matrix, sq.matrix.layout)
        moved = net.stats.element_hops
        # All 2^{2*max(p,q)} elements participate (minus diagonal nodes'
        # stationary data): virtual share is padding_overhead.
        assert moved > 0
        assert padding_overhead(p, q) == pytest.approx(0.75)
