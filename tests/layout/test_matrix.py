"""Tests for DistributedMatrix scatter/gather round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import DistributedMatrix, Layout, ProcField
from repro.layout import partition as pt

LAYOUT_MAKERS = [
    lambda: pt.row_cyclic(3, 4, 2),
    lambda: pt.row_consecutive(3, 4, 3),
    lambda: pt.column_cyclic(3, 4, 2, gray=True),
    lambda: pt.column_consecutive(3, 4, 4),
    lambda: pt.two_dim_cyclic(3, 4, 2, 2),
    lambda: pt.two_dim_consecutive(3, 4, 1, 2, gray=True),
    lambda: pt.two_dim_mixed(3, 4, 2, 1),
    lambda: pt.combined_contiguous(3, 4, 2, offset=1, axis="column"),
    lambda: Layout(3, 4, (ProcField((6, 2), gray=True), ProcField((4, 0)))),
]


@pytest.mark.parametrize("make", LAYOUT_MAKERS)
class TestRoundTrip:
    def test_scatter_gather_identity(self, make):
        layout = make()
        rng = np.random.default_rng(7)
        A = rng.standard_normal((1 << layout.p, 1 << layout.q))
        dm = DistributedMatrix.from_global(A, layout)
        assert np.array_equal(dm.to_global(), A)

    def test_iota_local_values_are_owned_addresses(self, make):
        layout = make()
        dm = DistributedMatrix.iota(layout)
        for proc in range(layout.num_procs):
            for off, value in enumerate(dm.local(proc)):
                assert layout.owner(int(value)) == proc
                assert layout.offset(int(value)) == off


class TestValidation:
    def test_shape_mismatch_rejected(self):
        layout = pt.row_cyclic(2, 2, 1)
        with pytest.raises(ValueError):
            DistributedMatrix.from_global(np.zeros((4, 8)), layout)

    def test_local_data_shape_checked(self):
        layout = pt.row_cyclic(2, 2, 1)
        with pytest.raises(ValueError):
            DistributedMatrix(layout, np.zeros((3, 3)))

    def test_with_layout_requires_same_shape(self):
        layout = pt.row_cyclic(2, 2, 1)
        dm = DistributedMatrix.iota(layout)
        other = pt.row_cyclic(2, 2, 2)
        with pytest.raises(ValueError):
            dm.with_layout(other)

    def test_with_layout_reinterprets(self):
        a = pt.row_cyclic(2, 2, 1)
        b = pt.row_consecutive(2, 2, 1)
        dm = DistributedMatrix.iota(a)
        re = dm.with_layout(b)
        assert re.layout is b
        assert np.shares_memory(re.local_data, dm.local_data)

    def test_copy_is_independent(self):
        dm = DistributedMatrix.iota(pt.row_cyclic(2, 2, 1))
        c = dm.copy()
        c.local_data[0, 0] = -1
        assert dm.local_data[0, 0] != -1

    def test_allclose(self):
        layout = pt.two_dim_cyclic(2, 2, 1, 1)
        A = np.arange(16.0).reshape(4, 4)
        dm = DistributedMatrix.from_global(A, layout)
        assert dm.allclose(A)
        assert not dm.allclose(A.T)

    def test_total_elements(self):
        dm = DistributedMatrix.iota(pt.row_cyclic(2, 3, 2))
        assert dm.total_elements == 32


@settings(max_examples=25, deadline=None)
@given(
    p=st.integers(1, 4),
    q=st.integers(1, 4),
    data=st.data(),
)
def test_random_layout_round_trip(p, q, data):
    """Any legal field selection scatters and gathers losslessly."""
    m = p + q
    n = data.draw(st.integers(0, m))
    dims = data.draw(
        st.permutations(range(m)).map(lambda perm: tuple(perm[:n]))
    )
    gray = data.draw(st.booleans())
    fields = (ProcField(dims, gray),) if dims else ()
    layout = Layout(p, q, fields)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
    A = rng.integers(0, 100, size=(1 << p, 1 << q))
    dm = DistributedMatrix.from_global(A, layout)
    assert np.array_equal(dm.to_global(), A)
