"""Tests for the Layout address-field algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.gray import gray_encode
from repro.layout import Layout, ProcField
from repro.layout.partition import row_cyclic, two_dim_consecutive


class TestProcField:
    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            ProcField((3, 3))

    def test_negative_dim_rejected(self):
        with pytest.raises(ValueError):
            ProcField((-1,))

    def test_width(self):
        assert ProcField((5, 2, 0)).width == 3


class TestLayoutValidation:
    def test_dim_outside_address_space(self):
        with pytest.raises(ValueError):
            Layout(1, 1, (ProcField((2,)),))

    def test_dim_shared_between_fields(self):
        with pytest.raises(ValueError):
            Layout(2, 2, (ProcField((3,)), ProcField((3,))))

    def test_shape_properties(self):
        lay = Layout(3, 2, (ProcField((4, 1)),))
        assert lay.m == 5
        assert lay.n == 2
        assert lay.num_procs == 4
        assert lay.local_size == 8
        assert lay.proc_dims == (4, 1)
        assert lay.vp_dims == (3, 2, 0)


class TestDimMaps:
    def test_cube_dim_of(self):
        lay = Layout(3, 3, (ProcField((5, 4)), ProcField((2,))))
        # proc_dims = (5, 4, 2); MSB-first, so 5 -> cube dim 2, 2 -> cube dim 0.
        assert lay.cube_dim_of(5) == 2
        assert lay.cube_dim_of(4) == 1
        assert lay.cube_dim_of(2) == 0
        with pytest.raises(ValueError):
            lay.cube_dim_of(0)

    def test_offset_bit_of(self):
        lay = Layout(3, 3, (ProcField((5, 4)), ProcField((2,))))
        # vp_dims = (3, 1, 0) -> offset bits 2, 1, 0.
        assert lay.offset_bit_of(3) == 2
        assert lay.offset_bit_of(1) == 1
        assert lay.offset_bit_of(0) == 0
        with pytest.raises(ValueError):
            lay.offset_bit_of(5)


class TestOwnerOffset:
    def test_binary_owner_reads_field_bits(self):
        lay = Layout(2, 2, (ProcField((3, 1)),))
        # w = u1 u0 v1 v0; proc = (w3 w1).
        assert lay.owner(0b1010) == 0b11
        assert lay.owner(0b1000) == 0b10
        assert lay.owner(0b0010) == 0b01

    def test_gray_owner(self):
        lay = Layout(2, 2, (ProcField((3, 2), gray=True),))
        for u in range(4):
            w = u << 2
            assert lay.owner(w) == gray_encode(u)

    def test_split_gray_fields_encode_separately(self):
        """Table 2 non-contiguous: G applied per sub-field."""
        lay = Layout(2, 2, (ProcField((3, 2), gray=True), ProcField((1, 0), gray=True)))
        for u in range(4):
            for v in range(4):
                w = (u << 2) | v
                assert lay.owner(w) == (gray_encode(u) << 2) | gray_encode(v)

    @given(st.data())
    def test_address_of_inverts_owner_offset(self, data):
        p, q = 3, 2
        lay = two_dim_consecutive(p, q, 2, 1, gray=data.draw(st.booleans()))
        w = data.draw(st.integers(0, 2 ** (p + q) - 1))
        proc, off = lay.owner(w), lay.offset(w)
        assert lay.address_of(proc, off) == w

    def test_address_of_range_checks(self):
        lay = row_cyclic(3, 3, 2)
        with pytest.raises(ValueError):
            lay.address_of(4, 0)
        with pytest.raises(ValueError):
            lay.address_of(0, lay.local_size)

    @given(st.integers(0, 1))
    def test_mapping_is_bijective(self, gray_flag):
        lay = Layout(
            2, 3, (ProcField((4, 0), gray=bool(gray_flag)), ProcField((2,)))
        )
        seen = set()
        for w in range(2**5):
            seen.add((lay.owner(w), lay.offset(w)))
        assert len(seen) == 2**5

    def test_arrays_match_scalars(self):
        lay = Layout(3, 3, (ProcField((5, 2), gray=True), ProcField((0,))))
        w = np.arange(64)
        assert lay.owner_array(w).tolist() == [lay.owner(i) for i in range(64)]
        assert lay.offset_array(w).tolist() == [lay.offset(i) for i in range(64)]

    def test_describe_mentions_gray(self):
        lay = Layout(2, 2, (ProcField((3, 2), gray=True),), name="t")
        assert "G(" in lay.describe()
