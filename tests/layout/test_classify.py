"""Tests for transpose communication classification (§2)."""

import pytest

from repro.layout import CommClass, classify_transpose, dims_after_transpose
from repro.layout import partition as pt


class TestDimsAfterTranspose:
    def test_two_dim_cyclic_square(self):
        """2D cyclic with n_r = n_c: R_a equals R_b in the original frame."""
        p = q = 3
        before = pt.two_dim_cyclic(p, q, 2, 2)
        after = pt.two_dim_cyclic(q, p, 2, 2)
        assert frozenset(dims_after_transpose(after)) == before.proc_dim_set

    def test_one_dim_row_to_row(self):
        """1D consecutive rows before and after: disjoint fields."""
        p = q = 3
        before = pt.row_consecutive(p, q, 2)
        after = pt.row_consecutive(q, p, 2)
        r_a = frozenset(dims_after_transpose(after))
        assert not (r_a & before.proc_dim_set)


class TestClassify:
    P = Q = 4

    def test_pairwise_two_dim_same_scheme(self):
        before = pt.two_dim_consecutive(self.P, self.Q, 2, 2)
        after = pt.two_dim_consecutive(self.Q, self.P, 2, 2)
        info = classify_transpose(before, after)
        assert info.comm_class is CommClass.PAIRWISE
        assert info.intersection == info.r_before

    def test_all_to_all_one_dim(self):
        before = pt.row_consecutive(self.P, self.Q, 3)
        after = pt.row_consecutive(self.Q, self.P, 3)
        info = classify_transpose(before, after)
        assert info.comm_class is CommClass.ALL_TO_ALL
        assert info.k == 0
        assert info.l == 3

    def test_one_dim_cyclic_to_consecutive_still_all_to_all(self):
        """Corollary 6: conversions among the 1D storage forms are
        equivalent in global communication when I is empty."""
        before = pt.column_cyclic(self.P, self.Q, 3)
        after = pt.column_consecutive(self.Q, self.P, 3)
        info = classify_transpose(before, after)
        assert info.comm_class is CommClass.ALL_TO_ALL

    def test_some_to_all(self):
        before = pt.row_consecutive(self.P, self.Q, 1)
        after = pt.row_consecutive(self.Q, self.P, 3)
        info = classify_transpose(before, after)
        assert info.comm_class is CommClass.SOME_TO_ALL
        assert info.k == 2
        assert info.l == 1

    def test_all_to_some(self):
        before = pt.row_consecutive(self.P, self.Q, 3)
        after = pt.row_consecutive(self.Q, self.P, 1)
        info = classify_transpose(before, after)
        assert info.comm_class is CommClass.ALL_TO_SOME
        assert info.k == 2

    def test_mixed_partial_overlap(self):
        """§6's consecutive-rows/cyclic-columns example with small vp space
        can leave a partial intersection."""
        before = pt.two_dim_mixed(3, 3, 2, 2, rows="consecutive", cols="cyclic")
        after = pt.two_dim_mixed(3, 3, 2, 2, rows="consecutive", cols="cyclic")
        info = classify_transpose(before, after)
        # before rp: u: dims 5,4 (u2,u1); v: dims 1,0. after (in orig frame):
        # rows of A^T = v: consecutive -> v2,v1 = dims 2,1; cols = u cyclic ->
        # u1,u0 = dims 4,3.  Intersection = {4, 1}: mixed.
        assert info.comm_class is CommClass.MIXED
        assert info.intersection == frozenset({4, 1})

    def test_local_when_serial(self):
        before = pt.row_cyclic(2, 2, 0)
        after = pt.row_cyclic(2, 2, 0)
        info = classify_transpose(before, after)
        assert info.comm_class is CommClass.LOCAL

    def test_wrong_after_shape_rejected(self):
        before = pt.row_cyclic(3, 2, 1)
        with pytest.raises(ValueError):
            classify_transpose(before, pt.row_cyclic(3, 2, 1))

    def test_rectangular_all_to_all(self):
        before = pt.column_consecutive(2, 4, 2)
        after = pt.column_consecutive(4, 2, 2)
        info = classify_transpose(before, after)
        # before: v3,v2 = dims 3,2.  after cols = u of A: u1,u0 -> dims 5,4.
        assert info.comm_class is CommClass.ALL_TO_ALL
