"""Tests for the local sub-matrix view (block layouts)."""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt


class TestLocalBlockShape:
    def test_row_consecutive(self):
        lay = pt.row_consecutive(4, 3, 2)
        assert lay.local_block_shape() == (4, 8)  # 4 full rows each

    def test_two_dim_consecutive(self):
        lay = pt.two_dim_consecutive(4, 4, 2, 1)
        assert lay.local_block_shape() == (4, 8)

    def test_column_consecutive(self):
        lay = pt.column_consecutive(3, 4, 2)
        assert lay.local_block_shape() == (8, 4)

    def test_cyclic_is_not_a_block(self):
        assert pt.row_cyclic(4, 3, 2).local_block_shape() is None
        assert pt.two_dim_cyclic(4, 4, 1, 1).local_block_shape() is None

    def test_combined_is_not_a_block(self):
        lay = pt.combined_contiguous(4, 4, 2, offset=1, axis="row")
        assert lay.local_block_shape() is None

    def test_serial_layout_is_whole_matrix(self):
        lay = pt.row_consecutive(3, 2, 0)
        assert lay.local_block_shape() == (8, 4)


class TestLocalMatrixView:
    def test_values_match_global_tile(self):
        lay = pt.two_dim_consecutive(3, 3, 1, 1)
        rng = np.random.default_rng(0)
        A = rng.standard_normal((8, 8))
        dm = DistributedMatrix.from_global(A, lay)
        for pr in range(2):
            for pc in range(2):
                proc = (pr << 1) | pc
                tile = dm.local_matrix(proc)
                assert np.array_equal(
                    tile, A[pr * 4 : (pr + 1) * 4, pc * 4 : (pc + 1) * 4]
                )

    def test_view_is_writable_through(self):
        lay = pt.row_consecutive(3, 3, 1)
        dm = DistributedMatrix.iota(lay)
        dm.local_matrix(0)[0, 0] = -1
        assert dm.local_data[0][0] == -1

    def test_raises_for_cyclic(self):
        dm = DistributedMatrix.iota(pt.row_cyclic(3, 3, 1))
        with pytest.raises(ValueError):
            dm.local_matrix(0)


class TestMapLocal:
    def test_applies_kernel_per_node(self):
        lay = pt.row_consecutive(3, 3, 1)
        dm = DistributedMatrix.iota(lay)
        doubled = dm.map_local(lambda tile, proc: tile * 2)
        assert np.array_equal(doubled.local_data, dm.local_data * 2)

    def test_proc_argument(self):
        lay = pt.row_consecutive(3, 3, 2)
        dm = DistributedMatrix.iota(lay)
        tagged = dm.map_local(lambda tile, proc: np.full_like(tile, proc))
        for x in range(4):
            assert np.all(tagged.local_data[x] == x)

    def test_dtype_promotion(self):
        lay = pt.row_consecutive(3, 3, 1)
        dm = DistributedMatrix.iota(lay)
        complex_out = dm.map_local(lambda tile, proc: tile * (1 + 1j))
        assert complex_out.local_data.dtype == np.complex128

    def test_shape_mismatch_rejected(self):
        lay = pt.row_consecutive(3, 3, 1)
        dm = DistributedMatrix.iota(lay)
        with pytest.raises(ValueError):
            dm.map_local(lambda tile, proc: tile[:1])

    def test_cyclic_layout_rejected(self):
        dm = DistributedMatrix.iota(pt.row_cyclic(3, 3, 1))
        with pytest.raises(ValueError):
            dm.map_local(lambda tile, proc: tile)
