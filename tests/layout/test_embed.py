"""Padded power-of-two embedding of arbitrary matrix shapes."""

import numpy as np
import pytest

from repro.layout import partition as pt
from repro.layout.embed import (
    EmbeddedShape,
    embed,
    extract,
    padding_overhead,
)


class TestEmbeddedShape:
    def test_pads_to_next_power_of_two(self):
        shape = EmbeddedShape.for_shape(13, 11)
        assert (shape.p, shape.q) == (4, 4)
        assert (shape.padded_rows, shape.padded_cols) == (16, 16)
        assert not shape.exact

    def test_exact_shapes_do_not_pad(self):
        shape = EmbeddedShape.for_shape(16, 16)
        assert (shape.padded_rows, shape.padded_cols) == (16, 16)
        assert shape.exact

    def test_large_rectangular(self):
        shape = EmbeddedShape.for_shape(511, 134)
        assert (shape.p, shape.q) == (9, 8)

    def test_min_bit_floors(self):
        shape = EmbeddedShape.for_shape(3, 3, min_p=4, min_q=2)
        assert (shape.p, shape.q) == (4, 2)

    def test_transposed_swaps_extents(self):
        shape = EmbeddedShape.for_shape(13, 11).transposed()
        assert (shape.rows, shape.cols) == (11, 13)
        assert (shape.p, shape.q) == (4, 4)

    def test_rejects_non_positive_extents(self):
        with pytest.raises(ValueError):
            EmbeddedShape.for_shape(0, 5)


class TestEmbedExtract:
    @pytest.mark.parametrize("rows,cols", [(13, 11), (16, 16), (5, 9)])
    def test_round_trip(self, rows, cols):
        shape = EmbeddedShape.for_shape(rows, cols, min_p=2, min_q=2)
        layout = pt.two_dim_cyclic(shape.p, shape.q, 2, 2)
        a = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
        dm = embed(a, shape, layout)
        assert np.array_equal(extract(dm, shape), a)

    def test_fill_value_lands_in_padding(self):
        shape = EmbeddedShape.for_shape(3, 3, min_p=2, min_q=2)
        layout = pt.two_dim_cyclic(shape.p, shape.q, 1, 1)
        a = np.ones((3, 3))
        dm = embed(a, shape, layout, fill=-7.0)
        padded = dm.to_global()
        assert padded[3, 3] == -7.0
        assert np.array_equal(padded[:3, :3], a)

    def test_shape_mismatch_rejected(self):
        shape = EmbeddedShape.for_shape(4, 4, min_p=2, min_q=2)
        layout = pt.two_dim_cyclic(shape.p, shape.q, 1, 1)
        with pytest.raises(ValueError):
            embed(np.ones((5, 4)), shape, layout)


class TestPaddingOverhead:
    def test_exact_shape_has_no_overhead(self):
        assert padding_overhead(EmbeddedShape.for_shape(16, 16)) == 0.0

    def test_rectangular_overhead(self):
        shape = EmbeddedShape.for_shape(13, 11)
        assert padding_overhead(shape) == (256 - 143) / 256
