"""Stage IR: address maps, numpy references, and fusibility classes."""

import numpy as np
import pytest

from repro.layout import partition as pt
from repro.workloads.stages import (
    BitReversalStage,
    DimPermStage,
    GrayConvertStage,
    TransposeStage,
    axis_permutation_order,
)


def assert_map_matches_reference(stage, p, q):
    """The address map and the numpy reference must agree pointwise."""
    a = np.arange(1 << (p + q), dtype=np.float64).reshape(1 << p, 1 << q)
    out_p, out_q = stage.out_shape(p, q)
    ref = stage.reference(a).reshape(-1)
    remap = stage.address_map(p, q)
    flat = a.reshape(-1)
    for w in range(a.size):
        assert ref[remap(w)] == flat[w]
    assert (out_p + out_q) == (p + q)


class TestTransposeStage:
    @pytest.mark.parametrize("p,q", [(2, 2), (3, 2), (2, 4)])
    def test_map_matches_reference(self, p, q):
        assert_map_matches_reference(TransposeStage(), p, q)

    def test_mirrors_extents(self):
        assert TransposeStage().out_shape(3, 5) == (5, 3)

    def test_is_an_involution(self):
        remap = TransposeStage().address_map(3, 3)
        for w in range(1 << 6):
            assert remap(remap(w)) == w


class TestBitReversalStage:
    @pytest.mark.parametrize("p,q", [(2, 2), (3, 2)])
    def test_map_matches_reference(self, p, q):
        assert_map_matches_reference(BitReversalStage(), p, q)

    def test_is_an_involution(self):
        remap = BitReversalStage().address_map(2, 3)
        for w in range(1 << 5):
            assert remap(remap(w)) == w


class TestDimPermStage:
    def test_needs_exactly_one_spelling(self):
        with pytest.raises(ValueError):
            DimPermStage()
        with pytest.raises(ValueError):
            DimPermStage(order=(0, 1), named="shuffle")

    def test_rejects_non_permutations(self):
        with pytest.raises(ValueError):
            DimPermStage(order=(0, 0, 1))
        with pytest.raises(ValueError):
            DimPermStage(named="rotate")

    def test_shuffle_unshuffle_are_inverse(self):
        shuffle = DimPermStage(named="shuffle").address_map(2, 2)
        unshuffle = DimPermStage(named="unshuffle").address_map(2, 2)
        for w in range(1 << 4):
            assert unshuffle(shuffle(w)) == w

    @pytest.mark.parametrize(
        "stage",
        [
            DimPermStage(named="shuffle"),
            DimPermStage(named="unshuffle"),
            DimPermStage(order=(1, 0, 3, 2)),
        ],
    )
    def test_map_matches_reference(self, stage):
        assert_map_matches_reference(stage, 2, 2)

    def test_order_length_must_cover_address_space(self):
        stage = DimPermStage(order=(1, 0))
        with pytest.raises(ValueError):
            stage.address_map(2, 2)

    def test_token_round_trips(self):
        assert DimPermStage(named="shuffle").token == "dimperm:shuffle"
        assert DimPermStage(order=(2, 0, 1)).token == "dimperm:2,0,1"


class TestFromAxes:
    @pytest.mark.parametrize(
        "axis_bits,axes",
        [
            ((2, 2, 2), (1, 0, 2)),
            ((2, 2, 2), (2, 1, 0)),
            ((1, 2, 1, 2), (3, 1, 0, 2)),
        ],
    )
    def test_matches_numpy_transpose(self, axis_bits, axes):
        """The stage realizes ``np.transpose`` on the d-dim view."""
        m = sum(axis_bits)
        stage = DimPermStage.from_axes(axis_bits, axes)
        a = np.arange(1 << m, dtype=np.float64)
        view = a.reshape([1 << b for b in axis_bits])
        expected = np.transpose(view, axes).reshape(-1)
        remap = stage.address_map(m // 2, m - m // 2)
        out = np.empty_like(a)
        for w in range(a.size):
            out[remap(w)] = a[w]
        assert np.array_equal(out, expected)

    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError):
            axis_permutation_order((2, 2), (0, 0))
        with pytest.raises(ValueError):
            axis_permutation_order((2, -1), (1, 0))


class TestGrayConvertStage:
    def test_is_a_fusion_barrier(self):
        assert GrayConvertStage().fusible is False
        assert TransposeStage().fusible is True

    def test_identity_on_the_global_matrix(self):
        a = np.arange(16.0).reshape(4, 4)
        assert np.array_equal(GrayConvertStage().reference(a), a)
        remap = GrayConvertStage().address_map(2, 2)
        assert [remap(w) for w in range(16)] == list(range(16))

    def test_out_layout_flips_encoding_flags(self):
        layout = pt.two_dim_cyclic(2, 2, 1, 1)
        gray = GrayConvertStage(to_gray=True).out_layout(layout)
        assert gray is not None and gray.is_gray
        back = GrayConvertStage(to_gray=False).out_layout(gray)
        assert back is not None and not back.is_gray
        # Already-binary layout: nothing to change.
        assert GrayConvertStage(to_gray=False).out_layout(layout) is None

    def test_tokens(self):
        assert GrayConvertStage(to_gray=True).token == "gray"
        assert GrayConvertStage(to_gray=False).token == "binary"
