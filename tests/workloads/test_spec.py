"""The ``pipeline:`` spec grammar: parsing, presets, typed errors."""

import pytest

from repro.workloads import (
    PRESETS,
    WorkloadSpecError,
    build_pipeline,
    parse_workload,
)
from repro.workloads.stages import (
    BitReversalStage,
    DimPermStage,
    TransposeStage,
)


class TestParse:
    def test_prefix_is_optional(self):
        a = parse_workload("pipeline:bitrev+transpose@13x11")
        b = parse_workload("bitrev+transpose@13x11")
        assert a.canonical == b.canonical == "pipeline:bitrev+transpose@13x11"

    def test_fft_preset_expands_in_place(self):
        workload = parse_workload("fft@64x64")
        assert tuple(s.token for s in workload.stages) == PRESETS["fft"]
        assert (
            workload.canonical
            == "pipeline:dimperm:shuffle+bitrev+transpose@64x64"
        )

    def test_stage_types(self):
        workload = parse_workload("dimperm:1,0+bitrev+transpose")
        assert isinstance(workload.stages[0], DimPermStage)
        assert isinstance(workload.stages[1], BitReversalStage)
        assert isinstance(workload.stages[2], TransposeStage)
        assert workload.rows is None and workload.cols is None

    def test_shape_parses(self):
        workload = parse_workload("transpose@511x134")
        assert (workload.rows, workload.cols) == (511, 134)


class TestTypedErrors:
    def test_unknown_stage_names_token_and_position(self):
        with pytest.raises(WorkloadSpecError) as exc:
            parse_workload("pipeline:bitrev+frobnicate+transpose")
        err = exc.value
        assert err.token == "frobnicate"
        assert err.position == 2
        assert "unknown stage" in err.reason
        assert isinstance(err, ValueError)

    def test_empty_token(self):
        with pytest.raises(WorkloadSpecError) as exc:
            parse_workload("bitrev++transpose")
        assert exc.value.position == 2

    def test_empty_spec(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload("   ")

    @pytest.mark.parametrize(
        "spec,fragment",
        [
            ("dimperm:", "needs an argument"),
            ("dimperm:1,x", "not an integer"),
            ("dimperm:0,0,1", "not a permutation"),
        ],
    )
    def test_dimperm_argument_errors(self, spec, fragment):
        with pytest.raises(WorkloadSpecError) as exc:
            parse_workload(spec)
        assert fragment in exc.value.reason

    @pytest.mark.parametrize(
        "spec",
        ["transpose@13", "transpose@axb", "transpose@0x4", "transpose@1x2x3"],
    )
    def test_shape_errors(self, spec):
        with pytest.raises(WorkloadSpecError) as exc:
            parse_workload(spec)
        assert exc.value.position == "shape"


class TestBuildPipeline:
    def test_elements_supply_a_square_default(self):
        pipeline = build_pipeline("fft", 6, elements=4096)
        assert (pipeline.shape.rows, pipeline.shape.cols) == (64, 64)

    def test_spec_shape_wins(self):
        pipeline = build_pipeline("transpose@13x11", 4, elements=4096)
        assert (pipeline.shape.rows, pipeline.shape.cols) == (13, 11)

    def test_missing_shape_and_elements(self):
        with pytest.raises(ValueError, match="no @RxC shape"):
            build_pipeline("transpose", 4)

    def test_non_power_of_two_elements(self):
        with pytest.raises(ValueError, match="power of two"):
            build_pipeline("transpose", 4, elements=100)

    def test_transpose_floors_both_axes(self):
        # 13x11 on a 4-cube 2d layout: both axes must fit the mirrored
        # layout too, so p = q = 4.
        pipeline = build_pipeline("transpose@13x11", 4)
        assert (pipeline.shape.p, pipeline.shape.q) == (4, 4)

    def test_unknown_layout(self):
        with pytest.raises(ValueError, match="unknown layout"):
            build_pipeline("transpose@8x8", 4, layout="diagonal")

    def test_canonical_spec_carries_true_shape(self):
        pipeline = build_pipeline("fft@64x64", 6)
        assert pipeline.spec == (
            "pipeline:dimperm:shuffle+bitrev+transpose@64x64"
        )
        assert pipeline.algorithm == (
            "pipeline:dimperm:shuffle+bitrev+transpose"
        )
