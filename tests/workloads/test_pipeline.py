"""Pipeline compilation: fusion, replay equivalence, chaining, keys."""

import numpy as np
import pytest

from repro.machine.engine import CubeNetwork
from repro.machine.presets import connection_machine
from repro.plans.ir import PhaseOp, RemapOp
from repro.plans.replay import replay_plan
from repro.workloads import build_pipeline, chain_plans, fuse_ops


def phase_count(plan):
    return sum(1 for op in plan.ops if isinstance(op, PhaseOp))


class TestFusion:
    def test_fused_fft_is_strictly_cheaper_than_naive(self):
        """Rule 1: composed address maps need one exchange sequence."""
        params = connection_machine(6)
        pipeline = build_pipeline("fft@64x64", 6)
        fused, _ = pipeline.compile(params)
        naive, _ = pipeline.compile(params, fuse=False)
        assert phase_count(fused) < phase_count(naive)

        fused_net = CubeNetwork(connection_machine(6))
        replay_plan(fused, fused_net)
        naive_net = CubeNetwork(connection_machine(6))
        replay_plan(naive, naive_net)
        assert fused_net.stats.time < naive_net.stats.time
        assert fused_net.stats.startups < naive_net.stats.startups

    def test_chained_pipeline_cheaper_than_solo_replays(self):
        """The ISSUE's headline: one chained compile beats back-to-back
        solo stage replays."""
        params = connection_machine(4)
        chained = build_pipeline("bitrev+transpose@16x16", 4)
        plan, _ = chained.compile(params)
        solo_phases = sum(
            phase_count(build_pipeline(spec, 4).compile(params)[0])
            for spec in ("bitrev@16x16", "transpose@16x16")
        )
        assert phase_count(plan) < solo_phases

    def test_transpose_twice_fuses_to_nothing(self):
        params = connection_machine(4)
        pipeline = build_pipeline("transpose+transpose@16x16", 4)
        plan, _ = pipeline.compile(params)
        assert phase_count(plan) == 0

    def test_gray_stage_is_a_barrier(self):
        """A Gray re-encode splits the fusible run: the fused plan still
        contains the converter's communication."""
        params = connection_machine(4)
        with_barrier = build_pipeline(
            "transpose+gray+binary+transpose@16x16", 4
        )
        plan, _ = with_barrier.compile(params)
        # The two transposes cannot cancel across the barrier.
        assert phase_count(plan) > 0

    def test_fusible_stage_after_gray_rejected(self):
        with pytest.raises(ValueError, match="binary-encoded frame"):
            build_pipeline("gray+transpose@16x16", 4)

    def test_gray_then_binary_executes(self):
        params = connection_machine(4)
        pipeline = build_pipeline("gray+binary@16x16", 4)
        plan, _ = pipeline.compile(params)
        network = CubeNetwork(connection_machine(4))
        replay_plan(plan, network)


class TestExecuteBitIdentity:
    @pytest.mark.parametrize(
        "spec,n",
        [
            ("pipeline:bitrev+transpose@13x11", 4),
            ("pipeline:bitrev+transpose@511x134", 4),
            ("fft@64x64", 6),
            ("dimperm:shuffle+dimperm:unshuffle@16x16", 4),
        ],
    )
    def test_execute_matches_reference(self, spec, n):
        pipeline = build_pipeline(spec, n)
        rows, cols = pipeline.shape.rows, pipeline.shape.cols
        a = np.arange(rows * cols, dtype=np.float64).reshape(rows, cols)
        network = CubeNetwork(connection_machine(n))
        out = pipeline.execute(network, a)
        assert np.array_equal(out, pipeline.reference(a))

    def test_unfused_execution_is_bit_identical_to_fused(self):
        pipeline = build_pipeline("fft@64x64", 6)
        a = np.arange(64 * 64, dtype=np.float64).reshape(64, 64)
        fused = pipeline.execute(CubeNetwork(connection_machine(6)), a)
        naive = pipeline.execute(
            CubeNetwork(connection_machine(6)), a, fuse=False
        )
        assert np.array_equal(fused, naive)


class TestCompileReplay:
    def test_compiled_plan_replays_with_identical_stats(self):
        params = connection_machine(6)
        pipeline = build_pipeline("fft@64x64", 6)
        plan, _ = pipeline.compile(params)
        a_stats = CubeNetwork(params)
        replay_plan(plan, a_stats)
        b_stats = CubeNetwork(params)
        replay_plan(plan, b_stats)
        assert a_stats.stats.as_dict() == b_stats.stats.as_dict()

    def test_plan_round_trips_through_json(self):
        from repro.plans.ir import CompiledPlan

        params = connection_machine(4)
        plan, _ = build_pipeline("bitrev+transpose@13x11", 4).compile(params)
        again = CompiledPlan.loads(plan.dumps())
        assert again.fingerprint == plan.fingerprint

    def test_shapes_padding_identically_share_keys(self):
        """The key is a function of the padded domain — deliberate."""
        params = connection_machine(4)
        a = build_pipeline("bitrev+transpose@13x11", 4)
        b = build_pipeline("bitrev+transpose@16x16", 4)
        assert a.key(params) == b.key(params)

    def test_different_stage_sequences_get_different_keys(self):
        params = connection_machine(4)
        a = build_pipeline("bitrev+transpose@16x16", 4)
        b = build_pipeline("transpose+bitrev@16x16", 4)
        assert a.key(params) != b.key(params)


class TestFuseOps:
    def test_adjacent_remaps_fold_by_xor(self):
        ops = (RemapOp(3), RemapOp(5), RemapOp(8))
        assert fuse_ops(ops) == (RemapOp(14),)

    def test_identity_remap_is_dropped(self):
        assert fuse_ops((RemapOp(3), RemapOp(3))) == ()
        assert fuse_ops((RemapOp(0),)) == ()

    def test_empty_phases_are_dropped(self):
        assert fuse_ops((PhaseOp(messages=()),)) == ()

    def test_remaps_do_not_fold_across_phases(self):
        from repro.plans.ir import PlanMessage

        phase = PhaseOp(
            messages=(PlanMessage(src=0, dst=1, elements=1, keys=("k",)),)
        )
        ops = (RemapOp(3), phase, RemapOp(5))
        assert fuse_ops(ops) == ops


class TestChainPlans:
    def test_chained_transposes_replay_to_identity(self):
        params = connection_machine(4)
        first, _ = build_pipeline("transpose@16x16", 4).compile(params)
        back, _ = build_pipeline("transpose@16x16", 4).compile(params)
        # transpose of a square embedded domain mirrors back, so the
        # second plan's before-layout continues the first's after.
        chained = chain_plans([first, back])
        network = CubeNetwork(params)
        replay_plan(chained, network)
        assert chained.comm_class == "pipeline"

    def test_relabeled_segments_fold_their_masks(self):
        """Rule 2: the COSTA-style XOR relabel costs one RemapOp, and
        stacked relabels fold."""
        params = connection_machine(4)
        plan, _ = build_pipeline("bitrev@16x16", 4).compile(params)
        twice = plan.relabeled(3).relabeled(5)
        chained = chain_plans([twice])
        remaps = [op for op in chained.ops if isinstance(op, RemapOp)]
        assert remaps == [RemapOp(6)]

    def test_self_cancelling_relabel_costs_nothing(self):
        params = connection_machine(4)
        plan, _ = build_pipeline("bitrev@16x16", 4).compile(params)
        chained = chain_plans([plan.relabeled(7).relabeled(7)])
        assert not any(isinstance(op, RemapOp) for op in chained.ops)

    def test_layout_discontinuity_rejected(self):
        params = connection_machine(4)
        square, _ = build_pipeline("bitrev@16x16", 4).compile(params)
        rect, _ = build_pipeline("bitrev@16x4", 4, layout="1d-rows").compile(
            params
        )
        with pytest.raises(ValueError):
            chain_plans([square, rect])

    def test_machine_mismatch_rejected(self):
        from repro.machine.presets import intel_ipsc

        a, _ = build_pipeline("bitrev@16x16", 4).compile(connection_machine(4))
        b, _ = build_pipeline("bitrev@16x16", 4).compile(intel_ipsc(4))
        with pytest.raises(ValueError):
            chain_plans([a, b])

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            chain_plans([])
