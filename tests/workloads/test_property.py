"""Property: compiled pipelines are bit-identical to numpy composition.

The ISSUE's acceptance property: for arbitrary (non-power-of-two)
shapes and arbitrary chained stage sequences, executing the compiled
pipeline on a simulated cube produces exactly the composition of the
stages' numpy references on the padded domain, extracted back to the
true extent — with and without seeded link faults in the way.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.machine.engine import CubeNetwork
from repro.machine.faults import FaultPlan
from repro.machine.presets import connection_machine
from repro.plans.cache import PlanCache
from repro.workloads import Pipeline, build_pipeline, serve_workload
from repro.workloads.stages import DimPermStage

STAGE_TOKENS = (
    "transpose",
    "bitrev",
    "dimperm:shuffle",
    "dimperm:unshuffle",
    "gray",
    "binary",
)

stage_lists = st.lists(
    st.sampled_from(STAGE_TOKENS), min_size=1, max_size=4
)
shapes = st.tuples(
    st.integers(min_value=1, max_value=24),
    st.integers(min_value=1, max_value=24),
)


def reference_composition(pipeline: Pipeline, a: np.ndarray) -> np.ndarray:
    """Compose the stages' numpy references on the padded domain."""
    shape = pipeline.shape
    padded = np.zeros((shape.padded_rows, shape.padded_cols), dtype=a.dtype)
    padded[: shape.rows, : shape.cols] = a
    for stage, stage_shape in zip(pipeline.stages, pipeline.shapes):
        out_p, out_q = stage.out_shape(stage_shape.p, stage_shape.q)
        padded = stage.reference(padded).reshape(1 << out_p, 1 << out_q)
    out = pipeline.out_shape
    return padded[: out.rows, : out.cols]


class TestPipelineProperty:
    @settings(max_examples=40, deadline=None)
    @given(tokens=stage_lists, shape=shapes, seed=st.integers(0, 2**16))
    def test_execute_matches_numpy_composition(self, tokens, shape, seed):
        spec = "pipeline:" + "+".join(tokens) + f"@{shape[0]}x{shape[1]}"
        try:
            pipeline = build_pipeline(spec, 4)
        except ValueError:
            assume(False)  # e.g. a fusible stage directly after "gray"
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(shape)
        out = pipeline.execute(CubeNetwork(connection_machine(4)), a)
        assert np.array_equal(out, reference_composition(pipeline, a))
        assert np.array_equal(out, pipeline.reference(a))

    @settings(max_examples=15, deadline=None)
    @given(
        tokens=st.lists(
            st.sampled_from(("transpose", "bitrev", "dimperm:shuffle")),
            min_size=1,
            max_size=3,
        ),
        shape=shapes,
        seed=st.integers(0, 63),
    )
    def test_faulted_serving_still_verifies(self, tokens, shape, seed):
        """Seeded link faults on the replay path: recovery must land the
        plan, and its self-verification must pass."""
        spec = "pipeline:" + "+".join(tokens) + f"@{shape[0]}x{shape[1]}"
        pipeline = build_pipeline(spec, 4)
        faults = FaultPlan.from_spec(
            4, f"seed={seed},link_rate=0.05,transient_rate=0.5,window=4"
        )
        from repro.recovery import RecoveryFailedError

        try:
            served = serve_workload(
                pipeline,
                connection_machine(4),
                faults=faults,
                cache=PlanCache(),
            )
        except RecoveryFailedError:
            # A sufficiently vicious fault draw can defeat recovery
            # (no healthy path left); that is a legitimate terminal
            # outcome, not a correctness failure.
            assume(False)
        assert served.verified is True


class TestAxisPermutations:
    """3- and 4-dimensional axis permutations named by the ISSUE."""

    @pytest.mark.parametrize(
        "axis_bits,axes",
        [
            ((2, 2, 2), (1, 2, 0)),
            ((2, 2, 2), (2, 0, 1)),
            ((2, 2, 2, 2), (3, 2, 1, 0)),
            ((1, 3, 2, 2), (2, 0, 3, 1)),
        ],
    )
    def test_axis_permutation_pipelines(self, axis_bits, axes):
        m = sum(axis_bits)
        p = m // 2
        q = m - p
        stage = DimPermStage.from_axes(axis_bits, axes)
        pipeline = build_pipeline(
            f"pipeline:{stage.token}@{1 << p}x{1 << q}", 4
        )
        a = np.arange(1 << m, dtype=np.float64).reshape(1 << p, 1 << q)
        out = pipeline.execute(CubeNetwork(connection_machine(4)), a)
        expected = (
            np.transpose(a.reshape([1 << b for b in axis_bits]), axes)
            .reshape(1 << p, 1 << q)
        )
        # np.transpose scatters whole bit fields; the stage's map is the
        # gather realizing it, so the flattened views must agree.
        assert np.array_equal(out.reshape(-1), expected.reshape(-1))

    def test_large_rectangular_round_trip(self):
        """The ISSUE's (511, 134) shape survives a chained pipeline."""
        pipeline = build_pipeline("pipeline:bitrev+transpose@511x134", 4)
        rng = np.random.default_rng(7)
        a = rng.standard_normal((511, 134))
        out = pipeline.execute(CubeNetwork(connection_machine(4)), a)
        assert out.shape == (134, 511)
        assert np.array_equal(out, pipeline.reference(a))
