"""Serving compiled pipelines: cache, recovery, batch, and the server."""

import pytest

from repro.machine.faults import FaultPlan
from repro.machine.presets import connection_machine
from repro.plans.batch import BatchRequest, run_batch
from repro.plans.cache import PlanCache
from repro.workloads import build_pipeline, serve_workload


class TestServeWorkload:
    def test_second_serve_hits_the_cache(self):
        params = connection_machine(6)
        pipeline = build_pipeline("fft@64x64", 6)
        cache = PlanCache()
        first = serve_workload(pipeline, params, cache=cache)
        second = serve_workload(pipeline, params, cache=cache)
        assert not first.cache_hit and second.cache_hit
        assert first.resolved == second.resolved == "clean"
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_faulted_serve_recovers_and_verifies(self):
        params = connection_machine(4)
        pipeline = build_pipeline("pipeline:bitrev+transpose@13x11", 4)
        faults = FaultPlan.from_spec(4, "links=0-1,seed=3")
        served = serve_workload(
            pipeline, params, faults=faults, cache=PlanCache()
        )
        assert served.resolved.startswith("surgery")
        assert served.verified is True
        assert served.recovery is not None

    def test_transient_faults_resume(self):
        params = connection_machine(4)
        pipeline = build_pipeline("fft@16x16", 4)
        faults = FaultPlan.from_spec(4, "tlinks=0-1@1-3")
        served = serve_workload(
            pipeline, params, faults=faults, cache=PlanCache()
        )
        assert served.resolved in ("resume", "clean")
        assert served.verified is True


class TestBatchIntegration:
    def test_workload_requests_share_the_cache(self):
        requests = [
            BatchRequest(n=6, machine="cm", workload="fft@64x64"),
            BatchRequest(n=6, machine="cm", workload="fft@64x64"),
        ]
        report = run_batch(requests)
        assert report.misses == 1 and report.hits == 1
        assert report.outcomes[0].key == report.outcomes[1].key
        assert report.outcomes[0].elements == 64 * 64

    def test_mixed_transpose_and_workload_batch(self):
        requests = [
            BatchRequest(elements=256, n=4, machine="cm"),
            BatchRequest(n=4, machine="cm",
                         workload="bitrev+transpose@13x11"),
        ]
        report = run_batch(requests)
        assert len(report.outcomes) == 2
        assert report.outcomes[1].algorithm.startswith("pipeline:")

    def test_faulted_workload_request_recovers(self):
        report = run_batch([
            BatchRequest(n=4, machine="cm", workload="fft@16x16",
                         faults="links=0-1,seed=3"),
        ])
        outcome = report.outcomes[0]
        assert outcome.resolved.startswith("surgery")
        assert outcome.recovery is not None and outcome.recovery["recovered"]

    def test_workload_requires_cube_topology(self):
        with pytest.raises(ValueError, match="cube topology"):
            run_batch([
                BatchRequest(n=6, machine="cm", workload="fft@64x64",
                             topology="torus:4x4x4"),
            ])

    def test_bad_spec_surfaces_typed_error(self):
        from repro.workloads import WorkloadSpecError

        with pytest.raises(WorkloadSpecError, match="unknown stage"):
            run_batch([BatchRequest(n=4, workload="pipeline:frob")])


class TestServerIntegration:
    def test_served_pipeline_end_to_end(self):
        """Cache hit on the second request, trace validates, faulted
        request recovers — the ISSUE's acceptance path."""
        from repro.obs import spans_from_chrome_document, validate_trace
        from repro.service import (
            ServerConfig,
            TransposeRequest,
            TransposeServer,
        )

        config = ServerConfig(workers=2, trace=True)
        with TransposeServer(config) as server:
            clean = {"tenant": "t0", "workload": "fft@64x64",
                     "n": 6, "machine": "cm"}
            faulted = {
                "tenant": "t1", "n": 4, "machine": "cm",
                "workload": "pipeline:bitrev+transpose@13x11",
                "faults": "links=0-1,seed=3",
            }
            pendings = [
                server.submit(TransposeRequest.from_dict(d))
                for d in (clean, clean, faulted)
            ]
            outcomes = [p.result(60.0) for p in pendings]
        first, second, recovered = outcomes
        assert [o.status for o in outcomes] == ["served"] * 3
        assert not first.cache_hit and second.cache_hit
        assert first.fingerprint == second.fingerprint
        assert recovered.resolved.startswith("surgery")
        assert recovered.recovery["recovered"]
        doc = server.trace_document()
        assert doc["traceEvents"]
        assert validate_trace(spans_from_chrome_document(doc)) == []

    def test_admission_rejects_bad_specs_synchronously(self):
        from repro.service import (
            ServerConfig,
            TransposeRequest,
            TransposeServer,
        )

        with TransposeServer(ServerConfig(workers=1)) as server:
            with pytest.raises(ValueError, match="unknown stage"):
                server.submit(TransposeRequest.from_dict(
                    {"tenant": "t", "n": 4, "workload": "pipeline:frob"}
                ))
            with pytest.raises(ValueError, match="cube topology"):
                server.submit(TransposeRequest.from_dict({
                    "tenant": "t", "n": 6, "workload": "fft@64x64",
                    "topology": "torus:4x4x4",
                }))

    def test_resolver_keys_match_pipeline_keys(self):
        from repro.service import TransposeRequest
        from repro.service.scheduler import resolve_request

        request = TransposeRequest.from_dict(
            {"tenant": "t", "n": 6, "machine": "cm", "workload": "fft@64x64"}
        )
        resolved = resolve_request(request)
        pipeline = build_pipeline("fft@64x64", 6)
        assert resolved.key == pipeline.key(connection_machine(6))
        assert resolved.workload == pipeline.spec
        assert resolved.algorithm == pipeline.algorithm


class TestLoadgenIntegration:
    def test_workload_mix_verifies_bit_identically(self):
        from repro.service import LoadSpec
        from repro.service.loadgen import run_loadgen

        spec = LoadSpec(
            seed=7, tenants=2, requests=12, n=4, machine="cm",
            workload="pipeline:bitrev+transpose@13x11",
            workload_every=3, verify_sample=4,
        )
        report = run_loadgen(spec)
        assert report.ok
        assert report.verified > 0

    def test_workload_requires_positive_cadence(self):
        from repro.service import LoadSpec

        with pytest.raises(ValueError, match="workload_every"):
            LoadSpec(workload="fft@64x64", workload_every=0)

    def test_bad_workload_spec_rejected_at_construction(self):
        from repro.service import LoadSpec
        from repro.workloads import WorkloadSpecError

        with pytest.raises(WorkloadSpecError):
            LoadSpec(workload="pipeline:frob", workload_every=4)
