"""Larger-cube stress runs and bit-for-bit determinism.

The simulator must be exactly reproducible (no RNG, no dict-order
dependence in costs), and the algorithms must hold up beyond the toy
cube sizes used in unit tests.
"""

import numpy as np

from repro.comm.all_to_all import (
    all_to_all_personalized_data,
    all_to_all_sbnt,
)
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.one_dim import one_dim_transpose_sbnt
from repro.transpose.two_dim import two_dim_transpose_mpt


class TestEightCube:
    N_DIM = 8  # 256 processors

    def test_mpt_on_256_nodes(self):
        half = self.N_DIM // 2
        layout = pt.two_dim_cyclic(half + 1, half + 1, half, half)
        rng = np.random.default_rng(0)
        A = rng.integers(0, 1000, size=(1 << (half + 1), 1 << (half + 1)))
        A = A.astype(np.float64)
        net = CubeNetwork(
            custom_machine(self.N_DIM, port_model=PortModel.N_PORT)
        )
        out = two_dim_transpose_mpt(
            net, DistributedMatrix.from_global(A, layout), layout
        )
        assert np.array_equal(out.to_global(), A.T)
        # Completion within 2H+1 = 9 phases (rounds = 1); with only 4
        # elements per node the second injection slot is empty, so the
        # last cycle may be skipped entirely.
        assert self.N_DIM <= net.stats.phases <= self.N_DIM + 1

    def test_sbnt_transpose_on_256_nodes(self):
        layout = pt.row_consecutive(8, 8, self.N_DIM)
        rng = np.random.default_rng(1)
        A = rng.standard_normal((256, 256))
        net = CubeNetwork(
            custom_machine(self.N_DIM, port_model=PortModel.N_PORT)
        )
        out = one_dim_transpose_sbnt(
            net, DistributedMatrix.from_global(A, layout), layout
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_sbnt_all_to_all_on_128_nodes(self):
        n = 7
        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        all_to_all_personalized_data(net, 1)
        phases = all_to_all_sbnt(net)
        assert phases <= n
        N = 1 << n
        for dst in range(N):
            assert len(net.memory(dst)) == N - 1


class TestDeterminism:
    def test_identical_runs_produce_identical_stats(self):
        def run():
            layout = pt.two_dim_cyclic(4, 4, 2, 2)
            A = np.arange(256, dtype=np.float64).reshape(16, 16)
            net = CubeNetwork(
                custom_machine(4, tau=3.0, t_c=1.0, port_model=PortModel.N_PORT)
            )
            out = two_dim_transpose_mpt(
                net, DistributedMatrix.from_global(A, layout), layout, rounds=2
            )
            return out.local_data.copy(), net.stats

        data1, stats1 = run()
        data2, stats2 = run()
        assert np.array_equal(data1, data2)
        assert stats1.time == stats2.time
        assert stats1.phase_times == stats2.phase_times
        assert stats1.link_elements == stats2.link_elements

    def test_planner_is_deterministic(self):
        from repro.transpose import transpose

        layout = pt.row_consecutive(5, 5, 3)
        A = np.arange(1024, dtype=np.float64).reshape(32, 32)
        times = set()
        for _ in range(3):
            net = CubeNetwork(custom_machine(3))
            r = transpose(net, DistributedMatrix.from_global(A, layout))
            times.add(r.stats.time)
        assert len(times) == 1


class TestVectorExtremes:
    """The paper's extreme cases: vectors and single-column layouts."""

    def test_vector_layout_round_trip(self):
        from repro.layout import Layout, ProcField

        # A 2^6 vector as a 64 x 1 matrix over 8 nodes.
        lay = Layout(6, 0, (ProcField((5, 4, 3)),), name="vector")
        v = np.arange(64, dtype=np.float64).reshape(64, 1)
        dm = DistributedMatrix.from_global(v, lay)
        assert np.array_equal(dm.to_global(), v)
        assert dm.local(0).tolist() == list(range(8))

    def test_vector_transpose_is_some_to_all_classified(self):
        """Transposing a column vector into a row vector: before uses all
        nodes (row bits), after would need column bits that do not exist
        — the paper's one-to-all / all-to-one extreme, visible in the
        classification."""
        from repro.layout import Layout, ProcField
        from repro.layout.classify import CommClass, classify_transpose

        before = Layout(6, 0, (ProcField((5, 4, 3)),))
        after = Layout(0, 6, (ProcField((5, 4, 3)),))  # row vector, same bits
        info = classify_transpose(before, after)
        # Both sides use row bits of the original -> same dims: pairwise
        # (a pure relabeling); with after keyed on *different* bits it
        # degrades toward all-to-some.
        assert info.comm_class in (CommClass.PAIRWISE, CommClass.MIXED)

    def test_single_row_matrix_transpose(self):
        lay_before = pt.column_cyclic(0, 6, 3)
        lay_after = pt.row_cyclic(6, 0, 3)
        A = np.arange(64, dtype=np.float64).reshape(1, 64)
        from repro.transpose.one_dim import block_transpose

        net = CubeNetwork(custom_machine(3))
        out = block_transpose(
            net, DistributedMatrix.from_global(A, lay_before), lay_after
        )
        assert np.array_equal(out.to_global(), A.T)
        # Same bits key both sides: a pure relabeling, no messages.
        assert net.stats.messages == 0
