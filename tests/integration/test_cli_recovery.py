"""CLI recovery surface: --recover, --checkpoint-every, the chaos command."""

import json

from repro.__main__ import main
from tests.integration.test_cli import unwrap

RECOVERY_KEYS = {
    "resolved",
    "fault_encounters",
    "checkpoints",
    "rollbacks",
    "replayed_phases",
    "wasted_elements",
    "backoff_phases",
}


def plan_file(tmp_path, capsys, *extra):
    out = tmp_path / "plan.json"
    assert (
        main(
            ["plan", "-n", "4", "--elements", "256", "--algorithm", "mpt",
             "--out", str(out), *extra]
        )
        == 0
    )
    capsys.readouterr()
    return out


class TestRunRecoveryBlock:
    def test_run_json_always_has_recovery_block(self, capsys):
        assert main(["run", "-n", "4", "--elements", "256", "--json"]) == 0
        doc = unwrap(capsys.readouterr().out, "run")
        assert RECOVERY_KEYS <= set(doc["recovery"])
        assert doc["recovery"]["resolved"] == "clean"
        assert doc["recovery"]["rollbacks"] == 0

    def test_run_checkpoint_every_prices_snapshots(self, capsys):
        assert (
            main(
                ["run", "-n", "4", "--elements", "256",
                 "--checkpoint-every", "2", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "run")
        assert doc["recovery"]["checkpoints"] > 0

    def test_run_with_faults_reports_ladder(self, capsys):
        assert (
            main(
                ["run", "-n", "4", "--elements", "256",
                 "--faults", "links=0-1", "--algorithm", "mpt", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "run")
        assert doc["recovery"]["resolved"] == "ladder"
        # The fault-aware ladder may route around the dead link without
        # ever tripping it, so fault_encounters only has to be present.
        assert doc["recovery"]["fault_encounters"] >= 0


class TestReplayRecover:
    def test_replay_recover_resumes_through_transient(
        self, tmp_path, capsys
    ):
        out = plan_file(tmp_path, capsys)
        assert (
            main(
                ["replay", str(out), "--faults", "tlinks=0-1@1-3",
                 "--recover", "every=2", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "replay")
        assert doc["verified"] is True
        assert doc["recovery"]["resolved"] == "resume"
        assert doc["recovery"]["rollbacks"] >= 1

    def test_replay_recover_surgery_on_permanent_fault(
        self, tmp_path, capsys
    ):
        out = plan_file(tmp_path, capsys)
        assert (
            main(
                ["replay", str(out), "--faults", "links=0-1",
                 "--recover", "every=2", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "replay")
        assert doc["verified"] is True
        assert doc["recovery"]["resolved"].startswith("surgery-")
        assert doc["recovery"]["surgeries"]

    def test_replay_recover_failure_exits_nonzero_with_report(
        self, tmp_path, capsys
    ):
        out = plan_file(tmp_path, capsys)
        assert (
            main(
                ["replay", str(out), "--faults", "links=0-1",
                 "--recover", "every=2,surgery=off", "--json"]
            )
            == 1
        )
        captured = capsys.readouterr()
        assert "recovery failed" in captured.err
        doc = unwrap(captured.out, "replay")
        assert doc["verified"] is False
        assert doc["recovery"]["fault_encounters"] >= 1

    def test_replay_rejects_bad_recover_spec(self, tmp_path, capsys):
        out = plan_file(tmp_path, capsys)
        assert main(["replay", str(out), "--recover", "wibble=1"]) == 2
        assert "bad --recover spec" in capsys.readouterr().err

    def test_replay_text_mode_prints_recovery_line(self, tmp_path, capsys):
        out = plan_file(tmp_path, capsys)
        assert (
            main(
                ["replay", str(out), "--faults", "tlinks=0-1@1-3",
                 "--recover", "every=2"]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "resolved=resume" in text
        assert "verified:   True" in text


class TestBatchRecover:
    def test_batch_recover_reports_aggregate_block(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps(
                [
                    {"elements": 256, "n": 4, "algorithm": "mpt"},
                    {"elements": 256, "n": 4, "algorithm": "mpt",
                     "faults": "tlinks=0-1@1-3"},
                    {"elements": 256, "n": 4, "algorithm": "mpt",
                     "faults": "links=0-1"},
                ]
            )
        )
        assert (
            main(["batch", str(reqs), "--recover", "every=2", "--json"]) == 0
        )
        doc = unwrap(capsys.readouterr().out, "batch")
        (run,) = doc["runs"]
        summary = run["recovery"]
        assert summary["faulted_requests"] == 2
        assert summary["recovered"] == 2
        assert summary["rollbacks"] >= 2
        resolved = [o["resolved"] for o in run["outcomes"]]
        assert resolved[0] == "clean"
        assert resolved[1] == "resume"
        assert resolved[2].startswith("surgery-")

    def test_batch_rejects_bad_recover_spec(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"elements": 256, "n": 4}]))
        assert main(["batch", str(reqs), "--recover", "nope"]) == 2
        assert "bad --recover spec" in capsys.readouterr().err


class TestChaosCommand:
    def test_chaos_smoke_json(self, capsys):
        assert (
            main(
                ["chaos", "-n", "4", "--elements", "256", "--seeds", "2",
                 "--recover", "every=2", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "chaos")
        assert doc["ok"] is True
        assert doc["totals"]["trials"] == 2 * 3
        assert set(doc["outcomes"]) <= {"verified", "rejected-disconnected"}

    def test_chaos_writes_report_file(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        assert (
            main(
                ["chaos", "-n", "4", "--elements", "256", "--seeds", "1",
                 "--modes", "replay", "--out", str(out)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert f"wrote {out}" in captured.err
        assert "verdict: OK" in captured.out
        doc = json.loads(out.read_text())
        assert doc["ok"] is True

    def test_chaos_verbose_streams_progress(self, capsys):
        assert (
            main(
                ["chaos", "-n", "4", "--elements", "256", "--seeds", "1",
                 "--modes", "cached", "--verbose"]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "seed=  0 mode=cached" in err

    def test_chaos_rejects_unknown_mode(self, capsys):
        assert (
            main(
                ["chaos", "-n", "4", "--seeds", "1", "--modes", "bogus"]
            )
            == 2
        )
        assert "unknown chaos mode" in capsys.readouterr().err

    def test_chaos_rejects_bad_recover_spec(self, capsys):
        assert main(["chaos", "--recover", "every=zero"]) == 2
        assert "bad --recover spec" in capsys.readouterr().err


class TestChaosCorruption:
    def test_chaos_corrupt_sweep_json(self, capsys):
        assert (
            main(
                ["chaos", "-n", "4", "--elements", "256", "--seeds", "2",
                 "--corrupt", "0.08", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "chaos")
        assert doc["ok"] is True
        assert doc["config"]["corrupt_rate"] == 0.08
        assert doc["totals"]["corrupted_deliveries"] > 0

    def test_chaos_corrupt_artifact_has_integrity_totals(
        self, tmp_path, capsys
    ):
        out = tmp_path / "integrity.json"
        assert (
            main(
                ["chaos", "-n", "4", "--elements", "256", "--seeds", "1",
                 "--corrupt", "0.1", "--corrupt-intensity", "0.6",
                 "--out", str(out)]
            )
            == 0
        )
        assert "0 undetected" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["config"]["corrupt_intensity"] == 0.6
        assert {"corrupted_deliveries", "retransmits",
                "quarantined_links"} <= set(doc["totals"])
