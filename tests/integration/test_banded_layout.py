"""The §2 banded-matrix combined assignment: split processor fields.

The paper motivates combined assignments with a banded solver whose
matrix is stored with ``s`` high row bits for block rows, ``n_c``
interior row bits and ``n_c`` column bits for the 2D partitioning — the
real-processor dimensions form *two* fields in the row address.  This
exercises the multi-field Layout machinery end to end.
"""

import numpy as np

from repro.layout import DistributedMatrix, Layout, ProcField
from repro.layout.classify import classify_transpose
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.one_dim import block_convert, block_transpose


def banded_layout(p: int, q: int, s: int, n_c: int, *, gray: bool = False) -> Layout:
    """The §2 address-field partitioning
    ``(u_{p-1}..u_{p-s} | rp) (.. | vp) (u_{q-1}..u_{q-n_c} | rp) (.. | vp)
    (v_{q-1}..v_{q-n_c} | rp) (.. | vp)`` with ``s + 2 n_c`` processor bits."""
    assert p >= q >= 2 * n_c and p - s >= q
    row_block = ProcField(tuple(q + j for j in range(p - 1, p - s - 1, -1)), gray)
    row_inner = ProcField(tuple(q + j for j in range(q - 1, q - n_c - 1, -1)), gray)
    col = ProcField(tuple(range(q - 1, q - n_c - 1, -1)), gray)
    return Layout(p, q, (row_block, row_inner, col), name="banded-combined")


class TestBandedLayout:
    P, Q, S, NC = 6, 4, 1, 1

    def make(self, **kw):
        return banded_layout(self.P, self.Q, self.S, self.NC, **kw)

    def test_field_structure(self):
        lay = self.make()
        assert lay.n == self.S + 2 * self.NC
        assert len(lay.fields) == 3
        # Row processor dims are split into two groups (non-contiguous).
        assert lay.fields[0].dims == (9,)  # u_5
        assert lay.fields[1].dims == (7,)  # u_3
        assert lay.fields[2].dims == (3,)  # v_3

    def test_scatter_gather_round_trip(self):
        lay = self.make()
        rng = np.random.default_rng(5)
        A = rng.standard_normal((1 << self.P, 1 << self.Q))
        dm = DistributedMatrix.from_global(A, lay)
        assert np.array_equal(dm.to_global(), A)

    def test_gray_variant_round_trip(self):
        lay = self.make(gray=True)
        dm = DistributedMatrix.iota(lay)
        for proc in range(lay.num_procs):
            for off in (0, lay.local_size - 1):
                w = int(dm.local(proc)[off])
                assert lay.owner(w) == proc

    def test_block_assignment_is_cyclic_in_superblocks(self):
        """The s field makes block rows cyclic with respect to the row
        blocks below it (the paper's 'blocks assigned cyclically with
        respect to the row addresses')."""
        lay = self.make()
        owners_col0 = [lay.owner(u << self.Q) for u in range(1 << self.P)]
        first = owners_col0[:16]
        # The inner row field (u_3) repeats every 16 rows ...
        assert owners_col0[16:32] == first
        # ... while the s block field (u_5) flips at row 32.
        assert owners_col0[32:48] == [o + 4 for o in first]
        # Inner pattern: rows 0-7 on the low inner index, 8-15 on the high.
        assert first == [0] * 8 + [2] * 8

    def test_transpose_via_block_router(self):
        """The general block transpose handles the split-field layout."""
        lay = self.make()
        after = Layout(
            self.Q,
            self.P,
            # Mirror: rows of A^T are the old columns.
            (
                ProcField((self.P + self.Q - 1,)),  # v_3 -> top of new rows? see below
            ),
        )
        # Simpler: transpose into a plain 2D cyclic layout of matching n.
        from repro.layout import partition as pt

        after = pt.two_dim_mixed(
            self.Q, self.P, 1, 2, rows="cyclic", cols="cyclic"
        )
        assert after.n == lay.n
        A = np.arange(1 << (self.P + self.Q), dtype=np.float64).reshape(
            1 << self.P, 1 << self.Q
        )
        net = CubeNetwork(custom_machine(lay.n))
        out = block_transpose(
            net, DistributedMatrix.from_global(A, lay), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_conversion_to_plain_layout(self):
        """Converting the banded storage to a plain 2D layout (the phase
        change between solver stages the paper describes)."""
        from repro.layout import partition as pt

        lay = self.make()
        target = pt.two_dim_mixed(self.P, self.Q, 2, 1)
        assert target.n == lay.n
        A = np.arange(1 << (self.P + self.Q), dtype=np.float64).reshape(
            1 << self.P, 1 << self.Q
        )
        net = CubeNetwork(custom_machine(lay.n))
        out = block_convert(net, DistributedMatrix.from_global(A, lay), target)
        assert np.array_equal(out.to_global(), A)
        info = classify_transpose(
            lay, pt.two_dim_mixed(self.Q, self.P, 1, 2)
        )
        assert info.comm_class is not None  # classification applies too
