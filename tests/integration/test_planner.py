"""End-to-end tests of the public transpose planner."""

import numpy as np
import pytest

from repro import (
    BufferPolicy,
    CommClass,
    CubeNetwork,
    DistributedMatrix,
    connection_machine,
    custom_machine,
    default_after_layout,
    intel_ipsc,
    transpose,
)
from repro.layout import partition as pt
from repro.machine.params import PortModel


def run(before, after=None, *, machine=None, **kw):
    rng = np.random.default_rng(42)
    A = rng.standard_normal((1 << before.p, 1 << before.q))
    dm = DistributedMatrix.from_global(A, before)
    net = CubeNetwork(machine or custom_machine(before.n))
    result = transpose(net, dm, after, **kw)
    return A, result


class TestAutoSelection:
    def test_pairwise_one_port_uses_spt(self):
        before = pt.two_dim_cyclic(4, 4, 2, 2)
        A, result = run(before, machine=intel_ipsc(4))
        assert result.algorithm == "spt"
        assert result.comm_class is CommClass.PAIRWISE
        assert result.verify_against(A)

    def test_pairwise_n_port_uses_mpt(self):
        before = pt.two_dim_cyclic(4, 4, 2, 2)
        A, result = run(
            before, machine=custom_machine(4, port_model=PortModel.N_PORT)
        )
        assert result.algorithm == "mpt"
        assert result.verify_against(A)

    def test_one_dim_one_port_uses_exchange(self):
        before = pt.row_consecutive(4, 4, 3)
        A, result = run(before, machine=intel_ipsc(3))
        assert result.algorithm == "exchange"
        assert result.comm_class is CommClass.ALL_TO_ALL
        assert result.verify_against(A)

    def test_one_dim_n_port_uses_sbnt(self):
        before = pt.row_consecutive(4, 4, 3)
        A, result = run(
            before, machine=custom_machine(3, port_model=PortModel.N_PORT)
        )
        assert result.algorithm == "block-sbnt"
        assert result.verify_against(A)

    def test_mixed_encoding_uses_combined(self):
        before = pt.two_dim_mixed(
            4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        A, result = run(before)
        assert result.algorithm == "mixed-combined"
        assert result.verify_against(A)

    def test_gray_pairwise_still_mpt(self):
        """Same-encoding Gray 2D layouts commute with the transpose, so
        the plain path algorithms apply (§6.1)."""
        before = pt.two_dim_cyclic(4, 4, 2, 2, gray=True)
        A, result = run(
            before, machine=custom_machine(4, port_model=PortModel.N_PORT)
        )
        assert result.algorithm == "mpt"
        assert result.verify_against(A)

    def test_connection_machine_runs(self):
        before = pt.two_dim_cyclic(4, 4, 2, 2)
        A, result = run(before, machine=connection_machine(4))
        assert result.verify_against(A)

    def test_serial_layout(self):
        before = pt.row_cyclic(3, 3, 0)
        A, result = run(before, machine=custom_machine(0))
        assert result.comm_class is CommClass.LOCAL
        assert result.verify_against(A)


class TestExplicitSelection:
    @pytest.mark.parametrize(
        "name", ["spt", "mpt", "router", "block-exchange", "block-sbnt"]
    )
    def test_named_algorithms(self, name):
        before = pt.two_dim_cyclic(4, 4, 2, 2)
        A, result = run(
            before,
            machine=custom_machine(4, port_model=PortModel.N_PORT),
            algorithm=name,
        )
        assert result.algorithm == name
        assert result.verify_against(A)

    def test_exchange_with_policy(self):
        before = pt.row_consecutive(4, 4, 2)
        A, result = run(
            before,
            algorithm="exchange",
            policy=BufferPolicy(mode="buffered"),
        )
        assert result.verify_against(A)

    def test_unknown_algorithm_rejected(self):
        before = pt.row_cyclic(3, 3, 1)
        with pytest.raises(ValueError):
            run(before, algorithm="quantum")

    def test_rectangular_needs_explicit_after(self):
        before = pt.row_consecutive(3, 4, 2)
        rng = np.random.default_rng(0)
        A = rng.standard_normal((8, 16))
        dm = DistributedMatrix.from_global(A, before)
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            transpose(net, dm)
        result = transpose(net, dm, pt.row_consecutive(4, 3, 2))
        assert result.verify_against(A)

    def test_default_after_layout_square_identity(self):
        before = pt.two_dim_cyclic(3, 3, 1, 1)
        after = default_after_layout(before)
        assert after.fields == before.fields
        assert (after.p, after.q) == (3, 3)


class TestCostReporting:
    def test_stats_populated(self):
        before = pt.two_dim_cyclic(4, 4, 2, 2)
        _, result = run(before, machine=intel_ipsc(4))
        assert result.stats.time > 0
        assert result.stats.phases > 0
        assert result.stats.element_hops > 0

    def test_cm_faster_than_ipsc(self):
        """§9's closing observation: the Connection Machine transposes
        about two orders of magnitude faster than the iPSC."""
        before = pt.two_dim_cyclic(4, 4, 2, 2)
        _, ipsc_result = run(before, machine=intel_ipsc(4))
        _, cm_result = run(before, machine=connection_machine(4))
        assert cm_result.stats.time < ipsc_result.stats.time / 20


class TestAdditionalAlgorithmNames:
    def test_dpt_by_name(self):
        before = pt.two_dim_cyclic(4, 4, 2, 2)
        A, result = run(
            before,
            machine=custom_machine(4, port_model=PortModel.N_PORT),
            algorithm="dpt",
        )
        assert result.algorithm == "dpt"
        assert result.verify_against(A)

    def test_mixed_naive_by_name(self):
        before = pt.two_dim_mixed(
            4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        A, result = run(before, algorithm="mixed-naive")
        assert result.algorithm == "mixed-naive"
        assert result.verify_against(A)

    def test_mixed_combined_beats_naive_via_planner(self):
        before = pt.two_dim_mixed(
            4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        _, combined = run(before, machine=intel_ipsc(4), algorithm="mixed-combined")
        _, naive = run(before, machine=intel_ipsc(4), algorithm="mixed-naive")
        assert combined.stats.time < naive.stats.time
