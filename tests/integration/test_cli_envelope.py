"""The shared ``--json`` envelope and the chaos command's exit codes.

Every ``--json`` command must emit
``{"schema_version": 1, "command": <name>, "result": ...}`` so that CI
consumers can dispatch on ``command`` instead of sniffing payload
shapes, and ``chaos`` must map its three verdicts onto the CLI's exit
convention: 0 = everything verified, 1 = an invariant was violated,
2 = the soak never ran because the spec was bad.
"""

import json

import pytest

from repro.__main__ import JSON_SCHEMA_VERSION, main
from repro.recovery.chaos import ChaosReport, ChaosTrial


def envelope(capsys):
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) == {"schema_version", "command", "result"}
    assert doc["schema_version"] == JSON_SCHEMA_VERSION
    return doc


class TestEnvelope:
    @pytest.mark.parametrize(
        "argv, command",
        [
            (["advise", "-n", "4", "--json"], "advise"),
            (["run", "-n", "4", "--elements", "256", "--json"], "run"),
            (["machines", "-n", "4", "--json"], "machines"),
            (
                ["chaos", "-n", "4", "--elements", "256", "--seeds", "1",
                 "--modes", "replay", "--json"],
                "chaos",
            ),
            (
                ["loadgen", "--seed", "3", "--tenants", "2", "--requests",
                 "6", "--shapes", "2", "--verify-sample", "2", "--json"],
                "loadgen",
            ),
        ],
    )
    def test_commands_share_one_envelope(self, capsys, argv, command):
        assert main(argv) == 0
        doc = envelope(capsys)
        assert doc["command"] == command
        assert doc["result"]  # payload present, shape is per-command

    def test_batch_and_replay_share_the_envelope(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        assert (
            main(["plan", "-n", "4", "--elements", "256", "--out", str(plan)])
            == 0
        )
        capsys.readouterr()
        assert main(["replay", str(plan), "--json"]) == 0
        assert envelope(capsys)["command"] == "replay"
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"elements": 256, "n": 4}]))
        assert main(["batch", str(reqs), "--json"]) == 0
        assert envelope(capsys)["command"] == "batch"

    def test_serve_envelope(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps([{"tenant": "a", "elements": 256, "n": 4}])
        )
        assert main(["serve", str(reqs), "--workers", "1", "--json"]) == 0
        doc = envelope(capsys)
        assert doc["command"] == "serve"
        assert doc["result"]["slo"]["served"] == 1


class TestChaosExitCodes:
    def test_success_exits_zero(self, capsys):
        assert (
            main(
                ["chaos", "-n", "4", "--elements", "256", "--seeds", "1",
                 "--modes", "replay", "--recover", "every=2", "--json"]
            )
            == 0
        )
        assert envelope(capsys)["result"]["ok"] is True

    def test_invariant_violation_exits_one(self, capsys, monkeypatch):
        report = ChaosReport(
            n=4, elements=256, layout="2d", algorithm="auto",
            link_rate=0.03, transient_rate=0.1, window=32,
            policy="every=2", seeds=1, modes=("replay",),
            trials=[
                ChaosTrial(
                    seed=0, mode="replay", outcome="failed",
                    detail="stats mismatch after recovery",
                )
            ],
        )
        import repro.recovery

        monkeypatch.setattr(
            repro.recovery, "run_chaos", lambda **kw: report
        )
        assert (
            main(["chaos", "-n", "4", "--seeds", "1", "--json"]) == 1
        )
        result = envelope(capsys)["result"]
        assert result["ok"] is False
        assert result["outcomes"] == {"failed": 1}
        assert "stats mismatch" in result["trials"][0]["detail"]

    def test_invariant_violation_names_the_trial_in_text_mode(
        self, capsys, monkeypatch
    ):
        report = ChaosReport(
            n=4, elements=256, layout="2d", algorithm="auto",
            link_rate=0.03, transient_rate=0.1, window=32,
            policy="", seeds=1, modes=("cached",),
            trials=[
                ChaosTrial(
                    seed=7, mode="cached", outcome="failed",
                    detail="wrong element landed on node 3",
                )
            ],
        )
        import repro.recovery

        monkeypatch.setattr(
            repro.recovery, "run_chaos", lambda **kw: report
        )
        assert main(["chaos", "-n", "4", "--seeds", "1"]) == 1
        out = capsys.readouterr().out
        assert "FAILED seed=7 mode=cached" in out
        assert "verdict: FAILED" in out

    def test_bad_recover_spec_exits_two_without_json(self, capsys):
        assert (
            main(["chaos", "--recover", "every=nope", "--json"]) == 2
        )
        captured = capsys.readouterr()
        assert "bad --recover spec" in captured.err
        assert captured.out == ""  # no envelope for input errors

    def test_bad_mode_exits_two(self, capsys):
        assert (
            main(["chaos", "-n", "4", "--seeds", "1", "--modes", "hope"])
            == 2
        )
        assert "unknown chaos mode" in capsys.readouterr().err

    def test_bad_rate_exits_two(self, capsys):
        assert (
            main(
                ["chaos", "-n", "4", "--seeds", "1", "--link-rate", "1.5"]
            )
            == 2
        )
        assert "fault rates must lie in [0, 1]" in capsys.readouterr().err
