"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_machines(self, capsys):
        assert main(["machines", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "Intel iPSC" in out
        assert "Connection Machine" in out

    def test_advise_ipsc(self, capsys):
        assert main(["advise", "--machine", "ipsc", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "exchange (buffered)" in out

    def test_advise_cm(self, capsys):
        assert main(["advise", "--machine", "cm", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "MPT" in out

    def test_advise_custom(self, capsys):
        assert (
            main(
                [
                    "advise",
                    "--machine",
                    "custom",
                    "-n",
                    "4",
                    "--tau",
                    "2.0",
                    "--n-port",
                ]
            )
            == 0
        )
        assert "SBnT" in capsys.readouterr().out

    def test_run_2d(self, capsys):
        assert (
            main(["run", "--machine", "ipsc", "-n", "4", "--elements", "4096"])
            == 0
        )
        out = capsys.readouterr().out
        assert "verified:   True" in out
        assert "spt" in out

    def test_run_1d_rows(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--machine",
                    "cm",
                    "-n",
                    "3",
                    "--layout",
                    "1d-rows",
                    "--elements",
                    "1024",
                ]
            )
            == 0
        )
        assert "verified:   True" in capsys.readouterr().out

    def test_run_rejects_non_power_of_two(self, capsys):
        assert main(["run", "--elements", "1000"]) == 2

    def test_run_rejects_odd_cube_for_2d(self, capsys):
        assert main(["run", "-n", "3", "--layout", "2d"]) == 2

    def test_run_with_faults_degrades_and_verifies(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--machine",
                    "ipsc",
                    "-n",
                    "4",
                    "--elements",
                    "4096",
                    "--faults",
                    "links=0-1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "faults:     1 permanent" in out
        assert "degraded:   spt -> " in out
        assert "verified:   True" in out

    def test_run_with_faults_is_reproducible(self, capsys):
        argv = [
            "run",
            "-n",
            "4",
            "--elements",
            "1024",
            "--faults",
            "seed=9,link_rate=0.03",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_run_explicit_algorithm(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-n",
                    "4",
                    "--elements",
                    "1024",
                    "--algorithm",
                    "router",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "algorithm:  router" in out
        assert "verified:   True" in out

    def test_run_reports_disconnected_cube_cleanly(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-n",
                    "2",
                    "--elements",
                    "64",
                    "--faults",
                    "links=0-1+1-0+0-2+2-0",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "transpose failed under faults" in err
        assert "not strongly connected" in err

    def test_run_rejects_bad_fault_spec(self, capsys):
        assert (
            main(["run", "-n", "4", "--faults", "bogus_key=1"]) == 2
        )
        assert "bad --faults spec" in capsys.readouterr().err

    def test_rectangular_1d_cols(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--machine",
                    "ipsc",
                    "-n",
                    "2",
                    "--layout",
                    "1d-cols",
                    "--elements",
                    "2048",  # 2^11 -> 32 x 64, rectangular
                ]
            )
            == 0
        )
        assert "verified:   True" in capsys.readouterr().out
