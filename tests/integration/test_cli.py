"""Tests for the ``python -m repro`` command-line interface."""

import json

from repro.__main__ import main


def unwrap(out: str, command: str):
    """Assert the shared ``--json`` envelope and return its payload."""
    doc = json.loads(out)
    assert doc["schema_version"] == 1
    assert doc["command"] == command
    return doc["result"]


class TestCli:
    def test_machines(self, capsys):
        assert main(["machines", "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert "Intel iPSC" in out
        assert "Connection Machine" in out

    def test_advise_ipsc(self, capsys):
        assert main(["advise", "--machine", "ipsc", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "exchange (buffered)" in out

    def test_advise_cm(self, capsys):
        assert main(["advise", "--machine", "cm", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "MPT" in out

    def test_advise_custom(self, capsys):
        assert (
            main(
                [
                    "advise",
                    "--machine",
                    "custom",
                    "-n",
                    "4",
                    "--tau",
                    "2.0",
                    "--n-port",
                ]
            )
            == 0
        )
        assert "SBnT" in capsys.readouterr().out

    def test_run_2d(self, capsys):
        assert (
            main(["run", "--machine", "ipsc", "-n", "4", "--elements", "4096"])
            == 0
        )
        out = capsys.readouterr().out
        assert "verified:   True" in out
        assert "spt" in out

    def test_run_1d_rows(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--machine",
                    "cm",
                    "-n",
                    "3",
                    "--layout",
                    "1d-rows",
                    "--elements",
                    "1024",
                ]
            )
            == 0
        )
        assert "verified:   True" in capsys.readouterr().out

    def test_run_rejects_non_power_of_two(self, capsys):
        assert main(["run", "--elements", "1000"]) == 2

    def test_run_rejects_odd_cube_for_2d(self, capsys):
        assert main(["run", "-n", "3", "--layout", "2d"]) == 2

    def test_run_with_faults_degrades_and_verifies(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--machine",
                    "ipsc",
                    "-n",
                    "4",
                    "--elements",
                    "4096",
                    "--faults",
                    "links=0-1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "faults:     1 permanent" in out
        assert "degraded:   spt -> " in out
        assert "verified:   True" in out

    def test_run_with_faults_is_reproducible(self, capsys):
        argv = [
            "run",
            "-n",
            "4",
            "--elements",
            "1024",
            "--faults",
            "seed=9,link_rate=0.03",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_run_explicit_algorithm(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-n",
                    "4",
                    "--elements",
                    "1024",
                    "--algorithm",
                    "router",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "algorithm:  router" in out
        assert "verified:   True" in out

    def test_run_reports_disconnected_cube_cleanly(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-n",
                    "2",
                    "--elements",
                    "64",
                    "--faults",
                    "links=0-1+1-0+0-2+2-0",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "transpose failed under faults" in err
        assert "not strongly connected" in err

    def test_run_rejects_bad_fault_spec(self, capsys):
        assert (
            main(["run", "-n", "4", "--faults", "bogus_key=1"]) == 2
        )
        assert "bad --faults spec" in capsys.readouterr().err

    def test_rectangular_1d_cols(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--machine",
                    "ipsc",
                    "-n",
                    "2",
                    "--layout",
                    "1d-cols",
                    "--elements",
                    "2048",  # 2^11 -> 32 x 64, rectangular
                ]
            )
            == 0
        )
        assert "verified:   True" in capsys.readouterr().out

    def test_machines_lists_both_presets_with_constants(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "Intel iPSC (6-cube)" in out
        assert "Connection Machine (6-cube)" in out
        assert "one-port" in out and "n-port" in out
        assert "tau=" in out and "t_c=" in out

    def test_advise_square_root_regime_note(self, capsys):
        assert main(["advise", "--machine", "ipsc", "-n", "6"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3 lower bound" in out
        assert "regime:" in out


class TestCliJson:
    def test_advise_json(self, capsys):
        assert main(["advise", "--machine", "cm", "-n", "6", "--json"]) == 0
        doc = unwrap(capsys.readouterr().out, "advise")
        assert doc["machine"]["port_model"] == "n-port"
        assert doc["ranking"][0]["rank"] == 1
        assert any(r["algorithm"] == "MPT" for r in doc["ranking"])
        assert doc["lower_bound"] > 0

    def test_run_json(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-n",
                    "4",
                    "--elements",
                    "4096",
                    "--json",
                ]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "run")
        assert doc["verified"] is True
        assert doc["algorithm"] == "spt"
        assert doc["stats"]["phases"] > 0
        assert doc["stats"]["time"] > 0

    def test_run_json_reports_degradation(self, capsys):
        assert (
            main(
                [
                    "run",
                    "-n",
                    "4",
                    "--elements",
                    "4096",
                    "--faults",
                    "links=0-1",
                    "--json",
                ]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "run")
        assert doc["degraded"] is True
        assert doc["requested"] == "spt"
        assert doc["faults"].startswith("1 permanent")

    def test_machines_json(self, capsys):
        assert main(["machines", "-n", "5", "--json"]) == 0
        doc = unwrap(capsys.readouterr().out, "machines")
        assert [m["n"] for m in doc] == [5, 5]
        assert {m["port_model"] for m in doc} == {"one-port", "n-port"}


class TestCliPlans:
    def test_plan_writes_loadable_document(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert (
            main(
                [
                    "plan",
                    "-n",
                    "4",
                    "--elements",
                    "4096",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        from repro.plans import CompiledPlan

        plan = CompiledPlan.loads(out.read_text())
        assert plan.algorithm == "spt"
        assert "wrote" in capsys.readouterr().err

    def test_plan_to_stdout_is_json(self, capsys):
        assert main(["plan", "-n", "4", "--elements", "1024"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["algorithm"] == "spt"

    def test_plan_rejects_bad_elements(self, capsys):
        assert main(["plan", "--elements", "1000"]) == 2
        assert "power of two" in capsys.readouterr().err

    def test_plan_cache_dir_prints_key(self, tmp_path, capsys):
        assert (
            main(
                [
                    "plan",
                    "-n",
                    "4",
                    "--elements",
                    "1024",
                    "--cache-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        key = capsys.readouterr().out.strip()
        assert len(key) == 64
        assert (tmp_path / f"{key}.json").is_file()

    def test_replay_matches_run(self, tmp_path, capsys):
        out = tmp_path / "plan.json"
        assert (
            main(["plan", "-n", "4", "--elements", "4096", "--out", str(out)])
            == 0
        )
        capsys.readouterr()
        assert main(["replay", str(out), "--json"]) == 0
        replayed = unwrap(capsys.readouterr().out, "replay")
        assert main(["run", "-n", "4", "--elements", "4096", "--json"]) == 0
        direct = unwrap(capsys.readouterr().out, "run")
        assert replayed["stats"] == direct["stats"]

    def test_replay_missing_plan_fails_cleanly(self, capsys):
        assert main(["replay", "/nonexistent/plan.json"]) == 2
        assert "cannot load plan" in capsys.readouterr().err

    def test_batch_second_run_all_hits(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps(
                [
                    {"elements": 4096, "n": 4},
                    {"elements": 1024, "n": 4},
                ]
            )
        )
        assert main(["batch", str(reqs), "--repeat", "2", "--json"]) == 0
        doc = unwrap(capsys.readouterr().out, "batch")
        first, second = doc["runs"]
        assert first["misses"] == 2 and first["hits"] == 0
        assert second["hits"] == 2 and second["misses"] == 0
        assert doc["cache"]["hits"] == 2

    def test_batch_rejects_malformed_requests(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps({"elements": 64}))
        assert main(["batch", str(reqs)]) == 2
        assert "cannot load requests" in capsys.readouterr().err
