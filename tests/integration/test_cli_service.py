"""The serve and loadgen commands: happy paths, artifacts, exit codes."""

import json

from repro.__main__ import main
from tests.integration.test_cli import unwrap


class TestServeCommand:
    def test_serves_request_file(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps(
                [
                    {"tenant": "a", "elements": 256, "n": 4},
                    {"tenant": "a", "elements": 256, "n": 4},
                    {"tenant": "b", "elements": 1024, "n": 4},
                ]
            )
        )
        assert main(["serve", str(reqs), "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 3/3 request(s)" in out
        assert "a: admitted 2" in out

    def test_json_outcomes_flag_lists_every_request(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"elements": 256, "n": 4}] * 2))
        assert (
            main(["serve", str(reqs), "--workers", "1", "--json",
                  "--outcomes"])
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "serve")
        assert len(doc["outcomes"]) == 2
        assert {o["status"] for o in doc["outcomes"]} == {"served"}

    def test_missing_file_exits_two(self, capsys):
        assert main(["serve", "/nonexistent/reqs.json"]) == 2
        assert "cannot load requests" in capsys.readouterr().err

    def test_invalid_problem_exits_two(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"elements": 1000, "n": 4}]))
        assert main(["serve", str(reqs)]) == 2
        assert "invalid" in capsys.readouterr().err

    def test_bad_config_file_exits_two(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"elements": 256, "n": 4}]))
        config = tmp_path / "server.json"
        config.write_text(json.dumps({"wrokers": 2}))
        assert main(["serve", str(reqs), "--config", str(config)]) == 2
        assert "bad server config" in capsys.readouterr().err

    def test_config_file_overrides_flags(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(json.dumps([{"elements": 256, "n": 4}]))
        config = tmp_path / "server.json"
        config.write_text(json.dumps({"workers": 3}))
        assert (
            main(["serve", str(reqs), "--config", str(config),
                  "--workers", "1", "--json"])
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "serve")
        assert doc["workers"] == 3


class TestLoadgenCommand:
    def test_closed_loop_smoke(self, capsys):
        assert (
            main(
                ["loadgen", "--seed", "7", "--tenants", "2", "--requests",
                 "8", "--shapes", "2", "--verify-sample", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "8 request(s): 8 served" in out
        assert "0 violation(s)" in out

    def test_json_report_carries_verification_block(self, capsys):
        assert (
            main(
                ["loadgen", "--seed", "3", "--tenants", "2", "--requests",
                 "6", "--shapes", "2", "--verify-sample", "2", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "loadgen")
        assert doc["ok"] is True
        assert doc["verification"]["violations"] == 0
        assert doc["spec"]["seed"] == 3

    def test_out_flag_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "load.json"
        assert (
            main(
                ["loadgen", "--seed", "5", "--tenants", "2", "--requests",
                 "6", "--shapes", "2", "--verify-sample", "2",
                 "--out", str(out)]
            )
            == 0
        )
        assert f"wrote {out}" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        assert doc["ok"] is True

    def test_open_loop_overload_sheds_but_exits_zero(self, capsys):
        assert (
            main(
                ["loadgen", "--seed", "9", "--tenants", "2", "--requests",
                 "30", "--shapes", "2", "--mode", "open", "--rate", "5000",
                 "--workers", "1", "--queue-capacity", "4",
                 "--tenant-pending", "0", "--verify-sample", "2", "--json"]
            )
            == 0
        )
        doc = unwrap(capsys.readouterr().out, "loadgen")
        assert doc["server"]["slo"]["rejected"] > 0
        assert doc["verification"]["violations"] == 0

    def test_bad_spec_exits_two(self, capsys):
        assert main(["loadgen", "--fault-rate", "1.5"]) == 2
        assert "bad loadgen spec" in capsys.readouterr().err

    def test_bad_mode_rejected_by_argparse(self, capsys):
        try:
            main(["loadgen", "--mode", "sideways"])
        except SystemExit as exc:
            assert exc.code == 2
        else:
            raise AssertionError("argparse should reject the mode")
