"""The §2 claim: 16 one-dimensional embeddings, all interconvertible.

"Considering binary and Gray code encoding of the processor address
field, and consecutive, cyclic, or combined assignment with a
consecutive or split address field a total of 16 matrix embeddings
result for a one-dimensional partitioning.  The conversions between any
two of the 16 assignment schemes are equivalent, i.e., all-to-all
personalized communication ... if I = 0 and |R_a| = |R_b| = |R|."

We build the full catalogue and check (a) transposition between any two
forms yields A^T, (b) conversion (no transpose) between any two forms
yields A, and (c) the I = 0 pairs induce complete source->destination
fan-out.
"""

import itertools

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout.classify import classify_transpose
from repro.layout.partition import combined_split, one_dim_embeddings
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.one_dim import block_convert, block_transpose

P, Q, N_BITS = 5, 5, 3
FORMS = one_dim_embeddings(P, Q, N_BITS)
A = np.arange(1 << (P + Q), dtype=np.float64).reshape(1 << P, 1 << Q)

# A deterministic spread of cross-catalogue pairs (the full 16 x 16 is
# covered over time by the seeded sampling below plus the named axes).
NAMES = sorted(FORMS)
PAIRS = [
    (NAMES[i], NAMES[(i * 7 + 3) % len(NAMES)]) for i in range(len(NAMES))
]


class TestCatalogue:
    def test_sixteen_distinct_forms(self):
        assert len(FORMS) == 16
        owner_maps = set()
        w = np.arange(1 << (P + Q), dtype=np.int64)
        for lay in FORMS.values():
            owner_maps.add(tuple(lay.owner_array(w).tolist()))
        assert len(owner_maps) == 16  # truly distinct embeddings

    def test_split_field_structure(self):
        lay = combined_split(4, 4, 3, s=1, axis="row")
        assert len(lay.fields) == 2
        assert lay.fields[0].dims == (7,)  # u_3
        assert lay.fields[1].dims == (5, 4)  # u_1 u_0

    def test_split_validation(self):
        with pytest.raises(ValueError):
            combined_split(4, 4, 3, s=5)
        with pytest.raises(ValueError):
            combined_split(4, 4, 2, s=1, axis="diag")
        # A split that exactly tiles the index is legal (high + low
        # together covering all row bits).
        lay = combined_split(3, 3, 3, s=1, axis="row")
        assert lay.n == 3

    def test_split_degenerate_endpoints(self):
        # s = 0 is pure cyclic; s = n is pure consecutive.
        from repro.layout.partition import row_consecutive, row_cyclic

        assert (
            combined_split(4, 4, 2, s=0, axis="row").proc_dims
            == row_cyclic(4, 4, 2).proc_dims
        )
        assert (
            combined_split(4, 4, 2, s=2, axis="row").proc_dims
            == row_consecutive(4, 4, 2).proc_dims
        )


class TestConversions:
    @pytest.mark.parametrize("src,dst", PAIRS)
    def test_transpose_between_forms(self, src, dst):
        before = FORMS[src]
        after = FORMS[dst]
        dm = DistributedMatrix.from_global(A, before)
        net = CubeNetwork(custom_machine(N_BITS))
        out = block_transpose(net, dm, after)
        assert np.array_equal(out.to_global(), A.T), (src, dst)

    @pytest.mark.parametrize("src,dst", PAIRS)
    def test_convert_between_forms(self, src, dst):
        before = FORMS[src]
        after = FORMS[dst]
        dm = DistributedMatrix.from_global(A, before)
        net = CubeNetwork(custom_machine(N_BITS))
        out = block_convert(net, dm, after)
        assert np.array_equal(out.to_global(), A), (src, dst)

    def test_disjoint_pairs_are_all_to_all(self):
        """Corollary 6 over the catalogue: whenever I is empty and the
        field sizes match, every processor talks to every processor."""
        w = np.arange(1 << (P + Q), dtype=np.int64)
        u, v = w >> Q, w & ((1 << Q) - 1)
        w_prime = (v << P) | u
        N = 1 << N_BITS
        checked = 0
        for src, dst in itertools.product(NAMES, repeat=2):
            before, after = FORMS[src], FORMS[dst]
            info = classify_transpose(before, after)
            if info.intersection:
                continue
            owners_b = before.owner_array(w)
            owners_a = after.owner_array(w_prime)
            pairs = set(zip(owners_b.tolist(), owners_a.tolist()))
            assert len(pairs) == N * N, (src, dst)
            checked += 1
        assert checked > 100  # the vast majority of the 256 pairs
