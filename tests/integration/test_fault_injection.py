"""Fault injection: does the verification harness actually catch bugs?

A reproduction whose tests cannot fail is theatre.  Here we wrap the
engine with deliberate faults — a misrouted message, a dropped block, a
corrupted payload — and assert the standard checks (gather-compare,
conservation, exclusivity) detect each one.
"""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, Message, custom_machine
from repro.machine.engine import LinkConflictError
from repro.transpose.two_dim import two_dim_transpose_spt


class MisroutingNetwork(CubeNetwork):
    """Redirects the payload of the k-th message to a wrong neighbour."""

    def __init__(self, params, *, fault_at: int):
        super().__init__(params)
        self._countdown = fault_at

    def execute_phase(self, messages, *, exclusive=False):
        patched = []
        for msg in messages:
            if self._countdown == 0:
                wrong = msg.dst ^ 1 if msg.dst ^ 1 != msg.src else msg.dst ^ 2
                msg = Message(msg.src, wrong, msg.keys)
            self._countdown -= 1
            patched.append(msg)
        return super().execute_phase(patched, exclusive=exclusive)


class DroppingNetwork(CubeNetwork):
    """Silently deletes one block instead of delivering it."""

    def __init__(self, params, *, fault_at: int):
        super().__init__(params)
        self._countdown = fault_at

    def execute_phase(self, messages, *, exclusive=False):
        duration = super().execute_phase(messages, exclusive=exclusive)
        for msg in messages:
            if self._countdown == 0:
                # Remove the delivered block from the destination.
                for key in msg.keys:
                    if key in self.memory(msg.dst):
                        self.memory(msg.dst).pop(key)
            self._countdown -= 1
        return duration


class CorruptingNetwork(CubeNetwork):
    """Flips one element of one delivered payload."""

    def __init__(self, params, *, fault_at: int):
        super().__init__(params)
        self._countdown = fault_at

    def execute_phase(self, messages, *, exclusive=False):
        duration = super().execute_phase(messages, exclusive=exclusive)
        for msg in messages:
            if self._countdown == 0:
                block = self.memory(msg.dst).get(msg.keys[0])
                if block.data is not None and block.data.size:
                    block.data.reshape(-1)[0] += 1.0
            self._countdown -= 1
        return duration


def run_spt(network_cls, **kw):
    layout = pt.two_dim_cyclic(3, 3, 1, 1)
    A = np.arange(64, dtype=np.float64).reshape(8, 8)
    net = network_cls(custom_machine(2), **kw)
    out = two_dim_transpose_spt(
        net, DistributedMatrix.from_global(A, layout), layout
    )
    return A, out, net


class TestFaultsAreCaught:
    def test_misrouted_message_breaks_the_algorithm(self):
        """A wrongly delivered block either crashes the collection step
        (the expected block is missing) or corrupts the result."""
        with pytest.raises((KeyError, ValueError, AssertionError)):
            A, out, _ = run_spt(MisroutingNetwork, fault_at=1)
            assert np.array_equal(out.to_global(), A.T)

    def test_dropped_block_is_detected(self):
        with pytest.raises((KeyError, AssertionError)):
            A, out, net = run_spt(DroppingNetwork, fault_at=0)
            assert np.array_equal(out.to_global(), A.T)

    def test_corrupted_payload_fails_gather_compare(self):
        A, out, _ = run_spt(CorruptingNetwork, fault_at=0)
        assert not np.array_equal(out.to_global(), A.T)

    def test_clean_control_run_passes(self):
        """The same harness with the fault disabled (never triggers)."""
        A, out, net = run_spt(MisroutingNetwork, fault_at=10**9)
        assert np.array_equal(out.to_global(), A.T)
        for x in range(net.params.num_procs):
            assert len(net.memory(x)) == 0

    def test_exclusive_mode_catches_schedule_bugs(self):
        """Duplicate a pipelined message: the engine must refuse."""

        class DuplicatingNetwork(CubeNetwork):
            def execute_phase(self, messages, *, exclusive=False):
                if exclusive and messages:
                    messages = list(messages) + [messages[0]]
                return super().execute_phase(messages, exclusive=exclusive)

        layout = pt.two_dim_cyclic(3, 3, 1, 1)
        A = np.arange(64, dtype=np.float64).reshape(8, 8)
        net = DuplicatingNetwork(custom_machine(2))
        with pytest.raises((LinkConflictError, KeyError)):
            two_dim_transpose_spt(
                net,
                DistributedMatrix.from_global(A, layout),
                layout,
                packet_size=4,
            )
