"""Smoke tests: every example script must run clean.

Each example asserts its own correctness internally (they all compare
against NumPy or the paper's structure), so a zero exit status is a
meaningful check, not just an import test.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )


def test_every_example_is_covered():
    assert len(EXAMPLES) >= 8
    assert "quickstart.py" in EXAMPLES
