"""CLI coverage for ``--workload``: envelopes, recovery, exit codes."""

import json

import pytest

from repro.__main__ import JSON_SCHEMA_VERSION, main


def envelope(capsys):
    doc = json.loads(capsys.readouterr().out)
    assert set(doc) == {"schema_version", "command", "result"}
    assert doc["schema_version"] == JSON_SCHEMA_VERSION
    return doc


class TestRunWorkload:
    def test_clean_run_envelope(self, capsys):
        assert (
            main(
                ["run", "--machine", "cm", "-n", "6",
                 "--workload", "fft@64x64", "--json"]
            )
            == 0
        )
        result = envelope(capsys)["result"]
        assert result["workload"] == (
            "pipeline:dimperm:shuffle+bitrev+transpose@64x64"
        )
        assert result["verified"] is True
        assert result["stages"] == ["dimperm:shuffle", "bitrev", "transpose"]
        assert (result["rows"], result["cols"]) == (64, 64)
        assert result["stats"]["phases"] > 0

    def test_faulted_run_recovers_with_recovery_block(self, capsys):
        assert (
            main(
                ["run", "--machine", "cm", "-n", "4",
                 "--workload", "pipeline:bitrev+transpose@13x11",
                 "--faults", "links=0-1,seed=3", "--json"]
            )
            == 0
        )
        result = envelope(capsys)["result"]
        assert result["verified"] is True
        assert result["resolved"].startswith("surgery")
        assert result["recovery"]["recovered"] is True

    def test_faulted_text_report_names_resolution(self, capsys):
        assert (
            main(
                ["run", "--machine", "cm", "-n", "4",
                 "--workload", "pipeline:bitrev+transpose@13x11",
                 "--faults", "tlinks=0-1@1-3"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resolved:   resume" in out
        assert "verified:   True" in out

    def test_bad_spec_exits_two(self, capsys):
        assert (
            main(
                ["run", "--machine", "cm", "-n", "4",
                 "--workload", "pipeline:frobnicate"]
            )
            == 2
        )
        assert "unknown stage" in capsys.readouterr().err

    def test_workload_is_cube_only(self, capsys):
        assert (
            main(
                ["run", "--machine", "cm", "--workload", "fft@64x64",
                 "--topology", "torus:4x4x4"]
            )
            == 2
        )
        assert "cube topology" in capsys.readouterr().err


class TestPlanWorkload:
    def test_plan_envelope_carries_key_and_ops(self, capsys):
        assert (
            main(
                ["plan", "--machine", "cm", "-n", "4",
                 "--workload", "pipeline:bitrev+transpose@13x11", "--json"]
            )
            == 0
        )
        result = envelope(capsys)["result"]
        assert result["algorithm"] == "pipeline:bitrev+transpose"
        assert result["key"]
        assert result["ops"]

    def test_planned_pipeline_replays_from_disk(self, tmp_path, capsys):
        plan = tmp_path / "fft.json"
        assert (
            main(
                ["plan", "--machine", "cm", "-n", "6",
                 "--workload", "fft@64x64", "--out", str(plan)]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["replay", str(plan), "--json"]) == 0
        doc = envelope(capsys)
        assert doc["command"] == "replay"
        assert doc["result"]["algorithm"].startswith("pipeline:")

    def test_planned_pipeline_recovers_on_replay(self, tmp_path, capsys):
        plan = tmp_path / "rect.json"
        assert (
            main(
                ["plan", "--machine", "cm", "-n", "4",
                 "--workload", "pipeline:bitrev+transpose@13x11",
                 "--out", str(plan)]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                ["replay", str(plan), "--faults", "links=0-1,seed=3",
                 "--recover", "every=2", "--json"]
            )
            == 0
        )
        result = envelope(capsys)["result"]
        assert result["recovery"]["resolved"].startswith("surgery")

    def test_bad_spec_exits_two(self, capsys):
        assert (
            main(
                ["plan", "--machine", "cm", "-n", "4",
                 "--workload", "transpose@0x4"]
            )
            == 2
        )
        assert "bad --workload spec" in capsys.readouterr().err


class TestServeAndLoadgenWorkload:
    def test_serve_accepts_workload_requests(self, tmp_path, capsys):
        reqs = tmp_path / "reqs.json"
        reqs.write_text(
            json.dumps(
                [
                    {"tenant": "a", "n": 6, "machine": "cm",
                     "workload": "fft@64x64"},
                    {"tenant": "b", "elements": 256, "n": 4},
                ]
            )
        )
        assert main(["serve", str(reqs), "--workers", "1", "--json"]) == 0
        assert envelope(capsys)["result"]["slo"]["served"] == 2

    def test_loadgen_workload_mix_envelope(self, capsys):
        assert (
            main(
                ["loadgen", "--seed", "7", "--tenants", "2", "--requests",
                 "8", "-n", "4", "--workload",
                 "pipeline:bitrev+transpose@13x11", "--workload-every", "2",
                 "--verify-sample", "2", "--json"]
            )
            == 0
        )
        result = envelope(capsys)["result"]
        assert result["spec"]["workload"] == "pipeline:bitrev+transpose@13x11"
        assert result["server"]["slo"]["served"] == 8
        assert result["verification"]["violations"] == 0
        assert result["ok"] is True

    @pytest.mark.parametrize(
        "argv",
        [
            ["loadgen", "--requests", "4", "--workload", "pipeline:frob"],
            ["loadgen", "--requests", "4", "--workload", "fft@64x64",
             "--workload-every", "0"],
        ],
    )
    def test_bad_loadgen_workload_exits_two(self, capsys, argv):
        assert main(argv) == 2
        assert capsys.readouterr().err
