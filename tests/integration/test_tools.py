"""Smoke tests for the repository tooling (docs/report generators)."""

import importlib.util
import os

TOOLS = os.path.join(os.path.dirname(__file__), "..", "..", "tools")


def load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(TOOLS, f"{name}.py")
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestApiDocsGenerator:
    def test_generates_index(self, tmp_path, monkeypatch):
        gen = load("gen_api_docs")
        monkeypatch.setattr(gen, "OUT", tmp_path / "api.md")
        assert gen.main() == 0
        text = (tmp_path / "api.md").read_text()
        assert "## `repro`" in text
        assert "## `repro.transpose.exchange`" in text
        assert "class `CubeNetwork`" in text
        assert "mpt_min_time" in text

    def test_first_paragraph_helper(self):
        gen = load("gen_api_docs")

        def sample():
            """Line one
            continues.

            Second paragraph dropped."""

        assert gen.first_paragraph(sample) == "Line one continues."


class TestResultsReport:
    def test_assembles_report(self, tmp_path, monkeypatch):
        rep = load("make_results_report")
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig10_one_dim.txt").write_text("== Figure 10 ==\ndata")
        (results / "custom_extra.txt").write_text("== Extra ==\nrows")
        monkeypatch.setattr(rep, "RESULTS", results)
        monkeypatch.setattr(rep, "OUT", tmp_path / "RESULTS.md")
        assert rep.main() == 0
        text = (tmp_path / "RESULTS.md").read_text()
        assert "== Figure 10 ==" in text
        assert "== Extra ==" in text  # un-catalogued files appended

    def test_missing_results_dir(self, tmp_path, monkeypatch):
        rep = load("make_results_report")
        monkeypatch.setattr(rep, "RESULTS", tmp_path / "nope")
        assert rep.main() == 1
