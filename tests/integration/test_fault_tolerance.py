"""Planner degradation under injected faults: the graceful path.

The acceptance bar: with a seeded `FaultPlan` killing any single link,
every planner strategy completes a correct transpose (verified by the
run-level invariant checker that `transpose` applies to every run),
executing at most one fallback strategy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import (
    CubeNetwork,
    DisconnectedCubeError,
    FaultPlan,
    LinkFault,
    LinkFailureError,
    NodeFailureError,
    NodeFault,
    custom_machine,
)
from repro.machine.params import PortModel
from repro.transpose import (
    TransposeInvariantError,
    check_transpose_invariants,
    routed_universal_transpose,
    schedule_links,
    transpose,
)

STRATEGIES = ("spt", "dpt", "mpt", "router", "auto")


def problem(p=3, half=1, seed=0):
    layout = pt.two_dim_cyclic(p, p, half, half)
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((1 << p, 1 << p))
    return A, DistributedMatrix.from_global(A, layout), layout


class TestSingleLinkAcceptance:
    def test_every_link_every_strategy_completes(self):
        """Any single dead link, any strategy: correct, at most one run."""
        A, dm, layout = problem()
        n = layout.n
        for x in range(1 << n):
            for d in range(n):
                plan = FaultPlan.single_link(n, x, x ^ (1 << d))
                for algo in STRATEGIES:
                    net = CubeNetwork(custom_machine(n), faults=plan)
                    res = transpose(net, dm, layout, algorithm=algo)
                    assert res.verify_against(A), (x, d, algo)
                    # Proactive feasibility means the chosen tier never
                    # touches the dead resource: zero fault encounters,
                    # so exactly one strategy executed.
                    assert net.stats.fault_events == 0, (x, d, algo)

    def test_larger_cube_degrades_to_adjacent_tiers(self):
        """On a 4-cube a DPT-only dead link lets MPT degrade to SPT, not
        all the way to the router."""
        A, dm, layout = problem(p=4, half=2)
        n = layout.n
        dpt_only = sorted(schedule_links("dpt", n) - schedule_links("spt", n))
        assert dpt_only
        src, dst = dpt_only[0]
        net = CubeNetwork(
            custom_machine(n, port_model=PortModel.N_PORT),
            faults=FaultPlan.single_link(n, src, dst),
        )
        res = transpose(net, dm, layout, algorithm="mpt")
        assert res.algorithm == "spt"
        assert res.fallbacks == ("mpt", "dpt")
        assert res.verify_against(A)

    def test_spt_survives_kill_off_its_schedule(self):
        A, dm, layout = problem(p=4, half=2)
        n = layout.n
        off_spt = sorted(schedule_links("mpt", n) - schedule_links("spt", n))
        src, dst = off_spt[0]
        net = CubeNetwork(
            custom_machine(n), faults=FaultPlan.single_link(n, src, dst)
        )
        res = transpose(net, dm, layout, algorithm="spt")
        assert res.algorithm == "spt"  # untouched: no degradation
        assert not res.degraded
        assert res.recovery_overhead == 0.0
        assert res.verify_against(A)


class TestDegradationReporting:
    def test_clean_run_reports_no_degradation(self):
        A, dm, layout = problem()
        net = CubeNetwork(custom_machine(layout.n))
        res = transpose(net, dm, layout, algorithm="spt")
        assert res.requested == res.algorithm == "spt"
        assert res.fallbacks == ()
        assert res.recovery_overhead == 0.0
        assert not res.degraded

    def test_degraded_run_reports_ladder_and_overhead(self):
        A, dm, layout = problem()
        n = layout.n
        net = CubeNetwork(
            custom_machine(n), faults=FaultPlan.single_link(n, 0, 1)
        )
        res = transpose(net, dm, layout, algorithm="mpt")
        assert res.requested == "mpt"
        assert res.degraded
        assert res.algorithm not in res.fallbacks
        assert res.fallbacks[0] == "mpt"
        # Overhead is the faulted run vs a clean run of the request; it
        # is a real number either way (can be negative on one-port).
        assert isinstance(res.recovery_overhead, float)
        assert res.recovery_overhead != 0.0

    def test_degrade_false_fails_fast(self):
        A, dm, layout = problem()
        n = layout.n
        net = CubeNetwork(
            custom_machine(n), faults=FaultPlan.single_link(n, 0, 1)
        )
        with pytest.raises(LinkFailureError):
            transpose(net, dm, layout, algorithm="spt", degrade=False)

    def test_dead_node_is_undeliverable(self):
        A, dm, layout = problem()
        n = layout.n
        net = CubeNetwork(
            custom_machine(n),
            faults=FaultPlan(n, node_faults=(NodeFault(1),)),
        )
        with pytest.raises(NodeFailureError):
            transpose(net, dm, layout, algorithm="spt")

    def test_disconnected_cube_diagnosed_up_front(self):
        A, dm, layout = problem()
        n = layout.n
        plan = FaultPlan(
            n,
            tuple(
                LinkFault(a, b)
                for a, b in ((0, 1), (1, 0), (0, 2), (2, 0))
            ),
        )
        net = CubeNetwork(custom_machine(n), faults=plan)
        with pytest.raises(DisconnectedCubeError):
            transpose(net, dm, layout, algorithm="spt")


class TestReactiveFallback:
    def test_exchange_falls_back_to_universal_router(self):
        """All-to-all layouts cannot be pre-checked: the exchange run
        aborts on the fault and the planner retries once, routed."""
        p, q, n = 3, 3, 2
        layout = pt.row_consecutive(p, q, n)
        rng = np.random.default_rng(1)
        A = rng.standard_normal((1 << p, 1 << q))
        dm = DistributedMatrix.from_global(A, layout)
        net = CubeNetwork(
            custom_machine(n), faults=FaultPlan.single_link(n, 0, 1)
        )
        res = transpose(net, dm, pt.row_consecutive(q, p, n))
        assert res.requested == "exchange"
        assert res.algorithm == "routed-universal"
        assert res.fallbacks == ("exchange",)
        assert net.stats.fault_events >= 1  # the abort was a real fault
        assert res.verify_against(A)

    def test_mixed_encoding_falls_back(self):
        layout = pt.two_dim_mixed(
            4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        rng = np.random.default_rng(2)
        A = rng.standard_normal((16, 16))
        dm = DistributedMatrix.from_global(A, layout)
        net = CubeNetwork(
            custom_machine(4), faults=FaultPlan.single_link(4, 0, 2)
        )
        res = transpose(net, dm, layout)
        assert res.requested == "mixed-combined"
        assert res.degraded
        assert res.verify_against(A)


class TestUniversalFallbackDirect:
    def test_pairwise_layout(self):
        A, dm, layout = problem()
        net = CubeNetwork(custom_machine(layout.n))
        out = routed_universal_transpose(net, dm, layout)
        assert np.array_equal(out.to_global(), A.T)
        assert net.total_elements() == 0

    def test_all_to_all_layout_with_fault(self):
        p, q, n = 3, 2, 2
        layout = pt.row_consecutive(p, q, n)
        rng = np.random.default_rng(3)
        A = rng.standard_normal((1 << p, 1 << q))
        dm = DistributedMatrix.from_global(A, layout)
        net = CubeNetwork(
            custom_machine(n), faults=FaultPlan.single_link(n, 1, 3)
        )
        out = routed_universal_transpose(net, dm, pt.row_consecutive(q, p, n))
        assert np.array_equal(out.to_global(), A.T)


class TestInvariantChecker:
    def test_accepts_a_correct_run(self):
        A, dm, layout = problem()
        net = CubeNetwork(custom_machine(layout.n))
        res = transpose(net, dm, layout)
        check_transpose_invariants(net, A, res.matrix)

    def test_rejects_wrong_placement(self):
        A, dm, layout = problem()
        net = CubeNetwork(custom_machine(layout.n))
        res = transpose(net, dm, layout)
        tampered = res.matrix.copy()
        tampered.local_data[0, 0] += 1.0
        with pytest.raises(TransposeInvariantError, match="placement"):
            check_transpose_invariants(net, A, tampered)

    def test_rejects_stranded_blocks(self):
        from repro.machine import Block

        A, dm, layout = problem()
        net = CubeNetwork(custom_machine(layout.n))
        res = transpose(net, dm, layout)
        net.place(0, Block("leak", virtual_size=7))
        with pytest.raises(TransposeInvariantError, match="stranded"):
            check_transpose_invariants(net, A, res.matrix)

    def test_rejects_lost_elements(self):
        A, dm, layout = problem()
        net = CubeNetwork(custom_machine(layout.n))
        res = transpose(net, dm, layout)
        with pytest.raises(TransposeInvariantError, match="conservation"):
            check_transpose_invariants(net, A[:4], res.matrix)


@settings(max_examples=25, deadline=None)
@given(
    half=st.integers(1, 2),
    p=st.integers(2, 4),
    seed=st.integers(0, 2**16),
    algo=st.sampled_from(STRATEGIES),
    link=st.integers(0, 2**30),
)
def test_property_single_fault_transpose(half, p, seed, algo, link):
    """Random layout/size/strategy/dead-link: conservation + placement."""
    if half > p:
        half = p
    n = 2 * half
    layout = pt.two_dim_cyclic(p, p, half, half)
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((1 << p, 1 << p))
    dm = DistributedMatrix.from_global(A, layout)
    x = (link >> 8) % (1 << n)
    d = link % n
    plan = FaultPlan.single_link(n, x, x ^ (1 << d))
    net = CubeNetwork(custom_machine(n), faults=plan)
    res = transpose(net, dm, layout, algorithm=algo)
    assert res.matrix.total_elements == A.size
    assert net.total_elements() == 0
    assert res.verify_against(A)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    gray=st.booleans(),
    encode_seed=st.integers(0, 3),
)
def test_property_transient_storm(seed, gray, encode_seed):
    """Seeded transient link faults: the degraded run still lands A.T."""
    p, half = 3, 1
    n = 2 * half
    layout = pt.two_dim_cyclic(p, p, half, half, gray=gray)
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((1 << p, 1 << p))
    dm = DistributedMatrix.from_global(A, layout)
    plan = FaultPlan.random(
        n, seed=seed + encode_seed, transient_rate=0.3, window=16
    )
    net = CubeNetwork(custom_machine(n), faults=plan)
    res = transpose(net, dm, layout)
    assert res.verify_against(A)
    assert net.total_elements() == 0
