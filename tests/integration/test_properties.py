"""Cross-cutting properties: invariants that hold across all algorithms.

These tests treat the library as a black box and check the physics-like
invariants of the model: data conservation, double-transpose identity,
algorithm agreement, cost-model homogeneity, and accounting consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import Block, CubeNetwork, Message, custom_machine
from repro.machine.params import PortModel
from repro.transpose import (
    exchange_transpose,
    mixed_code_transpose_combined,
    two_dim_transpose_dpt,
    two_dim_transpose_mpt,
    two_dim_transpose_router,
    two_dim_transpose_spt,
)
from repro.transpose.one_dim import block_transpose


PAIRWISE_ALGOS = {
    "exchange": lambda net, dm, after: exchange_transpose(net, dm, after),
    "spt": lambda net, dm, after: two_dim_transpose_spt(net, dm, after),
    "spt-pipe": lambda net, dm, after: two_dim_transpose_spt(
        net, dm, after, packet_size=8
    ),
    "dpt": lambda net, dm, after: two_dim_transpose_dpt(
        net, dm, after, packet_size=8
    ),
    "mpt": lambda net, dm, after: two_dim_transpose_mpt(net, dm, after, rounds=2),
    "router": lambda net, dm, after: two_dim_transpose_router(net, dm, after),
    "block": lambda net, dm, after: block_transpose(net, dm, after),
    "mixed": lambda net, dm, after: mixed_code_transpose_combined(net, dm, after),
}


def fresh(n=4):
    return CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))


def square_dm(p=4, half=2, seed=0):
    layout = pt.two_dim_cyclic(p, p, half, half)
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((1 << p, 1 << p))
    return A, DistributedMatrix.from_global(A, layout), layout


class TestAlgorithmAgreement:
    def test_all_pairwise_algorithms_agree(self):
        """Every algorithm yields the identical distributed result."""
        A, dm, layout = square_dm()
        results = {}
        for name, fn in PAIRWISE_ALGOS.items():
            out = fn(fresh(), dm, layout)
            results[name] = out.local_data
        baseline = results.pop("exchange")
        for name, data in results.items():
            assert np.array_equal(data, baseline), name

    def test_double_transpose_is_identity(self):
        A, dm, layout = square_dm()
        for name, fn in PAIRWISE_ALGOS.items():
            once = fn(fresh(), dm, layout)
            twice = fn(fresh(), once, layout)
            assert np.array_equal(twice.local_data, dm.local_data), name

    def test_input_never_mutated(self):
        A, dm, layout = square_dm()
        snapshot = dm.local_data.copy()
        for name, fn in PAIRWISE_ALGOS.items():
            fn(fresh(), dm, layout)
            assert np.array_equal(dm.local_data, snapshot), name


class TestConservation:
    def test_network_memories_drained(self):
        """No algorithm leaves blocks stranded in node memories."""
        A, dm, layout = square_dm()
        for name, fn in PAIRWISE_ALGOS.items():
            net = fresh()
            fn(net, dm, layout)
            for x in range(net.params.num_procs):
                assert len(net.memory(x)) == 0, (name, x)

    def test_element_hops_equal_link_loads(self):
        A, dm, layout = square_dm()
        net = fresh()
        two_dim_transpose_mpt(net, dm, layout, rounds=2)
        assert net.stats.element_hops == sum(net.stats.link_elements.values())

    def test_phase_times_sum_to_comm_time(self):
        A, dm, layout = square_dm()
        net = fresh()
        two_dim_transpose_spt(net, dm, layout, packet_size=4)
        assert net.stats.comm_time == pytest.approx(sum(net.stats.phase_times))

    def test_total_data_constant(self):
        """Sum of all data is preserved by every algorithm (no element is
        duplicated or dropped)."""
        A, dm, layout = square_dm()
        total = dm.local_data.sum()
        for name, fn in PAIRWISE_ALGOS.items():
            out = fn(fresh(), dm, layout)
            assert out.local_data.sum() == pytest.approx(total), name


class TestCostModelHomogeneity:
    @pytest.mark.parametrize("name", ["spt", "mpt", "exchange"])
    def test_time_scales_linearly_with_costs(self, name):
        """time(a*tau, a*t_c) == a * time(tau, t_c): the model is a
        homogeneous function of the machine constants."""
        A, dm, layout = square_dm()
        fn = PAIRWISE_ALGOS[name]
        times = []
        for scale in (1.0, 3.0):
            net = CubeNetwork(
                custom_machine(
                    4,
                    tau=scale * 2.0,
                    t_c=scale * 1.0,
                    port_model=PortModel.N_PORT,
                )
            )
            fn(net, dm, layout)
            times.append(net.time)
        assert times[1] == pytest.approx(3.0 * times[0])

    def test_pure_startup_time_counts_phases(self):
        """With t_c = 0, each phase of the step-by-step SPT costs exactly
        the per-message start-ups."""
        A, dm, layout = square_dm()
        net = CubeNetwork(custom_machine(4, tau=1.0, t_c=0.0))
        two_dim_transpose_spt(net, dm, layout)
        L = layout.local_size
        B = net.params.packet_capacity
        packets = -(-L // B)
        assert net.time == pytest.approx(4 * packets)

    def test_n_port_never_slower_than_one_port(self):
        A, dm, layout = square_dm()
        for name in ("spt", "dpt", "mpt", "block"):
            fn = PAIRWISE_ALGOS[name]
            one = CubeNetwork(custom_machine(4, port_model=PortModel.ONE_PORT))
            fn(one, dm, layout)
            multi = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
            fn(multi, dm, layout)
            assert multi.time <= one.time * 1.0001, name


class TestEngineFailureModes:
    def test_midstream_missing_block_raises_cleanly(self):
        net = CubeNetwork(custom_machine(2))
        net.place(0, Block("a", virtual_size=4))
        net.execute_phase([Message(0, 1, ("a",))])
        with pytest.raises(KeyError):
            net.execute_phase([Message(0, 1, ("a",))])  # already moved

    def test_duplicate_placement_raises(self):
        net = CubeNetwork(custom_machine(2))
        net.place(0, Block("a", virtual_size=4))
        with pytest.raises(ValueError):
            net.place(0, Block("a", virtual_size=4))

    def test_deliberately_conflicting_pipeline_caught(self):
        """A broken schedule that reuses a link in exclusive mode fails
        loudly instead of under-costing."""
        from repro.machine.engine import LinkConflictError

        net = CubeNetwork(custom_machine(2))
        net.place(0, Block("a", virtual_size=1))
        net.place(0, Block("b", virtual_size=1))
        with pytest.raises(LinkConflictError):
            net.execute_phase(
                [Message(0, 1, ("a",)), Message(0, 1, ("b",))], exclusive=True
            )

    def test_stats_merge(self):
        from repro.machine.metrics import TransferStats

        a = TransferStats()
        a.record_message(0, 1, 10, 2)
        a.record_phase(5.0)
        b = TransferStats()
        b.record_message(0, 1, 7, 1)
        b.record_phase(3.0)
        b.record_copy(4, 1.0)
        a.merge(b)
        assert a.time == pytest.approx(9.0)
        assert a.startups == 3
        assert a.element_hops == 17
        assert a.link_elements[(0, 1)] == 17
        assert a.max_link_elements == 17
        assert a.copied_elements == 4


@settings(max_examples=15, deadline=None)
@given(
    half=st.integers(1, 2),
    p=st.integers(2, 4),
    seed=st.integers(0, 2**16),
    gray=st.booleans(),
)
def test_property_pairwise_transpose_roundtrip(half, p, seed, gray):
    """Random square 2D layouts: transpose twice == identity, for the
    planner-chosen algorithm on a random machine."""
    if half > p:
        half = p
    from repro.transpose import transpose

    layout = pt.two_dim_cyclic(p, p, half, half, gray=gray)
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((1 << p, 1 << p))
    dm = DistributedMatrix.from_global(A, layout)
    net = CubeNetwork(custom_machine(2 * half))
    once = transpose(net, dm).matrix
    net2 = CubeNetwork(custom_machine(2 * half))
    twice = transpose(net2, once).matrix
    assert np.array_equal(twice.local_data, dm.local_data)
    assert np.array_equal(once.to_global(), A.T)
