"""Load generator: seeded determinism, soak behaviour, invariants."""

import pytest

from repro.service import (
    LoadSpec,
    ServerConfig,
    build_workload,
    deterministic_counters,
    run_loadgen,
)


class TestLoadSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            LoadSpec(mode="sideways")
        with pytest.raises(ValueError, match="fault_rate"):
            LoadSpec(fault_rate=1.5)
        with pytest.raises(ValueError, match="unknown loadgen"):
            LoadSpec.from_dict({"sead": 7})

    def test_dict_round_trip(self):
        spec = LoadSpec(seed=3, tenants=2, requests=10, fault_rate=0.5)
        assert LoadSpec.from_dict(spec.as_dict()) == spec


class TestWorkload:
    def test_workload_is_a_pure_function_of_the_spec(self):
        spec = LoadSpec(seed=5, tenants=3, requests=30, fault_rate=0.3)
        assert build_workload(spec) == build_workload(spec)
        other = build_workload(LoadSpec(seed=6, tenants=3, requests=30))
        assert build_workload(spec) != other

    def test_tenants_round_robin_and_shape_pool_bounded(self):
        spec = LoadSpec(seed=5, tenants=4, requests=40, shapes=3)
        requests = build_workload(spec)
        assert {r.tenant for r in requests} == {
            "tenant-0", "tenant-1", "tenant-2", "tenant-3"
        }
        shapes = {
            (r.problem.elements, r.problem.layout) for r in requests
        }
        assert len(shapes) <= 3


class TestRunLoadgen:
    def test_closed_loop_serves_everything_with_high_hit_rate(self):
        spec = LoadSpec(seed=7, tenants=4, requests=32, shapes=2,
                        verify_sample=4)
        report = run_loadgen(spec, ServerConfig(workers=2))
        slo = report.server.slo()
        assert slo["served"] == 32
        assert slo["rejected"] == 0
        # Compile-once/serve-many: 2 shapes -> at most 2+workers misses
        # (the benign double-compile race), everything else hits.
        assert report.server.cache["misses"] <= 2 + 2
        assert slo["cache_hit_rate"] >= (32 - 4) / 32
        assert report.ok and report.verified == 4
        assert "invariants" in report.summary()

    def test_open_loop_under_pressure_sheds_but_stays_sound(self):
        spec = LoadSpec(seed=9, tenants=3, requests=40, shapes=2,
                        mode="open", rate=5000.0, verify_sample=3)
        config = ServerConfig(
            workers=1, queue_capacity=4, tenant_pending=None
        )
        report = run_loadgen(spec, config)
        slo = report.server.slo()
        assert slo["rejected"] > 0, "open loop at 5000 rps must shed"
        assert slo["served"] + slo["rejected"] + slo["failed"] == 40
        assert slo["failed"] == 0
        assert report.invariant_violations == 0

    def test_report_as_dict_shape(self):
        spec = LoadSpec(seed=1, tenants=1, requests=4, shapes=1,
                        verify_sample=2)
        doc = run_loadgen(spec, ServerConfig(workers=1)).as_dict()
        assert set(doc) == {"spec", "server", "verification", "ok"}
        assert doc["verification"]["violations"] == 0


class TestDeterministicCounters:
    def test_reproducible_and_conserved(self):
        spec = LoadSpec(seed=11, tenants=2, requests=20, shapes=2,
                        fault_rate=0.25)
        config = ServerConfig(queue_capacity=12, tenant_pending=5)
        a = deterministic_counters(spec, config)
        assert a == deterministic_counters(spec, config)
        assert a["admitted"] + a["rejected"] == a["requests"]
        assert a["served"] + a["failed"] == a["admitted"]
        assert a["cache_hits"] + a["cache_misses"] == a["served"]
        assert a["failed"] == 0

    def test_fault_storm_recovers_in_place(self):
        spec = LoadSpec(seed=11, tenants=2, requests=24, shapes=2,
                        fault_rate=0.5)
        counters = deterministic_counters(
            spec, ServerConfig(queue_capacity=64, tenant_pending=None)
        )
        assert counters["rejected"] == 0
        assert counters["recovered"] > 0
        assert counters["failed"] == 0


class TestPayloadSpotChecks:
    def test_sampled_requests_get_payload_byte_checks(self):
        spec = LoadSpec(seed=7, tenants=2, requests=12, shapes=2,
                        verify_sample=3)
        report = run_loadgen(spec, ServerConfig(workers=1))
        assert report.ok
        assert report.payload_checked == report.verified == 3
        doc = report.as_dict()
        assert doc["verification"]["payload_checked"] == 3
        assert "payload-byte" in report.summary()

    def test_solo_payload_check_is_bit_exact(self):
        from repro.service.loadgen import build_workload, solo_payload_check

        spec = LoadSpec(seed=7, tenants=1, requests=1, shapes=1)
        (request,) = build_workload(spec)
        verdict = solo_payload_check(request)
        assert verdict["ok"] is True
        assert verdict["served_crc"] == verdict["expected_crc"]
