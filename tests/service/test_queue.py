"""Admission queue: shedding gates, EDF-within-priority, batching."""

import pytest

from repro.plans.batch import BatchRequest
from repro.service import (
    AdmissionPolicy,
    AdmissionQueue,
    AdmissionRejectedError,
    TransposeRequest,
)

PROBLEM = BatchRequest(elements=256, n=4)


def request(rid=0, tenant="t0", priority=1, deadline=None):
    return TransposeRequest(
        tenant=tenant,
        problem=PROBLEM,
        priority=priority,
        deadline=deadline,
        request_id=rid,
    )


def logical_queue(policy=None, start=0.0):
    """A queue on a controllable logical clock."""
    state = {"now": start}
    q = AdmissionQueue(policy, clock=lambda: state["now"])
    return q, state


class TestAdmissionGates:
    def test_queue_full_backpressure(self):
        q, _ = logical_queue(AdmissionPolicy(capacity=2, tenant_pending=None))
        q.submit(request(0), "k")
        q.submit(request(1), "k")
        with pytest.raises(AdmissionRejectedError) as err:
            q.submit(request(2), "k")
        assert err.value.reason == "queue_full"
        assert len(q) == 2

    def test_tenant_quota_isolates_noisy_tenant(self):
        q, _ = logical_queue(AdmissionPolicy(capacity=10, tenant_pending=2))
        q.submit(request(0, "noisy"), "k")
        q.submit(request(1, "noisy"), "k")
        with pytest.raises(AdmissionRejectedError) as err:
            q.submit(request(2, "noisy"), "k")
        assert err.value.reason == "tenant_quota"
        # A quieter tenant is unaffected by the noisy one's quota.
        q.submit(request(3, "quiet"), "k")
        assert q.snapshot()["pending_by_tenant"] == {"noisy": 2, "quiet": 1}

    def test_rate_limit_on_logical_clock(self):
        q, state = logical_queue(
            AdmissionPolicy(
                capacity=100,
                tenant_pending=None,
                tenant_rate=2.0,
                rate_burst=2,
            )
        )
        q.submit(request(0), "k")
        q.submit(request(1), "k")
        with pytest.raises(AdmissionRejectedError) as err:
            q.submit(request(2), "k")
        assert err.value.reason == "rate_limited"
        # Half a second refills one token at 2 req/s.
        state["now"] = 0.5
        q.submit(request(3), "k")

    def test_closed_queue_rejects(self):
        q, _ = logical_queue()
        q.close()
        with pytest.raises(AdmissionRejectedError) as err:
            q.submit(request(), "k")
        assert err.value.reason == "closed"


class TestOrdering:
    def test_priority_then_deadline_then_fifo(self):
        q, _ = logical_queue()
        q.submit(request(0, priority=2), "a")
        q.submit(request(1, priority=0, deadline=9.0), "b")
        q.submit(request(2, priority=0, deadline=1.0), "c")
        q.submit(request(3, priority=1), "d")
        q.submit(request(4, priority=1), "e")
        order = [
            q.pop_batch(1)[0].request.request_id for _ in range(5)
        ]
        # Urgent first; EDF within the tied priority; FIFO last.
        assert order == [2, 1, 3, 4, 0]

    def test_pop_batch_coalesces_same_plan_key(self):
        q, _ = logical_queue()
        q.submit(request(0), "shared")
        q.submit(request(1), "other")
        q.submit(request(2), "shared")
        q.submit(request(3), "shared")
        batch = q.pop_batch(3)
        assert [e.request.request_id for e in batch] == [0, 2, 3]
        assert {e.key for e in batch} == {"shared"}
        # The heap skips lazily-deleted entries; the other key is intact.
        rest = q.pop_batch(3)
        assert [e.request.request_id for e in rest] == [1]
        assert len(q) == 0

    def test_batched_entries_release_tenant_pending(self):
        q, _ = logical_queue(AdmissionPolicy(capacity=10, tenant_pending=2))
        q.submit(request(0, "t"), "k")
        q.submit(request(1, "t"), "k")
        q.pop_batch(2)
        # Quota freed: the tenant can submit again.
        q.submit(request(2, "t"), "k")
        q.submit(request(3, "t"), "k")


class TestDrainAndClose:
    def test_pop_after_close_drains_then_returns_empty(self):
        q, _ = logical_queue()
        q.submit(request(0), "k")
        q.close()
        assert [e.request.request_id for e in q.pop_batch(4)] == [0]
        assert q.pop_batch(4) == []

    def test_pop_timeout_returns_empty(self):
        q, _ = logical_queue()
        assert q.pop_batch(1, timeout=0.01) == []
