"""Service chaos: the exactly-once invariant under seeded mayhem."""

from types import SimpleNamespace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import (
    ServerConfig,
    ServiceChaosSpec,
    WorkerCrashed,
    build_workload,
    run_service_chaos,
)
from repro.service.chaos import ChaosInjector

RESILIENT = dict(
    workers=3, watchdog=0.12, retries=2, retry_backoff=0.01,
    supervisor_interval=0.01,
)


class TestExactlyOnceProperty:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        kill_rate=st.sampled_from([0.0, 0.15, 0.3]),
        hang_rate=st.sampled_from([0.0, 0.2]),
        poison_rate=st.sampled_from([0.0, 0.1]),
    )
    def test_every_admitted_request_resolves_exactly_once(
        self, seed, kill_rate, hang_rate, poison_rate
    ):
        spec = ServiceChaosSpec(
            seed=seed,
            requests=10,
            tenants=2,
            kill_rate=kill_rate,
            hang_rate=hang_rate,
            hang_seconds=0.25,
            poison_rate=poison_rate,
            verify_sample=2,
        )
        report = run_service_chaos(spec, ServerConfig(**RESILIENT))
        # Exactly once, terminal, bit-identical — regardless of how
        # many workers the schedule killed or hung along the way.
        assert report.ok, report.summary()
        assert report.outcomes == report.admitted
        assert report.stuck_futures == 0
        assert report.double_resolved == 0
        assert report.fingerprint_mismatches == 0
        assert report.workers_lost == 0  # the supervisor kept the pool


class TestDeterminism:
    def test_chaos_draws_are_pure_functions_of_their_key(self):
        # Each (worker, request, attempt) draw is an independent seeded
        # generator: two injectors built from the same spec decide
        # identically for every key, no shared-stream ordering involved.
        spec = ServiceChaosSpec(
            seed=23, requests=10, kill_rate=0.3, crash_rate=0.3,
        )

        def decision(injector, wid, rid, attempt=0):
            worker = SimpleNamespace(wid=wid)
            entry = SimpleNamespace(
                request=SimpleNamespace(request_id=rid), attempt=attempt
            )
            try:
                injector(worker, entry)
            except WorkerCrashed:
                return "kill"
            except RuntimeError:
                return "crash"
            return "ok"

        keys = [(w, r, a) for w in range(3) for r in range(8)
                for a in range(2)]
        first = ChaosInjector(spec, set())
        second = ChaosInjector(spec, set())
        decided = [decision(first, *key) for key in keys]
        assert decided == [decision(second, *key) for key in keys]
        assert {"kill", "crash", "ok"} <= set(decided)

    def test_same_seed_replays_the_poison_schedule(self):
        spec = ServiceChaosSpec(
            seed=23, requests=10, kill_rate=0.25, poison_rate=0.15,
            verify_sample=0,
        )
        requests = build_workload(spec.load_spec())
        assert spec.poison_ids(requests) == spec.poison_ids(requests)
        first = run_service_chaos(spec, ServerConfig(**RESILIENT))
        second = run_service_chaos(spec, ServerConfig(**RESILIENT))
        assert first.ok and second.ok, (first.summary(), second.summary())
        # Which worker serves which request is scheduling — but the
        # poison marking, and therefore the quarantine set, replays.
        assert first.poison_ids == second.poison_ids
        assert first.poison_ids  # the rate actually marked something
        # Every poison id quarantines in both runs (ok covers "none
        # served"); unlucky double-kills can quarantine extras, so this
        # is a floor, not an exact count.
        assert first.by_status.get("poisoned", 0) >= len(first.poison_ids)
        assert second.by_status.get("poisoned", 0) >= len(first.poison_ids)


class TestUnsupervisedBaseline:
    def test_without_supervision_the_pool_bleeds_workers(self):
        spec = ServiceChaosSpec(
            seed=5, requests=10, kill_rate=0.5, poison_rate=0.0,
            verify_sample=0,
        )
        config = ServerConfig(
            workers=3, retries=0, watchdog=None, supervise=False
        )
        report = run_service_chaos(spec, config)
        # The disabled arm proves the hazard is real: workers die and
        # stay dead.  The one guarantee that survives is the typed
        # terminal outcome — nobody blocks on a stuck future.
        assert report.workers_lost > 0
        assert report.workers_spawned == 0
        assert report.stuck_futures == 0
        assert report.outcomes == report.admitted
        assert report.by_status.get("stopped", 0) > 0
