"""The server end to end: serving, shedding, deadlines, aggregation."""

import pytest

from repro.plans.batch import BatchRequest
from repro.service import (
    AdmissionRejectedError,
    ServerConfig,
    TransposeRequest,
    TransposeServer,
    percentile,
    solo_fingerprint,
)


def request(rid=0, tenant="t0", deadline=None, priority=1, **problem):
    problem.setdefault("elements", 256)
    problem.setdefault("n", 4)
    problem.setdefault("machine", "cm")
    return TransposeRequest(
        tenant=tenant,
        problem=BatchRequest(**problem),
        priority=priority,
        deadline=deadline,
        request_id=rid,
    )


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 99) == 3.0


class TestServerConfig:
    def test_from_dict_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown server config"):
            ServerConfig.from_dict({"wrokers": 3})

    def test_needs_a_worker(self):
        with pytest.raises(ValueError, match="at least one worker"):
            ServerConfig(workers=0)


class TestServing:
    def test_serves_and_matches_solo_run_bit_identically(self):
        reqs = [request(rid) for rid in range(6)]
        with TransposeServer(ServerConfig(workers=2)) as server:
            pendings = [server.submit(r) for r in reqs]
            outcomes = [p.result(timeout=30.0) for p in pendings]
        assert all(o.status == "served" for o in outcomes)
        # Compile-once/serve-many, modulo the documented benign race:
        # at most one duplicate compile per worker on a cold cache.
        assert sum(1 for o in outcomes if o.cache_hit) >= len(reqs) - 2
        solo = solo_fingerprint(reqs[0])
        assert all(o.fingerprint == solo for o in outcomes)

    def test_faulted_request_served_with_recovery(self):
        req = request(0, faults="tlinks=0-1@1-3", algorithm="mpt")
        with TransposeServer(ServerConfig(workers=1)) as server:
            outcome = server.submit(req).result(timeout=30.0)
        assert outcome.status == "served"
        assert outcome.resolved == "resume"
        assert outcome.recovery is not None
        assert outcome.recovery["recovered"]

    def test_malformed_request_raises_before_queueing(self):
        server = TransposeServer(ServerConfig(workers=1))
        with pytest.raises(ValueError, match="power of two"):
            server.submit(request(elements=100))
        assert server.report().slo()["requests"] == 0

    def test_shed_load_is_counted_per_tenant_and_reason(self):
        config = ServerConfig(workers=1, queue_capacity=2, tenant_pending=None)
        server = TransposeServer(config)  # workers never started
        server.submit(request(0, "a"))
        server.submit(request(1, "b"))
        for rid, tenant in ((2, "a"), (3, "a"), (4, "b")):
            with pytest.raises(AdmissionRejectedError):
                server.submit(request(rid, tenant))
        report = server.report()
        assert report.slo()["rejected"] == 3
        tenants = report.per_tenant()
        assert tenants["a"]["rejected_by_reason"] == {"queue_full": 2}
        assert tenants["b"]["rejected_by_reason"] == {"queue_full": 1}

    def test_expired_deadline_shed_at_dequeue(self):
        state = {"now": 0.0}
        config = ServerConfig(workers=1)
        server = TransposeServer(config, clock=lambda: state["now"])
        pending = server.submit(request(0, deadline=0.5))
        state["now"] = 1.0  # the deadline passes while queued
        server.start()
        outcome = pending.result(timeout=30.0)
        server.stop()
        assert outcome.status == "deadline_missed"
        assert "deadline" in outcome.error
        slo = server.report().slo()
        assert slo["deadline_missed"] == 1
        assert slo["deadline_miss_rate"] == 1.0


class TestAggregation:
    def test_metrics_merged_across_workers(self):
        reqs = [request(rid, tenant=f"t{rid % 2}") for rid in range(8)]
        with TransposeServer(ServerConfig(workers=3)) as server:
            pendings = [server.submit(r) for r in reqs]
            for p in pendings:
                p.result(timeout=30.0)
        merged = server.metrics()
        served = sum(
            c.value for c in merged.family("service_requests")
        )
        assert served == len(reqs)
        [hist] = merged.family("service_total_s")
        assert hist.count == len(reqs)

    def test_report_as_dict_shape(self):
        with TransposeServer(ServerConfig(workers=1)) as server:
            server.submit(request(0)).result(timeout=30.0)
        doc = server.report().as_dict(with_outcomes=True)
        assert set(doc) == {
            "workers", "wall_seconds", "slo", "tenants", "cache",
            "queue", "outcomes", "resilience",
        }
        assert doc["slo"]["served"] == 1
        assert doc["tenants"]["t0"]["admitted"] == 1
        assert len(doc["outcomes"]) == 1
