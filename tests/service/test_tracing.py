"""End-to-end request tracing: propagation, flight dumps, properties.

The tentpole invariant of the tracing layer: every completed request is
one well-formed trace tree — a single ``trace_id`` on every span it
produced, on both the model-time and wall-clock axes, confined to the
worker that executed it — and requests that end badly leave a flight
dump naming themselves.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.metrics import TransferStats
from repro.obs import spans_from_chrome_document, validate_trace
from repro.plans.batch import BatchRequest
from repro.service import (
    LoadSpec,
    ServerConfig,
    TransposeRequest,
    TransposeServer,
    run_loadgen,
)
from repro.service.request import stats_fingerprint


def request(rid=0, tenant="t0", deadline=None, **problem):
    problem.setdefault("elements", 256)
    problem.setdefault("n", 4)
    problem.setdefault("machine", "cm")
    return TransposeRequest(
        tenant=tenant,
        problem=BatchRequest(**problem),
        deadline=deadline,
        request_id=rid,
    )


class TestTracePropagation:
    def test_every_outcome_carries_a_distinct_trace_id(self):
        reqs = [request(rid, tenant=f"t{rid % 2}") for rid in range(6)]
        with TransposeServer(ServerConfig(workers=2, trace=True)) as server:
            outcomes = [
                p.result(timeout=30.0)
                for p in [server.submit(r) for r in reqs]
            ]
        ids = [o.trace_id for o in outcomes]
        assert all(ids)
        assert len(set(ids)) == len(reqs)
        assert all(i.startswith("req-") for i in ids)

    def test_outcome_dict_and_json_envelope_carry_the_trace_id(self):
        with TransposeServer(ServerConfig(workers=1, trace=True)) as server:
            outcome = server.submit(request(0)).result(timeout=30.0)
        doc = outcome.as_dict()
        assert doc["trace_id"] == outcome.trace_id != ""
        report = server.report().as_dict(with_outcomes=True)
        assert report["outcomes"][0]["trace_id"] == outcome.trace_id
        json.dumps(report)

    def test_untraced_server_leaves_no_trace_ids(self):
        with TransposeServer(ServerConfig(workers=1)) as server:
            outcome = server.submit(request(0)).result(timeout=30.0)
        assert outcome.trace_id == ""
        # The untraced worker keeps the seed behaviour: a bare service
        # span with no trace id, no wall axis, no request tree.
        tracks = spans_from_chrome_document(server.trace_document())
        spans = [s for _, track in tracks for s in track]
        assert all(s.trace_id is None for s in spans)
        assert all(s.wall_start is None for s in spans)
        assert all(s.name != "request" for s in spans)

    def test_merged_document_is_well_formed_across_workers(self):
        reqs = [request(rid, tenant=f"t{rid % 3}") for rid in range(8)]
        with TransposeServer(ServerConfig(workers=2, trace=True)) as server:
            outcomes = [
                p.result(timeout=30.0)
                for p in [server.submit(r) for r in reqs]
            ]
        doc = server.trace_document()
        tracks = spans_from_chrome_document(doc)
        assert validate_trace(tracks) == []
        spans = [s for _, track in tracks for s in track]
        seen = {s.trace_id for s in spans if s.trace_id}
        assert seen == {o.trace_id for o in outcomes}
        # Dual axis: every span in a traced serve carries both intervals.
        assert all(s.wall_start is not None for s in spans)
        # The documented stage spans appear under every request root.
        roots = [s for s in spans if s.name == "request"]
        assert len(roots) == len(reqs)
        names = {s.name for s in spans}
        assert {"admission", "queue-wait", "plan-resolve",
                "execute"} <= names

    def test_wall_axis_orders_admission_queue_execute(self):
        with TransposeServer(ServerConfig(workers=1, trace=True)) as server:
            server.submit(request(0)).result(timeout=30.0)
        (_, spans), = spans_from_chrome_document(server.trace_document())
        stage = {s.name: s for s in spans}
        assert stage["admission"].wall_end <= stage["queue-wait"].wall_start
        assert (stage["queue-wait"].wall_end
                <= stage["execute"].wall_end)
        root = stage["request"]
        for name in ("admission", "queue-wait", "plan-resolve", "execute"):
            assert stage[name].wall_start >= root.wall_start
            assert stage[name].wall_end <= root.wall_end

    def test_tracing_does_not_change_the_served_fingerprint(self):
        req = request(0)
        with TransposeServer(ServerConfig(workers=1)) as server:
            plain = server.submit(request(0)).result(timeout=30.0)
        with TransposeServer(ServerConfig(workers=1, trace=True)) as server:
            traced = server.submit(req).result(timeout=30.0)
        assert traced.fingerprint == plain.fingerprint


class TestFlightDumps:
    def test_deadline_miss_dumps_a_flight_report_naming_the_request(self):
        state = {"now": 0.0}
        config = ServerConfig(workers=1, trace=True)
        server = TransposeServer(config, clock=lambda: state["now"])
        pending = server.submit(request(5, deadline=0.5))
        state["now"] = 1.0  # expires while queued
        server.start()
        outcome = pending.result(timeout=30.0)
        server.stop()
        assert outcome.status == "deadline_missed"
        report = server.report()
        assert len(report.flight_reports) == 1
        dump = report.flight_reports[0]
        assert dump["context"]["request_id"] == 5
        assert dump["context"]["trace_id"] == outcome.trace_id
        assert dump["context"]["status"] == "deadline_missed"
        assert dump["context"]["worker"] == 0
        json.dumps(dump)  # must be artifact-serializable

    def test_fault_storm_leaves_flight_dumps_in_the_report(self):
        spec = LoadSpec(seed=11, tenants=2, requests=16, shapes=2,
                        fault_rate=0.5)
        report = run_loadgen(spec, ServerConfig(workers=2))
        dumps = report.server.flight_reports
        assert dumps, "escalated recoveries must leave flight dumps"
        for dump in dumps:
            ctx = dump["context"]
            assert {"worker", "request_id", "trace_id", "tenant",
                    "status", "resolved"} <= set(ctx)
            assert dump["records"], "the ring must not be empty"
        doc = report.as_dict()
        assert doc["server"]["flight_reports"] == dumps

    def test_clean_run_leaves_no_flight_dumps(self):
        spec = LoadSpec(seed=7, tenants=2, requests=8, shapes=1)
        report = run_loadgen(spec, ServerConfig(workers=1))
        assert report.server.flight_reports == []


class TestLoadgenSurface:
    def test_per_tenant_latency_percentiles(self):
        spec = LoadSpec(seed=7, tenants=2, requests=12, shapes=2)
        report = run_loadgen(spec, ServerConfig(workers=2))
        tenants = report.server.per_tenant()
        for tenant in ("tenant-0", "tenant-1"):
            lat = tenants[tenant]["latency_s"]
            for stage in ("queue_wait", "execute"):
                pct = lat[stage]
                assert set(pct) == {"p50", "p95", "p99", "max"}
                assert pct["p50"] <= pct["max"]

    def test_traced_loadgen_exports_one_merged_document(self):
        spec = LoadSpec(seed=13, tenants=2, requests=10, shapes=2)
        report = run_loadgen(spec, ServerConfig(workers=2, trace=True))
        assert report.trace is not None
        tracks = spans_from_chrome_document(report.trace)
        assert validate_trace(tracks) == []
        ids = {
            s.trace_id for _, spans in tracks for s in spans if s.trace_id
        }
        assert len(ids) == 10
        assert report.metrics_text.startswith("# TYPE repro_")

    def test_untraced_loadgen_has_no_trace_payload(self):
        spec = LoadSpec(seed=7, tenants=1, requests=4, shapes=1)
        report = run_loadgen(spec, ServerConfig(workers=1))
        assert report.trace is None

    def test_burn_rate_folds_into_the_slo_report(self):
        spec = LoadSpec(seed=7, tenants=2, requests=12, shapes=2)
        report = run_loadgen(
            spec, ServerConfig(workers=1, slo_objective=0.95, slo_window=10)
        )
        burn = report.server.slo()["burn"]
        assert burn["objective"] == 0.95
        assert burn["window"] == 10
        assert burn["total"] == 12
        assert burn["alert"] == "ok"


class TestBaselineStability:
    """Satellite: arming tracing must not perturb pinned baselines."""

    def test_trace_counters_zero_suppressed_until_armed(self):
        stats = TransferStats()
        assert "traced_requests" not in stats.as_dict()
        assert "trace_wall_seconds" not in stats.as_dict()
        stats.record_traced(0.5)
        doc = stats.as_dict()
        assert doc["traced_requests"] == 1
        assert doc["trace_wall_seconds"] == 0.5

    def test_trace_counters_never_move_the_fingerprint(self):
        stats = TransferStats()
        stats.record_phase(0.25)
        before = stats_fingerprint(stats)
        stats.record_traced(1.5)
        assert stats_fingerprint(stats) == before

    def test_pinned_baseline_files_carry_no_trace_counters(self):
        from pathlib import Path

        baselines = Path(__file__).parents[2] / "benchmarks" / "baselines"
        files = sorted(baselines.glob("*.json"))
        assert files, "pinned baselines must exist"
        for path in files:
            text = path.read_text()
            assert "traced_requests" not in text, path.name
            assert "trace_wall_seconds" not in text, path.name


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    tenants=st.integers(min_value=1, max_value=3),
    requests=st.integers(min_value=1, max_value=12),
    workers=st.integers(min_value=1, max_value=3),
    shapes=st.integers(min_value=1, max_value=2),
)
def test_property_traces_stay_well_formed_under_concurrent_load(
    seed, tenants, requests, workers, shapes
):
    """Any closed-loop load leaves a forest of well-formed trace trees:
    no orphans, parents contain children on both axes, one trace id per
    completed request, each confined to a single worker track."""
    spec = LoadSpec(seed=seed, tenants=tenants, requests=requests,
                    shapes=shapes)
    report = run_loadgen(spec, ServerConfig(workers=workers, trace=True))
    tracks = spans_from_chrome_document(report.trace)
    assert validate_trace(tracks) == []
    roots = [
        s for _, spans in tracks for s in spans
        if s.name == "request" and s.trace_id
    ]
    assert len(roots) == requests
    assert len({r.trace_id for r in roots}) == requests
