"""Scheduler: one-time resolution, plan-key batching, result plumbing."""

import pytest

from repro.plans.batch import BatchRequest
from repro.plans.cache import plan_key
from repro.service import (
    AdmissionPolicy,
    AdmissionRejectedError,
    Scheduler,
    ServeOutcome,
    TransposeRequest,
    resolve_request,
)


def request(rid=0, tenant="t0", **problem):
    problem.setdefault("elements", 256)
    problem.setdefault("n", 4)
    return TransposeRequest(
        tenant=tenant, problem=BatchRequest(**problem), request_id=rid
    )


class TestResolveRequest:
    def test_auto_resolves_to_concrete_tier_and_stable_key(self):
        resolved = resolve_request(request())
        assert resolved.algorithm != "auto"
        expected = plan_key(
            resolved.params,
            resolved.before,
            None,
            resolved.algorithm,
        )
        assert resolved.key == expected

    def test_explicit_and_auto_share_one_key(self):
        auto = resolve_request(request())
        explicit = resolve_request(
            request(algorithm=resolve_request(request()).algorithm)
        )
        assert auto.key == explicit.key

    def test_bad_problem_raises_synchronously(self):
        with pytest.raises(ValueError, match="power of two"):
            resolve_request(request(elements=100))
        with pytest.raises(ValueError, match="unknown machine"):
            resolve_request(request(machine="vax"))

    def test_bad_fault_spec_rejected_at_resolution(self):
        with pytest.raises(ValueError):
            resolve_request(request(faults="nonsense"))


class TestScheduler:
    def test_submit_fulfill_round_trip(self):
        sched = Scheduler(AdmissionPolicy(capacity=4))
        pending = sched.submit(resolve_request(request(7)))
        assert not pending.done()
        [entry] = sched.next_batch()
        assert entry.request.request_id == 7
        assert entry.payload.algorithm != "auto"
        outcome = ServeOutcome(request_id=7, tenant="t0", status="served")
        sched.fulfill(entry, outcome)
        assert pending.done()
        assert pending.result(timeout=1.0) is outcome

    def test_rejection_creates_no_slot(self):
        sched = Scheduler(AdmissionPolicy(capacity=1))
        sched.submit(resolve_request(request(0)))
        with pytest.raises(AdmissionRejectedError):
            sched.submit(resolve_request(request(1)))
        assert len(sched._results) == 1

    def test_next_batch_groups_by_key(self):
        sched = Scheduler(max_batch=8)
        for rid in range(3):
            sched.submit(resolve_request(request(rid)))
        sched.submit(resolve_request(request(9, elements=1024)))
        batch = sched.next_batch()
        assert [e.request.request_id for e in batch] == [0, 1, 2]

    def test_result_timeout(self):
        sched = Scheduler()
        pending = sched.submit(resolve_request(request()))
        with pytest.raises(TimeoutError):
            pending.result(timeout=0.01)
