"""Request vocabulary: validation, round-trips, typed errors."""

import pytest

from repro.plans.batch import BatchRequest
from repro.service import (
    AdmissionRejectedError,
    DeadlineExceededError,
    ServeOutcome,
    ServiceError,
    TransposeRequest,
)


def request(**kw):
    base = dict(
        tenant="acme", problem=BatchRequest(elements=256, n=4), request_id=1
    )
    base.update(kw)
    return TransposeRequest(**base)


class TestTransposeRequest:
    def test_validation(self):
        with pytest.raises(ValueError, match="tenant"):
            request(tenant="")
        with pytest.raises(ValueError, match="priority"):
            request(priority=-1)
        with pytest.raises(ValueError, match="deadline"):
            request(deadline=0)

    def test_dict_round_trip(self):
        req = request(priority=2, deadline=0.5)
        doc = req.as_dict()
        assert doc["tenant"] == "acme"
        assert doc["elements"] == 256
        assert TransposeRequest.from_dict(doc) == req

    def test_from_dict_rejects_unknown_problem_fields(self):
        with pytest.raises(ValueError, match="unknown batch request"):
            TransposeRequest.from_dict(
                {"tenant": "a", "elements": 256, "bogus": 1}
            )


class TestErrors:
    def test_rejection_carries_reason_and_tenant(self):
        exc = AdmissionRejectedError("queue_full", "acme", "depth 64")
        assert isinstance(exc, ServiceError)
        assert exc.reason == "queue_full"
        assert exc.tenant == "acme"
        assert "queue_full" in str(exc) and "depth 64" in str(exc)

    def test_deadline_error_reports_budget(self):
        exc = DeadlineExceededError("acme", 0.25, 0.4)
        assert isinstance(exc, ServiceError)
        assert "0.250s" in str(exc)


class TestServeOutcome:
    def test_as_dict_and_served_flag(self):
        ok = ServeOutcome(request_id=1, tenant="a", status="served")
        missed = ServeOutcome(
            request_id=2, tenant="a", status="deadline_missed"
        )
        assert ok.served and not missed.served
        doc = ok.as_dict()
        assert doc["status"] == "served"
        assert set(doc) >= {
            "request_id",
            "tenant",
            "queue_wait_s",
            "execute_s",
            "total_s",
            "fingerprint",
            "recovery",
        }
