"""The self-healing layer: supervisor, retries, breaker, brownout."""

import time

import pytest

from repro.plans.batch import BatchRequest
from repro.service import (
    AdmissionRejectedError,
    BreakerPolicy,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    PendingResult,
    RetryBudget,
    ServeOutcome,
    ServerConfig,
    TransposeRequest,
    TransposeServer,
    WorkerCrashed,
)
from repro.service.resilience import BROWNOUT_LADDER


def request(rid=0, tenant="t0", priority=1, **problem):
    problem.setdefault("elements", 256)
    problem.setdefault("n", 4)
    problem.setdefault("machine", "cm")
    return TransposeRequest(
        tenant=tenant,
        problem=BatchRequest(**problem),
        priority=priority,
        request_id=rid,
    )


def outcome(*, wait=0.0, status="served"):
    return ServeOutcome(
        request_id=0, tenant="t0", status=status, key="k", queue_wait_s=wait
    )


class TestRetryBudget:
    def test_backoff_is_deterministic_and_exponential(self):
        budget = RetryBudget(attempts=3, backoff=0.1, factor=2.0,
                             jitter=0.5, seed=7)
        first = budget.delay(42, 1)
        assert first == budget.delay(42, 1)  # same (seed, rid, attempt)
        assert budget.delay(42, 1) != budget.delay(43, 1)
        assert budget.delay(42, 1) != budget.delay(42, 2)
        for attempt in (1, 2, 3):
            base = 0.1 * 2.0 ** (attempt - 1)
            assert base <= budget.delay(42, attempt) < base * 1.5

    def test_zero_jitter_is_pure_exponential(self):
        budget = RetryBudget(attempts=2, backoff=0.2, factor=3.0, jitter=0.0)
        assert budget.delay(1, 1) == pytest.approx(0.2)
        assert budget.delay(1, 2) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            RetryBudget(attempts=-1)
        with pytest.raises(ValueError, match="out of range"):
            RetryBudget(factor=0.5)


class TestPendingResultIdempotency:
    def test_first_fulfill_wins(self):
        pending = PendingResult()
        winner = outcome(status="served")
        loser = outcome(status="failed")
        assert pending.fulfill(winner)
        assert not pending.fulfill(loser)
        assert pending.result(timeout=0.0) is winner

    def test_result_times_out_instead_of_blocking(self):
        with pytest.raises(TimeoutError):
            PendingResult().result(timeout=0.01)


class TestSpecParsing:
    def test_breaker_from_spec(self):
        policy = BreakerPolicy.from_spec(
            "window=8,threshold=0.75,min_volume=2,cooldown=2.5,key=tenant"
        )
        assert policy.window == 8
        assert policy.threshold == 0.75
        assert policy.min_volume == 2
        assert policy.cooldown == 2.5
        assert policy.key == "tenant"
        assert policy.probes == BreakerPolicy().probes  # default kept

    def test_brownout_from_spec_accepts_slo_alias(self):
        policy = BrownoutPolicy.from_spec("slo=0.5,hold=5,up=2,down=0.5")
        assert policy.queue_wait_slo == 0.5
        assert policy.hold == 5
        assert policy.up == 2.0

    def test_unknown_token_is_rejected_with_known_fields(self):
        with pytest.raises(ValueError, match="known:"):
            BreakerPolicy.from_spec("windw=8")
        with pytest.raises(ValueError, match="bad brownout spec value"):
            BrownoutPolicy.from_spec("hold=many")


class TestCircuitBreaker:
    def breaker(self, **overrides):
        defaults = dict(window=8, threshold=0.5, min_volume=4,
                        cooldown=1.0, probes=2, probe_interval=0.25)
        defaults.update(overrides)
        state = {"t": 0.0}
        breaker = CircuitBreaker(
            BreakerPolicy(**defaults), clock=lambda: state["t"]
        )
        return breaker, state

    def test_stays_closed_below_min_volume(self):
        breaker, _ = self.breaker()
        for _ in range(3):
            breaker.record("k", "t0", False)
        assert breaker.state("k") == "closed"
        assert breaker.allow("k", "t0")

    def test_opens_at_failure_threshold_and_blocks(self):
        breaker, state = self.breaker()
        for _ in range(4):
            breaker.record("k", "t0", False)
        assert breaker.state("k") == "open"
        assert not breaker.allow("k", "t0")
        state["t"] = 0.99
        assert not breaker.allow("k", "t0")  # still cooling down

    def test_half_open_probes_then_closes(self):
        breaker, state = self.breaker()
        for _ in range(4):
            breaker.record("k", "t0", False)
        state["t"] = 1.0
        assert breaker.allow("k", "t0")  # cooldown over -> probe 1
        assert breaker.state("k") == "half-open"
        assert not breaker.allow("k", "t0")  # one probe per interval
        breaker.record("k", "t0", True)
        state["t"] = 1.3
        assert breaker.allow("k", "t0")  # probe 2
        breaker.record("k", "t0", True)
        assert breaker.state("k") == "closed"  # window reset
        assert breaker.snapshot()["trips"] == 1

    def test_probe_failure_reopens(self):
        breaker, state = self.breaker()
        for _ in range(4):
            breaker.record("k", "t0", False)
        state["t"] = 1.0
        assert breaker.allow("k", "t0")
        breaker.record("k", "t0", False)  # the probe fails
        assert breaker.state("k") == "open"
        state["t"] = 1.5  # re-opened at 1.0: cooldown restarts
        assert not breaker.allow("k", "t0")
        state["t"] = 2.0
        assert breaker.allow("k", "t0")
        assert breaker.snapshot()["trips"] == 2

    def test_tenant_keying_isolates_tenants_not_plans(self):
        breaker, _ = self.breaker(key="tenant", min_volume=2, window=4)
        breaker.record("plan-a", "noisy", False)
        breaker.record("plan-b", "noisy", False)
        assert not breaker.allow("plan-c", "noisy")  # any plan, same tenant
        assert breaker.allow("plan-a", "quiet")

    def test_successes_keep_it_closed(self):
        breaker, _ = self.breaker()
        for _ in range(20):
            breaker.record("k", "t0", True)
        breaker.record("k", "t0", False)
        assert breaker.state("k") == "closed"
        snap = breaker.snapshot()
        assert snap["keys"]["k"]["window_observed"] == 8  # windowed


class TestBrownoutController:
    def controller(self, **overrides):
        defaults = dict(queue_wait_slo=0.1, objective=0.9, window=2,
                        up=1.0, down=0.25, hold=2, shed_priority=1)
        defaults.update(overrides)
        events = []
        ctrl = BrownoutController(
            BrownoutPolicy(**defaults), on_change=events.append
        )
        return ctrl, events

    def test_steps_up_after_hold_and_down_with_hysteresis(self):
        ctrl, events = self.controller()
        for _ in range(4):  # sustained burn: two steps up
            ctrl.observe(outcome(wait=1.0))
        assert ctrl.level == 2
        assert ctrl.actions() == ("shed-low-priority", "widen-batching")
        for _ in range(5):  # pressure clears: window flushes, then down
            ctrl.observe(outcome(wait=0.0))
        assert ctrl.level == 0
        assert events == [1, 2, 1, 0]
        assert ctrl.steps == 4

    def test_single_observation_does_not_flap(self):
        ctrl, events = self.controller(hold=3)
        ctrl.observe(outcome(wait=1.0))
        ctrl.observe(outcome(wait=1.0))
        assert ctrl.level == 0  # hold not reached
        assert events == []

    def test_admission_gate_follows_the_ladder(self):
        ctrl, _ = self.controller(shed_priority=1)
        assert ctrl.admits(0) and ctrl.admits(5)
        ctrl.level = 1  # shed-low-priority
        assert ctrl.admits(0)
        assert not ctrl.admits(1)
        ctrl.level = len(BROWNOUT_LADDER)  # reject-admission
        assert not ctrl.admits(0)

    def test_snapshot_names_the_ladder(self):
        ctrl, _ = self.controller()
        snap = ctrl.snapshot()
        assert snap["ladder"] == list(BROWNOUT_LADDER)
        assert snap["level"] == 0 and snap["actions"] == []


def resilient_config(**overrides):
    defaults = dict(workers=2, retries=2, retry_backoff=0.001,
                    supervisor_interval=0.005)
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestSupervision:
    def test_killed_worker_is_replaced_and_request_retried(self):
        def kill_first_attempt(worker, entry):
            if entry.request.request_id == 0 and entry.attempt == 0:
                raise WorkerCrashed("chaos kill")

        server = TransposeServer(resilient_config())
        server.set_chaos(kill_first_attempt)
        with server:
            result = server.submit(request(0)).result(timeout=30.0)
        assert result.status == "served"
        assert result.attempts == 2
        assert server.retired and server.retired[0].dead
        snap = server.resilience_snapshot()["supervisor"]
        assert snap["restarts"] >= 1
        assert snap["redispatches"] >= 1
        events = {e["event"] for e in server.supervisor.log}
        assert {"worker-crash", "worker-replaced", "redispatch"} <= events

    def test_hung_worker_is_detected_by_watchdog(self):
        def hang_first_attempt(worker, entry):
            if entry.attempt == 0:
                time.sleep(0.4)

        config = resilient_config(workers=1, watchdog=0.08,
                                  supervisor_interval=0.01)
        server = TransposeServer(config)
        server.set_chaos(hang_first_attempt)
        with server:
            result = server.submit(request(0)).result(timeout=30.0)
        assert result.status == "served"
        assert result.attempts == 2
        assert any(
            e["event"] == "worker-hang" for e in server.supervisor.log
        )

    def test_retry_budget_exhaustion_fails_the_request(self):
        def always_kill(worker, entry):
            if entry.request.request_id == 0:
                raise WorkerCrashed("chaos kill")

        config = resilient_config(retries=1, poison_threshold=5)
        server = TransposeServer(config)
        server.set_chaos(always_kill)
        with server:
            bad = server.submit(request(0))
            good = server.submit(request(1))
            failed = bad.result(timeout=30.0)
            served = good.result(timeout=30.0)
        assert failed.status == "failed"
        assert "retry budget exhausted" in failed.error
        assert failed.attempts == 2  # the original + one re-dispatch
        assert served.status == "served"

    def test_poison_request_is_quarantined_not_retried_forever(self):
        def poison(worker, entry):
            if entry.request.request_id == 0:
                raise WorkerCrashed("poison")

        config = resilient_config(retries=5, poison_threshold=2)
        server = TransposeServer(config)
        server.set_chaos(poison)
        with server:
            result = server.submit(request(0)).result(timeout=30.0)
        assert result.status == "poisoned"
        assert "quarantined" in result.error
        snap = server.resilience_snapshot()["supervisor"]
        assert snap["quarantined"] == 1
        poisoned = sum(
            c.value for c in server.metrics().family("service_poisoned")
        )
        assert poisoned == 1

    def test_exception_outside_request_loop_marks_worker_dead(self):
        # The satellite regression: next_batch itself raising must not
        # leave a zombie thread — the run wrapper marks the worker dead
        # and the supervisor replaces it.
        server = TransposeServer(resilient_config(workers=1))
        real = server.scheduler.next_batch
        calls = {"n": 0}

        def flaky(timeout=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("scheduler exploded")
            return real(timeout)

        server.scheduler.next_batch = flaky
        with server:
            result = server.submit(request(0)).result(timeout=30.0)
        assert result.status == "served"
        [dead] = server.retired
        assert dead.dead
        assert "scheduler exploded" in dead.death_error
        assert any(
            e["event"] == "worker-crash" for e in server.supervisor.log
        )


class TestStopAndDrain:
    def test_drain_timeout_resolves_outstanding_with_stopped(self):
        def slow(worker, entry):
            time.sleep(0.5)

        server = TransposeServer(
            ServerConfig(workers=1, retries=0, supervise=False)
        )
        server.set_chaos(slow)
        server.start()
        pendings = [server.submit(request(rid)) for rid in range(3)]
        assert server.drain(timeout=0.15) is False
        results = [p.result(timeout=5.0) for p in pendings]
        assert all(r.status in ("served", "stopped") for r in results)
        stopped = [r for r in results if r.status == "stopped"]
        assert stopped
        assert "ServerStoppedError" in stopped[0].error
        assert "drain timed out" in stopped[0].error
        server.stop(wait=False)

    def test_stop_never_strands_a_pending_result(self):
        server = TransposeServer(ServerConfig(workers=1, supervise=False))
        pending = server.submit(request(0))  # workers never started
        server.stop(wait=False)
        result = pending.result(timeout=1.0)
        assert result.status == "stopped"
        assert "the server stopped" in result.error
        assert server.report().slo()["stopped"] == 1

    def test_dead_pool_without_supervision_aborts_the_drain(self):
        def massacre(worker, entry):
            raise WorkerCrashed("no survivors")

        server = TransposeServer(
            ServerConfig(workers=2, retries=0, supervise=False)
        )
        server.set_chaos(massacre)
        server.start()
        # Distinct shapes -> distinct plan keys -> no batch coalescing:
        # both workers must pick up work, so both must die.
        pendings = [
            server.submit(request(rid, elements=256 << rid))
            for rid in range(4)
        ]
        assert server.drain(timeout=10.0) is False
        results = [p.result(timeout=5.0) for p in pendings]
        assert all(r.status == "stopped" for r in results)
        assert any("supervision is off" in r.error for r in results)
        server.stop(wait=False)


class TestAdmissionGates:
    def test_breaker_opens_on_failures_and_sheds_admission(self):
        def crash(worker, entry):
            raise RuntimeError("bad request bug")

        config = ServerConfig(
            workers=1, supervise=False,
            breaker="window=4,threshold=0.5,min_volume=2,cooldown=60,"
                    "key=tenant",
        )
        server = TransposeServer(config)
        server.set_chaos(crash)
        with server:
            for rid in range(2):
                result = server.submit(request(rid)).result(timeout=30.0)
                assert result.status == "failed"
            with pytest.raises(AdmissionRejectedError, match="breaker"):
                server.submit(request(9))
        snap = server.resilience_snapshot()["breaker"]
        assert snap["open"] == 1 and snap["trips"] == 1

    def test_brownout_reject_level_sheds_admission(self):
        config = ServerConfig(workers=1, brownout="slo=0.1,hold=2")
        server = TransposeServer(config)  # never started: gate only
        server.brownout.level = len(BROWNOUT_LADDER)
        with pytest.raises(AdmissionRejectedError, match="brownout"):
            server.submit(request(0))
        report = server.report()
        tenants = report.per_tenant()
        assert tenants["t0"]["rejected_by_reason"] == {"brownout": 1}
