"""Fault-ladder integration: replay a cached tier instead of re-planning."""

import pytest

from repro.layout import partition as pt
from repro.machine.faults import DisconnectedCubeError, FaultPlan
from repro.machine.presets import connection_machine, intel_ipsc
from repro.plans import PlanCache, replay_degraded
from repro.transpose.planner import degrade_strategy, schedule_links

N = 4
LAYOUT = pt.two_dim_cyclic(2, 2, 2, 2)


def _dpt_only_link():
    """A directed link DPT schedules but SPT does not (forces the ladder
    down to SPT when faulted)."""
    extra = sorted(schedule_links("dpt", N) - schedule_links("spt", N))
    assert extra, "DPT must schedule links SPT does not"
    return extra[0]


class TestDegradeStrategy:
    def test_clean_plan_passes_through(self):
        assert degrade_strategy("mpt", N, None) == ("mpt", ())
        assert degrade_strategy("mpt", N, FaultPlan.from_spec(N, "seed=1")) == (
            "mpt",
            (),
        )

    def test_non_ladder_names_pass_through(self):
        faults = FaultPlan.from_spec(N, "links=0-1")
        assert degrade_strategy("exchange", N, faults) == ("exchange", ())
        assert degrade_strategy("router", N, faults) == ("router", ())

    def test_faulted_tier_is_skipped(self):
        src, dst = _dpt_only_link()
        faults = FaultPlan.from_spec(N, f"links={src}-{dst}")
        tier, skipped = degrade_strategy("mpt", N, faults)
        assert tier == "spt"
        assert skipped == ("mpt", "dpt")


class TestReplayDegraded:
    def test_clean_machine_replays_requested_tier(self):
        cache = PlanCache()
        outcome = replay_degraded(
            intel_ipsc(N), LAYOUT, faults=FaultPlan.from_spec(N, "seed=7"),
            cache=cache,
        )
        assert outcome.algorithm == "spt"
        assert not outcome.degraded
        assert outcome.replayed
        assert not outcome.cache_hit
        assert cache.misses == 1

    def test_faulted_ladder_replays_surviving_tier(self):
        src, dst = _dpt_only_link()
        faults = FaultPlan.from_spec(N, f"links={src}-{dst}")
        cache = PlanCache()
        outcome = replay_degraded(
            connection_machine(N), LAYOUT, faults=faults, cache=cache
        )
        # auto on an n-port machine requests MPT; the faulted link rules
        # out MPT and DPT, so the cached SPT plan replays.
        assert outcome.requested == "mpt"
        assert outcome.algorithm == "spt"
        assert outcome.skipped == ("mpt", "dpt")
        assert outcome.replayed
        assert outcome.stats.time > 0

    def test_second_call_hits_the_cache(self):
        src, dst = _dpt_only_link()
        faults = FaultPlan.from_spec(N, f"links={src}-{dst}")
        cache = PlanCache()
        first = replay_degraded(
            connection_machine(N), LAYOUT, faults=faults, cache=cache
        )
        second = replay_degraded(
            connection_machine(N), LAYOUT, faults=faults, cache=cache
        )
        assert not first.cache_hit
        assert second.cache_hit
        assert second.stats == first.stats
        assert cache.hits == 1 and cache.misses == 1

    def test_different_faults_same_tier_share_a_plan(self):
        extra = sorted(schedule_links("dpt", N) - schedule_links("spt", N))
        cache = PlanCache()
        first = replay_degraded(
            connection_machine(N),
            LAYOUT,
            faults=FaultPlan.from_spec(N, f"links={extra[0][0]}-{extra[0][1]}"),
            cache=cache,
        )
        second = replay_degraded(
            connection_machine(N),
            LAYOUT,
            faults=FaultPlan.from_spec(N, f"links={extra[1][0]}-{extra[1][1]}"),
            cache=cache,
        )
        # Two distinct fault scenarios degrade to the same tier and are
        # served by the same cached plan — the point of keying on the
        # resolved tier rather than the fault plan.
        assert first.algorithm == second.algorithm == "spt"
        assert second.cache_hit

    def test_disconnected_cube_raises(self):
        faults = FaultPlan.from_spec(2, "links=0-1+1-0+0-2+2-0")
        with pytest.raises(DisconnectedCubeError):
            replay_degraded(
                intel_ipsc(2),
                pt.row_consecutive(3, 3, 2),
                faults=faults,
                cache=PlanCache(),
            )

    def test_transient_fault_falls_back_to_direct_run(self):
        # A transient node fault defeats the proactive link check (it
        # rules out every exclusive tier), so the ladder lands on the
        # router; the router replay may then hit the transient window
        # and fall back to a direct fault-tolerant run.  Either way the
        # outcome must report a completed transpose.
        faults = FaultPlan.from_spec(N, "seed=3,transient_rate=0.05,window=4")
        outcome = replay_degraded(
            intel_ipsc(N), LAYOUT, faults=faults, cache=PlanCache()
        )
        assert outcome.stats.time > 0
        assert outcome.algorithm in ("spt", "dpt", "mpt", "router")
