"""Replaying a captured plan must be indistinguishable from direct execution.

The acceptance bar for the plans subsystem: for every algorithm family,
the replayed run produces a :class:`TransferStats` *equal in every
field* (times, phases, messages, start-ups, per-link loads, phase
timeline) to the run it was captured from, and leaves node memories in
the same drained state.
"""

import pytest

from repro.layout import partition as pt
from repro.machine.engine import CubeNetwork
from repro.machine.presets import connection_machine, intel_ipsc
from repro.plans import (
    PlanReplayError,
    capture_transpose,
    replay_plan,
    synthetic_matrix,
)

SQUARE_2D = pt.two_dim_cyclic(4, 4, 2, 2)
MIXED_2D = pt.two_dim_mixed(
    4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
)

FAMILIES = [
    # (id, algorithm, params, before layout)
    ("exchange-1d", "exchange", intel_ipsc(3), pt.row_consecutive(4, 4, 3)),
    ("spt", "spt", intel_ipsc(4), SQUARE_2D),
    ("dpt", "dpt", intel_ipsc(4), SQUARE_2D),
    ("mpt-nport", "mpt", connection_machine(4), SQUARE_2D),
    ("mixed", "mixed-combined", intel_ipsc(4), MIXED_2D),
    ("router", "router", intel_ipsc(4), SQUARE_2D),
    ("routed-universal", "routed-universal", intel_ipsc(4), SQUARE_2D),
    ("block-sbnt", "block-sbnt", connection_machine(3), pt.row_consecutive(4, 4, 3)),
    ("block-exchange", "block-exchange", intel_ipsc(3), pt.row_consecutive(4, 4, 3)),
]


@pytest.mark.parametrize(
    "algorithm,params,before",
    [f[1:] for f in FAMILIES],
    ids=[f[0] for f in FAMILIES],
)
class TestReplayEquivalence:
    def test_stats_and_memories_identical(self, algorithm, params, before):
        result, plan = capture_transpose(
            params, synthetic_matrix(before), algorithm=algorithm
        )
        assert plan.algorithm == algorithm

        fresh = CubeNetwork(params)
        replay_plan(plan, fresh)

        # Full dataclass equality: every counter, the per-link element
        # loads and the complete phase timeline must match.
        assert fresh.stats == result.stats
        # The direct run drains node memories (invariant-checked); the
        # replay must leave the network in the same state.
        assert fresh.total_elements() == 0
        assert all(len(mem) == 0 for mem in fresh.memories)

    def test_replay_is_repeatable(self, algorithm, params, before):
        _, plan = capture_transpose(
            params, synthetic_matrix(before), algorithm=algorithm
        )
        first = CubeNetwork(params)
        second = CubeNetwork(params)
        replay_plan(plan, first)
        replay_plan(plan, second)
        assert first.stats == second.stats


class TestReplayGuards:
    def test_wrong_machine_rejected(self):
        _, plan = capture_transpose(intel_ipsc(4), synthetic_matrix(SQUARE_2D))
        with pytest.raises(PlanReplayError, match="compiled for"):
            replay_plan(plan, CubeNetwork(connection_machine(4)))

    def test_renamed_machine_is_compatible(self):
        params = intel_ipsc(4)
        _, plan = capture_transpose(params, synthetic_matrix(SQUARE_2D))
        renamed = CubeNetwork(
            type(params)(
                n=params.n,
                tau=params.tau,
                t_c=params.t_c,
                packet_capacity=params.packet_capacity,
                t_copy=params.t_copy,
                port_model=params.port_model,
                pipelined=params.pipelined,
                name="renamed",
            )
        )
        replay_plan(plan, renamed)  # same cost model, different name
        assert renamed.stats.phases == plan.num_phases

    def test_relabeled_plan_has_identical_cost(self):
        params = intel_ipsc(4)
        result, plan = capture_transpose(params, synthetic_matrix(SQUARE_2D))
        shifted = CubeNetwork(params)
        replay_plan(plan.relabeled(9), shifted)
        # XOR-translation is a cube automorphism: the modelled cost and
        # every aggregate counter are preserved; only link ids move.
        assert shifted.stats.time == result.stats.time
        assert shifted.stats.phases == result.stats.phases
        assert shifted.stats.startups == result.stats.startups
        assert shifted.stats.element_hops == result.stats.element_hops
        assert shifted.stats.link_elements != result.stats.link_elements
        assert sorted(shifted.stats.link_elements.values()) == sorted(
            result.stats.link_elements.values()
        )
