"""Tests for the batch runner: plan-once, replay-many."""

import pytest

from repro.layout import partition as pt
from repro.plans import BatchRequest, PlanCache, resolve_problem, run_batch

REQUESTS = [
    BatchRequest(elements=4096, n=4),
    BatchRequest(elements=1024, n=4),
    BatchRequest(elements=4096, n=4, machine="cm"),
    BatchRequest(elements=1024, n=3, layout="1d-rows"),
]


class TestResolveProblem:
    def test_matches_cli_square_2d(self):
        before, after = resolve_problem(4, 4096, "2d")
        assert before == pt.two_dim_cyclic(6, 6, 2, 2)
        assert after is None  # planner default for square matrices

    def test_rectangular_2d_gets_mirrored_target(self):
        before, after = resolve_problem(4, 2048, "2d")
        assert before == pt.two_dim_cyclic(5, 6, 2, 2)
        assert after == pt.two_dim_cyclic(6, 5, 2, 2)

    def test_rectangular_1d_gets_mirrored_target(self):
        before, after = resolve_problem(2, 2048, "1d-rows")
        assert before == pt.row_consecutive(5, 6, 2)
        assert after == pt.row_consecutive(6, 5, 2)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            resolve_problem(4, 1000, "2d")

    def test_rejects_odd_cube_for_2d(self):
        with pytest.raises(ValueError, match="even cube"):
            resolve_problem(3, 1024, "2d")

    def test_rejects_unknown_layout(self):
        with pytest.raises(ValueError, match="unknown layout"):
            resolve_problem(4, 1024, "3d")


class TestRunBatch:
    def test_first_run_compiles_second_run_all_hits(self):
        cache = PlanCache()
        first = run_batch(REQUESTS, cache=cache)
        assert first.misses == len(REQUESTS)
        assert first.hits == 0

        second = run_batch(REQUESTS, cache=cache)
        # The acceptance bar: a repeated request set is served entirely
        # from cache.
        assert second.hits == len(REQUESTS)
        assert second.misses == 0
        assert cache.hits == len(REQUESTS)

    def test_replayed_modelled_time_matches_direct(self):
        cache = PlanCache()
        first = run_batch(REQUESTS, cache=cache)
        second = run_batch(REQUESTS, cache=cache)
        for direct, replayed in zip(first.outcomes, second.outcomes):
            assert replayed.modelled_time == direct.modelled_time
            assert replayed.algorithm == direct.algorithm
            assert replayed.key == direct.key

    def test_auto_and_explicit_share_a_plan(self):
        cache = PlanCache()
        auto = BatchRequest(elements=4096, n=4, algorithm="auto")
        explicit = BatchRequest(elements=4096, n=4, algorithm="spt")
        report = run_batch([auto, explicit], cache=cache)
        assert report.outcomes[0].key == report.outcomes[1].key
        assert report.misses == 1 and report.hits == 1

    def test_disk_cache_survives_process_boundary(self, tmp_path):
        run_batch(REQUESTS[:2], cache=PlanCache(path=tmp_path))
        fresh = PlanCache(path=tmp_path)  # empty memory, warm disk
        report = run_batch(REQUESTS[:2], cache=fresh)
        assert report.hits == 2
        assert fresh.disk_hits == 2

    def test_report_shape(self):
        report = run_batch(REQUESTS[:1], cache=PlanCache())
        doc = report.as_dict()
        assert doc["requests"] == 1
        assert doc["misses"] == 1
        assert doc["outcomes"][0]["algorithm"] == "spt"
        assert "served from cache" in report.summary()

    def test_request_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown batch request field"):
            BatchRequest.from_dict({"elements": 64, "bogus": 1})
