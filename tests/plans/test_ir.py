"""Tests for the compiled-schedule IR: serialization, hashing, relabeling."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import partition as pt
from repro.machine.presets import connection_machine, intel_ipsc
from repro.plans import (
    PLAN_FORMAT_VERSION,
    CollectOp,
    CompiledPlan,
    CopyOp,
    IdleOp,
    LayoutSpec,
    LocalOp,
    MachineSpec,
    PhaseOp,
    PlaceOp,
    PlanError,
    PlanMessage,
    RemapOp,
    canonical_key,
    capture_transpose,
    synthetic_matrix,
)

# -- strategies for random-but-valid plans --------------------------------------

keys = st.recursive(
    st.one_of(
        st.integers(-100, 100),
        st.text(max_size=6),
        st.booleans(),
        st.none(),
    ),
    lambda inner: st.tuples(inner, inner),
    max_leaves=4,
)

messages = st.builds(
    PlanMessage,
    src=st.integers(0, 15),
    dst=st.integers(0, 15),
    elements=st.integers(0, 1 << 12),
    keys=st.tuples(keys),
)

ops = st.one_of(
    st.builds(PhaseOp, messages=st.tuples(messages), exclusive=st.booleans()),
    st.builds(
        PlaceOp, node=st.integers(0, 15), size=st.integers(0, 100), key=keys
    ),
    st.builds(CollectOp, node=st.integers(0, 15), key=keys),
    st.builds(
        CopyOp,
        per_node=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 100)), max_size=3
        ).map(tuple),
    ),
    st.builds(
        LocalOp,
        costs=st.one_of(
            st.floats(0, 10, allow_nan=False),
            st.lists(
                st.tuples(st.integers(0, 15), st.floats(0, 10)), max_size=3
            ).map(tuple),
        ),
        elements=st.one_of(st.none(), st.integers(0, 100)),
    ),
    st.builds(IdleOp),
    st.builds(RemapOp, mask=st.integers(0, 15)),
)

plans = st.builds(
    CompiledPlan,
    algorithm=st.sampled_from(["spt", "dpt", "mpt", "exchange"]),
    machine=st.just(MachineSpec.from_params(intel_ipsc(4))),
    before=st.just(LayoutSpec.from_layout(pt.two_dim_cyclic(4, 4, 2, 2))),
    after=st.just(LayoutSpec.from_layout(pt.two_dim_cyclic(4, 4, 2, 2))),
    ops=st.lists(ops, max_size=8).map(tuple),
    dtype=st.sampled_from(["float64", "float32"]),
)


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(plan=plans)
    def test_loads_dumps_identity(self, plan):
        assert CompiledPlan.loads(plan.dumps()) == plan

    @settings(max_examples=100, deadline=None)
    @given(plan=plans)
    def test_fingerprint_stable_under_round_trip(self, plan):
        assert CompiledPlan.loads(plan.dumps()).fingerprint == plan.fingerprint

    def test_real_capture_round_trips(self):
        _, plan = capture_transpose(
            intel_ipsc(4), synthetic_matrix(pt.two_dim_cyclic(4, 4, 2, 2))
        )
        again = CompiledPlan.loads(plan.dumps())
        assert again == plan
        assert again.fingerprint == plan.fingerprint

    def test_dumps_is_canonical_json(self):
        _, plan = capture_transpose(
            intel_ipsc(4), synthetic_matrix(pt.two_dim_cyclic(4, 4, 2, 2))
        )
        doc = json.loads(plan.dumps())
        assert list(doc) == sorted(doc)
        assert doc["format_version"] == PLAN_FORMAT_VERSION
        assert doc["dtype"] == "float64"
        assert doc["code_version"] != "unknown"


class TestValidation:
    def test_wrong_format_version_refused(self):
        _, plan = capture_transpose(
            intel_ipsc(2), synthetic_matrix(pt.row_consecutive(3, 3, 2))
        )
        doc = plan.to_json_dict()
        doc["format_version"] = PLAN_FORMAT_VERSION + 1
        with pytest.raises(PlanError, match="format version"):
            CompiledPlan.from_json_dict(doc)

    def test_not_json_refused(self):
        with pytest.raises(PlanError, match="not valid JSON"):
            CompiledPlan.loads("{truncated")

    def test_non_object_refused(self):
        with pytest.raises(PlanError, match="JSON object"):
            CompiledPlan.loads("[1, 2]")

    def test_canonical_key_numpy_ints_become_ints(self):
        key = canonical_key(("pp", np.int64(3), np.int32(1)))
        assert key == ("pp", 3, 1)
        assert all(not isinstance(k, np.integer) for k in key)

    def test_canonical_key_rejects_unserializable(self):
        with pytest.raises(PlanError, match="not"):
            canonical_key(object())


class TestRelabeling:
    def test_relabeled_zero_is_identity(self):
        _, plan = capture_transpose(
            intel_ipsc(4), synthetic_matrix(pt.two_dim_cyclic(4, 4, 2, 2))
        )
        assert plan.relabeled(0) is plan

    def test_relabeled_prepends_remap(self):
        _, plan = capture_transpose(
            intel_ipsc(4), synthetic_matrix(pt.two_dim_cyclic(4, 4, 2, 2))
        )
        shifted = plan.relabeled(5)
        assert shifted.ops[0] == RemapOp(5)
        assert shifted.ops[1:] == plan.ops

    def test_relabeled_mask_outside_cube_rejected(self):
        _, plan = capture_transpose(
            intel_ipsc(4), synthetic_matrix(pt.two_dim_cyclic(4, 4, 2, 2))
        )
        with pytest.raises(PlanError, match="mask"):
            plan.relabeled(1 << 4)


class TestSpecs:
    def test_machine_spec_round_trips_params(self):
        params = connection_machine(6)
        spec = MachineSpec.from_params(params)
        assert spec.to_params() == params
        assert spec.compatible_with(params)
        assert MachineSpec.from_dict(spec.as_dict()) == spec

    def test_machine_spec_compatibility_ignores_name(self):
        params = intel_ipsc(4)
        renamed = MachineSpec.from_params(params)
        renamed = MachineSpec(**{**renamed.as_dict(), "name": "other"})
        assert renamed.compatible_with(params)

    def test_layout_spec_round_trips_layout(self):
        layout = pt.two_dim_mixed(
            4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        spec = LayoutSpec.from_layout(layout)
        assert spec.to_layout() == layout
        assert LayoutSpec.from_dict(spec.as_dict()) == spec
