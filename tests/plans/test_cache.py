"""Tests for the content-addressed plan cache (LRU + disk tier)."""

import pytest

from repro.layout import partition as pt
from repro.machine.metrics import TransferStats
from repro.machine.presets import connection_machine, intel_ipsc
from repro.machine.trace import TraceRecorder
from repro.plans import (
    PlanCache,
    capture_transpose,
    plan_key,
    synthetic_matrix,
)
from repro.transpose.exchange import BufferPolicy

LAYOUT = pt.two_dim_cyclic(4, 4, 2, 2)


def _plan(params=None, layout=LAYOUT, algorithm="auto"):
    params = params or intel_ipsc(4)
    _, plan = capture_transpose(
        params, synthetic_matrix(layout), algorithm=algorithm
    )
    return plan


class TestPlanKey:
    def test_deterministic_across_calls(self):
        a = plan_key(intel_ipsc(4), LAYOUT, None, "spt")
        b = plan_key(intel_ipsc(4), LAYOUT, None, "spt")
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_known_value_pins_cross_session_stability(self):
        # Golden hash: if this changes, cached plans from earlier
        # sessions silently stop resolving — bump PLAN_FORMAT_VERSION
        # and the expectation together.
        assert (
            plan_key(intel_ipsc(4), LAYOUT, None, "spt")
            == "9da2d89e671ba031f83817652b8b7105"
            "2982550413fd11af2c0c7d21db0cc321"
        )

    def test_sensitive_to_every_input(self):
        base = plan_key(intel_ipsc(4), LAYOUT, None, "spt")
        assert plan_key(connection_machine(4), LAYOUT, None, "spt") != base
        assert plan_key(intel_ipsc(4), LAYOUT, None, "dpt") != base
        assert (
            plan_key(intel_ipsc(4), pt.two_dim_consecutive(4, 4, 2, 2), None, "spt")
            != base
        )
        assert plan_key(intel_ipsc(4), LAYOUT, None, "spt", packet_size=4) != base
        assert (
            plan_key(intel_ipsc(4), LAYOUT, None, "spt", dtype="float32") != base
        )
        assert (
            plan_key(
                intel_ipsc(4),
                LAYOUT,
                None,
                "spt",
                policy=BufferPolicy(mode="buffered"),
            )
            != base
        )

    def test_display_names_do_not_affect_key(self):
        params = intel_ipsc(4)
        renamed = type(params)(
            n=params.n,
            tau=params.tau,
            t_c=params.t_c,
            packet_capacity=params.packet_capacity,
            t_copy=params.t_copy,
            port_model=params.port_model,
            pipelined=params.pipelined,
            name="totally different",
        )
        assert plan_key(params, LAYOUT, None, "spt") == plan_key(
            renamed, LAYOUT, None, "spt"
        )


class TestLru:
    def test_hit_after_put(self):
        cache = PlanCache(capacity=4)
        plan = _plan()
        cache.put("k1", plan)
        assert cache.get("k1") is plan
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counted(self):
        cache = PlanCache(capacity=4)
        assert cache.get("absent") is None
        assert cache.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = PlanCache(capacity=2)
        plan = _plan()
        cache.put("a", plan)
        cache.put("b", plan)
        assert cache.get("a") is plan  # refresh "a"; "b" is now LRU
        cache.put("c", plan)
        assert cache.evictions == 1
        assert cache.get("b") is None  # evicted
        assert cache.get("a") is plan
        assert cache.get("c") is plan

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            PlanCache(capacity=0)


class TestDiskTier:
    def test_persists_across_instances(self, tmp_path):
        plan = _plan()
        PlanCache(path=tmp_path).put("deadbeef", plan)
        assert (tmp_path / "deadbeef.json").is_file()
        again = PlanCache(path=tmp_path)
        loaded = again.get("deadbeef")
        assert loaded == plan
        assert again.disk_hits == 1
        assert again.hits == 1

    def test_corrupt_file_is_a_miss(self, tmp_path):
        (tmp_path / "bad.json").write_text("{not json")
        cache = PlanCache(path=tmp_path)
        assert cache.get("bad") is None
        assert cache.misses == 1

    def test_memory_tier_serves_before_disk(self, tmp_path):
        plan = _plan()
        cache = PlanCache(path=tmp_path)
        cache.put("k", plan)
        assert cache.get("k") is plan  # identity: memory hit, not a reload
        assert cache.disk_hits == 0


class TestInstrumentation:
    def test_counters_flow_into_transfer_stats(self):
        stats = TransferStats()
        cache = PlanCache(capacity=1, stats=stats)
        plan = _plan()
        cache.get("x")
        cache.put("a", plan)
        cache.put("b", plan)  # evicts "a"
        cache.get("b")
        assert stats.plan_misses == 1
        assert stats.plan_evictions == 1
        assert stats.plan_hits == 1
        assert "plan_hits=1" in stats.summary()

    def test_events_flow_into_trace_recorder(self):
        trace = TraceRecorder()
        cache = PlanCache(capacity=1, observer=trace)
        plan = _plan()
        cache.get("0123456789abcdef")
        cache.put("0123456789abcdef", plan)
        cache.get("0123456789abcdef")
        kinds = [e.detail for e in trace.cache_events]
        assert kinds == ["miss:0123456789ab", "hit:0123456789ab"]

    def test_get_or_compile_compiles_once(self):
        cache = PlanCache()
        plan = _plan()
        calls = []

        def compile_fn():
            calls.append(1)
            return plan

        first, hit1 = cache.get_or_compile("k", compile_fn)
        second, hit2 = cache.get_or_compile("k", compile_fn)
        assert (hit1, hit2) == (False, True)
        assert first is plan and second is plan
        assert len(calls) == 1
