"""Contention stress tests: one ``PlanCache``, many threads.

The serving layer (:mod:`repro.service`) hangs a pool of workers off a
single shared cache, so the counters must be conserved exactly under
contention — ``hits + misses`` equals the number of ``get`` calls, the
resident set never exceeds capacity, and per-call telemetry sinks see
every event destined for their thread and nothing else.
"""

import threading

from repro.layout import partition as pt
from repro.machine.metrics import TransferStats
from repro.machine.presets import intel_ipsc
from repro.plans import PlanCache, capture_transpose, plan_key, synthetic_matrix

LAYOUT = pt.two_dim_cyclic(4, 4, 2, 2)


def _compiled_plan():
    _, plan = capture_transpose(
        intel_ipsc(4), synthetic_matrix(LAYOUT), algorithm="spt"
    )
    return plan


class _Events:
    """Minimal per-thread observer capturing ``on_cache`` events."""

    def __init__(self):
        self.events = []

    def on_cache(self, key, event):
        self.events.append((key, event))


class TestCacheContention:
    def test_counters_conserved_across_threads(self):
        threads_n = 8
        gets_per_thread = 300
        keys = [f"{i:064x}" for i in range(16)]
        plan = _compiled_plan()
        cache = PlanCache(capacity=8)

        barrier = threading.Barrier(threads_n)
        errors = []

        def worker(tid):
            try:
                barrier.wait()
                for i in range(gets_per_thread):
                    key = keys[(tid * 7 + i) % len(keys)]
                    got = cache.get(key)
                    if got is None:
                        cache.put(key, plan)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        counters = cache.counters()
        assert counters["hits"] + counters["misses"] == threads_n * gets_per_thread
        assert counters["resident"] <= cache.capacity
        assert len(cache) <= cache.capacity
        # Every miss triggered a put; stores and evictions must balance
        # the resident set: stores - evictions == resident.
        assert counters["stores"] - counters["evictions"] == counters["resident"]

    def test_get_or_compile_single_key_mostly_hits(self):
        threads_n = 8
        rounds = 50
        plan = _compiled_plan()
        key = plan_key(intel_ipsc(4), LAYOUT, None, "spt")
        cache = PlanCache(capacity=4)
        compiles = []
        lock = threading.Lock()

        def compile_fn():
            with lock:
                compiles.append(1)
            return plan

        barrier = threading.Barrier(threads_n)

        def worker():
            barrier.wait()
            for _ in range(rounds):
                got, _hit = cache.get_or_compile(key, compile_fn)
                assert got is plan

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        counters = cache.counters()
        total = threads_n * rounds
        assert counters["hits"] + counters["misses"] == total
        # The documented race allows a few duplicate compiles at startup,
        # never more than one per thread, and the steady state is all hits.
        assert len(compiles) == counters["misses"]
        assert counters["misses"] <= threads_n
        assert counters["hits"] >= total - threads_n

    def test_per_call_sinks_are_attributed_to_their_thread(self):
        threads_n = 6
        gets_per_thread = 100
        plan = _compiled_plan()
        cache = PlanCache(capacity=8)
        key = "ab" * 32
        cache.put(key, plan)

        results = {}
        barrier = threading.Barrier(threads_n)

        def worker(tid):
            stats = TransferStats()
            events = _Events()
            barrier.wait()
            for _ in range(gets_per_thread):
                assert cache.get(key, stats=stats, observer=events) is plan
            results[tid] = (stats, events)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for stats, events in results.values():
            # Each thread's private sinks saw exactly its own events —
            # no cross-wiring through shared cache state.
            assert stats.plan_hits == gets_per_thread
            assert stats.plan_misses == 0
            assert events.events == [(key, "hit")] * gets_per_thread
        assert cache.counters()["hits"] == threads_n * gets_per_thread
