"""`capture_permutation`: the permute counterpart of capture_transpose.

Every §7 permutation algorithm must capture into a CompiledPlan that
replays on a fresh network with identical deterministic stats — so the
permute family rides the same cache/replay/recovery machinery as the
transposes.
"""

import numpy as np
import pytest

from repro.layout import partition as pt
from repro.machine.engine import CubeNetwork
from repro.machine.presets import connection_machine
from repro.plans import capture_permutation, replay_plan, synthetic_matrix

LAYOUT = pt.row_cyclic(3, 3, 3)


class TestAddressKind:
    def test_reverse_captures_named_plan(self):
        params = connection_machine(3)
        result, plan = capture_permutation(
            params, "reverse", before=LAYOUT
        )
        assert plan.algorithm == "permute-reverse"
        assert plan.comm_class == "permute"
        assert result.layout == LAYOUT

    def test_explicit_bit_permutation(self):
        params = connection_machine(3)
        perm = {d: (d + 1) % LAYOUT.m for d in range(LAYOUT.m)}
        result, plan = capture_permutation(params, perm, before=LAYOUT)
        assert plan.algorithm == "permute-address"
        assert result.local_data.shape == (1 << 3, 1 << (LAYOUT.m - 3))

    def test_explicit_matrix_payload(self):
        params = connection_machine(3)
        dm = synthetic_matrix(LAYOUT)
        result, plan = capture_permutation(params, "reverse", dm=dm)
        assert plan.algorithm == "permute-reverse"
        # Bit reversal of the address space is an involution: capturing
        # it twice round-trips the payload.
        again, _ = capture_permutation(params, "reverse", dm=result)
        assert np.array_equal(again.to_global(), dm.to_global())


class TestOtherKinds:
    def test_dims_kind(self):
        params = connection_machine(3)
        result, plan = capture_permutation(
            params, [1, 2, 0], kind="dims", before=LAYOUT
        )
        assert plan.algorithm == "permute-dims"
        assert result.shape[0] == 1 << 3

    def test_nodes_kind(self):
        params = connection_machine(3)
        pi = [(x + 1) % 8 for x in range(8)]
        dm = synthetic_matrix(LAYOUT)
        result, plan = capture_permutation(params, pi, kind="nodes", dm=dm)
        assert plan.algorithm == "permute-nodes"
        # Node x's data ends up at pi(x).
        for x in range(8):
            assert np.array_equal(result[pi[x]], dm.local_data[x])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown permutation kind"):
            capture_permutation(
                connection_machine(3), "reverse", kind="frob", before=LAYOUT
            )

    def test_missing_payload_rejected(self):
        with pytest.raises(ValueError, match="dm= or before="):
            capture_permutation(connection_machine(3), "reverse")


class TestReplayEquivalence:
    @pytest.mark.parametrize(
        "kind,permutation",
        [
            ("address", "reverse"),
            ("address", {0: 1, 1: 0, 2: 2, 3: 3, 4: 4, 5: 5}),
            ("dims", [2, 0, 1]),
            ("nodes", [7 - x for x in range(8)]),
        ],
        ids=["reverse", "address", "dims", "nodes"],
    )
    def test_replay_is_deterministic(self, kind, permutation):
        params = connection_machine(3)
        _, plan = capture_permutation(
            params, permutation, kind=kind, before=LAYOUT
        )
        first = CubeNetwork(params)
        second = CubeNetwork(params)
        replay_plan(plan, first)
        replay_plan(plan, second)
        assert first.stats == second.stats
        assert first.stats.phases == plan.num_phases
