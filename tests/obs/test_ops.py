"""Ops surface: Prometheus exposition, HTTP exporter, burn rate, top."""

import urllib.request

import pytest

from repro.obs import (
    BurnRateTracker,
    MetricsExporter,
    MetricsRegistry,
    format_prometheus,
    render_top,
)


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_served", tenant="t-a").inc(5)
    reg.counter("requests_served", tenant="t-b").inc(2)
    reg.gauge("queue_depth").set(3)
    hist = reg.histogram("queue_wait_s", tenant="t-a")
    hist.observe(0.5)
    hist.observe(1.5)
    return reg


class TestFormatPrometheus:
    def test_counters_and_gauges_with_type_lines(self):
        text = format_prometheus(_registry())
        lines = text.splitlines()
        assert "# TYPE repro_requests_served counter" in lines
        assert 'repro_requests_served{tenant="t-a"} 5' in lines
        assert 'repro_requests_served{tenant="t-b"} 2' in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert "repro_queue_depth 3" in lines
        assert text.endswith("\n")

    def test_histogram_expands_to_count_sum_min_max(self):
        lines = format_prometheus(_registry()).splitlines()
        assert "# TYPE repro_queue_wait_s_count counter" in lines
        assert 'repro_queue_wait_s_count{tenant="t-a"} 2' in lines
        assert 'repro_queue_wait_s_sum{tenant="t-a"} 2.0' in lines
        assert "# TYPE repro_queue_wait_s_min gauge" in lines
        assert 'repro_queue_wait_s_max{tenant="t-a"} 1.5' in lines

    def test_each_type_line_appears_once_per_family(self):
        lines = format_prometheus(_registry()).splitlines()
        type_lines = [ln for ln in lines if ln.startswith("# TYPE")]
        assert len(type_lines) == len(set(type_lines))

    def test_names_sanitized_and_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.x", label='a"b\nc\\d').inc()
        text = format_prometheus(reg)
        assert "repro_weird_name_x" in text
        assert r'label="a\"b\nc\\d"' in text

    def test_empty_registry_renders_empty(self):
        assert format_prometheus(MetricsRegistry()) == ""


class TestMetricsExporter:
    def test_live_scrape_on_ephemeral_port(self):
        with MetricsExporter(_registry) as exporter:
            port = exporter.port
            assert port != 0
            url = f"http://127.0.0.1:{port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode()
        assert "repro_requests_served" in body

    def test_scrapes_see_fresh_source_state(self):
        reg = MetricsRegistry()
        with MetricsExporter(lambda: reg) as exporter:
            url = f"http://127.0.0.1:{exporter.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as resp:
                before = resp.read().decode()
            reg.counter("late_arrival").inc()
            with urllib.request.urlopen(url, timeout=5) as resp:
                after = resp.read().decode()
        assert "late_arrival" not in before
        assert "repro_late_arrival 1" in after

    def test_unknown_path_is_404(self):
        with MetricsExporter(_registry) as exporter:
            url = f"http://127.0.0.1:{exporter.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=5)
            assert err.value.code == 404

    def test_stop_is_idempotent(self):
        exporter = MetricsExporter(_registry)
        exporter.start()
        exporter.stop()
        exporter.stop()


class TestBurnRateTracker:
    def test_validation(self):
        with pytest.raises(ValueError, match="objective"):
            BurnRateTracker(1.0)
        with pytest.raises(ValueError, match="window"):
            BurnRateTracker(0.99, window=0)

    def test_burn_is_windowed_bad_rate_over_budget(self):
        tracker = BurnRateTracker(0.99, window=10)
        for _ in range(8):
            tracker.record(True)
        tracker.record(False)
        tracker.record(False)
        # 2 bad in 10 with a 1% budget: burning 20x.
        assert tracker.burn_rate == pytest.approx(20.0)
        assert tracker.alert == "page"

    def test_window_slides_and_old_badness_ages_out(self):
        tracker = BurnRateTracker(0.9, window=4)
        tracker.record(False)
        for _ in range(4):
            tracker.record(True)
        assert tracker.burn_rate == 0.0
        assert tracker.alert == "ok"
        assert tracker.bad_total == 1  # lifetime total survives

    def test_alert_ladder(self):
        tracker = BurnRateTracker(0.9, window=10, warn=1.0, page=5.0)
        for _ in range(10):
            tracker.record(True)
        assert tracker.alert == "ok"
        tracker.record(False)  # 1/10 bad = burn 1.0
        assert tracker.alert == "warn"
        for _ in range(4):
            tracker.record(False)  # 5/10 bad = burn 5.0
        assert tracker.alert == "page"

    def test_snapshot_shape(self):
        tracker = BurnRateTracker(0.99, window=5)
        tracker.record(True)
        tracker.record(False)
        snap = tracker.snapshot()
        assert snap["observed"] == 2
        assert snap["bad_in_window"] == 1
        assert snap["total"] == 2
        assert snap["burn_rate"] == pytest.approx(50.0)
        assert snap["alert"] == "page"
        assert snap["thresholds"] == {"warn": 1.0, "page": 10.0}

    def test_record_outcome_maps_status(self):
        class Outcome:
            def __init__(self, status):
                self.status = status

        tracker = BurnRateTracker(0.5, window=4)
        tracker.record_outcome(Outcome("served"))
        tracker.record_outcome(Outcome("failed"))
        tracker.record_outcome(Outcome("deadline_missed"))
        assert tracker.snapshot()["bad_in_window"] == 2

    def test_deterministic_under_replay(self):
        a = BurnRateTracker(0.99, window=8)
        b = BurnRateTracker(0.99, window=8)
        pattern = [True, True, False, True, False, True, True, True]
        for ok in pattern:
            a.record(ok)
            b.record(ok)
        assert a.snapshot() == b.snapshot()


class TestRenderTop:
    def _report(self):
        return {
            "workers": 2,
            "wall_seconds": 1.5,
            "slo": {
                "requests": 40,
                "admitted": 38,
                "served": 36,
                "rejected": 2,
                "failed": 1,
                "deadline_missed": 1,
                "cache_hit_rate": 0.9,
                "throughput_rps": 123.4,
                "latency_s": {
                    "total": {"p50": 0.1, "p95": 0.2, "p99": 0.3,
                              "max": 0.4},
                    "queue_wait": {"p50": 0.01, "p95": 0.02, "p99": 0.03,
                                   "max": 0.04},
                },
                "burn": {
                    "burn_rate": 2.5,
                    "objective": 0.99,
                    "alert": "warn",
                    "thresholds": {"warn": 1.0, "page": 10.0},
                },
            },
            "queue": {"depth": 3, "capacity": 8},
            "tenants": {
                "tenant-0": {"admitted": 20, "served": 19,
                             "deadline_missed": 1, "failed": 0,
                             "rejected": 1},
            },
        }

    def test_frame_carries_the_headline_numbers(self):
        frame = render_top(self._report())
        assert "repro top" in frame
        assert "served     36" in frame
        assert "hit-rate  90.0%" in frame
        assert "queue" in frame and "3/8" in frame
        assert "2.50x budget" in frame and "WARN" in frame
        assert "queue_wait" in frame
        assert "tenant-0" in frame

    def test_clear_prefixes_ansi_home(self):
        plain = render_top(self._report())
        cleared = render_top(self._report(), clear=True)
        assert cleared.endswith(plain)
        assert cleared.startswith("\x1b[2J\x1b[H")

    def test_tolerates_sparse_report(self):
        frame = render_top({})
        assert "repro top" in frame  # never raises on missing blocks
