"""Exporters: Chrome trace-event JSON structure and JSONL streaming."""

import json
import threading

from repro.obs import ChromeTraceSink, Instrumentation, JsonlSink


def _run_hub(*sinks) -> Instrumentation:
    hub = Instrumentation(*sinks)
    with hub.span("transpose", category="run"):
        with hub.span("mpt", category="algorithm"):
            hub.on_phase([(0, 1, 8), (2, 3, 8)], 0.5)
            hub.on_phase([(1, 0, 8)], 0.25)
        hub.event("degrade", "planner", tier="mpt")
    return hub


class TestChromeTraceSink:
    def test_document_shape(self):
        sink = ChromeTraceSink()
        _run_hub(sink)
        doc = sink.document()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"  # process metadata first
        kinds = {e["ph"] for e in events}
        assert kinds == {"M", "X", "i"}
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_spans_sorted_for_containment_nesting(self):
        sink = ChromeTraceSink()
        _run_hub(sink)
        xs = [e for e in sink.trace_events() if e["ph"] == "X"]
        # At equal start, outer (longer) spans come first: run, algorithm,
        # then the two phase leaves in time order.
        assert [e["name"] for e in xs] == [
            "transpose", "mpt", "phase", "phase",
        ]
        run, algo, p1, p2 = xs
        assert run["ts"] == 0.0
        assert run["dur"] >= algo["dur"] >= p1["dur"]
        assert p2["ts"] == 0.5 * 1e6  # model seconds -> microseconds
        assert p1["args"]["messages"] == 2
        assert p1["args"]["elements"] == 16

    def test_instant_events_carry_attrs(self):
        sink = ChromeTraceSink()
        _run_hub(sink)
        instants = [e for e in sink.trace_events() if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "degrade"
        assert instants[0]["args"]["tier"] == "mpt"

    def test_write_creates_parent_dirs(self, tmp_path):
        sink = ChromeTraceSink()
        _run_hub(sink)
        target = tmp_path / "deep" / "nested" / "trace.json"
        sink.write(target)
        loaded = json.loads(target.read_text())
        assert loaded["traceEvents"]


class TestJsonlSink:
    def test_in_memory_lines(self):
        sink = JsonlSink()
        _run_hub(sink)
        docs = [json.loads(line) for line in sink.lines]
        types = [d["type"] for d in docs]
        # Phase leaves close before the algorithm span, which closes
        # before the run span; the instant event lands in between.
        assert types.count("span") == 4
        assert types.count("event") == 1
        assert docs[-1]["name"] == "transpose"

    def test_raw_phase_stream(self):
        sink = JsonlSink(raw_phases=True)
        _run_hub(sink)
        phases = [
            json.loads(line)
            for line in sink.lines
            if json.loads(line)["type"] == "phase"
        ]
        assert [p["elements"] for p in phases] == [16, 8]

    def test_file_target(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlSink(path) as sink:
            _run_hub(sink)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 5
        for line in lines:
            json.loads(line)


class TestSinkContention:
    """Worker pools share one sink per export target: emissions from
    many hubs (one per worker thread) must interleave without losing or
    corrupting records."""

    THREADS = 8
    SPANS_PER_THREAD = 50

    def _hammer(self, sink):
        def work(tid):
            hub = Instrumentation(sink)
            for i in range(self.SPANS_PER_THREAD):
                with hub.span(f"t{tid}-s{i}", category="request"):
                    hub.event(f"t{tid}-e{i}")

        threads = [
            threading.Thread(target=work, args=(tid,))
            for tid in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_jsonl_memory_lines_survive_contention(self):
        sink = JsonlSink()
        self._hammer(sink)
        expected = self.THREADS * self.SPANS_PER_THREAD
        docs = [json.loads(line) for line in sink.lines]
        assert len(docs) == 2 * expected  # every line parses cleanly
        assert sum(d["type"] == "span" for d in docs) == expected
        assert sum(d["type"] == "event" for d in docs) == expected

    def test_jsonl_file_lines_survive_contention(self, tmp_path):
        path = tmp_path / "contended.jsonl"
        with JsonlSink(path) as sink:
            self._hammer(sink)
        expected = self.THREADS * self.SPANS_PER_THREAD
        # No torn/interleaved lines: every one parses, none missing.
        docs = [
            json.loads(line)
            for line in path.read_text().strip().splitlines()
        ]
        assert len(docs) == 2 * expected
        names = {d["name"] for d in docs}
        assert f"t0-s{self.SPANS_PER_THREAD - 1}" in names
        assert f"t{self.THREADS - 1}-e0" in names

    def test_chrome_sink_conserves_records_under_contention(self):
        sink = ChromeTraceSink()
        self._hammer(sink)
        expected = self.THREADS * self.SPANS_PER_THREAD
        events = sink.trace_events()
        assert sum(e["ph"] == "X" for e in events) == expected
        assert sum(e["ph"] == "i" for e in events) == expected
        json.dumps(sink.document())
