"""The instrumentation hub: observer conformance, spans, the null path."""

import pytest

from repro.layout import partition as pt
from repro.machine.engine import CubeNetwork
from repro.machine.presets import connection_machine, intel_ipsc
from repro.machine.trace import TraceRecorder
from repro.obs import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    instrumentation_of,
)
from repro.plans.cache import PlanCache
from repro.plans.recorder import capture_transpose, synthetic_matrix
from repro.transpose.planner import transpose


class _CallLog:
    """A sink implementing the full observer surface, logging calls."""

    def __init__(self):
        self.calls = []

    def on_phase(self, transfers, duration):
        self.calls.append(("on_phase", len(transfers), duration))

    def on_local(self, elements, duration):
        self.calls.append(("on_local", elements, duration))

    def on_fault(self, src, dst, phase, kind):
        self.calls.append(("on_fault", src, dst, phase, kind))

    def on_cache(self, key, event):
        self.calls.append(("on_cache", event))

    def on_span(self, span):
        self.calls.append(("on_span", span.name))

    def on_event(self, event):
        self.calls.append(("on_event", event.name))


class _PhaseOnly:
    """A sink with a partial surface: only ``on_phase``."""

    def __init__(self):
        self.phases = 0

    def on_phase(self, transfers, duration):
        self.phases += 1


class TestConformance:
    """Every emission point reaches every sink that declares its hook."""

    def test_engine_phases_reach_sinks(self):
        log, partial = _CallLog(), _PhaseOnly()
        hub = Instrumentation(log, partial)
        net = CubeNetwork(connection_machine(2))
        hub.attach(net)
        assert net.observer is hub
        net.place(0, _block("b", 4))
        from repro.machine.message import Message

        net.execute_phase([Message(0, 1, ("b",))])
        assert ("on_phase", 1, pytest.approx(net.stats.time)) in log.calls
        assert partial.phases == 1

    def test_local_charges_reach_sinks(self):
        log = _CallLog()
        hub = Instrumentation(log)
        net = CubeNetwork(connection_machine(2))
        hub.attach(net)
        net.execute_local(0.5, 16)
        assert any(c[0] == "on_local" and c[1] == 16 for c in log.calls)

    def test_fault_hook_fans_out_and_annotates_open_spans(self):
        log = _CallLog()
        hub = Instrumentation(log)
        with hub.span("outer") as outer:
            hub.on_fault(0, 1, 3, "link")
        assert ("on_fault", 0, 1, 3, "link") in log.calls
        assert outer.attrs["faults"] == 1
        assert hub.metrics.counter("fault_encounters", kind="link").value == 1
        assert [e.name for e in hub.events] == ["fault"]

    def test_cache_hook_fans_out(self):
        log = _CallLog()
        hub = Instrumentation(log)
        cache = PlanCache(observer=hub)
        key = "k" * 40
        assert cache.get(key) is None
        assert ("on_cache", "miss") in log.calls
        assert (
            hub.metrics.counter("plan_cache_events", event="miss").value == 1
        )

    def test_trace_recorder_works_as_sink(self):
        recorder = TraceRecorder()
        hub = Instrumentation(recorder)
        net = CubeNetwork(connection_machine(2))
        hub.attach(net)
        net.execute_local(0.25, 4)
        assert len(recorder.events) == 1
        assert recorder.events[0].kind == "local"

    def test_sink_without_hooks_is_ignored(self):
        hub = Instrumentation(object())
        hub.on_phase([], 0.0)  # must not raise
        hub.event("x")


class TestSpans:
    def test_nesting_and_clock(self):
        hub = Instrumentation()
        with hub.span("outer", category="run"):
            hub.on_phase([(0, 1, 8)], 0.5)
            with hub.span("inner", category="algorithm"):
                hub.on_phase([(1, 0, 8)], 0.25)
        by_name = {s.name: s for s in hub.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].start == 0.0
        assert by_name["outer"].end == 0.75
        assert by_name["inner"].start == 0.5
        # Two synthesized phase leaves, parented to the open span.
        phases = [s for s in hub.spans if s.category == "phase"]
        assert [p.parent_id for p in phases] == [
            by_name["outer"].span_id,
            by_name["inner"].span_id,
        ]

    def test_exception_closes_span_with_error_attr(self):
        hub = Instrumentation()
        with pytest.raises(RuntimeError):
            with hub.span("boom"):
                raise RuntimeError("x")
        assert hub.spans[0].attrs["error"] == "RuntimeError"
        assert hub.current_span() is None

    def test_current_algorithm_tracks_innermost(self):
        hub = Instrumentation()
        assert hub.current_algorithm() is None
        with hub.span("transpose", category="run"):
            with hub.span("mpt", category="algorithm"):
                assert hub.current_algorithm() == "mpt"

    def test_phase_spans_can_be_disabled(self):
        hub = Instrumentation(phase_spans=False)
        hub.on_phase([(0, 1, 4)], 0.5)
        assert hub.spans == []
        assert hub.clock == 0.5


class TestNullPath:
    def test_unobserved_network_yields_shared_null(self):
        net = CubeNetwork(connection_machine(2))
        assert instrumentation_of(net) is NULL_INSTRUMENTATION
        # Same shared span object every time: no per-call allocation.
        a = NULL_INSTRUMENTATION.span("x", whatever=1)
        b = NULL_INSTRUMENTATION.span("y")
        assert a is b
        with a as span:
            span.annotate(ignored=True)
            span.count("ignored")

    def test_foreign_observer_keeps_null_span_path(self):
        net = CubeNetwork(connection_machine(2))
        net.observer = TraceRecorder()
        assert instrumentation_of(net) is NULL_INSTRUMENTATION


class TestEmissionPoints:
    """The planner/exchange/replay layers emit the documented span tree."""

    def test_planner_run_wraps_algorithm_wraps_phases(self):
        hub = Instrumentation()
        net = CubeNetwork(connection_machine(4))
        hub.attach(net)
        layout = pt.two_dim_cyclic(2, 2, 2, 2)
        result = transpose(net, synthetic_matrix(layout), algorithm="mpt")
        assert result.algorithm == "mpt"
        roots = hub.roots()
        assert [s.name for s in roots] == ["transpose"]
        run = roots[0]
        assert run.category == "run"
        assert run.attrs["algorithm"] == "mpt"
        tree = hub.span_tree()
        algos = [
            s for s in tree[run.span_id] if s.category == "algorithm"
        ]
        assert [a.name for a in algos] == ["mpt"]
        descendants = _descendants(tree, algos[0].span_id)
        assert any(s.category == "phase" for s in descendants)

    def test_exchange_sequence_spans(self):
        hub = Instrumentation()
        net = CubeNetwork(intel_ipsc(4))
        hub.attach(net)
        layout = pt.row_consecutive(4, 4, 4)
        transpose(net, synthetic_matrix(layout), algorithm="exchange")
        names = {s.category for s in hub.spans}
        assert "sequence" in names
        assert "exchange" in names

    def test_capture_with_observer_traces_the_planning_run(self):
        hub = Instrumentation()
        layout = pt.two_dim_cyclic(2, 2, 2, 2)
        _, plan = capture_transpose(
            connection_machine(4),
            synthetic_matrix(layout),
            algorithm="mpt",
            observer=hub,
        )
        assert plan.algorithm == "mpt"
        assert [s.name for s in hub.roots()] == ["transpose"]


def _descendants(tree, span_id):
    out = []
    for child in tree.get(span_id, []):
        out.append(child)
        out.extend(_descendants(tree, child.span_id))
    return out


def _block(key, size):
    from repro.machine.message import Block

    return Block(key, virtual_size=size)
