"""TransferStats as a registry view: round-trips and merge algebra."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.metrics import (
    _COUNTER_FIELDS,
    _ZERO_SUPPRESSED,
    TransferStats,
)


def _sample_stats() -> TransferStats:
    s = TransferStats()
    s.record_phase(0.25)
    s.record_phase(0.5)
    s.record_message(0, 1, 32, 2)
    s.record_message(1, 3, 16, 1)
    s.record_copy(8, 0.125)
    s.record_fault(node=False)
    s.record_retry()
    s.record_plan_event("hit")
    return s


class TestAsDict:
    def test_includes_links_and_phase_times(self):
        doc = _sample_stats().as_dict()
        assert doc["link_elements"] == {"0->1": 32, "1->3": 16}
        assert doc["phase_times"] == [0.25, 0.5]
        assert doc["max_link_elements"] == 32
        for name in _COUNTER_FIELDS:
            if name in _ZERO_SUPPRESSED:
                continue
            assert name in doc

    def test_integrity_counters_are_zero_suppressed(self):
        """Zero integrity counters stay out of documents and baselines.

        Every pinned baseline and fingerprint predates the integrity
        subsystem; suppressing the zero case keeps them byte-stable
        while still surfacing the counters the moment they move.
        """
        quiet = _sample_stats().as_dict()
        assert not any(name in quiet for name in _ZERO_SUPPRESSED)
        active = _sample_stats()
        active.record_corrupted_delivery()
        active.record_retransmit()
        doc = active.as_dict()
        assert doc["integrity_corrupted_deliveries"] == 1
        assert doc["integrity_retransmits"] == 1
        restored = TransferStats.from_dict(json.loads(json.dumps(doc)))
        assert restored == active

    def test_json_round_trip(self):
        """as_dict -> json -> from_dict reproduces the stats exactly."""
        original = _sample_stats()
        doc = json.loads(json.dumps(original.as_dict()))
        restored = TransferStats.from_dict(doc)
        assert restored == original
        assert restored.link_elements == {(0, 1): 32, (1, 3): 16}
        assert restored.phase_times == [0.25, 0.5]
        assert restored.startups == original.startups

    def test_from_dict_tolerates_missing_optional_keys(self):
        restored = TransferStats.from_dict({"time": 1.0})
        assert restored.time == 1.0
        assert restored.link_elements == {}
        assert restored.phase_times == []


# -- merge algebra (property-based) ------------------------------------------
#
# Durations are dyadic rationals so float addition is exact and the
# associativity property is an equality, not an approximation.

_DURATIONS = st.integers(0, 64).map(lambda k: k / 8)


@st.composite
def transfer_stats(draw):
    s = TransferStats()
    for _ in range(draw(st.integers(0, 4))):
        s.record_phase(draw(_DURATIONS))
    for _ in range(draw(st.integers(0, 6))):
        s.record_message(
            draw(st.integers(0, 7)),
            draw(st.integers(0, 7)),
            draw(st.integers(1, 64)),
            draw(st.integers(1, 4)),
        )
    for _ in range(draw(st.integers(0, 2))):
        s.record_copy(draw(st.integers(0, 32)), draw(_DURATIONS))
    for _ in range(draw(st.integers(0, 2))):
        s.record_fault(node=draw(st.booleans()))
    return s


def _copy(stats: TransferStats) -> TransferStats:
    return TransferStats.from_dict(stats.as_dict())


class TestMergeProperties:
    @settings(max_examples=60, deadline=None)
    @given(transfer_stats(), transfer_stats(), transfer_stats())
    def test_merge_is_associative(self, a, b, c):
        left = _copy(a)
        left.merge(b)
        left.merge(c)

        bc = _copy(b)
        bc.merge(c)
        right = _copy(a)
        right.merge(bc)

        assert left == right

    @settings(max_examples=60, deadline=None)
    @given(transfer_stats(), transfer_stats())
    def test_merge_agrees_with_counterwise_addition(self, a, b):
        merged = _copy(a)
        merged.merge(b)

        for name in _COUNTER_FIELDS:
            assert getattr(merged, name) == getattr(a, name) + getattr(
                b, name
            ), name

        expected_links = dict(a.link_elements)
        for link, load in b.link_elements.items():
            expected_links[link] = expected_links.get(link, 0) + load
        assert merged.link_elements == expected_links
        assert merged.phase_times == a.phase_times + b.phase_times
        assert merged.max_link_elements == max(
            [a.max_link_elements, *expected_links.values()], default=0
        )
