"""The perf-regression gate: record, clean check, perturbed failure."""

import dataclasses
import json

from repro.obs.baseline import (
    BaselineScenario,
    check_baselines,
    record_baselines,
    run_scenario,
)

# A small suite so the gate's own tests stay fast; it still covers the
# direct, faulted and plan-cached execution paths.
SUITE = (
    BaselineScenario("t_mpt", "cm", 4, 1 << 8, algorithm="mpt"),
    BaselineScenario("t_faulted", "cm", 4, 1 << 8, algorithm="mpt",
                     faults="links=0-1,seed=5"),
    BaselineScenario("t_cached", "cm", 4, 1 << 8, algorithm="mpt",
                     cached=True),
)

SERVICE = BaselineScenario(
    "t_service", "cm", 4, 1 << 8,
    service=json.dumps({
        "spec": {"seed": 11, "tenants": 2, "requests": 12, "shapes": 2,
                 "n": 4, "fault_rate": 0.25},
        "config": {"queue_capacity": 8, "tenant_pending": 4},
    }),
)


class TestRunScenario:
    def test_counters_are_deterministic(self):
        a = run_scenario(SUITE[0])
        b = run_scenario(SUITE[0])
        assert a == b
        assert a["algorithm_tier"] == "mpt"
        assert a["element_hops"] > 0

    def test_faulted_scenario_reports_degraded_tier(self):
        counters = run_scenario(SUITE[1])
        assert counters["algorithm_tier"] != "mpt"

    def test_scalar_counters_only(self):
        counters = run_scenario(SUITE[0])
        assert "link_elements" not in counters
        assert "phase_times" not in counters

    def test_service_scenario_pins_serving_counters(self):
        a = run_scenario(SERVICE)
        assert a == run_scenario(SERVICE)
        assert a["admitted"] + a["rejected"] == a["requests"]
        assert a["served"] + a["failed"] == a["admitted"]
        assert json.loads(json.dumps(a)) == a  # JSON-safe scalars only

    def test_service_scenario_record_check_round_trip(self, tmp_path):
        suite = (SERVICE,)
        record_baselines(str(tmp_path), suite)
        assert check_baselines(str(tmp_path), suite).ok
        # A different workload seed is a behavioural change: it must
        # breach, proving the gate actually reads these counters.
        doc = json.loads(SERVICE.service)
        doc["spec"]["seed"] = 12
        drifted = (
            dataclasses.replace(SERVICE, service=json.dumps(doc)),
        )
        assert not check_baselines(str(tmp_path), drifted).ok


class TestGate:
    def test_record_then_check_passes_clean(self, tmp_path):
        written = record_baselines(str(tmp_path), SUITE)
        assert len(written) == len(SUITE)
        for path in written:
            with open(path) as fh:
                doc = json.load(fh)
            assert set(doc) == {"scenario", "counters", "code_version"}
        report = check_baselines(str(tmp_path), SUITE)
        assert report.ok
        assert report.checked == len(SUITE)
        assert "passed" in report.describe()

    def test_missing_baseline_fails(self, tmp_path):
        report = check_baselines(str(tmp_path), SUITE[:1])
        assert not report.ok
        assert report.missing == ["t_mpt"]
        assert "no baseline recorded" in report.describe()

    def test_cost_model_perturbation_fails_with_counter_diff(self, tmp_path):
        """A deliberate cost-model change must trip the gate and name the
        counters that moved."""
        record_baselines(str(tmp_path), SUITE)

        def slower_startups(params):
            return dataclasses.replace(params, tau=params.tau * 1.01)

        report = check_baselines(str(tmp_path), SUITE, perturb=slower_startups)
        assert not report.ok
        breached = {(d.scenario, d.counter) for d in report.diffs}
        assert ("t_mpt", "time") in breached
        assert ("t_mpt", "comm_time") in breached
        # Structural counters are untouched by a pure cost change.
        assert not any(c == "element_hops" for _, c in breached)
        text = report.describe()
        assert "FAILED" in text
        time_diff = next(
            d for d in report.diffs
            if d.scenario == "t_mpt" and d.counter == "time"
        )
        assert 0 < time_diff.relative <= 0.011
        assert "->" in time_diff.describe()

    def test_schedule_change_is_also_caught(self, tmp_path):
        """Renamed/retiered outcomes breach via the string counter."""
        record_baselines(str(tmp_path), SUITE[:1])
        changed = (dataclasses.replace(SUITE[0], algorithm="dpt"),)
        report = check_baselines(str(tmp_path), changed)
        assert not report.ok
        assert any(d.counter == "algorithm_tier" for d in report.diffs)

    def test_report_as_dict_is_json_safe(self, tmp_path):
        record_baselines(str(tmp_path), SUITE[:1])
        report = check_baselines(str(tmp_path), SUITE[:1])
        json.dumps(report.as_dict())
