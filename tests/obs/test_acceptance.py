"""The issue's acceptance scenario, end to end.

One faulted, plan-cached MPT request is served twice through
:func:`replay_degraded` under a single instrumentation hub and exported
as Chrome trace JSON.  The trace must show the full nesting — serve
(run) -> replay (algorithm) -> phase leaves — and the spans must carry
the fault-ladder, cache and fault-counter annotations.
"""

import json

from repro.layout import partition as pt
from repro.machine.faults import FaultPlan
from repro.machine.presets import connection_machine
from repro.obs import ChromeTraceSink, Instrumentation
from repro.plans import PlanCache
from repro.plans.replay import replay_degraded
from repro.transpose.planner import schedule_links

N = 4
LAYOUT = pt.two_dim_cyclic(2, 2, 2, 2)


def _dpt_only_link():
    """A link only DPT schedules: faulting it degrades MPT -> DPT."""
    extra = sorted(schedule_links("mpt", N) - schedule_links("dpt", N))
    if extra:  # fault an MPT-only link instead: MPT -> DPT directly
        return extra[0], ("mpt",)
    extra = sorted(schedule_links("dpt", N) - schedule_links("spt", N))
    return extra[0], ("mpt", "dpt")


def test_faulted_cached_mpt_run_exports_annotated_chrome_trace(tmp_path):
    (src, dst), expected_skips = _dpt_only_link()
    faults = FaultPlan.from_spec(N, f"links={src}-{dst}")
    cache = PlanCache()
    sink = ChromeTraceSink()
    hub = Instrumentation(sink)

    first = replay_degraded(
        connection_machine(N), LAYOUT, faults=faults, algorithm="mpt",
        cache=cache, observer=hub,
    )
    second = replay_degraded(
        connection_machine(N), LAYOUT, faults=faults, algorithm="mpt",
        cache=cache, observer=hub,
    )

    # -- degradation and caching behaved --------------------------------
    assert first.requested == "mpt"
    assert first.algorithm != "mpt"
    assert tuple(first.skipped) == expected_skips
    assert not first.cache_hit and second.cache_hit
    assert first.replayed and second.replayed
    assert second.stats.time == first.stats.time

    # -- span tree: serve (run) -> replay (algorithm) -> phase leaves ----
    serves = [s for s in hub.spans if s.name == "serve"]
    assert len(serves) == 2
    for serve in serves:
        assert serve.category == "run"
        assert serve.attrs["requested"] == "mpt"
        assert serve.attrs["tier"] == first.algorithm
        assert serve.attrs["skipped"] == list(expected_skips)
        assert "link fault" in serve.attrs["fault_spec"]
    assert serves[0].attrs["cache_hit"] is False
    assert serves[1].attrs["cache_hit"] is True
    # Cache events annotated onto the enclosing serve span.
    assert serves[0].attrs["cache_miss_events"] == 1
    assert serves[1].attrs["cache_hit_events"] == 1

    tree = hub.span_tree()
    for serve in serves:
        replays = [
            s for s in tree[serve.span_id] if s.category == "algorithm"
        ]
        assert [r.name for r in replays] == ["replay"]
        assert replays[0].attrs["algorithm"] == first.algorithm
        assert replays[0].attrs["fingerprint"]
        phases = [
            s
            for s in tree.get(replays[0].span_id, [])
            if s.category == "phase"
        ]
        assert phases, "replay must contain synthesized phase leaves"

    # -- metrics registry agrees with the observed run -------------------
    assert (
        hub.metrics.counter("plan_cache_events", event="miss").value == 1
    )
    assert hub.metrics.counter("plan_cache_events", event="hit").value == 1

    # -- the Chrome trace round-trips and preserves the nesting ----------
    path = tmp_path / "serve.trace.json"
    sink.write(path)
    doc = json.loads(path.read_text())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    by_id = {e["args"]["span_id"]: e for e in xs}
    serve_events = [e for e in xs if e["name"] == "serve"]
    assert len(serve_events) == 2
    replay_events = [e for e in xs if e["name"] == "replay"]
    assert {e["args"]["parent_id"] for e in replay_events} == {
        e["args"]["span_id"] for e in serve_events
    }
    for e in replay_events:
        parent = by_id[e["args"]["parent_id"]]
        assert parent["ts"] <= e["ts"]
        assert e["ts"] + e["dur"] <= parent["ts"] + parent["dur"] + 1e-9
    cache_markers = [
        e
        for e in doc["traceEvents"]
        if e["ph"] == "i" and e["name"] == "plan-cache"
    ]
    assert [m["args"]["event"] for m in cache_markers] == ["miss", "hit"]
