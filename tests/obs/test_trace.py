"""Tracing layer: contexts, flight recorder, merged export, validation."""

import json

import pytest

from repro.obs import (
    FlightRecorder,
    Instrumentation,
    TraceContext,
    merged_trace_document,
    spans_from_chrome_document,
    validate_trace,
)
from repro.obs.spans import Span


class _WallClock:
    """A hand-cranked wall clock for deterministic dual-axis tests."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt
        return self.now


def _traced_hub(contexts=("req-000000",), *sinks):
    """A hub that served one traced request per context."""
    wall = _WallClock()
    hub = Instrumentation(*sinks, wall_clock=wall)
    for i, trace_id in enumerate(contexts):
        ctx = TraceContext(trace_id=trace_id, request_id=i, tenant="t-a")
        with hub.in_trace(ctx):
            with hub.span("request", category="request") as root:
                wall.tick(0.25)
                with hub.span("execute", category="execute"):
                    hub.on_phase([(0, 1, 8)], 0.5)
                    wall.tick(0.5)
                hub.event("done", "request")
                root.annotate(status="served")
        wall.tick(1.0)
    return hub, wall


class TestTraceContext:
    def test_identity_and_dict(self):
        ctx = TraceContext(
            trace_id="req-000007", request_id=7, tenant="t-b", priority=2
        )
        assert ctx.as_dict() == {
            "trace_id": "req-000007",
            "request_id": 7,
            "tenant": "t-b",
            "priority": 2,
        }

    def test_frozen(self):
        ctx = TraceContext(trace_id="x", request_id=0)
        with pytest.raises(AttributeError):
            ctx.trace_id = "y"

    def test_spans_inside_scope_carry_the_trace_id(self):
        hub, _ = _traced_hub(["req-000003"])
        assert {s.trace_id for s in hub.spans} == {"req-000003"}
        assert {e.trace_id for e in hub.events} == {"req-000003"}
        # Outside any scope, spans are untraced.
        with hub.span("untraced"):
            pass
        assert hub.spans[-1].trace_id is None

    def test_none_scope_is_a_no_op(self):
        hub = Instrumentation()
        with hub.in_trace(None):
            with hub.span("x"):
                pass
        assert hub.spans[0].trace_id is None


class TestFlightRecorder:
    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(0)

    def test_ring_is_bounded_and_counts_drops(self):
        ring = FlightRecorder(capacity=4)
        hub = Instrumentation(ring)
        for i in range(6):
            hub.event(f"e{i}")
        assert len(ring) == 4
        assert ring.recorded == 6
        dump = ring.dump()
        assert dump["dropped"] == 2
        # Oldest entries fell off the front.
        assert [r["name"] for r in dump["records"]] == [
            "e2", "e3", "e4", "e5",
        ]

    def test_records_hold_both_spans_and_events(self):
        ring = FlightRecorder()
        _traced_hub(["req-000001"], ring)
        kinds = [r["kind"] for r in ring.records()]
        assert "span" in kinds and "event" in kinds
        spans = [r for r in ring.records() if r["kind"] == "span"]
        assert {s["trace_id"] for s in spans} == {"req-000001"}

    def test_dump_context_names_the_failing_request(self):
        ring = FlightRecorder(capacity=8)
        dump = ring.dump(
            worker=1, request_id=7, trace_id="req-000007", status="failed"
        )
        assert dump["context"] == {
            "worker": 1,
            "request_id": 7,
            "trace_id": "req-000007",
            "status": "failed",
        }
        assert dump["capacity"] == 8
        json.dumps(dump)  # artifact must serialize as-is

    def test_clear_resets_ring_and_counter(self):
        ring = FlightRecorder(capacity=2)
        hub = Instrumentation(ring)
        hub.event("x")
        ring.clear()
        assert len(ring) == 0 and ring.recorded == 0


class TestMergedDocument:
    def test_two_processes_one_thread_per_worker(self):
        hub_a, _ = _traced_hub(["req-000000"])
        hub_b, _ = _traced_hub(["req-000001"])
        doc = merged_trace_document(
            [
                ("worker-0", hub_a.spans, hub_a.events),
                ("worker-1", hub_b.spans, hub_b.events),
            ]
        )
        events = doc["traceEvents"]
        procs = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs == {"repro wall-clock", "repro model-time"}
        threads = {
            (e["pid"], e["tid"], e["args"]["name"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        # Each worker appears as the same tid on both axes.
        for tid, label in ((0, "worker-0"), (1, "worker-1")):
            assert (0, tid, label) in threads
            assert (1, tid, label) in threads
        json.dumps(doc)

    def test_every_span_lands_on_both_axes(self):
        hub, _ = _traced_hub(["req-000000"])
        doc = merged_trace_document([("w", hub.spans, hub.events)])
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        model = [e for e in xs if e["pid"] == 1]
        wall = [e for e in xs if e["pid"] == 0]
        assert len(model) == len(hub.spans)
        assert len(wall) == len(model)  # wall clock armed -> dual axis

    def test_wall_axis_rebased_to_earliest_instant(self):
        hub, _ = _traced_hub(["req-000000"])
        doc = merged_trace_document([("w", hub.spans, hub.events)])
        wall = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 0
        ]
        assert min(e["ts"] for e in wall) == 0.0

    def test_hub_without_wall_clock_merges_with_model_axis_only(self):
        hub = Instrumentation()
        with hub.span("run"):
            hub.on_phase([(0, 1, 4)], 0.5)
        doc = merged_trace_document([("w", hub.spans, hub.events)])
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["pid"] == 1 for e in xs)

    def test_round_trip_through_chrome_document(self):
        hub, _ = _traced_hub(["req-000000", "req-000001"])
        doc = merged_trace_document([("worker-0", hub.spans, hub.events)])
        tracks = spans_from_chrome_document(doc)
        assert [label for label, _ in tracks] == ["worker-0"]
        (_, spans), = tracks
        assert len(spans) == len(hub.spans)
        by_id = {s.span_id: s for s in spans}
        for original in hub.spans:
            restored = by_id[original.span_id]
            assert restored.name == original.name
            assert restored.trace_id == original.trace_id
            assert restored.parent_id == original.parent_id
            assert restored.start == pytest.approx(original.start)
            assert restored.wall_start is not None
        assert validate_trace(tracks) == []


def _span(sid, parent, start, end, *, trace=None, wall=None, name="s"):
    span = Span(
        span_id=sid,
        parent_id=parent,
        name=name,
        category="request",
        start=start,
        end=end,
        trace_id=trace,
    )
    if wall is not None:
        span.wall_start, span.wall_end = wall
    return span


class TestValidateTrace:
    def test_clean_tree_passes(self):
        tracks = [
            ("w0", [
                _span(1, None, 0.0, 1.0, trace="a", wall=(10.0, 11.0)),
                _span(2, 1, 0.2, 0.8, trace="a", wall=(10.2, 10.8)),
            ]),
        ]
        assert validate_trace(tracks) == []

    def test_duplicate_ids_and_orphans_flagged(self):
        tracks = [
            ("w0", [
                _span(1, None, 0.0, 1.0),
                _span(1, None, 0.0, 0.5),
                _span(9, 404, 0.0, 0.5),
            ]),
        ]
        problems = "\n".join(validate_trace(tracks))
        assert "duplicate span id 1" in problems
        assert "orphaned" in problems

    def test_unclosed_span_flagged(self):
        problems = validate_trace([("w0", [_span(1, None, 0.0, None)])])
        assert any("never closed" in p for p in problems)

    def test_model_containment_violation(self):
        tracks = [
            ("w0", [
                _span(1, None, 0.0, 1.0, trace="a"),
                _span(2, 1, 0.5, 1.5, trace="a"),  # escapes parent
            ]),
        ]
        assert any("escapes parent" in p for p in validate_trace(tracks))

    def test_wall_containment_violation(self):
        tracks = [
            ("w0", [
                _span(1, None, 0.0, 1.0, trace="a", wall=(10.0, 11.0)),
                _span(2, 1, 0.2, 0.8, trace="a", wall=(9.0, 10.5)),
            ]),
        ]
        problems = validate_trace(tracks)
        assert any("wall interval" in p for p in problems)

    def test_trace_id_must_match_parent(self):
        tracks = [
            ("w0", [
                _span(1, None, 0.0, 1.0, trace="a"),
                _span(2, 1, 0.2, 0.8, trace="b"),
            ]),
        ]
        problems = "\n".join(validate_trace(tracks))
        assert "inside parent trace" in problems

    def test_one_root_per_trace(self):
        tracks = [
            ("w0", [
                _span(1, None, 0.0, 1.0, trace="a"),
                _span(2, None, 2.0, 3.0, trace="a"),
            ]),
        ]
        assert any("2 roots" in p for p in validate_trace(tracks))

    def test_trace_confined_to_one_track(self):
        tracks = [
            ("w0", [_span(1, None, 0.0, 1.0, trace="a")]),
            ("w1", [_span(1, None, 2.0, 3.0, trace="a")]),
        ]
        assert any("2 tracks" in p for p in validate_trace(tracks))

    def test_containment_tolerates_float_ulp_slack(self):
        end = 0.1 + 0.2  # 0.30000000000000004
        tracks = [
            ("w0", [
                _span(1, None, 0.0, 0.3, trace="a"),
                _span(2, 1, 0.0, end, trace="a"),
            ]),
        ]
        assert validate_trace(tracks) == []
