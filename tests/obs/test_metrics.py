"""The labelled metrics registry: memoization, kinds, dumps, merge."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_labels,
)


class TestInstruments:
    def test_counter_increments_and_rejects_decrease(self):
        c = Counter("x", ())
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_update_max(self):
        g = Gauge("x", ())
        g.set(7)
        g.update_max(3)
        assert g.value == 7
        g.update_max(11)
        assert g.value == 11

    def test_histogram_keeps_raw_values(self):
        h = Histogram("x", ())
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.values == [1.0, 3.0, 2.0]
        assert h.count == 3
        assert h.sample() == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}

    def test_empty_histogram_sample(self):
        assert Histogram("x", ()).sample() == {
            "count": 0, "sum": 0.0, "min": 0, "max": 0,
        }


class TestRegistry:
    def test_same_name_and_labels_memoize(self):
        reg = MetricsRegistry()
        a = reg.counter("faults", kind="link")
        b = reg.counter("faults", kind="link")
        assert a is b
        assert len(reg) == 1

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", src=1, dst=2)
        b = reg.counter("x", dst=2, src=1)
        assert a is b

    def test_distinct_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        link = reg.counter("faults", kind="link")
        node = reg.counter("faults", kind="node")
        assert link is not node
        assert len(reg.family("faults")) == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered as counter"):
            reg.gauge("x")

    def test_contains_and_collect(self):
        reg = MetricsRegistry()
        reg.counter("hops").inc(3)
        reg.gauge("peak").set(9)
        assert "hops" in reg
        assert "nope" not in reg
        rows = list(reg.collect())
        assert ("hops", {}, "counter", 3) in rows
        assert ("peak", {}, "gauge", 9) in rows

    def test_as_dict_groups_by_kind_with_label_suffix(self):
        reg = MetricsRegistry()
        reg.counter("faults", kind="link").inc(2)
        reg.histogram("dur").observe(0.5)
        doc = reg.as_dict()
        assert doc["counters"] == {"faults{kind=link}": 2}
        assert doc["histograms"]["dur"]["count"] == 1

    def test_format_labels(self):
        assert format_labels(()) == ""
        assert format_labels((("a", 1), ("b", "x"))) == "{a=1,b=x}"

    def test_merge_adds_maxes_and_concatenates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(5)
        a.gauge("peak").set(10)
        b.gauge("peak").set(4)
        b.histogram("dur").observe(1.5)
        a.merge(b)
        assert a.counter("n").value == 7
        assert a.gauge("peak").value == 10
        assert a.histogram("dur").values == [1.5]
