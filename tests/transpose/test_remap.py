"""Tests for §6.2: transposition with change of assignment scheme."""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.remap import remap_pair_sequence, remap_transpose


def layouts(p, nr):
    before = pt.two_dim_consecutive(p, p, nr, nr)
    after = pt.two_dim_cyclic(p, p, nr, nr)
    return before, after


def matrix(p, seed=9):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10**6, size=(1 << p, 1 << p)).astype(np.float64)


class TestPairSequences:
    @pytest.mark.parametrize("alg", [1, 2, 3])
    def test_sequences_realize_target(self, alg):
        """The assertion inside remap_pair_sequence already checks the
        residual is local; here we also check overall composition."""
        before, after = layouts(4, 2)
        pairs = remap_pair_sequence(before, after, alg)
        assert pairs  # non-empty

    def test_comm_step_counts(self):
        """Algorithm 1 uses 2n communication steps; 2 and 3 use n."""
        p, nr = 4, 2
        n = 2 * nr
        before, after = layouts(p, nr)
        proc = before.proc_dim_set

        def comm_steps(alg):
            """Routing steps: a (proc, vp) pair is one hop, a
            (proc, proc) pair crosses two dimensions (Lemma 6)."""
            hops = 0
            for a, b in remap_pair_sequence(before, after, alg):
                hops += (a in proc) + (b in proc)
            return hops

        assert comm_steps(1) == 2 * n
        assert comm_steps(2) == n
        assert comm_steps(3) == n

    def test_invalid_algorithm(self):
        before, after = layouts(4, 2)
        with pytest.raises(ValueError):
            remap_pair_sequence(before, after, 4)

    def test_requires_square(self):
        before = pt.two_dim_consecutive(4, 3, 1, 1)
        after = pt.two_dim_cyclic(3, 4, 1, 1)
        with pytest.raises(ValueError):
            remap_pair_sequence(before, after, 1)

    def test_requires_enough_virtual_space(self):
        before = pt.two_dim_consecutive(3, 3, 2, 2)
        after = pt.two_dim_cyclic(3, 3, 2, 2)
        with pytest.raises(ValueError):
            remap_pair_sequence(before, after, 2)


class TestRemapTranspose:
    @pytest.mark.parametrize("alg", [1, 2, 3])
    @pytest.mark.parametrize("p,nr", [(4, 2), (4, 1), (5, 2), (6, 3)])
    def test_produces_transpose(self, alg, p, nr):
        before, after = layouts(p, nr)
        A = matrix(p)
        net = CubeNetwork(custom_machine(2 * nr))
        out = remap_transpose(
            net, DistributedMatrix.from_global(A, before), after, algorithm=alg
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_algorithm1_more_expensive_than_3(self):
        """2n vs n communication steps shows up directly in time."""
        p, nr = 5, 2
        before, after = layouts(p, nr)
        A = matrix(p)

        t1 = CubeNetwork(custom_machine(2 * nr, tau=1.0, t_c=1.0))
        remap_transpose(
            t1, DistributedMatrix.from_global(A, before), after, algorithm=1
        )
        t3 = CubeNetwork(custom_machine(2 * nr, tau=1.0, t_c=1.0))
        remap_transpose(
            t3, DistributedMatrix.from_global(A, before), after, algorithm=3
        )
        assert t3.time < t1.time

    def test_algorithms_give_identical_results(self):
        p, nr = 4, 2
        before, after = layouts(p, nr)
        A = matrix(p)
        outs = []
        for alg in (1, 2, 3):
            net = CubeNetwork(custom_machine(2 * nr))
            out = remap_transpose(
                net, DistributedMatrix.from_global(A, before), after, algorithm=alg
            )
            outs.append(out.local_data.copy())
        assert np.array_equal(outs[0], outs[1])
        assert np.array_equal(outs[0], outs[2])


class TestOrderReversal:
    """§6.2: "the order between exchange-row and exchange-column
    operations can be reversed" — same result, same cost."""

    @pytest.mark.parametrize("alg", [1, 2, 3])
    def test_columns_first_equivalent(self, alg):
        p, nr = 4, 2
        before, after = layouts(p, nr)
        A = matrix(p)
        dm = DistributedMatrix.from_global(A, before)
        rf_net = CubeNetwork(custom_machine(2 * nr, tau=1.0, t_c=1.0))
        rf = remap_transpose(rf_net, dm, after, algorithm=alg)
        cf_net = CubeNetwork(custom_machine(2 * nr, tau=1.0, t_c=1.0))
        cf = remap_transpose(
            cf_net, dm, after, algorithm=alg, columns_first=True
        )
        assert np.array_equal(rf.local_data, cf.local_data)
        assert cf_net.time == pytest.approx(rf_net.time)
        assert np.array_equal(cf.to_global(), A.T)
