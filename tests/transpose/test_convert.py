"""Tests for storage-form conversion without transposition (§2, Lemma 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.exchange import (
    conversion_bit_permutation,
    convert_layout,
)


def matrix(p, q, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10**6, size=(1 << p, 1 << q)).astype(np.float64)


def run_convert(before, after, **kw):
    A = matrix(before.p, before.q)
    dm = DistributedMatrix.from_global(A, before)
    net = CubeNetwork(custom_machine(before.n))
    out = convert_layout(net, dm, after, **kw)
    return A, out, net


class TestConversionPermutation:
    def test_identity_conversion(self):
        lay = pt.row_cyclic(3, 3, 2)
        perm = conversion_bit_permutation(lay, lay)
        assert perm == {d: d for d in range(6)}

    def test_shape_change_rejected(self):
        before = pt.row_cyclic(3, 2, 1)
        after = pt.row_cyclic(2, 3, 1)
        with pytest.raises(ValueError):
            conversion_bit_permutation(before, after)

    def test_cyclic_to_consecutive_is_permutation(self):
        before = pt.row_cyclic(4, 3, 2)
        after = pt.row_consecutive(4, 3, 2)
        perm = conversion_bit_permutation(before, after)
        assert sorted(perm) == sorted(perm.values()) == list(range(7))


class TestConvertLayout:
    CASES = [
        (pt.row_cyclic, pt.row_consecutive),
        (pt.row_consecutive, pt.row_cyclic),
        (pt.column_cyclic, pt.column_consecutive),
        (pt.row_consecutive, pt.column_consecutive),
        (pt.column_cyclic, pt.row_cyclic),
    ]

    @pytest.mark.parametrize("mk_b,mk_a", CASES)
    def test_binary_conversions(self, mk_b, mk_a):
        p, q, n = 4, 3, 2
        before = mk_b(p, q, n)
        after = mk_a(p, q, n)
        A, out, net = run_convert(before, after)
        assert out.layout is after
        assert np.array_equal(out.to_global(), A)  # same matrix, moved
        assert net.stats.messages > 0

    def test_identity_conversion_is_free(self):
        lay = pt.row_cyclic(3, 3, 2)
        A, out, net = run_convert(lay, lay)
        assert np.array_equal(out.to_global(), A)
        assert net.stats.messages == 0
        assert net.time == 0.0

    def test_two_dim_conversion(self):
        before = pt.two_dim_consecutive(4, 4, 2, 2)
        after = pt.two_dim_cyclic(4, 4, 2, 2)
        A, out, _ = run_convert(before, after)
        assert np.array_equal(out.to_global(), A)

    def test_binary_to_gray_recode(self):
        """§2: conversion between binary and Gray encodings (n - 1 routing
        steps with local rearrangement) — here via the exchange driver."""
        before = pt.row_consecutive(4, 3, 3)
        after = pt.row_consecutive(4, 3, 3, gray=True)
        A, out, net = run_convert(before, after)
        assert np.array_equal(out.to_global(), A)
        assert net.stats.messages > 0

    def test_gray_to_binary_recode(self):
        before = pt.column_cyclic(3, 4, 3, gray=True)
        after = pt.column_cyclic(3, 4, 3)
        A, out, _ = run_convert(before, after)
        assert np.array_equal(out.to_global(), A)

    def test_gray_to_gray_cross_form(self):
        before = pt.row_cyclic(4, 3, 2, gray=True)
        after = pt.row_consecutive(4, 3, 2, gray=True)
        A, out, _ = run_convert(before, after)
        assert np.array_equal(out.to_global(), A)

    def test_wrong_shape_rejected(self):
        before = pt.row_cyclic(3, 2, 1)
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(1))
        with pytest.raises(ValueError):
            convert_layout(net, dm, pt.row_cyclic(2, 3, 1))

    def test_corollary7_conversion_is_all_to_all(self):
        """Cyclic <-> consecutive conversion with P >= N^2 reaches every
        other processor from every processor."""
        p, q, n = 4, 4, 2  # P = 16 = N^2
        before = pt.row_cyclic(p, q, n)
        after = pt.row_consecutive(p, q, n)
        w = np.arange(1 << (p + q), dtype=np.int64)
        src = before.owner_array(w)
        dst = after.owner_array(w)
        pairs = set(zip(src.tolist(), dst.tolist()))
        N = 1 << n
        assert len(pairs) == N * N  # includes self-pairs


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(1, 4),
    q=st.integers(1, 4),
    data=st.data(),
)
def test_property_random_conversions(p, q, data):
    makers = [pt.row_cyclic, pt.row_consecutive, pt.column_cyclic, pt.column_consecutive]
    mk_b = data.draw(st.sampled_from(makers))
    mk_a = data.draw(st.sampled_from(makers))
    limit_b = p if mk_b in (pt.row_cyclic, pt.row_consecutive) else q
    limit_a = p if mk_a in (pt.row_cyclic, pt.row_consecutive) else q
    n = data.draw(st.integers(0, min(limit_b, limit_a)))
    gray_b = data.draw(st.booleans())
    gray_a = data.draw(st.booleans())
    before = mk_b(p, q, n, gray=gray_b)
    after = mk_a(p, q, n, gray=gray_a)
    A = matrix(p, q, seed=data.draw(st.integers(0, 99)))
    dm = DistributedMatrix.from_global(A, before)
    net = CubeNetwork(custom_machine(n))
    out = convert_layout(net, dm, after)
    assert np.array_equal(out.to_global(), A)


@settings(max_examples=15, deadline=None)
@given(
    p=st.integers(2, 4),
    q=st.integers(2, 4),
    data=st.data(),
)
def test_property_two_dim_conversions(p, q, data):
    """Random 2D layout pairs (schemes and encodings) convert losslessly."""
    nr = data.draw(st.integers(0, min(p, 2)))
    nc = data.draw(st.integers(0, min(q, 2)))
    schemes = ["cyclic", "consecutive"]
    before = pt.two_dim_mixed(
        p,
        q,
        nr,
        nc,
        rows=data.draw(st.sampled_from(schemes)),
        cols=data.draw(st.sampled_from(schemes)),
        row_gray=data.draw(st.booleans()),
        col_gray=data.draw(st.booleans()),
    )
    after = pt.two_dim_mixed(
        p,
        q,
        nr,
        nc,
        rows=data.draw(st.sampled_from(schemes)),
        cols=data.draw(st.sampled_from(schemes)),
        row_gray=data.draw(st.booleans()),
        col_gray=data.draw(st.booleans()),
    )
    A = matrix(p, q, seed=data.draw(st.integers(0, 99)))
    dm = DistributedMatrix.from_global(A, before)
    net = CubeNetwork(custom_machine(before.n))
    out = convert_layout(net, dm, after)
    assert np.array_equal(out.to_global(), A)
