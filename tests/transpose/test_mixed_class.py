"""Tests for MIXED-class (I != 0) layout pairs.

The paper defers the partially-overlapping case to its companion report
[4], noting only that "the transposition/rearrangement is composed of
different types of operations".  Two of our drivers handle it anyway —
the exchange planner (any binary pair is still a bit permutation) and
the block router — and they must agree.
"""

import numpy as np

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.layout.classify import CommClass, classify_transpose
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.exchange import exchange_transpose
from repro.transpose.one_dim import block_transpose


def mixed_pair():
    """§6's consecutive-rows / cyclic-columns example, before == after."""
    before = pt.two_dim_mixed(3, 3, 2, 2, rows="consecutive", cols="cyclic")
    after = pt.two_dim_mixed(3, 3, 2, 2, rows="consecutive", cols="cyclic")
    return before, after


class TestMixedClassTranspose:
    def test_classified_mixed(self):
        before, after = mixed_pair()
        info = classify_transpose(before, after)
        assert info.comm_class is CommClass.MIXED
        assert info.intersection  # non-empty overlap

    def test_exchange_handles_mixed(self):
        before, after = mixed_pair()
        rng = np.random.default_rng(4)
        A = rng.standard_normal((8, 8))
        net = CubeNetwork(custom_machine(4))
        out = exchange_transpose(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_block_router_agrees_with_exchange(self):
        before, after = mixed_pair()
        rng = np.random.default_rng(4)
        A = rng.standard_normal((8, 8))
        dm = DistributedMatrix.from_global(A, before)

        ex_net = CubeNetwork(custom_machine(4))
        via_exchange = exchange_transpose(ex_net, dm, after)
        bl_net = CubeNetwork(custom_machine(4))
        via_blocks = block_transpose(bl_net, dm, after)
        assert np.array_equal(via_exchange.local_data, via_blocks.local_data)

    def test_overlap_reduces_traffic(self):
        """Dimensions in I stay put, so a MIXED transpose moves fewer
        element-hops than the corresponding pure all-to-all."""
        before, after = mixed_pair()
        rng = np.random.default_rng(4)
        A = rng.standard_normal((8, 8))

        mixed_net = CubeNetwork(custom_machine(4))
        exchange_transpose(
            mixed_net, DistributedMatrix.from_global(A, before), after
        )

        # A disjoint-field pair of the same size for comparison.
        b2 = pt.two_dim_consecutive(3, 3, 2, 2)
        a2 = pt.two_dim_cyclic(3, 3, 2, 2)
        all_net = CubeNetwork(custom_machine(4))
        exchange_transpose(
            all_net, DistributedMatrix.from_global(A, b2), a2
        )
        assert classify_transpose(b2, a2).comm_class is not CommClass.PAIRWISE
        assert mixed_net.stats.element_hops <= all_net.stats.element_hops

    def test_mixed_with_unequal_axes(self):
        """n_r != n_c with mixed schemes — still a valid bit permutation."""
        before = pt.two_dim_mixed(4, 3, 2, 1, rows="consecutive", cols="cyclic")
        after = pt.two_dim_mixed(3, 4, 1, 2, rows="consecutive", cols="cyclic")
        rng = np.random.default_rng(9)
        A = rng.standard_normal((16, 8))
        net = CubeNetwork(custom_machine(3))
        out = exchange_transpose(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)
