"""Fine-grained accounting tests for the §8.1 send policies.

The exchange executor's per-step structure is fully predictable: a
(processor, virtual) step on offset bit ``b`` moves ``L/2`` elements per
node as ``L / 2^{b+1}`` contiguous runs of ``2^b`` elements.  These
tests pin the start-up and copy accounting to those closed forms, which
is what makes Figures 10-12 quantitative rather than impressionistic.
"""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.exchange import BufferPolicy, ExchangeExecutor


def setup(n=2, p=4, q=4, **machine_kw):
    machine_kw.setdefault("tau", 1.0)
    machine_kw.setdefault("t_c", 0.0)
    layout = pt.row_consecutive(p, q, n)
    dm = DistributedMatrix.iota(layout)
    dm = DistributedMatrix(layout, dm.local_data.astype(np.float64))
    net = CubeNetwork(custom_machine(n, **machine_kw))
    return layout, dm, net


class TestRunStructure:
    # L = 64 locally; a step on offset bit b gives L / 2^{b+1} runs.
    @pytest.mark.parametrize("vp_dim,expected_runs", [(0, 32), (3, 4), (5, 1)])
    def test_unbuffered_startups_count_runs(self, vp_dim, expected_runs):
        """Step on offset bit b: L / 2^(b+1) runs per node, each one
        message with one start-up (runs here are <= B_m)."""
        layout, dm, net = setup()
        ex = ExchangeExecutor(net, dm, policy=BufferPolicy("unbuffered"))
        proc_dim = layout.proc_dims[0]
        ex.step(proc_dim, vp_dim)
        N = layout.num_procs
        assert net.stats.startups == N * expected_runs
        assert net.stats.messages == N * expected_runs

    def test_each_step_moves_half_the_data(self):
        layout, dm, net = setup()
        ex = ExchangeExecutor(net, dm)
        ex.step(layout.proc_dims[0], 3)
        assert net.stats.element_hops == layout.num_procs * layout.local_size // 2

    def test_buffered_single_message_per_node(self):
        layout, dm, net = setup(t_copy=1.0)
        ex = ExchangeExecutor(net, dm, policy=BufferPolicy("buffered"))
        ex.step(layout.proc_dims[0], 0)  # offset bit 0: worst fragmentation
        N = layout.num_procs
        assert net.stats.messages == N
        # Copy charged on both sides: gather at the sender, scatter at
        # the receiver — L/2 each.
        assert net.stats.copied_elements == N * layout.local_size

    def test_threshold_splits_by_run_length(self):
        layout, dm, net = setup(t_copy=0.25)
        # Runs of 2^3 = 8 for vp offset bit 3; threshold 16 buffers them,
        # threshold 8 sends them direct.
        direct_net = CubeNetwork(custom_machine(2, tau=1.0, t_c=0.0))
        ex = ExchangeExecutor(
            direct_net,
            dm,
            policy=BufferPolicy("threshold", min_unbuffered_run=8),
        )
        ex.step(layout.proc_dims[0], 3)  # offset bit 3: runs of 8
        buffered_net = CubeNetwork(custom_machine(2, tau=1.0, t_c=0.0, t_copy=0.25))
        ex2 = ExchangeExecutor(
            buffered_net,
            dm,
            policy=BufferPolicy("threshold", min_unbuffered_run=16),
        )
        ex2.step(layout.proc_dims[0], 3)
        assert direct_net.stats.copied_elements == 0
        assert buffered_net.stats.copied_elements > 0
        assert buffered_net.stats.messages < direct_net.stats.messages


class TestOffsetBitMapping:
    def test_offset_bits_of_layout(self):
        """Sanity-pin the vp-dim -> offset-bit mapping the tests above
        rely on: row-consecutive(4,4,2) has proc dims (7,6) and vp dims
        (5..0) mapping to identical offset bits."""
        layout = pt.row_consecutive(4, 4, 2)
        assert layout.proc_dims == (7, 6)
        assert layout.vp_dims == (5, 4, 3, 2, 1, 0)
        for d in layout.vp_dims:
            assert layout.offset_bit_of(d) == d


class TestPolicyCostOrdering:
    def test_threshold_never_worse_than_both_extremes(self):
        """On the iPSC constants the optimum threshold policy is at least
        as good as pure-unbuffered and pure-buffered for a whole
        transpose, across matrix sizes."""
        from repro.machine.presets import intel_ipsc
        from repro.transpose.one_dim import one_dim_transpose_exchange

        for bits in (10, 14):
            p = bits // 2
            before = pt.row_consecutive(p, bits - p, 4)
            after = pt.row_consecutive(bits - p, p, 4)
            dm = DistributedMatrix.from_global(
                np.zeros((1 << p, 1 << (bits - p))), before
            )
            times = {}
            for mode in ("unbuffered", "buffered", "threshold"):
                net = CubeNetwork(intel_ipsc(4))
                one_dim_transpose_exchange(
                    net, dm, after, policy=BufferPolicy(mode=mode)
                )
                times[mode] = net.time
            assert times["threshold"] <= times["unbuffered"] * 1.0001
            assert times["threshold"] <= times["buffered"] * 1.0001


class TestBlockedStrategy:
    """The §5 'blocked' pair strategy: step j sends 2^{j-1} fragments."""

    def test_fragment_doubling(self):
        from repro.machine import TraceRecorder
        from repro.transpose.exchange import BufferPolicy
        from repro.transpose.one_dim import one_dim_transpose_exchange

        n = 3
        before = pt.row_consecutive(4, 4, n)
        after = pt.row_consecutive(4, 4, n)
        dm = DistributedMatrix.iota(before)
        dm = DistributedMatrix(before, dm.local_data.astype(np.float64))
        net = CubeNetwork(custom_machine(n, tau=1.0, t_c=0.0))
        rec = TraceRecorder()
        net.observer = rec
        one_dim_transpose_exchange(
            net, dm, after, policy=BufferPolicy("unbuffered")
        )
        msgs_per_phase = [len(e.transfers) for e in rec.comm_events]
        N = 1 << n
        # Step j: every node sends 2^{j-1} fragments.
        assert msgs_per_phase == [N * (1 << j) for j in range(n)]

    def test_blocked_and_direct_agree(self):
        from repro.transpose.exchange import exchange_transpose

        before = pt.row_consecutive(4, 4, 3)
        after = pt.row_consecutive(4, 4, 3)
        rng = np.random.default_rng(2)
        A = rng.standard_normal((16, 16))
        dm = DistributedMatrix.from_global(A, before)
        a = exchange_transpose(
            CubeNetwork(custom_machine(3)), dm, after, strategy="direct"
        )
        b = exchange_transpose(
            CubeNetwork(custom_machine(3)), dm, after, strategy="blocked"
        )
        assert np.array_equal(a.local_data, b.local_data)
        assert np.array_equal(a.to_global(), A.T)

    def test_blocked_rejected_for_pairwise(self):
        from repro.transpose.exchange import (
            plan_blocked_exchange_sequence,
            transpose_bit_permutation,
        )

        before = pt.two_dim_cyclic(3, 3, 1, 1)
        after = pt.two_dim_cyclic(3, 3, 1, 1)
        perm = transpose_bit_permutation(before, after)
        with pytest.raises(ValueError):
            plan_blocked_exchange_sequence(perm, before)

    def test_identity_needs_nothing(self):
        from repro.transpose.exchange import plan_blocked_exchange_sequence

        lay = pt.row_consecutive(3, 3, 2)
        assert plan_blocked_exchange_sequence(
            {d: d for d in range(6)}, lay
        ) == []

    def test_unknown_strategy_rejected(self):
        from repro.transpose.exchange import exchange_transpose

        before = pt.row_consecutive(3, 3, 2)
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            exchange_transpose(
                net, dm, pt.row_consecutive(3, 3, 2), strategy="zigzag"
            )
