"""Tests for the exchange executor: the engine of every transpose here."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import DistributedMatrix, Layout, ProcField
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine, intel_ipsc
from repro.transpose.exchange import (
    BufferPolicy,
    ExchangeExecutor,
    exchange_transpose,
    general_exchange_pairs,
    plan_exchange_sequence,
    standard_exchange_pairs,
    strip_encoding,
    transpose_bit_permutation,
)


def global_matrix(p, q, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1000, size=(1 << p, 1 << q)).astype(np.float64)


def run_transpose(before, after, *, policy=None, machine=None):
    A = global_matrix(before.p, before.q)
    dm = DistributedMatrix.from_global(A, before)
    net = CubeNetwork(machine or custom_machine(before.n))
    out = exchange_transpose(net, dm, after, policy=policy)
    return A, out, net


class TestPairConstructors:
    def test_standard_requires_disjoint(self):
        with pytest.raises(ValueError):
            standard_exchange_pairs([3, 2], [2, 1])

    def test_standard_requires_monotone(self):
        with pytest.raises(ValueError):
            standard_exchange_pairs([3, 1, 2], [6, 5, 4])

    def test_standard_requires_equal_length(self):
        with pytest.raises(ValueError):
            standard_exchange_pairs([3], [2, 1])

    def test_standard_ok(self):
        assert standard_exchange_pairs([5, 4], [1, 0]) == [(5, 1), (4, 0)]

    def test_general_requires_injective(self):
        with pytest.raises(ValueError):
            general_exchange_pairs([(3, 1), (3, 0)])
        with pytest.raises(ValueError):
            general_exchange_pairs([(3, 1), (2, 1)])

    def test_general_rejects_degenerate(self):
        with pytest.raises(ValueError):
            general_exchange_pairs([(2, 2)])

    def test_general_allows_overlap_between_roles(self):
        # {g} and {f} need not be disjoint (Definition 11).
        assert general_exchange_pairs([(3, 1), (1, 0)]) == [(3, 1), (1, 0)]


class TestBufferPolicy:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            BufferPolicy(mode="magic")
        with pytest.raises(ValueError):
            BufferPolicy(min_unbuffered_run=0)

    def test_threshold_logic(self):
        p = BufferPolicy(mode="threshold", min_unbuffered_run=64)
        assert p.run_is_buffered(63)
        assert not p.run_is_buffered(64)
        assert not BufferPolicy(mode="unbuffered").run_is_buffered(1)
        assert BufferPolicy(mode="buffered").run_is_buffered(10**6)


class TestBitPermutation:
    def test_one_dim_consecutive(self):
        before = pt.row_consecutive(2, 2, 2)
        after = pt.row_consecutive(2, 2, 2)
        perm = transpose_bit_permutation(before, after)
        # Derived by hand in the module design notes: (3<->1), (2<->0).
        assert perm == {3: 1, 1: 3, 2: 0, 0: 2}

    def test_is_permutation(self):
        before = pt.column_cyclic(3, 4, 2)
        after = pt.row_consecutive(4, 3, 2)
        perm = transpose_bit_permutation(before, after)
        assert sorted(perm) == sorted(perm.values()) == list(range(7))

    def test_gray_rejected(self):
        before = pt.row_cyclic(2, 2, 1, gray=True)
        after = pt.row_cyclic(2, 2, 1)
        with pytest.raises(ValueError):
            transpose_bit_permutation(before, after)


class TestPlanExchangeSequence:
    def test_identity_needs_no_steps(self):
        lay = pt.row_cyclic(2, 2, 1)
        assert plan_exchange_sequence({d: d for d in range(4)}, lay) == []

    def test_two_cycles(self):
        lay = pt.row_consecutive(2, 2, 2)
        perm = {3: 1, 1: 3, 2: 0, 0: 2}
        steps = plan_exchange_sequence(perm, lay)
        assert len(steps) == 2
        assert {frozenset(s) for s in steps} == {frozenset({3, 1}), frozenset({2, 0})}

    def test_pivot_prefers_virtual_dimension(self):
        # proc dims {3, 2}; cycle (3 -> 2 -> 1 -> 3) contains vp dim 1.
        lay = Layout(2, 2, (ProcField((3, 2)),))
        steps = plan_exchange_sequence({3: 2, 2: 1, 1: 3, 0: 0}, lay)
        assert all(1 in s for s in steps)  # pivot is the vp dim
        assert len(steps) == 2

    def test_swap_semantics_brute_force(self):
        """Applying the planned swaps to addresses realizes the permutation."""
        rng = np.random.default_rng(3)
        m = 5
        lay = Layout(3, 2, (ProcField((4, 2)),))
        for _ in range(25):
            perm_list = rng.permutation(m)
            perm = {d: int(perm_list[d]) for d in range(m)}
            steps = plan_exchange_sequence(perm, lay)
            # Track where each original bit's content ends up.
            pos = {d: d for d in range(m)}  # content origin -> position
            for a, b in steps:
                for o, loc in pos.items():
                    if loc == a:
                        pos[o] = b
                    elif loc == b:
                        pos[o] = a
            assert pos == perm

    def test_out_of_range_rejected(self):
        lay = pt.row_cyclic(2, 2, 1)
        with pytest.raises(ValueError):
            plan_exchange_sequence({0: 9, 9: 0}, lay)


BINARY_CASES = [
    # (before maker, after maker, p, q)  — after takes (q, p).
    (pt.row_consecutive, pt.row_consecutive, 3, 3, 2),
    (pt.row_consecutive, pt.column_consecutive, 3, 3, 2),
    (pt.row_cyclic, pt.row_cyclic, 3, 3, 3),
    (pt.row_cyclic, pt.row_consecutive, 3, 3, 2),
    (pt.column_cyclic, pt.row_cyclic, 2, 4, 2),
    (pt.column_consecutive, pt.column_cyclic, 4, 2, 2),
    (pt.row_consecutive, pt.column_cyclic, 2, 3, 2),
]


class TestExchangeTransposeBinary:
    @pytest.mark.parametrize("mk_b,mk_a,p,q,n", BINARY_CASES)
    def test_one_dim_conversions_produce_transpose(self, mk_b, mk_a, p, q, n):
        """Corollary 6: any storage-form conversion + transpose works."""
        before = mk_b(p, q, n)
        after = mk_a(q, p, n)
        A, out, _ = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_two_dim_pairwise(self):
        before = pt.two_dim_cyclic(3, 3, 2, 2)
        after = pt.two_dim_cyclic(3, 3, 2, 2)
        A, out, net = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_two_dim_consecutive_to_cyclic(self):
        """§6.2: transpose with change of assignment scheme."""
        before = pt.two_dim_consecutive(4, 4, 2, 2)
        after = pt.two_dim_cyclic(4, 4, 2, 2)
        A, out, _ = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_rectangular_matrix(self):
        before = pt.row_consecutive(2, 5, 2)
        after = pt.row_consecutive(5, 2, 2)
        A, out, _ = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_explicit_pair_schedule(self):
        before = pt.row_consecutive(2, 2, 2)
        after = pt.row_consecutive(2, 2, 2)
        A = global_matrix(2, 2)
        dm = DistributedMatrix.from_global(A, before)
        net = CubeNetwork(custom_machine(2))
        out = exchange_transpose(
            net, dm, after, pairs=[(3, 1), (2, 0)]
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_all_policies_agree_on_result(self):
        before = pt.row_consecutive(3, 3, 3)
        after = pt.row_consecutive(3, 3, 3)
        results = []
        for mode in ("unbuffered", "buffered", "threshold"):
            _, out, _ = run_transpose(
                before, after, policy=BufferPolicy(mode=mode, min_unbuffered_run=4)
            )
            results.append(out.to_global())
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestExchangeTransposeGray:
    def test_one_dim_gray_to_gray(self):
        before = pt.row_consecutive(3, 3, 2, gray=True)
        after = pt.row_consecutive(3, 3, 2, gray=True)
        A, out, _ = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_two_dim_gray_pairwise(self):
        """§6.1: same algorithm transposes the Gray-embedded matrix."""
        before = pt.two_dim_cyclic(3, 3, 2, 2, gray=True)
        after = pt.two_dim_cyclic(3, 3, 2, 2, gray=True)
        A, out, _ = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_mixed_encoding_rejected(self):
        """Binary rows / Gray columns needs the §6.3 combined algorithm:
        the destination processor field is forced by the source processor
        bits and disagrees, so no local rearrangement can fix it."""
        before = pt.two_dim_mixed(
            3, 3, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        after = pt.two_dim_mixed(
            3, 3, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        A = global_matrix(3, 3)
        dm = DistributedMatrix.from_global(A, before)
        net = CubeNetwork(custom_machine(4))
        with pytest.raises(ValueError):
            exchange_transpose(net, dm, after)

    def test_gray_to_binary_one_dim_conversion(self):
        """1D Gray -> binary re-encoding rides the all-to-all for free."""
        before = pt.row_consecutive(3, 3, 2, gray=True)
        after = pt.row_consecutive(3, 3, 2)
        A, out, _ = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_binary_to_gray_one_dim_conversion(self):
        before = pt.column_cyclic(3, 3, 3)
        after = pt.column_cyclic(3, 3, 3, gray=True)
        A, out, _ = run_transpose(before, after)
        assert np.array_equal(out.to_global(), A.T)

    def test_strip_encoding(self):
        lay = pt.row_cyclic(3, 3, 2, gray=True)
        assert strip_encoding(lay).is_gray is False
        assert strip_encoding(lay).proc_dims == lay.proc_dims

    def test_two_dim_gray_needs_no_local_rearrangement(self):
        """§6.1: for same-encoding 2D transposes the binary schedule
        commutes with the encoding — pre/post maps are identities."""
        from repro.transpose.exchange import (
            plan_gray_local_permutations,
            strip_encoding as se,
        )

        before = pt.two_dim_cyclic(3, 3, 2, 2, gray=True)
        after = pt.two_dim_cyclic(3, 3, 2, 2, gray=True)
        perm = transpose_bit_permutation(se(before), se(after))
        pre, post = plan_gray_local_permutations(before, after, perm)
        assert pre is None
        assert post is None

    def test_one_dim_gray_needs_local_rearrangement(self):
        from repro.transpose.exchange import (
            plan_gray_local_permutations,
            strip_encoding as se,
        )

        before = pt.row_consecutive(3, 3, 2, gray=True)
        after = pt.row_consecutive(3, 3, 2, gray=True)
        perm = transpose_bit_permutation(se(before), se(after))
        pre, post = plan_gray_local_permutations(before, after, perm)
        assert pre is not None or post is not None


class TestExecutorMechanics:
    def test_gray_frame_rejected(self):
        lay = pt.row_cyclic(2, 2, 1, gray=True)
        dm = DistributedMatrix.iota(lay)
        net = CubeNetwork(custom_machine(1))
        with pytest.raises(ValueError):
            ExchangeExecutor(net, dm)

    def test_network_layout_dimension_mismatch(self):
        lay = pt.row_cyclic(2, 2, 1)
        dm = DistributedMatrix.iota(lay)
        with pytest.raises(ValueError):
            ExchangeExecutor(CubeNetwork(custom_machine(3)), dm)

    def test_degenerate_step_rejected(self):
        lay = pt.row_cyclic(2, 2, 1)
        dm = DistributedMatrix.iota(lay)
        ex = ExchangeExecutor(CubeNetwork(custom_machine(1)), dm)
        with pytest.raises(ValueError):
            ex.step(2, 2)

    def test_local_step_moves_no_messages(self):
        lay = pt.row_cyclic(2, 2, 1)
        dm = DistributedMatrix.iota(lay)
        net = CubeNetwork(custom_machine(1))
        ex = ExchangeExecutor(net, dm)
        ex.step(1, 0)  # both vp dims (proc dim is 2 here)
        assert net.stats.messages == 0
        assert net.time == 0.0

    def test_local_step_charged_when_requested(self):
        lay = pt.row_cyclic(2, 2, 1)
        dm = DistributedMatrix.iota(lay)
        net = CubeNetwork(custom_machine(1, t_copy=1.0))
        ex = ExchangeExecutor(
            net, dm, policy=BufferPolicy(charge_local_moves=True)
        )
        ex.step(1, 0)
        assert net.stats.copy_time == pytest.approx(lay.local_size / 2)

    def test_proc_proc_step_distance_two(self):
        lay = pt.two_dim_cyclic(2, 2, 1, 1)
        dm = DistributedMatrix.iota(lay)
        net = CubeNetwork(custom_machine(2, tau=1.0, t_c=0.0))
        ex = ExchangeExecutor(net, dm)
        ex.step(2, 0)  # u_0 and v_0: the single SPT pair here
        # Two phases (two hops), each one start-up per moving node.
        assert net.stats.phases == 2
        assert net.time == pytest.approx(2.0)


class TestTiming:
    def test_unbuffered_startups_exceed_buffered(self):
        before = pt.row_consecutive(4, 4, 4)
        after = pt.row_consecutive(4, 4, 4)
        _, _, net_u = run_transpose(before, after, policy=BufferPolicy("unbuffered"))
        _, _, net_b = run_transpose(
            before, after, policy=BufferPolicy("buffered")
        )
        assert net_u.stats.startups > net_b.stats.startups
        assert net_u.stats.copied_elements == 0
        assert net_b.stats.copied_elements > 0

    def test_element_hops_match_formula(self):
        """1D all-to-all exchange moves n * PQ / (2N) elements per node."""
        p = q = 4
        n = 3
        before = pt.row_consecutive(p, q, n)
        after = pt.row_consecutive(q, p, n)
        _, _, net = run_transpose(before, after)
        PQ = 1 << (p + q)
        # Every node sends n * PQ/(2N) elements; total hops = N * that.
        assert net.stats.element_hops == n * PQ // 2

    def test_ipsc_one_dim_time_in_expected_range(self):
        """Sanity: simulated 1D transpose time is dominated by start-ups
        for a small matrix on a big cube."""
        before = pt.row_consecutive(5, 5, 5)
        after = pt.row_consecutive(5, 5, 5)
        _, _, net = run_transpose(before, after, machine=intel_ipsc(5))
        # At least n sequential exchange phases, each >= tau.
        assert net.time >= 5 * 5e-3


@settings(max_examples=20, deadline=None)
@given(
    p=st.integers(1, 4),
    q=st.integers(1, 4),
    data=st.data(),
)
def test_property_random_binary_layout_pairs(p, q, data):
    """Any (before, after) pair of binary layouts transposes correctly."""
    makers = [pt.row_cyclic, pt.row_consecutive, pt.column_cyclic, pt.column_consecutive]
    mk_b = data.draw(st.sampled_from(makers))
    mk_a = data.draw(st.sampled_from(makers))
    limit_b = p if mk_b in (pt.row_cyclic, pt.row_consecutive) else q
    limit_a = q if mk_a in (pt.row_cyclic, pt.row_consecutive) else p
    n = data.draw(st.integers(0, min(limit_b, limit_a)))
    before = mk_b(p, q, n)
    after = mk_a(q, p, n)
    A = global_matrix(p, q, seed=data.draw(st.integers(0, 99)))
    dm = DistributedMatrix.from_global(A, before)
    net = CubeNetwork(custom_machine(n))
    out = exchange_transpose(net, dm, after)
    assert np.array_equal(out.to_global(), A.T)
