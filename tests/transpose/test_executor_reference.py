"""Property test: the exchange executor against a pure reference model.

The executor's semantic contract: after running pair sequence
``(g_1, f_1), ..., (g_k, f_k)``, the datum that started at location
address ``w`` sits at ``sigma_k(...sigma_1(w))``, where ``sigma_i``
complements bits ``g_i`` and ``f_i`` of every address where they differ.
Hypothesis drives random layouts and random (valid) pair sequences; the
reference computes the permutation abstractly on the address space, with
no networks, blocks or messages involved.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import DistributedMatrix, Layout, ProcField
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.exchange import ExchangeExecutor


def reference_permutation(m: int, pairs: list[tuple[int, int]]) -> np.ndarray:
    """sigma[w] = final location of the datum that started at ``w``."""
    w = np.arange(1 << m, dtype=np.int64)
    for g, f in pairs:
        bg = (w >> g) & 1
        bf = (w >> f) & 1
        differ = bg != bf
        w = np.where(differ, w ^ (1 << g) ^ (1 << f), w)
    return w


@st.composite
def layout_and_pairs(draw):
    p = draw(st.integers(1, 3))
    q = draw(st.integers(1, 3))
    m = p + q
    n = draw(st.integers(0, min(m - 1, 3)))
    dims = tuple(draw(st.permutations(range(m)))[:n])
    layout = Layout(p, q, (ProcField(dims),) if dims else ())
    k = draw(st.integers(0, 5))
    pairs = []
    for _ in range(k):
        g = draw(st.integers(0, m - 1))
        f = draw(st.integers(0, m - 1))
        if g != f:
            pairs.append((g, f))
    return layout, pairs


@settings(max_examples=60, deadline=None)
@given(layout_and_pairs())
def test_executor_matches_abstract_permutation(case):
    layout, pairs = case
    m = layout.m
    # Data = the element's own address, so placement is self-describing.
    flat = np.arange(1 << m, dtype=np.float64)
    dm = DistributedMatrix.from_global(
        flat.reshape(1 << layout.p, 1 << layout.q), layout
    )
    net = CubeNetwork(custom_machine(layout.n))
    ex = ExchangeExecutor(net, dm)
    ex.run(pairs)
    result = ex.finish(layout)

    sigma = reference_permutation(m, pairs)
    # Datum w must sit at the (proc, offset) of location sigma[w].
    owners = layout.owner_array(sigma)
    offsets = layout.offset_array(sigma)
    for w in range(1 << m):
        assert result.local_data[owners[w], offsets[w]] == w


@settings(max_examples=40, deadline=None)
@given(layout_and_pairs())
def test_executor_leaves_network_clean(case):
    layout, pairs = case
    dm = DistributedMatrix.iota(layout)
    net = CubeNetwork(custom_machine(layout.n))
    ex = ExchangeExecutor(net, dm)
    ex.run(pairs)
    for x in range(net.params.num_procs):
        assert len(net.memory(x)) == 0
