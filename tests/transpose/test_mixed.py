"""Tests for §6.3: combined transpose and Gray/binary code conversion."""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.mixed import (
    mixed_code_transpose_combined,
    mixed_code_transpose_naive,
)


def mixed_layouts(p, half, *, row_gray=False, col_gray=True):
    kw = dict(rows="cyclic", cols="cyclic", row_gray=row_gray, col_gray=col_gray)
    return (
        pt.two_dim_mixed(p, p, half, half, **kw),
        pt.two_dim_mixed(p, p, half, half, **kw),
    )


def matrix(p, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10**6, size=(1 << p, 1 << p)).astype(np.float64)


ENCODINGS = [
    dict(row_gray=False, col_gray=True),   # the paper's §6.3 case
    dict(row_gray=True, col_gray=False),
    dict(row_gray=True, col_gray=True),
    dict(row_gray=False, col_gray=False),  # degenerates to plain SPT
]


class TestCombined:
    @pytest.mark.parametrize("enc", ENCODINGS)
    @pytest.mark.parametrize("p,half", [(3, 1), (4, 2), (5, 2)])
    def test_produces_transpose(self, enc, p, half):
        before, after = mixed_layouts(p, half, **enc)
        A = matrix(p)
        net = CubeNetwork(custom_machine(2 * half))
        out = mixed_code_transpose_combined(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_n_phases(self):
        p, half = 4, 2
        n = 2 * half
        before, after = mixed_layouts(p, half)
        A = matrix(p)
        net = CubeNetwork(custom_machine(n))
        mixed_code_transpose_combined(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert net.stats.phases == n

    def test_odd_cube_rejected(self):
        before = pt.two_dim_mixed(3, 3, 2, 1, rows="cyclic", cols="cyclic")
        after = pt.two_dim_mixed(3, 3, 2, 1, rows="cyclic", cols="cyclic")
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(3))
        with pytest.raises(ValueError):
            mixed_code_transpose_combined(net, dm, after)


class TestNaive:
    @pytest.mark.parametrize("enc", ENCODINGS)
    @pytest.mark.parametrize("p,half", [(4, 2), (5, 2), (6, 3)])
    def test_produces_transpose(self, enc, p, half):
        before, after = mixed_layouts(p, half, **enc)
        A = matrix(p)
        net = CubeNetwork(custom_machine(2 * half))
        out = mixed_code_transpose_naive(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_2n_minus_2_phases(self):
        p, half = 4, 2
        n = 2 * half
        before, after = mixed_layouts(p, half)
        A = matrix(p)
        net = CubeNetwork(custom_machine(n))
        mixed_code_transpose_naive(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert net.stats.phases == 2 * n - 2


class TestComparison:
    def test_combined_beats_naive(self):
        """Fig. 15: the n-step combined algorithm beats the (2n-2)-step
        naive one, increasingly so for larger cubes."""
        for half in (1, 2, 3):
            p = max(3, half + 1)
            n = 2 * half
            before, after = mixed_layouts(p, half)
            A = matrix(p)

            nv = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
            mixed_code_transpose_naive(
                nv, DistributedMatrix.from_global(A, before), after
            )
            cb = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
            mixed_code_transpose_combined(
                cb, DistributedMatrix.from_global(A, before), after
            )
            if n > 2:
                assert cb.time < nv.time
            else:
                assert cb.time <= nv.time

    def test_both_agree_with_each_other(self):
        p, half = 4, 2
        before, after = mixed_layouts(p, half)
        A = matrix(p)
        n1 = CubeNetwork(custom_machine(2 * half))
        out1 = mixed_code_transpose_naive(
            n1, DistributedMatrix.from_global(A, before), after
        )
        n2 = CubeNetwork(custom_machine(2 * half))
        out2 = mixed_code_transpose_combined(
            n2, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out1.local_data, out2.local_data)
