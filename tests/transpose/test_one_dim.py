"""Tests for one-dimensional transposition (§5)."""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.one_dim import (
    block_transpose,
    one_dim_transpose_exchange,
    one_dim_transpose_sbnt,
)


def matrix(p, q, seed=1):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 20, size=(1 << p, 1 << q)).astype(np.float64)


class TestExchangeWrapper:
    def test_transpose_row_consecutive(self):
        before = pt.row_consecutive(4, 3, 3)
        after = pt.row_consecutive(3, 4, 3)
        A = matrix(4, 3)
        net = CubeNetwork(custom_machine(3))
        out = one_dim_transpose_exchange(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)
        assert net.stats.phases > 0

    def test_rejects_two_dim_layout(self):
        before = pt.two_dim_cyclic(3, 3, 1, 1)
        after = pt.row_consecutive(3, 3, 2)
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            one_dim_transpose_exchange(net, dm, after)


class TestSbnt:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_transpose_correct(self, n):
        before = pt.row_consecutive(4, 4, n)
        after = pt.row_consecutive(4, 4, n)
        A = matrix(4, 4)
        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        out = one_dim_transpose_sbnt(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_n_port_beats_one_port_exchange(self):
        n = 4
        before = pt.row_consecutive(5, 5, n)
        after = pt.row_consecutive(5, 5, n)
        A = matrix(5, 5)

        net1 = CubeNetwork(custom_machine(n, tau=0.0, t_c=1.0))
        one_dim_transpose_exchange(
            net1, DistributedMatrix.from_global(A, before), after
        )
        netn = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        one_dim_transpose_sbnt(
            netn, DistributedMatrix.from_global(A, before), after
        )
        assert netn.time < net1.time


class TestBlockTranspose:
    CASES = [
        ("exchange", pt.row_consecutive, pt.row_cyclic),
        ("exchange", pt.column_cyclic, pt.column_consecutive),
        ("sbnt", pt.row_cyclic, pt.row_cyclic),
        ("sbnt", pt.column_consecutive, pt.row_consecutive),
    ]

    @pytest.mark.parametrize("router,mk_b,mk_a", CASES)
    def test_layout_pairs(self, router, mk_b, mk_a):
        p = q = 4
        n = 2
        before = mk_b(p, q, n)
        after = mk_a(q, p, n)
        A = matrix(p, q)
        net = CubeNetwork(custom_machine(n))
        out = block_transpose(
            net, DistributedMatrix.from_global(A, before), after, router=router
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_gray_layouts_supported(self):
        """block_transpose derives destinations from the layout algebra,
        so Gray and even mixed encodings need no special casing."""
        before = pt.row_consecutive(3, 3, 2, gray=True)
        after = pt.row_consecutive(3, 3, 2, gray=True)
        A = matrix(3, 3)
        net = CubeNetwork(custom_machine(2))
        out = block_transpose(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_mixed_encoding_supported(self):
        before = pt.two_dim_mixed(
            3, 3, 1, 1, rows="cyclic", cols="cyclic", col_gray=True
        )
        after = pt.two_dim_mixed(
            3, 3, 1, 1, rows="cyclic", cols="cyclic", col_gray=True
        )
        A = matrix(3, 3)
        net = CubeNetwork(custom_machine(2))
        out = block_transpose(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_two_dim_pairwise_also_works(self):
        before = pt.two_dim_cyclic(3, 3, 1, 1)
        after = pt.two_dim_cyclic(3, 3, 1, 1)
        A = matrix(3, 3)
        net = CubeNetwork(custom_machine(2))
        out = block_transpose(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_unknown_router_rejected(self):
        before = pt.row_cyclic(2, 2, 1)
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(1))
        with pytest.raises(ValueError):
            block_transpose(net, dm, pt.row_cyclic(2, 2, 1), router="carrier-pigeon")

    def test_mismatched_proc_counts_rejected(self):
        before = pt.row_cyclic(3, 3, 2)
        after = pt.row_cyclic(3, 3, 1)
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            block_transpose(net, dm, after)

    def test_charge_local_prices_scatter(self):
        before = pt.row_consecutive(3, 3, 2)
        after = pt.row_consecutive(3, 3, 2)
        A = matrix(3, 3)
        net = CubeNetwork(custom_machine(2, t_copy=1.0))
        block_transpose(
            net,
            DistributedMatrix.from_global(A, before),
            after,
            charge_local=True,
        )
        assert net.stats.copy_time > 0

    def test_serial_case(self):
        before = pt.row_cyclic(2, 2, 0)
        after = pt.row_cyclic(2, 2, 0)
        A = matrix(2, 2)
        net = CubeNetwork(custom_machine(0))
        out = block_transpose(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)
        assert net.stats.messages == 0
