"""Tests for the two-dimensional SPT/DPT/MPT algorithms (§6.1)."""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.two_dim import (
    pairwise_maps,
    two_dim_transpose_dpt,
    two_dim_transpose_mpt,
    two_dim_transpose_router,
    two_dim_transpose_spt,
)


def matrix(p, q, seed=5):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 20, size=(1 << p, 1 << q)).astype(np.float64)


def square_layouts(p, half, *, gray=False, scheme="cyclic"):
    mk = pt.two_dim_cyclic if scheme == "cyclic" else pt.two_dim_consecutive
    return mk(p, p, half, half, gray=gray), mk(p, p, half, half, gray=gray)


class TestPairwiseMaps:
    def test_partner_is_tr_for_cyclic(self):
        before, after = square_layouts(3, 2)
        partner, _ = pairwise_maps(before, after)
        half = 2
        for x in range(16):
            expected = ((x & 3) << half) | (x >> half)
            assert partner[x] == expected

    def test_non_pairwise_rejected(self):
        before = pt.row_consecutive(3, 3, 2)
        after = pt.row_consecutive(3, 3, 2)
        with pytest.raises(ValueError):
            pairwise_maps(before, after)


ALGOS = {
    "spt": lambda net, dm, after: two_dim_transpose_spt(net, dm, after),
    "spt-pipe": lambda net, dm, after: two_dim_transpose_spt(
        net, dm, after, packet_size=4
    ),
    "dpt": lambda net, dm, after: two_dim_transpose_dpt(net, dm, after),
    "dpt-pipe": lambda net, dm, after: two_dim_transpose_dpt(
        net, dm, after, packet_size=4
    ),
    "mpt": lambda net, dm, after: two_dim_transpose_mpt(net, dm, after),
    "mpt-k2": lambda net, dm, after: two_dim_transpose_mpt(
        net, dm, after, rounds=2
    ),
    "router": lambda net, dm, after: two_dim_transpose_router(net, dm, after),
}


class TestCorrectness:
    @pytest.mark.parametrize("name", list(ALGOS))
    @pytest.mark.parametrize("scheme", ["cyclic", "consecutive"])
    def test_transposes(self, name, scheme):
        p, half = 4, 2
        before, after = square_layouts(p, half, scheme=scheme)
        A = matrix(p, p)
        net = CubeNetwork(
            custom_machine(2 * half, port_model=PortModel.N_PORT)
        )
        out = ALGOS[name](net, DistributedMatrix.from_global(A, before), after)
        assert np.array_equal(out.to_global(), A.T), name

    @pytest.mark.parametrize("name", ["spt", "dpt", "mpt", "router"])
    def test_gray_encoding(self, name):
        """§6.1: identical algorithm transposes Gray-embedded matrices."""
        p, half = 3, 1
        before, after = square_layouts(p, half, gray=True)
        A = matrix(p, p)
        net = CubeNetwork(custom_machine(2, port_model=PortModel.N_PORT))
        out = ALGOS[name](net, DistributedMatrix.from_global(A, before), after)
        assert np.array_equal(out.to_global(), A.T)

    def test_six_cube(self):
        before, after = square_layouts(3, 3)
        A = matrix(3, 3)
        net = CubeNetwork(custom_machine(6, port_model=PortModel.N_PORT))
        out = two_dim_transpose_mpt(
            net, DistributedMatrix.from_global(A, before), after
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_invalid_rounds(self):
        before, after = square_layouts(2, 1)
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            two_dim_transpose_mpt(net, dm, after, rounds=0)

    def test_bad_packet_size(self):
        before, after = square_layouts(2, 1)
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            two_dim_transpose_spt(net, dm, after, packet_size=0)


class TestTiming:
    def test_spt_step_by_step_matches_ipsc_formula(self):
        """T = n (L t_c + ceil(L/B_m) tau) without copy charges."""
        p, half = 4, 2
        n = 2 * half
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        tau, t_c, B_m = 7.0, 2.0, 8
        net = CubeNetwork(custom_machine(n, tau=tau, t_c=t_c, packet_capacity=B_m))
        two_dim_transpose_spt(
            net, DistributedMatrix.from_global(A, before), after
        )
        L = before.local_size
        expected = n * (L * t_c + -(-L // B_m) * tau)
        assert net.time == pytest.approx(expected)

    def test_spt_pipelined_matches_formula(self):
        """T = (ceil(L/B) + n - 1)(B t_c + tau) for packets of size B."""
        p, half = 4, 2
        n = 2 * half
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        B = 4
        tau, t_c = 3.0, 1.0
        # Pipelined SPT needs n concurrent operations per node (§6.1.2's
        # comparison: "it suffices that each node supports a total of n
        # concurrent send or receive operations").
        net = CubeNetwork(
            custom_machine(n, tau=tau, t_c=t_c, port_model=PortModel.N_PORT)
        )
        two_dim_transpose_spt(
            net, DistributedMatrix.from_global(A, before), after, packet_size=B
        )
        L = before.local_size
        K = -(-L // B)
        expected = (K + n - 1) * (B * t_c + tau)
        assert net.time == pytest.approx(expected)

    def test_dpt_halves_spt_transfer(self):
        """Speedup ~2 when PQ/N t_c >> n tau (§6.1.2)."""
        p, half = 5, 2
        n = 2 * half
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        B = 2

        spt_net = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        two_dim_transpose_spt(
            spt_net, DistributedMatrix.from_global(A, before), after, packet_size=B
        )
        dpt_net = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        two_dim_transpose_dpt(
            dpt_net, DistributedMatrix.from_global(A, before), after, packet_size=B
        )
        ratio = spt_net.time / dpt_net.time
        assert 1.6 < ratio <= 2.1

    def test_mpt_beats_dpt_in_startup_bound_regime(self):
        """Theorem 2 vs §6.1.2: MPT's multi-path injection completes in
        ~n+1 start-ups where a pipelined DPT pays ~(K + n - 1); with
        start-ups dominating, MPT wins even against DPT's optimal packet
        size."""
        import math

        p, half = 5, 2
        n = 2 * half
        tau, t_c = 16.0, 1.0
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        L = before.local_size

        b_opt = max(1, round(math.sqrt(L * tau / (2 * (n - 1) * t_c))))
        dpt_net = CubeNetwork(
            custom_machine(n, tau=tau, t_c=t_c, port_model=PortModel.N_PORT)
        )
        two_dim_transpose_dpt(
            dpt_net,
            DistributedMatrix.from_global(A, before),
            after,
            packet_size=b_opt,
        )
        mpt_net = CubeNetwork(
            custom_machine(n, tau=tau, t_c=t_c, port_model=PortModel.N_PORT)
        )
        two_dim_transpose_mpt(
            mpt_net, DistributedMatrix.from_global(A, before), after, rounds=1
        )
        assert mpt_net.time < dpt_net.time

    def test_mpt_matches_dpt_at_zero_startup(self):
        """At tau = 0 both are bandwidth-bound by the H(x) = 1 nodes'
        two paths, so MPT holds no advantage — a negative control."""
        p, half = 5, 2
        n = 2 * half
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        dpt_net = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        two_dim_transpose_dpt(
            dpt_net, DistributedMatrix.from_global(A, before), after, packet_size=2
        )
        mpt_net = CubeNetwork(
            custom_machine(n, tau=0.0, t_c=1.0, port_model=PortModel.N_PORT)
        )
        two_dim_transpose_mpt(
            mpt_net, DistributedMatrix.from_global(A, before), after, rounds=2
        )
        assert mpt_net.time < 2.0 * dpt_net.time

    def test_mpt_cycle_count(self):
        """Routing completes in 2kH+1 cycles for the anti-diagonal class
        (plus nothing else: phases == max cycles used)."""
        p, half = 4, 2
        n = 2 * half
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        k = 2
        net = CubeNetwork(custom_machine(n, port_model=PortModel.N_PORT))
        two_dim_transpose_mpt(
            net, DistributedMatrix.from_global(A, before), after, rounds=k
        )
        h_max = half
        assert net.stats.phases == 2 * k * h_max + 1

    def test_router_slower_than_spt_on_big_cube(self):
        """Fig. 14: the scheduled algorithm beats the routing logic as the
        cube grows (conflicts pile up on the router)."""
        p, half = 4, 2
        n = 2 * half
        before, after = square_layouts(p, half)
        A = matrix(p, p)

        r_net = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        two_dim_transpose_router(
            r_net, DistributedMatrix.from_global(A, before), after
        )
        s_net = CubeNetwork(custom_machine(n, tau=1.0, t_c=1.0))
        two_dim_transpose_spt(
            s_net, DistributedMatrix.from_global(A, before), after
        )
        assert s_net.time <= r_net.time

    def test_charge_copy_adds_two_l_tcopy(self):
        p, half = 4, 2
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        net = CubeNetwork(custom_machine(4, t_copy=1.0))
        two_dim_transpose_spt(
            net, DistributedMatrix.from_global(A, before), after, charge_copy=True
        )
        L = before.local_size
        assert net.stats.copy_time == pytest.approx(2 * L)


class TestVariants:
    def test_spt_greedy_matches_synchronized_result(self):
        p, half = 4, 2
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        sync_net = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
        sync = two_dim_transpose_spt(
            sync_net, DistributedMatrix.from_global(A, before), after
        )
        greedy_net = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
        greedy = two_dim_transpose_spt(
            greedy_net,
            DistributedMatrix.from_global(A, before),
            after,
            greedy=True,
        )
        assert np.array_equal(sync.local_data, greedy.local_data)
        # Greedy never takes longer on n-port (idle slots removed).
        assert greedy_net.time <= sync_net.time * 1.0001

    def test_spt_greedy_pipelined(self):
        p, half = 4, 2
        before, after = square_layouts(p, half)
        A = matrix(p, p)
        net = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
        out = two_dim_transpose_spt(
            net,
            DistributedMatrix.from_global(A, before),
            after,
            packet_size=4,
            greedy=True,
        )
        assert np.array_equal(out.to_global(), A.T)

    def test_mixed_combined_pipelined(self):
        """§6.3: 'Pipelining can be applied.'"""
        from repro.transpose.mixed import mixed_code_transpose_combined

        before = pt.two_dim_mixed(
            4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        after = pt.two_dim_mixed(
            4, 4, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        A = matrix(4, 4)
        whole_net = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
        whole = mixed_code_transpose_combined(
            whole_net, DistributedMatrix.from_global(A, before), after
        )
        pipe_net = CubeNetwork(custom_machine(4, port_model=PortModel.N_PORT))
        piped = mixed_code_transpose_combined(
            pipe_net,
            DistributedMatrix.from_global(A, before),
            after,
            packet_size=4,
        )
        assert np.array_equal(whole.local_data, piped.local_data)
        assert np.array_equal(piped.to_global(), A.T)

    def test_mixed_pipelined_cuts_startup_latency(self):
        """With start-ups dominating whole-block hops, packets amortize."""
        from repro.transpose.mixed import mixed_code_transpose_combined

        before = pt.two_dim_mixed(
            5, 5, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        after = pt.two_dim_mixed(
            5, 5, 2, 2, rows="cyclic", cols="cyclic", col_gray=True
        )
        A = matrix(5, 5)
        # Transfer-bound machine: pipelining overlaps the hops.
        whole_net = CubeNetwork(
            custom_machine(4, tau=0.5, t_c=1.0, port_model=PortModel.N_PORT)
        )
        mixed_code_transpose_combined(
            whole_net, DistributedMatrix.from_global(A, before), after
        )
        pipe_net = CubeNetwork(
            custom_machine(4, tau=0.5, t_c=1.0, port_model=PortModel.N_PORT)
        )
        mixed_code_transpose_combined(
            pipe_net,
            DistributedMatrix.from_global(A, before),
            after,
            packet_size=8,
        )
        assert pipe_net.time < whole_net.time

    def test_mixed_pipelined_bad_packet(self):
        from repro.transpose.mixed import mixed_code_transpose_combined

        before = pt.two_dim_mixed(3, 3, 1, 1, col_gray=True, rows="cyclic")
        after = pt.two_dim_mixed(3, 3, 1, 1, col_gray=True, rows="cyclic")
        dm = DistributedMatrix.iota(before)
        net = CubeNetwork(custom_machine(2))
        with pytest.raises(ValueError):
            mixed_code_transpose_combined(net, dm, after, packet_size=0)
