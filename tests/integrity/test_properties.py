"""Integrity properties: a silent wrong matrix is impossible.

Two halves of the acceptance contract:

* **null-path soundness** — arming checksums on a corruption-free run
  changes nothing observable: the gathered matrix is bit-identical, the
  modelled time is unchanged (checksums are free under the default
  config), and no retransmit or quarantine ever fires;
* **detection totality** — under any seeded corruption plan, every
  struck delivery is either retransmitted to a verified-clean arrival
  or surfaces as a typed :class:`~repro.machine.faults.FaultError`.
  The one forbidden outcome is a transpose that *returns* wrong data.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity import IntegrityManager
from repro.machine import CubeNetwork
from repro.machine.faults import FaultError, FaultPlan
from repro.machine.presets import connection_machine
from repro.machine.routing import RoutingStalledError
from repro.plans.batch import resolve_problem
from repro.plans.recorder import synthetic_matrix
from repro.transpose.planner import transpose

N = 4
ELEMENTS = 256


def run(algorithm, *, faults=None, integrity=None):
    params = connection_machine(N)
    before, after = resolve_problem(N, ELEMENTS, "2d")
    matrix = synthetic_matrix(before)
    original = matrix.to_global()
    network = CubeNetwork(params, faults=faults, integrity=integrity)
    result = transpose(network, matrix, after, algorithm=algorithm)
    return network, result, original


@settings(max_examples=15, deadline=None)
@given(
    algorithm=st.sampled_from(["mpt", "dpt", "spt", "router"]),
    fault_seed=st.integers(min_value=0, max_value=999),
    link_rate=st.floats(min_value=0.0, max_value=0.05),
)
def test_null_path_is_bit_identical(algorithm, fault_seed, link_rate):
    """Checksums on, corruption absent: nothing observable may change."""
    faults = FaultPlan.random(
        N, seed=fault_seed, link_rate=link_rate, transient_rate=0.0
    )
    plain_net, plain, original = run(algorithm, faults=faults)
    armed_net, armed, _ = run(
        algorithm, faults=faults, integrity=IntegrityManager()
    )
    assert armed.verify_against(original)
    assert np.array_equal(
        armed.matrix.to_global(), plain.matrix.to_global()
    )
    assert armed_net.stats.time == plain_net.stats.time
    assert armed_net.stats.integrity_corrupted_deliveries == 0
    assert armed_net.stats.integrity_retransmits == 0
    assert armed_net.stats.integrity_quarantined_links == 0
    assert armed_net.stats.integrity_checksum_overhead > 0


@settings(max_examples=15, deadline=None)
@given(
    algorithm=st.sampled_from(["mpt", "spt", "auto"]),
    fault_seed=st.integers(min_value=0, max_value=999),
    corrupt_rate=st.floats(min_value=0.02, max_value=0.4),
    corrupt_intensity=st.floats(min_value=0.1, max_value=1.0),
)
def test_corruption_is_never_silent(
    algorithm, fault_seed, corrupt_rate, corrupt_intensity
):
    """Every struck delivery retransmits clean or raises a typed error."""
    faults = FaultPlan.random(
        N,
        seed=fault_seed,
        link_rate=0.0,
        transient_rate=0.0,
        corrupt_rate=corrupt_rate,
        corrupt_intensity=corrupt_intensity,
    )
    try:
        network, result, original = run(algorithm, faults=faults)
    except (FaultError, RoutingStalledError):
        return  # detected, escalated, surfaced — the allowed failure
    # The transpose returned: its payload must be bit-exact, and any
    # detected corruption must be accounted for — each strike was either
    # retransmitted or escalated into a quarantine the planner absorbed.
    assert result.verify_against(original)
    stats = network.stats
    assert stats.integrity_corrupted_deliveries >= stats.integrity_retransmits
    if stats.integrity_corrupted_deliveries:
        assert (
            stats.integrity_retransmits > 0
            or stats.integrity_quarantined_links > 0
        )
