"""Link scoreboard: pure counting, no policy."""

from repro.integrity.scoreboard import LinkScoreboard


class TestLinkScoreboard:
    def test_counts_accumulate_per_link(self):
        board = LinkScoreboard()
        board.record_delivery((0, 1))
        board.record_delivery((0, 1))
        board.record_corruption((0, 1))
        board.record_retransmit((0, 1))
        board.record_delivery((2, 3))
        health = board.health((0, 1))
        assert (health.deliveries, health.corruptions) == (2, 1)
        assert health.retransmits == 1
        assert board.health((2, 3)).deliveries == 1

    def test_unknown_link_reads_as_zero(self):
        board = LinkScoreboard()
        assert board.corruptions((5, 4)) == 0
        assert board.quarantined_links() == set()
        assert board.flaky_links() == set()

    def test_flaky_vs_quarantined(self):
        board = LinkScoreboard()
        board.record_corruption((0, 1))
        board.record_corruption((2, 3))
        board.mark_quarantined((2, 3))
        assert board.flaky_links() == {(0, 1), (2, 3)}
        assert board.quarantined_links() == {(2, 3)}

    def test_as_dict_is_sorted_and_json_safe(self):
        board = LinkScoreboard()
        board.record_delivery((2, 3))
        board.record_corruption((0, 1))
        doc = board.as_dict()
        assert list(doc) == ["0->1", "2->3"]
        assert doc["0->1"] == {
            "deliveries": 0,
            "corruptions": 1,
            "retransmits": 0,
            "quarantined": False,
        }
