"""Checksums and the damage model: deterministic, key-bound, visible."""

import numpy as np

from repro.integrity.checksum import (
    block_checksum,
    damaged_checksum,
    memories_digest,
)
from repro.machine.faults import CorruptionFault
from repro.machine.message import Block


def real_block(key="a", values=(1.0, 2.0, 3.0, 4.0)):
    return Block(key, data=np.array(values))


class TestBlockChecksum:
    def test_deterministic(self):
        assert block_checksum(real_block()) == block_checksum(real_block())

    def test_sensitive_to_payload_bytes(self):
        assert block_checksum(real_block()) != block_checksum(
            real_block(values=(1.0, 2.0, 3.0, 5.0))
        )

    def test_bound_to_the_key(self):
        # Same bytes under a different key is a routing bug, not a clean
        # delivery — the checksum must move.
        assert block_checksum(real_block("a")) != block_checksum(
            real_block("b")
        )

    def test_virtual_blocks_checksum_their_identity(self):
        a = Block("k", virtual_size=8)
        b = Block("k", virtual_size=9)
        assert block_checksum(a) == block_checksum(Block("k", virtual_size=8))
        assert block_checksum(a) != block_checksum(b)

    def test_layout_does_not_matter(self):
        flat = Block("k", data=np.arange(4.0))
        square = Block("k", data=np.arange(4.0).reshape(2, 2))
        assert block_checksum(flat) == block_checksum(square)


class TestDamagedChecksum:
    def test_always_differs_from_clean(self):
        for mode in ("bitflip", "scramble"):
            fault = CorruptionFault(0, 1, mode=mode, seed=3)
            for phase in range(16):
                for attempt in range(3):
                    block = real_block()
                    assert damaged_checksum(
                        block, fault, phase, attempt
                    ) != block_checksum(block)

    def test_virtual_and_empty_blocks_still_detectable(self):
        fault = CorruptionFault(0, 1, seed=9)
        virtual = Block("v", virtual_size=32)
        empty = Block("e", data=np.array([]))
        assert damaged_checksum(virtual, fault, 0, 0) != block_checksum(
            virtual
        )
        assert damaged_checksum(empty, fault, 0, 0) != block_checksum(empty)

    def test_deterministic_per_attempt(self):
        fault = CorruptionFault(0, 1, mode="scramble", seed=7)
        block = real_block()
        first = damaged_checksum(block, fault, 2, 1)
        assert first == damaged_checksum(block, fault, 2, 1)
        # A retransmission redraws the damage.
        assert first != damaged_checksum(block, fault, 2, 2)


class TestMemoriesDigest:
    def test_insensitive_to_key_insertion_order(self):
        a = {"x": real_block("x"), "y": real_block("y")}
        b = {"y": real_block("y"), "x": real_block("x")}
        assert memories_digest([a]) == memories_digest([b])

    def test_sensitive_to_node_placement(self):
        block = real_block()
        assert memories_digest([{"a": block}, {}]) != memories_digest(
            [{}, {"a": block}]
        )

    def test_sensitive_to_payload_mutation(self):
        block = real_block()
        before = memories_digest([{"a": block}])
        block.data[0] = 99.0
        assert memories_digest([{"a": block}]) != before
