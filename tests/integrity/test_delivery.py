"""The ARQ delivery path on a live network: detect, retransmit, quarantine."""

import numpy as np
import pytest

from repro.integrity import (
    CorruptedDeliveryError,
    IntegrityConfig,
    IntegrityManager,
    LinkQuarantinedError,
)
from repro.machine import Block, CubeNetwork, Message, custom_machine
from repro.machine.faults import CorruptionFault, FaultPlan


def corrupted_net(fault: CorruptionFault, n=2, config=None):
    faults = FaultPlan(n=n, corruption_faults=(fault,))
    integrity = IntegrityManager(config) if config is not None else None
    return CubeNetwork(custom_machine(n), faults=faults, integrity=integrity)


class TestIntegrityConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="retransmit budget"):
            IntegrityConfig(retransmit_budget=-1)
        with pytest.raises(ValueError, match="quarantine threshold"):
            IntegrityConfig(quarantine_after=0)
        with pytest.raises(ValueError, match="checksum time"):
            IntegrityConfig(checksum_time_per_element=-1.0)


class TestAutoArming:
    def test_corruption_faults_arm_integrity(self):
        net = corrupted_net(CorruptionFault(0, 1))
        assert net.integrity is not None

    def test_plain_network_has_no_integrity(self):
        assert CubeNetwork(custom_machine(2)).integrity is None

    def test_failstop_faults_alone_do_not_arm(self):
        faults = FaultPlan.from_spec(2, "links=0-1")
        assert CubeNetwork(custom_machine(2), faults=faults).integrity is None


class TestCleanDelivery:
    def test_armed_null_path_only_counts_overhead(self):
        net = CubeNetwork(custom_machine(2), integrity=IntegrityManager())
        net.place(0, Block("a", data=np.arange(8.0)))
        net.execute_phase([Message(0, 1, ["a"])])
        stats = net.stats
        assert stats.integrity_checksum_overhead == 8
        assert stats.integrity_corrupted_deliveries == 0
        assert stats.integrity_retransmits == 0
        assert stats.integrity_quarantined_links == 0
        assert np.array_equal(net.memories[1].get("a").data, np.arange(8.0))

    def test_checksum_time_is_priced_when_configured(self):
        free = CubeNetwork(custom_machine(2), integrity=IntegrityManager())
        paid = CubeNetwork(
            custom_machine(2),
            integrity=IntegrityManager(
                IntegrityConfig(checksum_time_per_element=0.5)
            ),
        )
        for net in (free, paid):
            net.place(0, Block("a", virtual_size=8))
            net.execute_phase([Message(0, 1, ["a"])])
        assert paid.stats.time == free.stats.time + 0.5 * 8


class TestRetransmission:
    def test_intermittent_corruption_is_retransmitted_to_success(self):
        # seed=2 strikes the first transmission at phase 0 but the
        # retransmission draw comes up clean within the budget.
        fault = CorruptionFault(0, 1, rate=0.5, seed=2)
        net = corrupted_net(fault)
        net.place(0, Block("a", data=np.arange(4.0)))
        net.execute_phase([Message(0, 1, ["a"])])
        stats = net.stats
        assert stats.integrity_corrupted_deliveries >= 1
        assert stats.integrity_retransmits == (
            stats.integrity_corrupted_deliveries
        )
        assert stats.integrity_quarantined_links == 0
        assert np.array_equal(net.memories[1].get("a").data, np.arange(4.0))

    def test_retransmissions_are_priced_into_the_phase(self):
        fault = CorruptionFault(0, 1, rate=0.5, seed=2)
        net = corrupted_net(fault)
        clean = CubeNetwork(custom_machine(2))
        for n in (net, clean):
            n.place(0, Block("a", virtual_size=4))
            n.execute_phase([Message(0, 1, ["a"])])
        retries = net.stats.integrity_retransmits
        assert retries >= 1
        assert net.stats.time > clean.stats.time

    def test_budget_exhaustion_quarantines_and_raises(self):
        net = corrupted_net(CorruptionFault(0, 1))  # rate=1.0: every draw
        net.place(0, Block("a", data=np.arange(4.0)))
        with pytest.raises(CorruptedDeliveryError) as exc:
            net.execute_phase([Message(0, 1, ["a"])])
        assert (exc.value.src, exc.value.dst) == (0, 1)
        assert exc.value.attempts == 4  # initial send + default budget 3
        assert net.integrity.is_quarantined(0, 1)
        assert net.stats.integrity_quarantined_links == 1
        # The phase aborted before any movement: memories are untouched.
        assert net.memories[0].get("a").size == 4
        assert "a" not in net.memories[1]

    def test_zero_budget_escalates_on_first_strike(self):
        net = corrupted_net(
            CorruptionFault(0, 1),
            config=IntegrityConfig(retransmit_budget=0),
        )
        net.place(0, Block("a", virtual_size=4))
        with pytest.raises(CorruptedDeliveryError) as exc:
            net.execute_phase([Message(0, 1, ["a"])])
        assert exc.value.attempts == 1
        assert net.stats.integrity_retransmits == 0


class TestQuarantine:
    def test_quarantined_link_is_refused_next_phase(self):
        net = corrupted_net(CorruptionFault(0, 1, end=1))
        net.place(0, Block("a", virtual_size=4))
        with pytest.raises(CorruptedDeliveryError):
            net.execute_phase([Message(0, 1, ["a"])])
        # The fault window is over, but the link is dead for good.
        with pytest.raises(LinkQuarantinedError):
            net.execute_phase([Message(0, 1, ["a"])])
        # Other links still work.
        net.execute_phase([Message(0, 2, ["a"])])
        assert net.memories[2].get("a").size == 4

    def test_repeat_offender_is_quarantined_despite_succeeding(self):
        # Every phase: first transmission struck, retransmission clean.
        # After quarantine_after such deliveries the link is retired even
        # though every payload eventually arrived intact.
        fault = CorruptionFault(0, 1, rate=0.5, seed=0)
        net = corrupted_net(
            fault, config=IntegrityConfig(quarantine_after=2)
        )
        phase = 0
        while not net.integrity.has_quarantined:
            assert phase < 64, "quarantine threshold never reached"
            key = f"b{phase}"
            net.place(0, Block(key, virtual_size=2))
            net.execute_phase([Message(0, 1, [key])])
            assert net.memories[1].get(key).size == 2  # delivered clean
            phase += 1
        assert net.integrity.quarantined_links() == frozenset({(0, 1)})
        assert net.stats.integrity_corrupted_deliveries >= 2

    def test_quarantine_feeds_reporting(self):
        net = corrupted_net(CorruptionFault(0, 1))
        net.place(0, Block("a", virtual_size=4))
        with pytest.raises(CorruptedDeliveryError):
            net.execute_phase([Message(0, 1, ["a"])])
        doc = net.integrity.as_dict()
        assert doc["quarantined"] == ["0->1"]
        assert doc["links"]["0->1"]["quarantined"] is True
        assert "quarantined=1" in net.stats.summary()
