"""Structural analytics of the concrete topology instances."""

import pytest

from repro.topology import Hypercube, SwappedDragonfly, TopologyError, TorusMesh


def _ring_distance(a: int, b: int, k: int, wrap: bool) -> int:
    d = abs(a - b)
    return min(d, k - d) if wrap else d


class TestTorusMesh:
    def test_coords_roundtrip(self):
        topo = TorusMesh((4, 2, 8))
        for x in range(topo.num_nodes):
            assert topo.node_at(topo.coords(x)) == x

    @pytest.mark.parametrize("wrap", [True, False])
    def test_distance_is_per_axis_ring_distance(self, wrap):
        topo = TorusMesh((4, 4), wrap=wrap)
        for a in range(topo.num_nodes):
            for b in range(topo.num_nodes):
                expected = sum(
                    _ring_distance(ca, cb, k, wrap)
                    for ca, cb, k in zip(topo.coords(a), topo.coords(b), (4, 4))
                )
                assert topo.distance(a, b) == expected

    def test_diameter_formulas(self):
        assert TorusMesh((4, 4, 4)).diameter == 6  # sum k//2
        assert TorusMesh((4, 4), wrap=False).diameter == 6  # sum k-1
        assert TorusMesh((8, 2)).diameter == 5

    def test_radix2_axis_contributes_one_link(self):
        # Both directions round a 2-ring land on the same neighbour;
        # a duplicate link would break validate() and double-charge
        # fault sampling.
        topo = TorusMesh((2, 2, 2))
        assert all(topo.degree(x) == 3 for x in range(8))
        cube = Hypercube(3)
        for x in range(8):
            assert set(topo.neighbors(x)) == set(cube.neighbors(x))

    def test_mesh_boundary_is_irregular(self):
        mesh = TorusMesh((4, 4), wrap=False)
        assert not mesh.claims_regular
        assert mesh.degree(0) == 2  # corner
        assert mesh.degree(5) == 4  # interior
        mesh.validate()

    def test_bad_radices_rejected(self):
        with pytest.raises(TopologyError, match=">= 2"):
            TorusMesh((4, 1))
        with pytest.raises(TopologyError, match="at least one axis"):
            TorusMesh(())


class TestSwappedDragonfly:
    def test_node_count_and_spec(self):
        topo = SwappedDragonfly(2, 4)
        assert topo.num_nodes == 16
        assert topo.spec == "dragonfly:2,4"

    def test_link_symmetry(self):
        topo = SwappedDragonfly(2, 8)
        for x in range(topo.num_nodes):
            for y in topo.neighbors(x):
                assert x in topo.neighbors(y)

    def test_degree_pattern(self):
        # M-1 local links plus K global ports, minus one dropped link
        # where the swap fixes the router; hence claims_regular=False.
        topo = SwappedDragonfly(2, 4)
        assert not topo.claims_regular
        degrees = sorted({topo.degree(x) for x in range(topo.num_nodes)})
        assert degrees[-1] == (4 - 1) + 2
        assert len(degrees) > 1

    def test_shipped_sizes_have_diameter_3(self):
        assert SwappedDragonfly(2, 4).diameter == 3
        assert SwappedDragonfly(2, 8).diameter == 3

    def test_bad_parameters_rejected(self):
        with pytest.raises(TopologyError, match="power of two"):
            SwappedDragonfly(2, 3)
