"""Topology threading through faults, plans, recovery, chaos, serving."""

import pytest

from repro.layout import partition as pt
from repro.machine import CubeNetwork, FaultPlan
from repro.machine.presets import connection_machine
from repro.plans import plan_key
from repro.plans.batch import BatchRequest, run_batch
from repro.plans.cache import PlanCache
from repro.plans.ir import PlanError
from repro.plans.recorder import capture_transpose, synthetic_matrix
from repro.plans.replay import PlanReplayError, replay_degraded, replay_plan
from repro.recovery import RecoveryPolicy, run_chaos
from repro.topology import parse_topology, supported_algorithms
from repro.topology.capabilities import CUBE_ALGORITHMS

N = 4
LAYOUT = pt.two_dim_cyclic(4, 4, 2, 2)


class TestFaultSpecNaming:
    def test_non_link_token_names_itself(self):
        topo = parse_topology("dragonfly:2,4", N)
        bad = next(
            (s, d)
            for s in range(topo.num_nodes)
            for d in range(topo.num_nodes)
            if s != d and not topo.has_link(s, d)
        )
        spec = f"links={bad[0]}-{bad[1]}"
        with pytest.raises(
            ValueError,
            match=r"token.*not a link of dragonfly:2,4",
        ):
            FaultPlan.from_spec(N, spec, topology=topo)

    def test_out_of_range_node_names_the_topology(self):
        topo = parse_topology("torus:4x4", N)
        with pytest.raises(ValueError, match="outside torus:4x4"):
            FaultPlan.from_spec(N, "nodes=99", topology=topo)

    def test_torus_native_link_is_accepted_where_cube_rejects(self):
        # (0, 3) wraps the first torus ring but is not a cube edge.
        topo = parse_topology("torus:4x4", N)
        plan = FaultPlan.from_spec(N, "links=0-3", topology=topo)
        assert len(plan.link_faults) == 1
        with pytest.raises(ValueError, match="not a cube edge"):
            FaultPlan.from_spec(N, "links=0-3")

    def test_engine_rejects_plan_for_other_topology(self):
        topo = parse_topology("torus:4x4", N)
        plan = FaultPlan.from_spec(N, "links=0-3", topology=topo)
        with pytest.raises(ValueError, match="interconnect"):
            CubeNetwork(connection_machine(N), faults=plan)


class TestCapabilities:
    def test_cube_keeps_full_ladder(self):
        assert supported_algorithms(None) == CUBE_ALGORITHMS
        assert (
            supported_algorithms(parse_topology("cube", N))
            == CUBE_ALGORITHMS
        )

    def test_non_cube_floor_is_routed_universal(self):
        for spec in ("torus:4x4", "mesh:4x4", "dragonfly:2,4"):
            assert supported_algorithms(parse_topology(spec, N)) == (
                "routed-universal",
            )

    def test_unknown_algorithm_still_rejected_off_cube(self):
        topo = parse_topology("torus:4x4", N)
        with pytest.raises(ValueError, match="unknown algorithm 'bogus'"):
            replay_degraded(
                connection_machine(N),
                LAYOUT,
                faults=FaultPlan.from_spec(N, "seed=0", topology=topo),
                algorithm="bogus",
                topology=topo,
            )


class TestPlansAndReplay:
    def test_replay_rejects_topology_mismatch(self):
        topo = parse_topology("torus:4x4", N)
        params = connection_machine(N)
        _, plan = capture_transpose(
            params, synthetic_matrix(LAYOUT), LAYOUT, topology=topo
        )
        assert plan.machine.topology == "torus:4x4"
        cube_net = CubeNetwork(params)
        with pytest.raises(PlanReplayError, match="torus:4x4"):
            replay_plan(plan, cube_net)
        replay_plan(plan, CubeNetwork(params, topology=topo))

    def test_relabeling_is_cube_only(self):
        topo = parse_topology("torus:4x4", N)
        _, plan = capture_transpose(
            connection_machine(N),
            synthetic_matrix(LAYOUT),
            LAYOUT,
            topology=topo,
        )
        with pytest.raises(PlanError, match="cube automorphism"):
            plan.relabeled(3)

    def test_recovery_is_cube_only(self):
        with pytest.raises(ValueError, match="recovery"):
            replay_degraded(
                connection_machine(N),
                LAYOUT,
                faults=FaultPlan.from_spec(
                    N, "links=0-1", topology=parse_topology("torus:4x4", N)
                ),
                recovery=RecoveryPolicy(),
                topology="torus:4x4",
            )

    def test_requested_cube_tier_degrades_to_floor(self):
        topo = parse_topology("dragonfly:2,4", N)
        outcome = replay_degraded(
            connection_machine(N),
            LAYOUT,
            faults=FaultPlan.from_spec(N, "seed=0", topology=topo),
            algorithm="mpt",
            topology=topo,
        )
        assert outcome.algorithm == "routed-universal"
        assert outcome.requested == "mpt"
        assert "mpt" in outcome.skipped

    def test_batch_caches_per_topology(self):
        cache = PlanCache()
        requests = [
            BatchRequest(elements=256, n=N),
            BatchRequest(elements=256, n=N, topology="cube"),
            BatchRequest(elements=256, n=N, topology="dragonfly:2,4"),
        ]
        report = run_batch(requests, cache=cache)
        keys = [o.key for o in report.outcomes]
        assert keys[0] == keys[1] != keys[2]
        # Second pass: everything replays out of the cache.
        again = run_batch(requests, cache=cache)
        assert all(o.cache_hit for o in again.outcomes)

    def test_batch_rejects_node_count_mismatch(self):
        with pytest.raises(ValueError, match="2\\^6"):
            run_batch(
                [BatchRequest(elements=4096, n=6, topology="dragonfly:2,4")],
                cache=PlanCache(),
            )

    def test_plan_key_separates_topologies(self):
        params = connection_machine(N)
        keys = {
            plan_key(params, LAYOUT, LAYOUT, "routed-universal", topology=t)
            for t in ("cube", "torus:4x4", "mesh:4x4", "dragonfly:2,4")
        }
        assert len(keys) == 4


class TestChaosGating:
    def test_non_cube_chaos_soaks_live(self):
        # Regression for the survivor-graph routing fallback: at this
        # link rate several seeds wall off every minimal dragonfly hop
        # and exhaust the misroute budget; pre-fallback the router
        # raised RoutingStalledError on connected survivors.
        report = run_chaos(
            n=N,
            elements=256,
            seeds=6,
            modes=("live",),
            link_rate=0.05,
            topology="dragonfly:2,4",
        )
        assert report.ok
        assert report.topology == "dragonfly:2,4"

    def test_non_cube_rejects_recovery_modes(self):
        with pytest.raises(ValueError, match="modes=\\('live',\\)"):
            run_chaos(
                n=N,
                elements=256,
                seeds=1,
                modes=("replay", "live"),
                topology="torus:4x4",
            )
