"""The Topology protocol: parsing, invariants, typed errors."""

import pytest

from repro.machine import CubeNetwork
from repro.machine.presets import connection_machine
from repro.topology import (
    Hypercube,
    SwappedDragonfly,
    Topology,
    TopologyError,
    TorusMesh,
    parse_topology,
)


class TestParseTopology:
    def test_default_is_hypercube(self):
        for spec in (None, "", "cube"):
            topo = parse_topology(spec, 4)
            assert isinstance(topo, Hypercube)
            assert topo.num_nodes == 16

    def test_cube_with_explicit_dimension(self):
        assert parse_topology("cube:3", 6).num_nodes == 8

    def test_torus_and_mesh(self):
        torus = parse_topology("torus:4x4x4", 6)
        assert isinstance(torus, TorusMesh)
        assert torus.wrap and torus.num_nodes == 64
        mesh = parse_topology("mesh:8x8", 6)
        assert not mesh.wrap and mesh.num_nodes == 64

    def test_dragonfly(self):
        topo = parse_topology("dragonfly:2,4", 4)
        assert isinstance(topo, SwappedDragonfly)
        assert topo.num_nodes == 16

    def test_instance_passes_through(self):
        topo = TorusMesh((4, 4))
        assert parse_topology(topo, 4) is topo

    @pytest.mark.parametrize(
        "spec",
        ["blorp:4", "torus:", "torus:4xq", "dragonfly:2", "dragonfly:a,b",
         "cube:x"],
    )
    def test_malformed_specs_name_the_spec(self, spec):
        with pytest.raises(TopologyError, match="topology"):
            parse_topology(spec, 4)

    def test_topology_error_is_value_error(self):
        assert issubclass(TopologyError, ValueError)


class _Broken(Topology):
    """Configurable bad topology for exercising validate()."""

    claims_regular = False
    claims_symmetric = False

    def __init__(self, adjacency, **claims):
        self._adj = adjacency
        self.num_nodes = len(adjacency)
        self.name = "broken"
        self.spec = f"broken:{id(self)}"  # defeat the validation memo
        for key, value in claims.items():
            setattr(self, key, value)

    def neighbors(self, x):
        return tuple(self._adj[x])


class TestValidate:
    def test_out_of_range_neighbour(self):
        with pytest.raises(TopologyError, match="out-of-range"):
            _Broken([(1,), (5,)]).validate()

    def test_self_loop(self):
        with pytest.raises(TopologyError, match="itself"):
            _Broken([(0, 1), (0,)]).validate()

    def test_duplicate_neighbour(self):
        with pytest.raises(TopologyError, match="duplicate"):
            _Broken([(1, 1), (0,)]).validate()

    def test_claimed_symmetry_enforced(self):
        adj = [(1,), (2,), (0,)]  # a directed 3-ring
        with pytest.raises(TopologyError, match="symmetry"):
            _Broken(adj, claims_symmetric=True).validate()
        _Broken(adj).validate()  # honest about asymmetry: fine

    def test_claimed_regularity_enforced(self):
        adj = [(1, 2), (0,), (0,)]
        with pytest.raises(TopologyError, match="regular"):
            _Broken(adj, claims_regular=True).validate()
        _Broken(adj).validate()

    def test_disconnected(self):
        with pytest.raises(TopologyError, match="not connected"):
            _Broken([(1,), (0,), (3,), (2,)]).validate()

    def test_shipped_instances_validate(self):
        for topo in (
            Hypercube(4),
            TorusMesh((4, 4, 4)),
            TorusMesh((4, 4), wrap=False),
            SwappedDragonfly(2, 4),
        ):
            topo.validate()

    def test_network_construction_runs_validate(self):
        with pytest.raises(TopologyError, match="itself"):
            CubeNetwork(
                connection_machine(1), topology=_Broken([(0, 1), (0,)])
            )

    def test_network_rejects_node_count_mismatch(self):
        with pytest.raises(ValueError, match="16 node"):
            CubeNetwork(connection_machine(6), topology=Hypercube(4))


class TestGraphSurface:
    def test_hypercube_canonical_link_stream(self):
        n = 3
        topo = Hypercube(n)
        historical = [
            (x, x ^ (1 << d)) for x in range(1 << n) for d in range(n)
        ]
        assert list(topo.directed_links()) == historical

    def test_check_node_and_link_errors(self):
        topo = TorusMesh((4, 4))
        with pytest.raises(TopologyError, match="valid ids"):
            topo.check_node(16)
        with pytest.raises(TopologyError, match="not neighbours"):
            topo.check_link(0, 2)
        topo.check_link(0, 1)

    def test_minimal_hops_decrease_distance(self):
        for topo in (TorusMesh((4, 4)), SwappedDragonfly(2, 4)):
            for cur in range(topo.num_nodes):
                for dst in (0, topo.num_nodes - 1):
                    here = topo.distance(cur, dst)
                    hops = topo.minimal_hops(cur, dst)
                    assert (hops == []) == (cur == dst)
                    for nxt in hops:
                        assert topo.distance(nxt, dst) == here - 1

    def test_minimal_hops_order_is_deterministic(self):
        topo = SwappedDragonfly(2, 8)
        assert topo.minimal_hops(0, 37) == topo.minimal_hops(0, 37)

    def test_descending_reverses_candidates(self):
        topo = Hypercube(4)
        up = topo.minimal_hops(0, 0b1111)
        down = topo.minimal_hops(0, 0b1111, ascending=False)
        assert down == list(reversed(up))
