"""The Hypercube adapter must cost nothing: bit-for-bit equivalence.

The topology abstraction's back-compat claim is that threading an
explicit ``Hypercube`` through the engine reproduces the historical
implicit-cube behaviour exactly — same ``TransferStats`` (including
per-link loads), same plan fingerprints, same cache keys, same seeded
fault streams, same serialized documents.  The pinned baseline gate
checks the same property over the full 16-scenario suite
(``python -m repro baseline check``); these tests pin the mechanism at
unit scope.
"""

import numpy as np
import pytest

from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, FaultPlan
from repro.machine.presets import connection_machine, intel_ipsc
from repro.plans import capture_transpose, plan_key
from repro.plans.ir import MachineSpec
from repro.topology import Hypercube
from repro.transpose import transpose

N = 4
LAYOUT = pt.two_dim_cyclic(4, 4, 2, 2)


def _run(params, *, topology=None, faults=None, algorithm="auto"):
    A = np.arange(1 << 8, dtype=np.float64).reshape(16, 16)
    net = CubeNetwork(params, faults=faults, topology=topology)
    result = transpose(
        net, DistributedMatrix.from_global(A, LAYOUT), LAYOUT,
        algorithm=algorithm,
    )
    assert result.verify_against(A)
    return result


class TestExecutionEquivalence:
    @pytest.mark.parametrize("algorithm", ["auto", "spt", "router"])
    def test_stats_identical_through_explicit_adapter(self, algorithm):
        implicit = _run(connection_machine(N), algorithm=algorithm)
        explicit = _run(
            connection_machine(N),
            topology=Hypercube(N),
            algorithm=algorithm,
        )
        assert implicit.algorithm == explicit.algorithm
        assert implicit.stats == explicit.stats  # full dataclass equality

    def test_faulted_run_identical_through_explicit_adapter(self):
        faults = FaultPlan.from_spec(N, "links=0-1+6-4,seed=3")
        implicit = _run(intel_ipsc(N), faults=faults, algorithm="mpt")
        explicit = _run(
            intel_ipsc(N),
            topology=Hypercube(N),
            faults=faults,
            algorithm="mpt",
        )
        assert implicit.fallbacks == explicit.fallbacks
        assert implicit.stats == explicit.stats


class TestSeededFaultStream:
    def test_random_plan_identical_on_explicit_cube(self):
        for seed in range(8):
            implicit = FaultPlan.random(
                N, seed=seed, link_rate=0.05, transient_rate=0.1
            )
            explicit = FaultPlan.random(
                N,
                seed=seed,
                link_rate=0.05,
                transient_rate=0.1,
                topology=Hypercube(N),
            )
            assert implicit.link_faults == explicit.link_faults
            assert implicit.node_faults == explicit.node_faults


class TestPlanAndKeyStability:
    def test_machine_spec_omits_cube_topology(self):
        spec = MachineSpec.from_params(connection_machine(N))
        assert spec.topology == "cube"
        assert "topology" not in spec.as_dict()
        assert MachineSpec.from_dict(spec.as_dict()).topology == "cube"

    def test_machine_spec_keeps_non_cube_topology(self):
        spec = MachineSpec.from_params(
            connection_machine(N), topology="dragonfly:2,4"
        )
        doc = spec.as_dict()
        assert doc["topology"] == "dragonfly:2,4"
        assert MachineSpec.from_dict(doc).topology == "dragonfly:2,4"

    def test_plan_fingerprint_stable_through_adapter(self):
        params = connection_machine(N)
        A = DistributedMatrix.from_global(
            np.arange(1 << 8, dtype=np.float64).reshape(16, 16), LAYOUT
        )
        _, implicit = capture_transpose(params, A, LAYOUT, algorithm="spt")
        _, explicit = capture_transpose(
            params, A, LAYOUT, algorithm="spt", topology=Hypercube(N)
        )
        assert implicit.fingerprint == explicit.fingerprint
        assert implicit.dumps() == explicit.dumps()

    def test_plan_key_default_matches_explicit_cube(self):
        params = connection_machine(N)
        default = plan_key(params, LAYOUT, LAYOUT, "spt")
        cube = plan_key(params, LAYOUT, LAYOUT, "spt", topology="cube")
        other = plan_key(
            params, LAYOUT, LAYOUT, "spt", topology="torus:4x4"
        )
        assert default == cube
        assert other != default
