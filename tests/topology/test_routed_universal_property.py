"""Property: routed-universal transposition is exact on every topology.

The routed-universal floor derives (source, destination, element) moves
from the layout algebra alone and ships them through minimal-path
routing, so on *any* strongly connected interconnect the gathered
result must be bit-identical to the mathematical transpose — with and
without seeded permanent link faults (the fault-tolerant router detours
or falls back to survivor-graph paths; a disconnected survivor raises
instead of mis-delivering).
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.layout import DistributedMatrix
from repro.machine import CubeNetwork, FaultPlan
from repro.machine.faults import DisconnectedCubeError
from repro.machine.presets import connection_machine
from repro.plans.batch import resolve_problem
from repro.topology import parse_topology

SPECS = ("torus:4x4", "dragonfly:2,4", "mesh:4x4", "torus:2x2x2x2")
N = 4  # every spec above has 16 nodes


def _transpose_on(spec: str, elements_bits: int, faults=None):
    from repro.transpose import transpose

    before, after = resolve_problem(N, 1 << elements_bits, "2d")
    A = np.arange(1 << elements_bits, dtype=np.float64).reshape(
        1 << before.p, 1 << before.q
    )
    net = CubeNetwork(
        connection_machine(N),
        faults=faults,
        topology=parse_topology(spec, N),
    )
    return transpose(
        net, DistributedMatrix.from_global(A, before), after
    ), A


@settings(max_examples=40, deadline=None)
@given(
    spec=st.sampled_from(SPECS),
    elements_bits=st.integers(8, 10),
)
def test_clean_routed_universal_is_exact(spec, elements_bits):
    result, A = _transpose_on(spec, elements_bits)
    assert result.algorithm == "routed-universal"
    assert result.verify_against(A)
    assert np.array_equal(result.matrix.to_global(), A.T)


@settings(max_examples=40, deadline=None)
@given(
    spec=st.sampled_from(SPECS),
    seed=st.integers(0, 200),
    link_rate=st.sampled_from([0.02, 0.05, 0.08]),
)
def test_faulted_routed_universal_is_exact(spec, seed, link_rate):
    topo = parse_topology(spec, N)
    faults = FaultPlan.random(
        N, seed=seed, link_rate=link_rate, topology=topo
    )
    assume(not faults.is_empty)
    try:
        result, A = _transpose_on(spec, 8, faults=faults)
    except DisconnectedCubeError:
        assume(False)  # faults split the graph; nothing to verify
    assert result.algorithm == "routed-universal"
    assert result.verify_against(A)
    assert np.array_equal(result.matrix.to_global(), A.T)


@pytest.mark.parametrize("spec", SPECS)
def test_named_link_fault_detours_and_stays_exact(spec):
    topo = parse_topology(spec, N)
    src, dst = next(iter(topo.directed_links()))
    faults = FaultPlan.from_spec(N, f"links={src}-{dst}", topology=topo)
    result, A = _transpose_on(spec, 8, faults=faults)
    assert result.verify_against(A)
