#!/bin/sh
# Reproduce everything: tests, every figure, consolidated reports.
set -e
cd "$(dirname "$0")/.."
echo "== unit/integration/property tests =="
python -m pytest tests/
echo "== figure and ablation benches =="
python -m pytest benchmarks/ --benchmark-only -q
echo "== consolidated reports =="
python tools/make_results_report.py
python tools/gen_api_docs.py
echo "done: see RESULTS.md, EXPERIMENTS.md, benchmarks/results/"
