#!/usr/bin/env python
"""Assemble benchmarks/results/*.txt into a single RESULTS.md.

Run the bench suite first, then this script:

    pytest benchmarks/ --benchmark-only -q
    python tools/make_results_report.py

The report groups the figure reproductions, the analytic validations and
the ablations, in paper order, into one reviewable document.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"
OUT = ROOT / "RESULTS.md"

ORDER = [
    ("Paper figures", [
        "fig09_copy_time",
        "fig10_one_dim",
        "fig11_buffer_threshold",
        "fig12_buffering_effect",
        "fig13_two_dim_breakdown",
        "fig14_spt_vs_router",
        "fig15_mixed_encoding",
        "fig16_cm_single",
        "fig17_cm_multi",
        "fig18_cm_scaling",
        "fig19_1d_vs_2d",
    ]),
    ("Analytic validations", [
        "table3_some_to_all",
        "theorem2_mpt",
        "lower_bounds",
        "crossover_analytic",
        "crossover_simulated",
        "router_calls",
    ]),
    ("Ablations", [
        "ablation_paths",
        "ablation_trees",
        "ablation_remap",
        "ablation_exchange_pipelining",
    ]),
]


def main() -> int:
    if not RESULTS.is_dir():
        print("no benchmarks/results/ — run the bench suite first", file=sys.stderr)
        return 1
    sections = ["# Regenerated results", ""]
    sections.append(
        "Produced by the bench suite against the simulated machines; see "
        "EXPERIMENTS.md for the paper-vs-measured commentary.\n"
    )
    listed: set[str] = set()
    missing: list[str] = []
    for title, names in ORDER:
        sections.append(f"# {title}\n")
        for name in names:
            path = RESULTS / f"{name}.txt"
            listed.add(name)
            if not path.exists():
                missing.append(name)
                continue
            sections.append("```")
            sections.append(path.read_text().rstrip())
            sections.append("```\n")
    extras = sorted(
        p.stem for p in RESULTS.glob("*.txt") if p.stem not in listed
    )
    for name in extras:
        sections.append("```")
        sections.append((RESULTS / f"{name}.txt").read_text().rstrip())
        sections.append("```\n")
    OUT.write_text("\n".join(sections) + "\n")
    print(f"wrote {OUT}")
    if missing:
        print(f"missing (bench not run?): {', '.join(missing)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
