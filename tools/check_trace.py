#!/usr/bin/env python
"""Assert a merged trace file is Perfetto-loadable and well-formed.

CI runs this over the trace ``repro loadgen --trace`` exports:

    python tools/check_trace.py artifacts/loadgen.trace.json

Checks, via :func:`repro.obs.trace.validate_trace`, that the document
parses, that every track's spans form a tree (unique ids, no orphans),
that parent intervals contain their children on both the model-time and
wall-clock axes, and that every trace id has exactly one root confined
to a single worker track.  Optionally asserts a minimum request count
(``--min-traces``) so a silently-empty trace cannot pass.  Exits
non-zero listing every problem found.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.trace import (  # noqa: E402
    spans_from_chrome_document,
    validate_trace,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="merged Chrome/Perfetto trace JSON")
    parser.add_argument(
        "--min-traces",
        type=int,
        default=1,
        help="fail unless at least this many distinct trace ids appear",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trace) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"cannot load trace: {exc}", file=sys.stderr)
        return 2
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print("trace document has no traceEvents", file=sys.stderr)
        return 1

    tracks = spans_from_chrome_document(doc)
    problems = validate_trace(tracks)
    span_count = sum(len(spans) for _, spans in tracks)
    trace_ids = {
        span.trace_id
        for _, spans in tracks
        for span in spans
        if span.trace_id is not None
    }
    dual_axis = sum(
        1
        for _, spans in tracks
        for span in spans
        if span.wall_start is not None
    )
    if len(trace_ids) < args.min_traces:
        problems.append(
            f"expected at least {args.min_traces} trace id(s), "
            f"found {len(trace_ids)}"
        )
    if span_count and not dual_axis:
        problems.append("no span carries a wall-clock interval")

    print(
        f"{args.trace}: {len(tracks)} track(s), {span_count} span(s), "
        f"{len(trace_ids)} trace id(s), {dual_axis} dual-axis span(s)"
    )
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        return 1
    print("trace is well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
