"""Theorem 3 and the §3 lower bounds: no simulated algorithm dips below,
and the paper's "within a factor of 2" claims hold where stated.
"""

import numpy as np

from benchmarks.reporting import emit_table
from repro.analysis.bounds import all_to_all_lower_bound, transpose_lower_bound
from repro.comm.all_to_all import (
    all_to_all_exchange,
    all_to_all_personalized_data,
    all_to_all_sbnt,
)
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.two_dim import (
    two_dim_transpose_dpt,
    two_dim_transpose_mpt,
    two_dim_transpose_spt,
)

N_CUBE = 4
BITS = 12
TAU, T_C = 2.0, 1.0


def machine(port):
    return custom_machine(N_CUBE, tau=TAU, t_c=T_C, port_model=port)


def transpose_cases():
    half = N_CUBE // 2
    p = BITS // 2
    layout = pt.two_dim_cyclic(p, BITS - p, half, half)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << (BITS - p))), layout
    )
    M = 1 << BITS
    out = []
    for name, fn, port in [
        ("SPT(step)", lambda n, d: two_dim_transpose_spt(n, d, layout), PortModel.ONE_PORT),
        (
            "SPT(pipe)",
            lambda n, d: two_dim_transpose_spt(n, d, layout, packet_size=32),
            PortModel.N_PORT,
        ),
        (
            "DPT",
            lambda n, d: two_dim_transpose_dpt(n, d, layout, packet_size=32),
            PortModel.N_PORT,
        ),
        (
            "MPT",
            lambda n, d: two_dim_transpose_mpt(n, d, layout, rounds=4),
            PortModel.N_PORT,
        ),
    ]:
        net = CubeNetwork(machine(port))
        fn(net, dm)
        bound = transpose_lower_bound(net.params, M)
        out.append([name, net.time, bound, net.time / bound])
    return out


def a2a_cases():
    K = 16
    M = (1 << N_CUBE) ** 2 * K
    out = []
    for name, runner, port in [
        ("exchange", all_to_all_exchange, PortModel.ONE_PORT),
        ("SBnT", all_to_all_sbnt, PortModel.N_PORT),
    ]:
        net = CubeNetwork(machine(port))
        all_to_all_personalized_data(net, K)
        runner(net)
        bound = all_to_all_lower_bound(net.params, M)
        out.append([f"a2a-{name}", net.time, bound, net.time / bound])
    return out


def test_lower_bounds(benchmark):
    rows = benchmark.pedantic(
        lambda: transpose_cases() + a2a_cases(), rounds=1, iterations=1
    )
    emit_table(
        "lower_bounds",
        "Lower bounds: simulated algorithms vs Theorem 3 / §3 bounds",
        ["algorithm", "simulated", "bound", "ratio"],
        rows,
        notes="Every ratio >= 1; the n-port algorithms sit within a small "
        "factor of the bound (SBnT all-to-all within 2, Thm 2's MPT "
        "within ~2 of Thm 3).",
    )
    for name, sim, bound, ratio in rows:
        assert ratio >= 0.999, (name, ratio)
    by = {r[0]: r[3] for r in rows}
    assert by["a2a-SBnT"] <= 2.0
    assert by["MPT"] <= 2.5
