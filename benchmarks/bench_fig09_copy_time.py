"""Figure 9: measured times for copy of various data types on the iPSC.

The paper plots local copy time against the number of items for byte,
integer and floating-point data; all curves are linear with slope set by
the item width.  We reproduce the series from the calibrated cost model
(t_copy per 4-byte element, scaled by item width) — the constant that
drives every buffered-versus-unbuffered decision downstream.
"""

import pytest

from benchmarks.reporting import emit_table, ms
from repro.machine.presets import ELEMENT_BYTES, intel_ipsc

SIZES = [2**k for k in range(4, 15)]
DTYPES = {"byte": 1, "int16": 2, "float32": 4, "float64": 8}


def copy_series():
    params = intel_ipsc(5)
    per_byte = params.t_copy / ELEMENT_BYTES
    rows = []
    for count in SIZES:
        row = [count]
        for width in DTYPES.values():
            row.append(ms(count * width * per_byte))
        rows.append(row)
    return rows


def test_fig09_copy_time(benchmark):
    rows = benchmark(copy_series)
    emit_table(
        "fig09_copy_time",
        "Figure 9: iPSC local copy time (ms) vs item count",
        ["items", *DTYPES],
        rows,
        notes="Paper: ~37 ms to copy 1024 single-precision floats; here "
        f"{rows[SIZES.index(1024)][3]:.1f} ms (calibrated to that very "
        "measurement; the two-sided buffering break-even lands at ~64).",
    )
    # Linearity: doubling the count doubles the time.
    for i in range(len(rows) - 1):
        assert rows[i + 1][3] == pytest.approx(2 * rows[i][3])
    # Wider items cost proportionally more.
    for row in rows:
        assert row[1] < row[2] < row[3] < row[4]
    # The calibration target: copying 1024 floats costs ~37 ms.
    t1024 = rows[SIZES.index(1024)][3]
    assert t1024 == pytest.approx(37.0)
