"""Ablation: spanning-tree choice for personalized communication (§3).

One-to-all scatter routed by (a) a single SBT, (b) n rotated SBTs with
the data split n ways, (c) the SBnT — under one-port and n-port models.
The paper's claims: on one port the SBT schedule is already within 2x of
the bound; on n ports the balanced/rotated trees cut the transfer term
by ~n/2 because the SBT's heaviest port carries half the data.
"""

from benchmarks.reporting import emit_table
from repro.comm.one_to_all import (
    personalized_data,
    scatter_rotated_sbts,
    scatter_sbnt,
    scatter_tree,
)
from repro.cube.trees import spanning_balanced_tree, spanning_binomial_tree
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel

N_CUBE = 5
K = 40  # elements per destination (divisible by n for the rotated split)
TAU, T_C = 2.0, 1.0


def run_case(name: str, port: PortModel) -> float:
    net = CubeNetwork(
        custom_machine(N_CUBE, tau=TAU, t_c=T_C, port_model=port)
    )
    if name == "rotated":
        personalized_data(net, 0, K, parts=N_CUBE)
        scatter_rotated_sbts(net, 0)
    elif name == "sbt":
        personalized_data(net, 0, K)
        scatter_tree(net, spanning_binomial_tree(N_CUBE), schedule="subtree")
    elif name == "sbt-rbfs":
        personalized_data(net, 0, K)
        scatter_tree(
            net, spanning_binomial_tree(N_CUBE), schedule="reverse-bfs"
        )
    elif name == "sbnt":
        personalized_data(net, 0, K)
        scatter_sbnt(net, spanning_balanced_tree(N_CUBE))
    else:
        raise ValueError(name)
    return net.time


def sweep():
    rows = []
    for name in ("sbt", "sbt-rbfs", "sbnt", "rotated"):
        rows.append(
            [
                name,
                run_case(name, PortModel.ONE_PORT),
                run_case(name, PortModel.N_PORT),
            ]
        )
    return rows


def test_ablation_trees(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_trees",
        f"Ablation: one-to-all scatter trees on a {N_CUBE}-cube, "
        f"{K} elements/destination (abstract units)",
        ["routing", "one-port", "n-port"],
        rows,
        notes="§3.1: with one port the trees are equivalent (the port "
        "serializes); with n ports the balanced and rotated trees win "
        "~(n/2)x on the transfer term.",
    )
    by = {r[0]: r for r in rows}
    # n-port: balanced/rotated trees beat the plain SBT decisively.
    assert by["sbnt"][2] < by["sbt"][2] / 2
    assert by["rotated"][2] < by["sbt"][2] / 2
    # one-port: no tree can beat the serialized transfer bound by much.
    one_port = [r[1] for r in rows]
    assert max(one_port) < 2.5 * min(one_port)
    # n-port never hurts.
    for r in rows:
        assert r[2] <= r[1] * 1.0001
