"""Fusion payoff: one compiled pipeline vs back-to-back solo replays.

The workloads subsystem's headline claim is that a chained pipeline
compiles to a single plan that is *strictly cheaper* than replaying
each stage's solo plan back to back — adjacent bit-permutation stages
compose their address maps into one exchange sequence. Two sweeps:

(1) the ``fft`` preset (shuffle + bit-reversal + transpose) across cube
    sizes, fused vs unfused, in modelled time / phases / start-ups;
(2) representative chained specs on one machine, including the
    degenerate ``transpose+transpose`` (which must fuse to zero
    communication) and a non-power-of-two rectangle.
"""

from benchmarks.reporting import emit_table, ms
from repro.machine.engine import CubeNetwork
from repro.machine.presets import connection_machine
from repro.plans.ir import PhaseOp
from repro.plans.replay import replay_plan
from repro.workloads import build_pipeline


def _phases(plan):
    return sum(1 for op in plan.ops if isinstance(op, PhaseOp))


def _replay_cost(plan, params):
    net = CubeNetwork(params)
    replay_plan(plan, net)
    return net.stats


def _measure(spec, n):
    params = connection_machine(n)
    pipeline = build_pipeline(spec, n)
    fused, _ = pipeline.compile(params)
    naive, _ = pipeline.compile(params, fuse=False)
    f = _replay_cost(fused, params)
    u = _replay_cost(naive, params)
    return pipeline, fused, naive, f, u


def sweep_fft_scaling():
    rows = []
    for n in (4, 6, 8):
        side = 1 << (n // 2 + 2)
        _, fused, naive, f, u = _measure(f"fft@{side}x{side}", n)
        rows.append(
            [
                n,
                f"{side}x{side}",
                _phases(fused),
                _phases(naive),
                f.startups,
                u.startups,
                ms(f.time),
                ms(u.time),
                round(u.time / f.time, 2),
            ]
        )
    return rows


def sweep_chained_specs():
    specs = [
        ("fft@64x64", 6),
        ("bitrev+transpose@16x16", 4),
        ("bitrev+transpose@13x11", 4),
        ("transpose+transpose@16x16", 4),
        ("dimperm:shuffle+dimperm:unshuffle@64x64", 6),
    ]
    rows = []
    for spec, n in specs:
        _, fused, naive, f, u = _measure(spec, n)
        rows.append(
            [spec, n, _phases(fused), _phases(naive), ms(f.time), ms(u.time)]
        )
    return rows


def test_fft_pipeline_scaling(benchmark):
    rows = benchmark.pedantic(sweep_fft_scaling, rounds=1, iterations=1)
    emit_table(
        "fft_pipeline",
        "FFT data-movement pipeline: fused vs unfused compile (CM, ms)",
        ["n", "shape", "fused ph", "naive ph", "fused su", "naive su",
         "fused ms", "naive ms", "speedup"],
        rows,
        notes="fft = dimperm:shuffle + bitrev + transpose; fused composes "
        "the three address maps into one exchange sequence.",
    )
    for row in rows:
        assert row[2] < row[3]  # fewer phases
        assert row[4] < row[5]  # fewer start-ups
        assert row[6] < row[7]  # cheaper modelled time


def test_chained_specs(benchmark):
    rows = benchmark.pedantic(sweep_chained_specs, rounds=1, iterations=1)
    emit_table(
        "fft_pipeline_chains",
        "Chained pipelines: fused vs unfused (CM, ms)",
        ["spec", "n", "fused ph", "naive ph", "fused ms", "naive ms"],
        rows,
        notes="Self-inverse chains (transpose+transpose, "
        "shuffle+unshuffle) fuse to zero communication phases.",
    )
    by_spec = {r[0]: r for r in rows}
    assert by_spec["transpose+transpose@16x16"][2] == 0
    assert by_spec["dimperm:shuffle+dimperm:unshuffle@64x64"][2] == 0
    for row in rows:
        assert row[2] <= row[3]
        assert row[4] <= row[5]
