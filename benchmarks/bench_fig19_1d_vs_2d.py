"""Figure 19 / §9: one- versus two-dimensional partitioning on the iPSC.

One-port comparison of the 1D exchange transpose (optimum buffering)
against the 2D step-by-step SPT (with its copy charges).  The paper's
§9 conclusions: with copy time ignored the 1D partitioning always wins
under one-port; once the iPSC's copy costs are included, the 2D
partitioning wins for a sufficiently large cube (its copy term is a
constant 2L t_copy, while the buffered 1D scheme copies on up to n
steps).
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import intel_ipsc
from repro.transpose.exchange import BufferPolicy
from repro.transpose.one_dim import one_dim_transpose_exchange
from repro.transpose.two_dim import two_dim_transpose_spt

CUBES = [2, 4, 6]
MATRIX_BITS = [12, 14, 18]


def run_pair(total_bits: int, n: int, *, with_copy: bool) -> tuple[float, float]:
    p = total_bits // 2
    q = total_bits - p
    params = intel_ipsc(n)
    if not with_copy:
        from dataclasses import replace

        params = replace(params, t_copy=0.0)

    before_1d = pt.row_consecutive(p, q, n)
    after_1d = pt.row_consecutive(q, p, n)
    dm1 = DistributedMatrix.from_global(np.zeros((1 << p, 1 << q)), before_1d)
    net1 = CubeNetwork(params)
    # With copy costs in force the optimum-threshold policy applies;
    # with copies free, full buffering dominates (one message per step).
    mode = "threshold" if with_copy else "buffered"
    one_dim_transpose_exchange(
        net1, dm1, after_1d, policy=BufferPolicy(mode=mode)
    )

    half = n // 2
    lay2 = pt.two_dim_cyclic(p, q, half, half)
    dm2 = DistributedMatrix.from_global(np.zeros((1 << p, 1 << q)), lay2)
    net2 = CubeNetwork(params)
    two_dim_transpose_spt(net2, dm2, lay2, charge_copy=with_copy)
    return net1.time, net2.time


def sweep():
    rows = []
    for bits in MATRIX_BITS:
        for n in CUBES:
            t1, t2 = run_pair(bits, n, with_copy=True)
            t1n, t2n = run_pair(bits, n, with_copy=False)
            rows.append(
                [1 << bits, n, ms(t1), ms(t2), ms(t1n), ms(t2n)]
            )
    return rows


def test_fig19_one_vs_two_dim(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig19_1d_vs_2d",
        "Figure 19: 1D (buffered exchange) vs 2D (SPT) transpose on the "
        "iPSC (ms); and with copy costs removed",
        ["elements", "n", "1d", "2d", "1d(no copy)", "2d(no copy)"],
        rows,
        notes="§9: copy ignored + one-port => 1D always wins; with copy "
        "the 2D partitioning wins for a sufficiently large cube.",
    )
    # Copy ignored: 1D never loses (§9's first conclusion).
    for r in rows:
        assert r[4] <= r[5] * 1.001, r
    by = {(r[0], r[1]): r for r in rows}
    # With copy: 2D wins when the cube is large relative to the matrix
    # ("the two-dimensional partitioning yields a lower complexity for a
    # sufficiently large cube") ...
    medium_big_cube = by[(1 << MATRIX_BITS[1], 6)]
    assert medium_big_cube[3] < medium_big_cube[2]
    # ... and 1D wins when the matrix dwarfs the cube.
    large_small_cube = by[(1 << MATRIX_BITS[-1], 2)]
    assert large_small_cube[2] < large_small_cube[3]
