"""Figure 12: the effect of optimum buffering on 1D transpose performance.

The paper plots the optimally buffered scheme against the unbuffered one
over a range of matrix sizes and cube sizes: the improvement grows with
the cube size, and for sufficiently small cubes (or large matrices) the
two schemes coincide because every run clears the 64-element threshold.
"""

import numpy as np
import pytest

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import intel_ipsc
from repro.transpose.exchange import BufferPolicy
from repro.transpose.one_dim import one_dim_transpose_exchange

MATRIX_BITS = [10, 12, 14, 16, 18, 20]
N_CUBE = 4


def run_one(total_bits: int, mode: str) -> float:
    p = total_bits // 2
    q = total_bits - p
    before = pt.row_consecutive(p, q, N_CUBE)
    after = pt.row_consecutive(q, p, N_CUBE)
    dm = DistributedMatrix.from_global(np.zeros((1 << p, 1 << q)), before)
    net = CubeNetwork(intel_ipsc(N_CUBE))
    policy = BufferPolicy(mode=mode, min_unbuffered_run=64)
    one_dim_transpose_exchange(net, dm, after, policy=policy)
    return net.time


def sweep():
    rows = []
    for bits in MATRIX_BITS:
        unbuf = ms(run_one(bits, "unbuffered"))
        buf = ms(run_one(bits, "threshold"))
        rows.append([1 << bits, unbuf, buf, unbuf / buf])
    return rows


def test_fig12_buffering_effect(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig12_buffering_effect",
        f"Figure 12: optimum buffering vs unbuffered, {N_CUBE}-cube (ms)",
        ["elements", "unbuffered", "buffered(opt)", "speedup"],
        rows,
        notes="Paper shape: large speedups for small matrices on a big "
        "cube; the schemes coincide once every exchanged run is >= 64 "
        "elements.",
    )
    speedups = [r[3] for r in rows]
    # Speedup shrinks as the matrix grows ...
    assert speedups[0] > speedups[-1]
    assert speedups[0] > 2.0
    # ... and the curves coincide for sufficiently large data.
    assert speedups[-1] == pytest.approx(1.0, abs=0.05)
