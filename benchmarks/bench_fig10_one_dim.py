"""Figure 10: one-dimensional transpose on the iPSC, unbuffered vs buffered.

The paper measures the exchange-algorithm transpose (equivalently the
consecutive-to-cyclic conversion) for cube sizes 1..6 over a range of
matrix sizes, with and without the buffering scheme.  The headline shape:
the *unbuffered* start-up count grows linearly in N (exponentially in n)
while the *buffered* scheme grows only linearly in n, so the curves
diverge sharply for large cubes and coincide when the data is large
relative to the cube.
"""

import numpy as np
import pytest

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import intel_ipsc
from repro.transpose.exchange import BufferPolicy
from repro.transpose.one_dim import one_dim_transpose_exchange

CUBE_SIZES = [1, 2, 3, 4, 5, 6]
MATRIX_BITS = 14  # 128 x 128 elements


def run_one(n: int, mode: str) -> float:
    p = q = MATRIX_BITS // 2
    before = pt.row_consecutive(p, q, n)
    after = pt.row_consecutive(q, p, n)
    A = np.zeros((1 << p, 1 << q))
    dm = DistributedMatrix.from_global(A, before)
    net = CubeNetwork(intel_ipsc(n))
    policy = BufferPolicy(mode=mode, min_unbuffered_run=64)
    one_dim_transpose_exchange(net, dm, after, policy=policy)
    return net.time


def sweep():
    rows = []
    for n in CUBE_SIZES:
        rows.append(
            [
                n,
                1 << n,
                ms(run_one(n, "unbuffered")),
                ms(run_one(n, "threshold")),
            ]
        )
    return rows


def test_fig10_one_dim_transpose(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig10_one_dim",
        f"Figure 10: 1D transpose of a 2^{MATRIX_BITS}-element matrix on the "
        "iPSC (ms)",
        ["n", "N", "unbuffered", "buffered(opt)"],
        rows,
        notes="Paper shape: unbuffered grows ~linearly in N; buffered "
        "~linearly in n; curves coincide for small cubes.",
    )
    unbuf = [r[2] for r in rows]
    buf = [r[3] for r in rows]
    # Coincide when every run is still >= the 64-element threshold.
    assert unbuf[0] == pytest.approx(buf[0])
    # Diverge on the largest cube.
    assert unbuf[-1] > 1.5 * buf[-1]
    # Unbuffered start-up growth is superlinear in n (linear in N):
    assert unbuf[-1] / unbuf[-3] > (buf[-1] / buf[-3])
