"""Cross-topology transpose: one problem, three interconnects.

The topology subsystem's headline claim is that the same schedule IR,
cost model and invariant checks serve a Boolean cube, a k-ary torus and
a swapped dragonfly.  This bench runs identical problem sizes with
identical cost constants (``custom_machine`` so ``tau``/``t_c`` match
exactly) on three 64-node interconnects — ``cube`` (n=6),
``torus:4x4x4`` and ``dragonfly:2,8`` — and reports the modelled
cycles, element-hops and peak-link load side by side, plus one
per-topology link-element heatmap.

The cube runs its full planner ladder (``auto`` picks MPT here); the
non-cube topologies run the routed-universal floor.  Every run verifies
against the mathematical transpose, so the numbers compare *correct*
transposes only.

Also runnable standalone for CI artifacts::

    python -m benchmarks.bench_cross_topology --elements 4096 --out DIR

which writes ``cross_topology.txt``/``.csv`` plus one
``heatmap_<topology>.txt`` per interconnect into ``DIR``.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.analysis.report import format_link_heatmap, format_topology_heatmap
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.params import PortModel
from repro.machine.presets import custom_machine
from repro.topology import parse_topology
from repro.transpose import transpose

N = 6  # 64 nodes on every topology
TOPOLOGIES = ("cube", "torus:4x4x4", "dragonfly:2,8")
ELEMENT_SWEEP = (1 << 10, 1 << 12, 1 << 14)


def _machine():
    """One shared cost model: unit start-up, unit transfer, n-port."""
    return custom_machine(N, tau=1.0, t_c=1.0, port_model=PortModel.N_PORT)


def _problem(elements: int):
    bits = elements.bit_length() - 1
    p = bits // 2
    layout = pt.two_dim_cyclic(p, bits - p, N // 2, N // 2)
    A = np.arange(elements, dtype=np.float64).reshape(
        1 << p, 1 << (bits - p)
    )
    return layout, A


def _run(spec: str, elements: int):
    topo = parse_topology(spec, N)
    layout, A = _problem(elements)
    net = CubeNetwork(_machine(), topology=topo)
    result = transpose(
        net, DistributedMatrix.from_global(A, layout), layout
    )
    assert result.verify_against(A)
    return topo, result


def sweep(elements_list=ELEMENT_SWEEP):
    """The cycles table: one row per (topology, size)."""
    rows = []
    for spec in TOPOLOGIES:
        for elements in elements_list:
            topo, result = _run(spec, elements)
            stats = result.stats
            peak = max(stats.link_elements.values())
            rows.append(
                [
                    spec,
                    elements,
                    result.algorithm,
                    topo.diameter,
                    stats.phases,
                    stats.messages,
                    stats.element_hops,
                    peak,
                    ms(stats.time),
                ]
            )
    return rows


def heatmaps(elements: int) -> dict[str, str]:
    """One rendered link-element heatmap per topology at one size."""
    out = {}
    for spec in TOPOLOGIES:
        topo, result = _run(spec, elements)
        if topo.name == "cube":
            out[spec] = format_link_heatmap(result.stats, N)
        else:
            out[spec] = format_topology_heatmap(result.stats, topo)
    return out


def _emit(rows):
    return emit_table(
        "cross_topology",
        "Transpose across interconnects (64 nodes, tau=1, t_c=1, "
        "n-port, modelled ms)",
        [
            "topology",
            "elements",
            "algorithm",
            "diam",
            "phases",
            "messages",
            "el-hops",
            "peak link",
            "time",
        ],
        rows,
        notes="Same problem, same cost constants; the cube runs its "
        "schedule ladder (no routing), the torus and dragonfly run the "
        "routed-universal floor, so extra element-hops measure what "
        "store-and-forward routing costs on each diameter.",
    )


def test_cross_topology(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _emit(rows)
    by = {(r[0], r[1]): r for r in rows}
    for elements in ELEMENT_SWEEP:
        cube = by[("cube", elements)]
        assert cube[2] != "routed-universal"  # the ladder survives
        for spec in TOPOLOGIES[1:]:
            assert by[(spec, elements)][2] == "routed-universal"
        # Equal diameter but store-and-forward congestion: the torus
        # cannot beat the cube's edge-disjoint direct schedules.  (The
        # diameter-3 dragonfly legitimately can, on element-hops.)
        assert by[("torus:4x4x4", elements)][8] > cube[8]
    for spec in TOPOLOGIES:
        times = [by[(spec, e)][8] for e in ELEMENT_SWEEP]
        assert times == sorted(times)  # cost grows with problem size


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cross-topology transpose bench (CI artifact mode)"
    )
    parser.add_argument(
        "--elements",
        type=int,
        nargs="+",
        default=list(ELEMENT_SWEEP),
        help="matrix sizes to sweep (powers of two)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write the table and per-topology heatmaps here",
    )
    args = parser.parse_args(argv)
    text = _emit(sweep(args.elements))
    maps = heatmaps(max(args.elements))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        with open(os.path.join(args.out, "cross_topology.txt"), "w") as fh:
            fh.write(text + "\n")
        for spec, rendered in maps.items():
            safe = spec.replace(":", "_").replace(",", "x")
            path = os.path.join(args.out, f"heatmap_{safe}.txt")
            with open(path, "w") as fh:
                fh.write(rendered + "\n")
            print(f"wrote {path}", file=sys.stderr)
    else:
        for spec, rendered in maps.items():
            print(f"\n-- {spec} --\n{rendered}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
