"""Theorem 2: MPT transpose time — simulated versus the piecewise T_min.

Sweeps cube dimension and matrix size under n-port communication,
running MPT with the paper's round parameter chosen from the optimal
packet size, and checks the measured times track the analytic T_min and
respect the Theorem 3 lower bound.
"""

import math

import numpy as np

from benchmarks.reporting import emit_table
from repro.analysis.bounds import transpose_lower_bound
from repro.analysis.models import mpt_min_time
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel

CASES = [
    # (n, total matrix bits)
    (2, 8),
    (2, 12),
    (4, 8),
    (4, 12),
    (4, 16),
    (6, 12),
    (6, 16),
]
TAU, T_C = 4.0, 1.0


def run_case(n: int, bits: int) -> tuple[float, float, float]:
    from repro.transpose.two_dim import two_dim_transpose_mpt

    half = n // 2
    p = bits // 2
    layout = pt.two_dim_cyclic(p, bits - p, half, half)
    params = custom_machine(n, tau=TAU, t_c=T_C, port_model=PortModel.N_PORT)
    M = 1 << bits
    L = M >> n
    # Round count from the continuous optimum k = (1/2H) sqrt(L t_c/(2 tau)).
    k = max(1, round(math.sqrt(L * T_C / (2 * TAU)) / n))
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << (bits - p))), layout
    )
    net = CubeNetwork(params)
    two_dim_transpose_mpt(net, dm, layout, rounds=k)
    return net.time, mpt_min_time(params, M), transpose_lower_bound(params, M)


def sweep():
    rows = []
    for n, bits in CASES:
        sim, model, lb = run_case(n, bits)
        rows.append([n, 1 << bits, sim, model, lb, sim / model])
    return rows


def test_theorem2_mpt(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "theorem2_mpt",
        "Theorem 2: MPT simulated vs piecewise T_min vs Theorem 3 bound "
        "(abstract units, n-port)",
        ["n", "elements", "simulated", "T_min(Thm2)", "bound(Thm3)", "sim/T_min"],
        rows,
        notes="The simulation prices all H-classes (the model prices the "
        "anti-diagonal), so sim/T_min stays within a small constant.",
    )
    for r in rows:
        n, M, sim, model, lb, ratio = r
        # Never below the lower bound ...
        assert sim >= lb * 0.999, r
        # ... and within a small constant of the analytic optimum.
        assert 0.8 <= ratio <= 3.0, r
