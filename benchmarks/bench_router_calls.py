"""§8.1's closing remark: realizing the 1D all-to-all by 2(N-1) direct
router calls is "always inferior to the optimum buffering algorithm",
by "a factor of 5 to two orders of magnitude depending on the matrix
size and cube size".

We route each of the N(N-1) source->destination blocks through the
e-cube routing logic individually (what the iPSC's send-to-anybody API
did) and compare against the exchange algorithm with optimum buffering.
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.message import Block
from repro.machine.presets import intel_ipsc
from repro.machine.routing import RoutedTransfer, route_messages
from repro.transpose.exchange import BufferPolicy
from repro.transpose.one_dim import one_dim_transpose_exchange

CASES = [(4, 12), (5, 12), (6, 12), (5, 16), (6, 16)]


def run_router(n: int, bits: int) -> float:
    """Every (src, dst) sub-block as an individual routed message."""
    N = 1 << n
    per_pair = max(1, (1 << bits) // (N * N))
    net = CubeNetwork(intel_ipsc(n))
    transfers = []
    for src in range(N):
        for dst in range(N):
            if dst == src:
                continue
            net.place(src, Block(("rc", src, dst), virtual_size=per_pair))
            transfers.append(RoutedTransfer(src, dst, (("rc", src, dst),)))
    route_messages(net, transfers)
    return net.time


def run_buffered(n: int, bits: int) -> float:
    p = bits // 2
    before = pt.row_consecutive(p, bits - p, n)
    after = pt.row_consecutive(bits - p, p, n)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << (bits - p))), before
    )
    net = CubeNetwork(intel_ipsc(n))
    one_dim_transpose_exchange(
        net, dm, after, policy=BufferPolicy(mode="threshold")
    )
    return net.time


def sweep():
    rows = []
    for n, bits in CASES:
        router = ms(run_router(n, bits))
        buffered = ms(run_buffered(n, bits))
        rows.append([n, 1 << bits, router, buffered, router / buffered])
    return rows


def test_router_calls_vs_buffered_exchange(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "router_calls",
        "§8.1: 1D all-to-all via 2(N-1) router calls vs optimum-buffered "
        "exchange on the iPSC (ms)",
        ["n", "elements", "router calls", "buffered exch.", "ratio"],
        rows,
        notes="Paper: router calls lose by 5x to two orders of magnitude, "
        "growing with the cube.",
    )
    ratios = [r[4] for r in rows]
    for r in ratios:
        assert r > 1.2  # always inferior from a 4-cube up
    # The disadvantage grows with the cube size at fixed matrix size.
    by = {(r[0], r[1]): r[4] for r in rows}
    assert by[(6, 4096)] > by[(4, 4096)]
    assert by[(6, 65536)] > by[(5, 65536)]
    assert max(ratios) > 10.0
