"""Fault-tolerance overhead: what graceful degradation costs.

Two views of the fault-injection subsystem:

(1) the *fallback ladder* — for each requested strategy, kill one link
    on its schedule and compare the degraded run against the clean one;
(2) *fault density* — seeded random permanent link failures at rising
    rates, planner on ``auto``: which tier survives, and at what
    modelled cost.

Every run passes the planner's invariant checker (exact transposed
placement), so the numbers are for *correct* degraded transposes.
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, FaultPlan
from repro.machine.faults import DisconnectedCubeError, RoutingStalledError
from repro.machine.presets import intel_ipsc
from repro.transpose import transpose
from repro.transpose.planner import schedule_links

N = 4
MATRIX_BITS = 12  # 64 x 64


def _problem():
    half = N // 2
    p = MATRIX_BITS // 2
    layout = pt.two_dim_cyclic(p, MATRIX_BITS - p, half, half)
    A = np.arange(1 << MATRIX_BITS, dtype=np.float64).reshape(
        1 << p, 1 << (MATRIX_BITS - p)
    )
    return layout, A


def _run(layout, A, plan, algorithm):
    net = CubeNetwork(intel_ipsc(N), faults=plan)
    result = transpose(
        net, DistributedMatrix.from_global(A, layout), layout,
        algorithm=algorithm,
    )
    assert result.verify_against(A)
    return result


def sweep_ladder():
    """Kill a link unique to each tier's schedule; measure the drop.

    The link sets nest (spt ⊆ dpt ⊆ mpt; on a 4-cube the upper two both
    cover every link), so a fault off the SPT set lets MPT/DPT degrade
    to SPT, while a fault on an SPT link (shared by all schedules)
    drops straight to the router.
    """
    layout, A = _problem()
    rows = []
    spt_links = schedule_links("spt", N)
    for tier in ("mpt", "dpt", "spt"):
        clean = _run(layout, A, None, tier)
        links = schedule_links(tier, N)
        if tier != "spt":
            links = links - spt_links
        src, dst = min(links)
        faulted = _run(layout, A, FaultPlan.single_link(N, src, dst), tier)
        rows.append(
            [
                tier,
                faulted.algorithm,
                f"{src}->{dst}",
                ms(clean.stats.time),
                ms(faulted.stats.time),
                ms(faulted.recovery_overhead),
            ]
        )
    return rows


def sweep_density():
    """Seeded random permanent link kills at rising densities."""
    layout, A = _problem()
    rows = []
    for rate in (0.0, 0.01, 0.02, 0.04, 0.08):
        for seed in (1, 2, 3):
            plan = FaultPlan.random(N, seed=seed, link_rate=rate)
            try:
                result = _run(layout, A, plan, "auto")
            except (DisconnectedCubeError, RoutingStalledError) as exc:
                rows.append(
                    [rate, seed, len(plan.link_faults), "-",
                     type(exc).__name__, "-", "-"]
                )
                continue
            rows.append(
                [
                    rate,
                    seed,
                    len(plan.link_faults),
                    result.requested,
                    result.algorithm,
                    ms(result.stats.time),
                    ms(result.recovery_overhead),
                ]
            )
    return rows


def test_fault_overhead_ladder(benchmark):
    rows = benchmark.pedantic(sweep_ladder, rounds=1, iterations=1)
    emit_table(
        "fault_overhead_ladder",
        "Fallback ladder: one dead link on each tier's schedule "
        f"(iPSC {N}-cube, {1 << MATRIX_BITS} elements, ms)",
        ["requested", "executed", "dead link", "clean", "faulted", "overhead"],
        rows,
        notes="Overhead = faulted run minus a clean run of the requested "
        "tier; it can be negative when the surviving tier is cheaper on "
        "this port model (one-port MPT serializes badly).",
    )
    for requested, executed, _, _, _, _ in rows:
        assert executed != requested  # the dead link forced a fallback


def test_fault_overhead_density(benchmark):
    rows = benchmark.pedantic(sweep_density, rounds=1, iterations=1)
    emit_table(
        "fault_overhead_density",
        "Planner degradation vs permanent link-fault density "
        f"(iPSC {N}-cube, {1 << MATRIX_BITS} elements, ms)",
        ["link rate", "seed", "faults", "requested", "executed", "time",
         "overhead"],
        rows,
        notes="auto planner; seeded FaultPlan.random; executed tier "
        "drops down the ladder as density grows, or the run aborts "
        "diagnosably once the surviving cube disconnects.",
    )
    healthy = [r for r in rows if r[0] == 0.0]
    assert all(r[3] == r[4] for r in healthy)  # no faults -> no fallback
    assert all(r[6] == 0.0 for r in healthy)
    faulted = [r for r in rows if r[0] >= 0.04 and r[4] != "-"]
    assert faulted and all(r[4] != r[3] for r in faulted)
