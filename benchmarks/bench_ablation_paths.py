"""Ablation: path multiplicity and packet size in the 2D transpose.

Sweeps SPT (1 path), DPT (2 paths) and MPT (2H paths) across packet
sizes on an n-port machine, quantifying the trade the paper analyzes in
§6.1: more paths buy transfer bandwidth; smaller packets buy pipelining
at a start-up cost.
"""

import numpy as np

from benchmarks.reporting import emit_table
from repro.analysis.models import dpt_time, spt_optimal_packet, spt_time
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.two_dim import (
    two_dim_transpose_dpt,
    two_dim_transpose_mpt,
    two_dim_transpose_spt,
)

N_CUBE = 4
BITS = 14
TAU, T_C = 8.0, 1.0
PACKETS = [16, 64, 256, None]  # None = whole-block (step-by-step)


def setup():
    half = N_CUBE // 2
    p = BITS // 2
    layout = pt.two_dim_cyclic(p, BITS - p, half, half)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << (BITS - p))), layout
    )
    return layout, dm


def machine():
    return custom_machine(N_CUBE, tau=TAU, t_c=T_C, port_model=PortModel.N_PORT)


def sweep():
    layout, dm = setup()
    rows = []
    for B in PACKETS:
        label = "whole" if B is None else B
        spt_net = CubeNetwork(machine())
        two_dim_transpose_spt(spt_net, dm, layout, packet_size=B)
        dpt_net = CubeNetwork(machine())
        two_dim_transpose_dpt(dpt_net, dm, layout, packet_size=B)
        rows.append([label, spt_net.time, dpt_net.time])
    for k in (1, 2, 4):
        mpt_net = CubeNetwork(machine())
        two_dim_transpose_mpt(mpt_net, dm, layout, rounds=k)
        rows.append([f"mpt k={k}", mpt_net.time, ""])
    return rows


def test_ablation_paths(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_paths",
        f"Ablation: SPT/DPT packet sizes and MPT rounds, 2^{BITS} elements "
        f"on a {N_CUBE}-cube (abstract units)",
        ["packet/rounds", "SPT", "DPT"],
        rows,
        notes="DPT halves SPT's transfer term at every packet size; MPT "
        "needs only ~n+1 start-ups for the same bandwidth.",
    )
    spt_by = {r[0]: r[1] for r in rows if r[2] != ""}
    dpt_by = {r[0]: r[2] for r in rows if r[2] != ""}
    # DPT beats SPT at every packet size (two paths, half the volume each).
    for key in spt_by:
        assert dpt_by[key] < spt_by[key]
    # The analytic optimum packet beats both extremes for SPT.
    params = machine()
    M = 1 << BITS
    b_opt = max(1, round(spt_optimal_packet(params, M)))
    assert spt_time(params, M, b_opt) <= spt_time(params, M, 16)
    assert spt_time(params, M, b_opt) <= spt_time(params, M, M // (1 << N_CUBE))
    # DPT model agrees in ordering too.
    assert dpt_time(params, M, b_opt) < spt_time(params, M, b_opt)
