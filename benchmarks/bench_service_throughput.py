"""Wall-clock throughput of the serving layer (not a paper figure).

Drives the closed-loop load generator against servers of increasing
worker count and records requests/second, cache-hit rate, and tail
latency — the engineering numbers behind the multi-tenant subsystem.
Every run also re-verifies a sample of outcomes bit-identically against
solo execution, so the benchmark doubles as a concurrency soak: a
throughput number only counts if the answers stayed exact.
"""

from time import perf_counter

from benchmarks.reporting import emit_table, ms
from repro.service import LoadSpec, ServerConfig, run_loadgen

SPEC = LoadSpec(seed=7, tenants=4, requests=64, shapes=3, verify_sample=4)
STORM = LoadSpec(
    seed=11, tenants=4, requests=64, shapes=3, fault_rate=0.25,
    verify_sample=4,
)
WORKER_COUNTS = (1, 2, 4)


def _drive(spec: LoadSpec, workers: int):
    start = perf_counter()
    report = run_loadgen(spec, ServerConfig(workers=workers))
    elapsed = perf_counter() - start
    assert report.ok, report.summary()
    slo = report.server.slo()
    assert slo["served"] == spec.requests
    return elapsed, slo


def test_throughput_scales_with_workers(benchmark):
    rows = []
    rps = {}
    for workers in WORKER_COUNTS:
        if workers == 2:
            # The 2-worker point is the tracked history metric.
            elapsed, slo = benchmark.pedantic(
                lambda: _drive(SPEC, 2), rounds=3, iterations=1
            )
        else:
            elapsed, slo = _drive(SPEC, workers)
        rps[workers] = SPEC.requests / elapsed
        lat = slo["latency_s"]["total"]
        rows.append(
            [
                workers,
                SPEC.requests,
                f"{rps[workers]:.0f}",
                f"{slo['cache_hit_rate']:.1%}",
                f"{ms(lat['p50']):.2f}",
                f"{ms(lat['p95']):.2f}",
                f"{ms(lat['p99']):.2f}",
            ]
        )
    emit_table(
        "service_throughput",
        "Serving-layer throughput, closed loop (seed=7, 4 tenants, "
        "3 shapes)",
        ["workers", "requests", "req/s", "hit rate", "p50 ms", "p95 ms",
         "p99 ms"],
        rows,
        notes="every run spot-checks served outcomes bit-identically "
        "against solo execution",
    )
    benchmark.extra_info["rps_by_workers"] = {
        str(k): round(v) for k, v in rps.items()
    }
    # Compile-once/serve-many must hold regardless of concurrency.
    assert slo["cache_hit_rate"] > 0.9


def test_throughput_under_fault_storm(benchmark):
    """A 25% fault-storm workload still serves everything, recovering
    in place; the table records what the storm costs end to end."""
    rows = []
    for workers in WORKER_COUNTS:
        if workers == 2:
            elapsed, slo = benchmark.pedantic(
                lambda: _drive(STORM, 2), rounds=3, iterations=1
            )
        else:
            elapsed, slo = _drive(STORM, workers)
        lat = slo["latency_s"]["total"]
        rows.append(
            [
                workers,
                STORM.requests,
                f"{STORM.requests / elapsed:.0f}",
                f"{slo['cache_hit_rate']:.1%}",
                f"{ms(lat['p50']):.2f}",
                f"{ms(lat['p99']):.2f}",
            ]
        )
    emit_table(
        "service_fault_storm",
        "Serving-layer throughput under a 25% fault storm (seed=11)",
        ["workers", "requests", "req/s", "hit rate", "p50 ms", "p99 ms"],
        rows,
        notes="faulted requests recover resume-based (policy every=4) "
        "before falling back to the planner ladder",
    )
