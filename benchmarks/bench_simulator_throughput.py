"""Wall-clock throughput of the simulator itself (not a paper figure).

Tracks the engineering health of the engine: phases per second on a
message-heavy schedule, modelled-elements per second on a payload-heavy
transpose, and the compile-once/replay-N speedup of the plans subsystem.
pytest-benchmark's history makes regressions visible when the engine
changes.
"""

from time import perf_counter

import numpy as np

from benchmarks.reporting import emit_table
from repro.comm.all_to_all import all_to_all_personalized_data, all_to_all_sbnt
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.plans import capture_transpose, replay_plan, synthetic_matrix
from repro.transpose.one_dim import one_dim_transpose_exchange
from repro.transpose.planner import transpose


def message_heavy():
    """4096 block deliveries over a 6-cube (SBnT all-to-all)."""
    net = CubeNetwork(custom_machine(6, port_model=PortModel.N_PORT))
    all_to_all_personalized_data(net, 1)
    all_to_all_sbnt(net)
    return net.stats.messages


def payload_heavy():
    """A 2^20-element transpose over 16 nodes (exchange algorithm)."""
    layout = pt.row_consecutive(10, 10, 4)
    dm = DistributedMatrix(
        layout, np.zeros((16, 1 << 16))
    )
    net = CubeNetwork(custom_machine(4))
    one_dim_transpose_exchange(net, dm, layout)
    return net.stats.element_hops


def test_throughput_message_heavy(benchmark):
    messages = benchmark(message_heavy)
    # 4032 block deliveries, grouped into per-(node, port) messages.
    assert messages > 1500


def test_throughput_payload_heavy(benchmark):
    hops = benchmark.pedantic(payload_heavy, rounds=2, iterations=1)
    assert hops == 4 * (1 << 20) // 2  # n * M / 2


# -- compile-once / replay-N ----------------------------------------------------

REPLAY_CASES = [
    # (label, algorithm, machine, before layout)
    ("spt-2^18", "spt", custom_machine(6), pt.two_dim_cyclic(9, 9, 3, 3)),
    (
        "exchange-2^16",
        "exchange",
        custom_machine(4),
        pt.row_consecutive(8, 8, 4),
    ),
]
REPLAYS = 8


def test_compile_once_replay_many(benchmark):
    """Replaying a cached plan must beat re-planning, for N repeats.

    Direct side: N full planned transposes (planning + NumPy payload
    movement + invariant checks).  Replay side: one capture, then N
    payload-free replays of the compiled plan.  Both sides produce
    identical modelled stats (asserted), so the wall-clock ratio is the
    price of re-planning — the cost the plan cache eliminates.
    """
    rows = []
    direct_total = replay_total = 0.0
    for label, algorithm, params, before in REPLAY_CASES:
        t0 = perf_counter()
        direct_stats = None
        for _ in range(REPLAYS):
            net = CubeNetwork(params)
            result = transpose(
                net, synthetic_matrix(before), algorithm=algorithm
            )
            direct_stats = result.stats
        direct = perf_counter() - t0

        t0 = perf_counter()
        _, plan = capture_transpose(
            params, synthetic_matrix(before), algorithm=algorithm
        )
        compile_s = perf_counter() - t0
        t0 = perf_counter()
        replay_stats = None
        for _ in range(REPLAYS):
            net = CubeNetwork(params)
            replay_plan(plan, net)
            replay_stats = net.stats
        replay = perf_counter() - t0

        assert replay_stats == direct_stats
        direct_total += direct
        replay_total += replay
        rows.append(
            (
                label,
                REPLAYS,
                direct * 1e3,
                compile_s * 1e3,
                replay * 1e3,
                direct / replay,
            )
        )

    emit_table(
        "plan_replay",
        f"Compile-once/replay-{REPLAYS}: wall-clock of direct planned runs "
        "vs plan replay",
        [
            "case",
            "runs",
            "direct (ms)",
            "compile (ms)",
            "replay (ms)",
            "speedup",
        ],
        rows,
        notes="Modelled TransferStats are identical on both sides; the "
        "speedup is pure planning/payload overhead removed by the cache.",
    )
    # The point of the subsystem: replaying N cached schedules is
    # measurably cheaper than planning N times.
    assert replay_total < direct_total

    def replay_side():
        for _, algorithm, params, before in REPLAY_CASES:
            _, plan = capture_transpose(
                params, synthetic_matrix(before), algorithm=algorithm
            )
            for _ in range(REPLAYS):
                replay_plan(plan, CubeNetwork(params))

    benchmark.pedantic(replay_side, rounds=1, iterations=1)
