"""Wall-clock throughput of the simulator itself (not a paper figure).

Tracks the engineering health of the engine: phases per second on a
message-heavy schedule and modelled-elements per second on a
payload-heavy transpose.  pytest-benchmark's history makes regressions
visible when the engine changes.
"""

import numpy as np

from repro.comm.all_to_all import all_to_all_personalized_data, all_to_all_sbnt
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.one_dim import one_dim_transpose_exchange


def message_heavy():
    """4096 block deliveries over a 6-cube (SBnT all-to-all)."""
    net = CubeNetwork(custom_machine(6, port_model=PortModel.N_PORT))
    all_to_all_personalized_data(net, 1)
    all_to_all_sbnt(net)
    return net.stats.messages


def payload_heavy():
    """A 2^20-element transpose over 16 nodes (exchange algorithm)."""
    layout = pt.row_consecutive(10, 10, 4)
    dm = DistributedMatrix(
        layout, np.zeros((16, 1 << 16))
    )
    net = CubeNetwork(custom_machine(4))
    one_dim_transpose_exchange(net, dm, layout)
    return net.stats.element_hops


def test_throughput_message_heavy(benchmark):
    messages = benchmark(message_heavy)
    # 4032 block deliveries, grouped into per-(node, port) messages.
    assert messages > 1500


def test_throughput_payload_heavy(benchmark):
    hops = benchmark.pedantic(payload_heavy, rounds=2, iterations=1)
    assert hops == 4 * (1 << 20) // 2  # n * M / 2
