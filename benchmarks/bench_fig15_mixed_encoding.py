"""Figure 15: transposing a matrix with mixed row/column encodings.

Rows binary, columns Gray coded; the naive algorithm converts, transposes
and converts back in ``2n - 2`` routing steps while the §6.3 combined
algorithm does it in ``n``.  The paper plots both against matrix size on
the iPSC; the gap approaches the step-count ratio as the per-step data
volume grows.
"""

import numpy as np
import pytest

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import intel_ipsc
from repro.transpose.mixed import (
    mixed_code_transpose_combined,
    mixed_code_transpose_naive,
)

N_CUBE = 6
MATRIX_BITS = [8, 10, 12, 14, 16]


def run_pair(total_bits: int) -> tuple[float, float]:
    half = N_CUBE // 2
    p = total_bits // 2
    before = pt.two_dim_mixed(
        p, total_bits - p, half, half, rows="cyclic", cols="cyclic", col_gray=True
    )
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << (total_bits - p))), before
    )
    after = pt.two_dim_mixed(
        total_bits - p, p, half, half, rows="cyclic", cols="cyclic", col_gray=True
    )
    naive_net = CubeNetwork(intel_ipsc(N_CUBE))
    mixed_code_transpose_naive(naive_net, dm, after)
    comb_net = CubeNetwork(intel_ipsc(N_CUBE))
    mixed_code_transpose_combined(comb_net, dm, after)
    return naive_net.time, comb_net.time


def sweep():
    rows = []
    for bits in MATRIX_BITS:
        naive, combined = run_pair(bits)
        rows.append([1 << bits, ms(naive), ms(combined), naive / combined])
    return rows


def test_fig15_mixed_encoding(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    n = N_CUBE
    emit_table(
        "fig15_mixed_encoding",
        f"Figure 15: mixed-encoding transpose on a {n}-cube iPSC (ms): "
        f"naive ({2 * n - 2} steps) vs combined ({n} steps)",
        ["elements", "naive", "combined", "ratio"],
        rows,
        notes=f"Paper shape: combined wins everywhere; ratio tends to "
        f"(2n-2)/n = {(2 * n - 2) / n:.2f}.",
    )
    for r in rows:
        assert r[1] > r[2]
    # Ratio approaches (2n-2)/n for large matrices.
    assert rows[-1][3] == pytest.approx((2 * n - 2) / n, rel=0.25)
