"""Table 3: estimated communication time for some-to-all personalized
communication — simulated versus closed form.

Sweeps the split/all-to-all mix (k, l) on a 4-cube and compares the
simulator's time for the Theorem-1-ordered algorithm against Table 3's
one-port estimate, plus the ordering ablation (split-first vs
all-to-all-first).
"""

import numpy as np
import pytest

from benchmarks.reporting import emit_table
from repro.analysis.models import some_to_all_time
from repro.comm.all_to_some import some_to_all_scatter
from repro.machine import Block, CubeNetwork, custom_machine

N_CUBE = 4
ELEMENTS = 8  # per (source, destination) pair


def load(net, split_dims):
    N = 1 << N_CUBE
    split_mask = sum(1 << d for d in split_dims)
    for src in (x for x in range(N) if not x & split_mask):
        for dst in range(N):
            if dst != src:
                net.place(src, Block(("s", src, dst), data=np.full(ELEMENTS, dst)))


def run_case(k: int, l: int, split_first: bool) -> float:
    params = custom_machine(N_CUBE, tau=3.0, t_c=1.0)
    net = CubeNetwork(params)
    split_dims = list(range(N_CUBE - 1, N_CUBE - 1 - k, -1))
    a2a_dims = list(range(l))
    load(net, split_dims)
    some_to_all_scatter(net, split_dims, a2a_dims, split_first=split_first)
    return net.time


def sweep():
    params = custom_machine(N_CUBE, tau=3.0, t_c=1.0)
    N = 1 << N_CUBE
    rows = []
    for k in range(N_CUBE + 1):
        l = N_CUBE - k
        # Total data volume if every node were a source: Table 3 is
        # normalized to M = total elements spread over the cube.
        M = N * N * ELEMENTS * (1 << l) // N  # 2^l sources x N dests x E
        good = run_case(k, l, True)
        bad = run_case(k, l, False)
        model = some_to_all_time(params, M, k, l)
        rows.append([k, l, good, bad, model, good / model])
    return rows


def test_table3_some_to_all(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "table3_some_to_all",
        "Table 3: some-to-all, simulated (Theorem 1 order and reversed) "
        "vs closed form (abstract time units)",
        ["k", "l", "sim(split-first)", "sim(reversed)", "model", "sim/model"],
        rows,
        notes="Theorem 1: splitting first never loses; the model tracks "
        "the simulation within a small factor across the whole k/l mix.",
    )
    for r in rows:
        k, l, good, bad, model, ratio = r
        assert good <= bad * 1.0001
        assert 0.4 <= ratio <= 2.5, r
    # Monotonic sanity: pure all-to-all (k=0) costs more transfer than
    # pure one-to-all splitting of the same normalized volume.
    assert rows[0][2] != pytest.approx(rows[-1][2])
