"""Figure 17: Connection Machine transpose with multiple elements per
processor, for several machine sizes.

With a pipelined router the start-up is amortized, so time scales close
to linearly in the number of elements per processor, with the machine
size adding its contention/distance factor.
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import connection_machine
from repro.transpose.two_dim import two_dim_transpose_router

CUBES = [4, 6, 8]
ELEMENTS_PER_PROC = [1, 2, 4, 8, 16, 32]


def run_one(n: int, epp: int) -> float:
    half = n // 2
    extra = epp.bit_length() - 1
    layout = pt.two_dim_cyclic(half + extra, half, half, half)
    after = pt.two_dim_cyclic(half, half + extra, half, half)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << (half + extra), 1 << half), dtype=np.float32), layout
    )
    net = CubeNetwork(connection_machine(n))
    two_dim_transpose_router(net, dm, after)
    return net.time


def sweep():
    rows = []
    for epp in ELEMENTS_PER_PROC:
        rows.append([epp] + [ms(run_one(n, epp)) for n in CUBES])
    return rows


def test_fig17_cm_multiple_elements(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig17_cm_multi",
        "Figure 17: CM transpose (ms) vs elements per processor",
        ["elems/proc", *(f"n={n}" for n in CUBES)],
        rows,
        notes="Paper shape: near-linear growth in elements per processor "
        "(pipelined router, start-up amortized); larger machines pay "
        "distance/contention.",
    )
    for col in range(1, len(CUBES) + 1):
        series = [r[col] for r in rows]
        assert all(b > a for a, b in zip(series, series[1:]))
        # Pipelining: 32x the data costs well under 64x the time.
        assert series[-1] / series[0] < 64
    # Bigger machine, same per-processor load -> more time (distance).
    for r in rows:
        assert r[1] <= r[2] <= r[3]
