"""Figure 13: two-dimensional SPT transpose on the iPSC — cost breakdown.

The paper separates copy time, communication time and total time for a
2-cube and a 6-cube over a range of matrix sizes, observing: per-node
copy time falls with the cube size (less local data), and for the 6-cube
the communication term is start-up dominated until the matrix outgrows
``B_m * N`` (64 KBytes there).
"""

import numpy as np
import pytest

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import intel_ipsc
from repro.transpose.two_dim import two_dim_transpose_spt

MATRIX_BITS = [8, 10, 12, 14, 16]


def run_one(total_bits: int, n: int) -> tuple[float, float, float]:
    half = n // 2
    p = total_bits // 2
    layout = pt.two_dim_cyclic(p, total_bits - p, half, half)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << (total_bits - p))), layout
    )
    net = CubeNetwork(intel_ipsc(n))
    two_dim_transpose_spt(net, dm, layout, charge_copy=True)
    return net.stats.copy_time, net.stats.comm_time, net.time


def sweep():
    rows = []
    for bits in MATRIX_BITS:
        c2, m2, t2 = run_one(bits, 2)
        c6, m6, t6 = run_one(bits, 6)
        rows.append(
            [1 << bits, ms(c2), ms(m2), ms(t2), ms(c6), ms(m6), ms(t6)]
        )
    return rows


def test_fig13_two_dim_breakdown(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig13_two_dim_breakdown",
        "Figure 13: SPT on the iPSC — copy/comm/total (ms), 2-cube vs 6-cube",
        ["elements", "copy(2)", "comm(2)", "total(2)", "copy(6)", "comm(6)", "total(6)"],
        rows,
        notes="Paper shape: 6-cube copy < 2-cube copy; 6-cube comm flat "
        "(start-up bound) while elements <= B_m * N.",
    )
    for row in rows:
        # Copy time on the 6-cube is 16x smaller (local data is).
        assert row[4] == pytest.approx(row[1] / 16)
    # 6-cube communication is start-up bound for small matrices:
    small, large = rows[0], rows[-1]
    assert small[5] == pytest.approx(6 * 5.0, rel=0.2)  # ~n tau
    # but grows once the matrix exceeds B_m * N = 2^14 elements.
    assert large[5] > 2 * small[5]
