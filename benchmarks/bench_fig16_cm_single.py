"""Figure 16: matrix transpose on the Connection Machine, one element per
processor, using the routing logic.

The CM router is bit-serial and pipelined (start-up amortized); the
transpose cost grows with the cube dimension through path length and
link contention, and sits orders of magnitude below the iPSC because
tau is microseconds, not milliseconds.
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import connection_machine, intel_ipsc
from repro.transpose.two_dim import two_dim_transpose_router

CUBES = [2, 4, 6, 8, 10, 12]


def run_one(n: int, machine_factory) -> float:
    half = n // 2
    layout = pt.two_dim_cyclic(half, half, half, half)  # 1 element/processor
    dm = DistributedMatrix.from_global(
        np.zeros((1 << half, 1 << half), dtype=np.float32), layout
    )
    net = CubeNetwork(machine_factory(n))
    two_dim_transpose_router(net, dm, layout)
    return net.time


def sweep():
    rows = []
    for n in CUBES:
        cm = run_one(n, connection_machine)
        rows.append([n, 1 << n, ms(cm)])
    return rows


def test_fig16_cm_single_element(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig16_cm_single",
        "Figure 16: CM transpose via routing logic, 1 element/processor (ms)",
        ["n", "processors", "time"],
        rows,
        notes="Paper shape: grows with machine size (distance and router "
        "contention); absolute scale ~ms even at 4096 processors.",
    )
    times = [r[2] for r in rows]
    assert all(b >= a for a, b in zip(times, times[1:]))
    assert times[-1] < 50  # milliseconds, not the iPSC's hundreds

    # Closing §9 comparison: two orders of magnitude faster than the iPSC
    # on the same transpose.
    cm = run_one(6, connection_machine)
    ipsc = run_one(6, intel_ipsc)
    assert ipsc / cm > 100
