"""Figure 18: Connection Machine transpose of fixed-size matrices as a
function of machine size.

For a fixed matrix, growing the machine shrinks the per-processor load:
time falls until the distance/contention term of the larger cube eats
the gain — the classic strong-scaling curve the paper plots for two
matrix sizes.
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import connection_machine
from repro.transpose.two_dim import two_dim_transpose_router

MATRICES = [(7, 7), (9, 9)]  # 128x128 and 512x512
CUBES = [4, 6, 8, 10]


def run_one(p: int, q: int, n: int) -> float:
    half = n // 2
    layout = pt.two_dim_cyclic(p, q, half, half)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << q), dtype=np.float32), layout
    )
    net = CubeNetwork(connection_machine(n))
    two_dim_transpose_router(net, dm, layout)
    return net.time


def sweep():
    rows = []
    for n in CUBES:
        row = [n, 1 << n]
        for p, q in MATRICES:
            row.append(ms(run_one(p, q, n)))
        rows.append(row)
    return rows


def test_fig18_cm_machine_scaling(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig18_cm_scaling",
        "Figure 18: CM transpose of fixed matrices vs machine size (ms)",
        ["n", "processors", "128x128", "512x512"],
        rows,
        notes="Paper shape: strong scaling — time falls with machine size "
        "while per-processor data dominates.",
    )
    for col in (2, 3):
        series = [r[col] for r in rows]
        # Scaling up the machine helps the fixed-size transpose.
        assert series[0] > series[-1]
    # The larger matrix always costs more on the same machine.
    for r in rows:
        assert r[3] > r[2]
