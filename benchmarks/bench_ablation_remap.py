"""Ablation: the three §6.2 remapping algorithms.

Transposing a 2D-consecutive matrix into 2D-cyclic storage: Algorithm 1
(convert, convert, transpose — 2n communication steps) versus Algorithms
2 and 3 (n steps, paying with local transposes or a final shuffle).
"""

import numpy as np

from benchmarks.reporting import emit_table
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.transpose.exchange import BufferPolicy
from repro.transpose.remap import remap_transpose

P_BITS = 6
NR = 2
TAU, T_C, T_COPY = 8.0, 1.0, 0.25


def run_alg(alg: int, *, charge_local: bool) -> tuple[float, float, int]:
    before = pt.two_dim_consecutive(P_BITS, P_BITS, NR, NR)
    after = pt.two_dim_cyclic(P_BITS, P_BITS, NR, NR)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << P_BITS, 1 << P_BITS)), before
    )
    net = CubeNetwork(
        custom_machine(2 * NR, tau=TAU, t_c=T_C, t_copy=T_COPY)
    )
    policy = BufferPolicy(mode="buffered", charge_local_moves=charge_local)
    remap_transpose(net, dm, after, algorithm=alg, policy=policy)
    return net.comm_time if hasattr(net, "comm_time") else net.stats.comm_time, net.time, net.stats.phases


def sweep():
    rows = []
    for alg in (1, 2, 3):
        comm, total, phases = run_alg(alg, charge_local=True)
        rows.append([alg, comm, total - comm, total, phases])
    return rows


def test_ablation_remap(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_remap",
        f"Ablation: §6.2 consecutive->cyclic transpose algorithms, "
        f"2^{2 * P_BITS} elements on a {2 * NR}-cube (abstract units)",
        ["algorithm", "comm", "local", "total", "phases"],
        rows,
        notes="Algorithm 1 pays 2n communication steps; 2 and 3 pay n "
        "steps plus local work (3 trades algorithm 2's up-front local "
        "transpose for a final shuffle).",
    )
    by = {r[0]: r for r in rows}
    # Algorithm 1 communicates roughly twice as much as 2 and 3.
    assert by[1][1] > 1.5 * by[3][1]
    assert by[1][1] > 1.5 * by[2][1]
    # The n-step algorithms win in total despite local charges.
    assert by[2][3] < by[1][3]
    assert by[3][3] < by[1][3]
