"""Shared reporting for the figure-reproduction benchmarks.

Each bench regenerates one of the paper's tables/figures: it sweeps the
same parameters, collects the *modelled* times from the simulator, prints
the series in a fixed-width table, appends it to
``benchmarks/results/<name>.txt``, and asserts the figure's qualitative
shape (who wins, growth direction, crossover neighbourhood).  The
pytest-benchmark fixture wraps the simulation so wall-clock regressions
are tracked too; the modelled numbers ride along in ``extra_info``.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

__all__ = ["emit_table", "ms"]


def ms(seconds: float) -> float:
    """Seconds to milliseconds (the paper's figures are in ms)."""
    return seconds * 1e3


def emit_table(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    notes: str = "",
) -> str:
    """Format, print and persist one figure's data series."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    # Machine-readable companion for plotting.
    with open(os.path.join(RESULTS_DIR, f"{name}.csv"), "w") as fh:
        fh.write(",".join(str(h) for h in headers) + "\n")
        for r in rows:
            fh.write(",".join(_fmt(v) for v in r) + "\n")
    return text


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        if abs(v) >= 1:
            return f"{v:.2f}"
        return f"{v:.4f}"
    return str(v)
