"""Integrity economics: what checksummed delivery costs, clean and corrupt.

Two sweeps on the MPT transpose:

(1) *null path* — the same clean run with integrity off, on-and-free
    (the default config: checksums cost no modelled time), and
    on-and-priced at increasing per-element checksum costs.  The
    armed-and-free column must be bit-identical in time to the unarmed
    one — that is the zero-cost-null-path guarantee the pinned perf
    baselines rely on — while the priced columns quantify what hardware
    without checksum offload would pay;
(2) *corruption intensity* — one corrupting link of rising strike rate
    across the whole run, counting detections, retransmissions and the
    retransmit surcharge (extra modelled time over the clean run).
    Every row self-verifies: the gathered matrix equals ``A.T`` exactly
    or the run surfaced a typed error — never silence.
"""

from benchmarks.reporting import emit_table, ms
from repro.integrity import IntegrityConfig, IntegrityManager
from repro.machine import CubeNetwork
from repro.machine.faults import CorruptionFault, FaultError, FaultPlan
from repro.machine.presets import connection_machine
from repro.plans.batch import resolve_problem
from repro.plans.recorder import synthetic_matrix
from repro.transpose.planner import transpose

N = 4
ELEMENTS = 1 << 10
ALGORITHM = "mpt"
CHECKSUM_COSTS = (0.0, 1e-7, 1e-6)
STRIKE_RATES = (0.1, 0.3, 0.6, 1.0)


def run_once(*, faults=None, integrity=None):
    params = connection_machine(N)
    before, after = resolve_problem(N, ELEMENTS, "2d")
    matrix = synthetic_matrix(before)
    original = matrix.to_global()
    network = CubeNetwork(params, faults=faults, integrity=integrity)
    result = transpose(network, matrix, after, algorithm=ALGORITHM)
    assert result.verify_against(original)
    return network.stats


def sweep_null_path():
    rows = []
    baseline = run_once()
    rows.append(["off", f"{ms(baseline.time):.4f}", 0, "-"])
    for cost in CHECKSUM_COSTS:
        stats = run_once(
            integrity=IntegrityManager(
                IntegrityConfig(checksum_time_per_element=cost)
            )
        )
        overhead = (stats.time - baseline.time) / baseline.time
        rows.append(
            [
                f"on @ {cost:g}s/elem",
                f"{ms(stats.time):.4f}",
                stats.integrity_checksum_overhead,
                f"{overhead:+.2%}",
            ]
        )
    return baseline, rows


def sweep_intensity():
    clean = run_once()
    rows = []
    for rate in STRIKE_RATES:
        fault = FaultPlan(
            N,
            corruption_faults=(CorruptionFault(0, 1, rate=rate, seed=9),),
        )
        network = CubeNetwork(connection_machine(N), faults=fault)
        before, after = resolve_problem(N, ELEMENTS, "2d")
        matrix = synthetic_matrix(before)
        original = matrix.to_global()
        try:
            result = transpose(network, matrix, after, algorithm=ALGORITHM)
            outcome = "ladder" if result.fallbacks else "clean"
            assert result.verify_against(original)
        except FaultError as exc:
            outcome = type(exc).__name__
        stats = network.stats
        rows.append(
            [
                f"{rate:.1f}",
                stats.integrity_corrupted_deliveries,
                stats.integrity_retransmits,
                stats.integrity_quarantined_links,
                f"{ms(stats.time - clean.time):+.4f}",
                outcome,
            ]
        )
    return rows


def test_null_path_is_free(benchmark):
    baseline, rows = benchmark.pedantic(
        sweep_null_path, rounds=1, iterations=1
    )
    emit_table(
        "integrity_null_path",
        f"Checksummed delivery on a clean machine (CM {N}-cube, "
        f"{ELEMENTS} elements, {ALGORITHM})",
        ["integrity", "model time (ms)", "checksummed elems", "overhead"],
        rows,
        notes="The default config prices checksums at zero, so arming "
        "integrity on a clean machine must not move the modelled time — "
        "the guarantee that keeps every pinned baseline valid.  Nonzero "
        "per-element costs model software checksumming.",
    )
    # The zero-cost row is bit-identical to the unarmed run.
    assert rows[1][1] == rows[0][1]
    # Priced rows are monotone in the configured cost.
    assert float(rows[3][1]) >= float(rows[2][1]) >= float(rows[1][1])


def test_corruption_surcharge_scales_with_intensity(benchmark):
    rows = benchmark.pedantic(sweep_intensity, rounds=1, iterations=1)
    emit_table(
        "integrity_corruption_surcharge",
        f"Detect-and-retransmit under a corrupting link (CM {N}-cube, "
        f"{ELEMENTS} elements, {ALGORITHM}, link 0->1, seed 9)",
        ["strike rate", "detected", "retransmits", "quarantined",
         "surcharge (ms)", "outcome"],
        rows,
        notes="Every detection is paid for with a retransmission or an "
        "escalation; the surcharge is the extra modelled time over the "
        "clean run.  At rate 1.0 the budget can never succeed, so the "
        "link is quarantined and the planner ladders to the terminal "
        "tier.",
    )
    assert all(r[1] >= r[2] for r in rows)  # detections >= retransmits
    assert rows[-1][3] >= 1  # full-rate corruption always quarantines
