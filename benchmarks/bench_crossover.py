"""§9: where one-dimensional and two-dimensional partitioning cross over.

Evaluates the paper's two n-port formulas (SBnT all-to-all for 1D,
Theorem 2's MPT T_min for 2D) across cube sizes for a fixed matrix, and
also simulates both algorithms at a few points.  §9's claims: 1D wins
for ``n >= sqrt(M t_c / (N tau))`` (by about one start-up) and for
``n <= sqrt(M t_c / (2 N tau))``; the 2D window lives in between, and
the break-even N is ``~ c r / log^2 r``.
"""

import math

import numpy as np

from benchmarks.reporting import emit_table
from repro.analysis.crossover import (
    break_even_processors,
    compare_one_vs_two_dim,
)
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel
from repro.transpose.one_dim import one_dim_transpose_sbnt
from repro.transpose.two_dim import two_dim_transpose_mpt

BITS = 16
TAU, T_C = 8.0, 1.0
CUBES = [2, 4, 6, 8, 10, 12]


def analytic_rows():
    rows = []
    for n in CUBES:
        params = custom_machine(n, tau=TAU, t_c=T_C, port_model=PortModel.N_PORT)
        cmp = compare_one_vs_two_dim(params, 1 << BITS)
        hi = math.sqrt((1 << BITS) * T_C / ((1 << n) * TAU))
        rows.append(
            [n, cmp.t_one_dim, cmp.t_two_dim, cmp.winner, f"{hi:.1f}"]
        )
    return rows


def simulate_point(n: int) -> tuple[float, float]:
    params = custom_machine(n, tau=TAU, t_c=T_C, port_model=PortModel.N_PORT)
    p = BITS // 2
    lay1 = pt.row_consecutive(p, BITS - p, n)
    dm1 = DistributedMatrix.from_global(np.zeros((1 << p, 1 << (BITS - p))), lay1)
    net1 = CubeNetwork(params)
    one_dim_transpose_sbnt(net1, dm1, pt.row_consecutive(BITS - p, p, n))

    half = n // 2
    lay2 = pt.two_dim_cyclic(p, BITS - p, half, half)
    dm2 = DistributedMatrix.from_global(np.zeros((1 << p, 1 << (BITS - p))), lay2)
    net2 = CubeNetwork(params)
    L = (1 << BITS) >> n
    k = max(1, round(math.sqrt(L * T_C / (2 * TAU)) / n))
    two_dim_transpose_mpt(net2, dm2, lay2, rounds=k)
    return net1.time, net2.time


def test_crossover_analysis(benchmark):
    rows = benchmark.pedantic(analytic_rows, rounds=1, iterations=1)
    emit_table(
        "crossover_analytic",
        f"§9: 1D vs 2D analytic times, M = 2^{BITS}, tau/t_c = {TAU}",
        ["n", "T_1d", "T_2d(MPT)", "winner", "sqrt(Mtc/Ntau)"],
        rows,
        notes="1D wins at both extremes; where 2D wins, the margin is "
        "about one start-up.",
    )
    # 1D wins at the extremes (start-up-bound big cubes, transfer-bound
    # small cubes).
    assert rows[0][3] == "1d"
    assert rows[-1][3] == "1d"
    # Wherever 2D wins, it wins by at most ~one start-up (§9).
    for n, t1, t2, winner, _ in rows:
        if winner == "2d":
            assert t1 - t2 <= 1.5 * TAU

    be = break_even_processors(1 << BITS, T_C, TAU)
    assert be > 1


def test_crossover_simulated(benchmark):
    def run():
        return [[n, *simulate_point(n)] for n in (4, 6, 8)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "crossover_simulated",
        f"§9: 1D (SBnT) vs 2D (MPT) simulated, M = 2^{BITS}",
        ["n", "sim 1d", "sim 2d"],
        rows,
        notes="Simulated times mirror the analytic comparison within the "
        "scheduling constants.",
    )
    for n, t1, t2 in rows:
        params = custom_machine(n, tau=TAU, t_c=T_C, port_model=PortModel.N_PORT)
        cmp = compare_one_vs_two_dim(params, 1 << BITS)
        assert t1 <= 2.5 * cmp.t_one_dim
        assert t2 <= 3.0 * cmp.t_two_dim
