"""Figure 11: sensitivity to the minimum unbuffered message size.

The optimum-buffering scheme sends runs of at least ``B_copy`` elements
directly and copies shorter runs into a buffer.  The paper measures the
total transpose time as a function of that threshold: too small and the
start-ups of tiny direct sends dominate; too large and the copy cost of
needlessly buffered medium runs dominates.  On the iPSC the optimum sits
at ~64 elements (one start-up = copying 64 elements).
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import intel_ipsc
from repro.transpose.exchange import BufferPolicy
from repro.transpose.one_dim import one_dim_transpose_exchange

THRESHOLDS = [1, 4, 16, 32, 64, 128, 256, 1024, 4096]
N_CUBE = 5
MATRIX_BITS = 14


def run_one(threshold: int) -> float:
    p = q = MATRIX_BITS // 2
    before = pt.row_consecutive(p, q, N_CUBE)
    after = pt.row_consecutive(q, p, N_CUBE)
    dm = DistributedMatrix.from_global(np.zeros((1 << p, 1 << q)), before)
    net = CubeNetwork(intel_ipsc(N_CUBE))
    policy = BufferPolicy(mode="threshold", min_unbuffered_run=threshold)
    one_dim_transpose_exchange(net, dm, after, policy=policy)
    return net.time


def sweep():
    return [[t, ms(run_one(t))] for t in THRESHOLDS]


def test_fig11_buffer_threshold(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig11_buffer_threshold",
        "Figure 11: 1D transpose time (ms) vs minimum unbuffered run, "
        f"{N_CUBE}-cube, 2^{MATRIX_BITS} elements",
        ["B_copy", "time"],
        rows,
        notes="Paper shape: minimum near 64 elements (copy of 64 floats "
        "~ one start-up); both extremes are worse.",
    )
    times = {t: v for t, v in rows}
    best = min(times.values())
    # The optimum threshold sits in the interior, near 64.
    assert times[64] <= best * 1.05
    assert times[1] >= times[64]
    assert times[4096] > times[64]
