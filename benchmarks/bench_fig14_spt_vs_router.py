"""Figure 14: two-dimensional transpose — SPT algorithm vs routing logic.

(a) the SPT total time as a function of cube size and matrix size: for
small matrices start-ups dominate and time *increases* with n; for large
matrices the per-node volume shrinks and time *decreases* with n.
(b) handing the blocks to the e-cube routing logic instead: conflicts
serialize, and the scheduled algorithm wins increasingly with cube size.
"""

import numpy as np

from benchmarks.reporting import emit_table, ms
from repro.layout import DistributedMatrix
from repro.layout import partition as pt
from repro.machine import CubeNetwork
from repro.machine.presets import intel_ipsc
from repro.transpose.two_dim import two_dim_transpose_router, two_dim_transpose_spt

CUBES = [2, 4, 6]
MATRIX_BITS = [8, 12, 16]
MATRIX_BITS_ELEMENTS = [1 << b for b in MATRIX_BITS]


def run_pair(total_bits: int, n: int) -> tuple[float, float]:
    half = n // 2
    p = total_bits // 2
    layout = pt.two_dim_cyclic(p, total_bits - p, half, half)
    dm = DistributedMatrix.from_global(
        np.zeros((1 << p, 1 << (total_bits - p))), layout
    )
    spt_net = CubeNetwork(intel_ipsc(n))
    two_dim_transpose_spt(spt_net, dm, layout, charge_copy=True)
    rt_net = CubeNetwork(intel_ipsc(n))
    two_dim_transpose_router(rt_net, dm, layout)
    return spt_net.time, rt_net.time


def sweep():
    rows = []
    for bits in MATRIX_BITS:
        for n in CUBES:
            spt, router = run_pair(bits, n)
            rows.append([1 << bits, n, ms(spt), ms(router), router / spt])
    return rows


def test_fig14_spt_vs_router(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "fig14_spt_vs_router",
        "Figure 14: SPT (a) vs routing logic (b) on the iPSC (ms)",
        ["elements", "n", "SPT", "router", "router/SPT"],
        rows,
        notes="Paper shape: (a) time rises with n for small matrices, "
        "falls for large; (b) the scheduled algorithm beats the router "
        "increasingly with cube size.",
    )
    by = {(r[0], r[1]): r for r in rows}
    # (a) small matrix: more start-ups with bigger cube.
    assert by[(256, 6)][2] > by[(256, 2)][2]
    # (a) large matrix: bigger cube shortens the transpose.
    assert by[(65536, 6)][2] < by[(65536, 2)][2]
    # (b) the scheduled algorithm gains on the router as the cube grows,
    # and wins outright on the 6-cube.
    for elements in MATRIX_BITS_ELEMENTS:
        ratios = [by[(elements, n)][4] for n in CUBES]
        assert ratios[0] < ratios[-1]
    assert by[(65536, 6)][4] > 1.0
    assert by[(256, 6)][4] > 1.0
