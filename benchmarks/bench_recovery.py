"""Recovery economics: resume-from-checkpoint vs restart-from-scratch.

A restart-based system answers a mid-run fault by throwing the whole
prefix away: every phase completed before the fault is re-executed.  The
recovery executor instead rolls back to the newest checkpoint, so a
fault costs at most ``checkpoint_every`` replayed phases no matter how
deep into the run it lands.

Two sweeps on the captured MPT plan:

(1) *fault depth* — one transient link fault whose window slides later
    and later into the schedule; restart's replay bill grows linearly
    with depth while resume's stays pinned at the cadence;
(2) *cadence* — the same mid-run fault under coarser and coarser
    checkpoint cadences, pricing the snapshot-count/replay-length trade
    documented in ``docs/recovery.md``.

Both sweeps self-verify (symbolic final-state check), and the depth
sweep asserts the headline claim: for every fault landing after the
first checkpoint interval, resume replays *strictly fewer* phases than
restart.
"""

from benchmarks.reporting import emit_table
from repro.machine import CubeNetwork, FaultPlan
from repro.machine.faults import FaultError
from repro.machine.presets import connection_machine
from repro.plans.batch import resolve_problem
from repro.plans.ir import IdleOp, PhaseOp
from repro.plans.recorder import RecordingNetwork, synthetic_matrix
from repro.plans.replay import replay_plan
from repro.recovery import RecoveryPolicy, execute_with_recovery
from repro.transpose.planner import default_after_layout, transpose

N = 4
ELEMENTS = 1 << 10
ALGORITHM = "mpt"
CADENCE = 2

def captured():
    params = connection_machine(N)
    before, after = resolve_problem(N, ELEMENTS, "2d")
    recorder = RecordingNetwork(params)
    result = transpose(
        recorder, synthetic_matrix(before), after, algorithm=ALGORITHM
    )
    plan = recorder.compile(
        algorithm=result.algorithm,
        before=before,
        after=after if after is not None else default_after_layout(before),
        requested=ALGORITHM,
    )
    return params, plan


def plan_phases(plan) -> int:
    return sum(1 for op in plan.ops if isinstance(op, (PhaseOp, IdleOp)))


def depth_specs(plan) -> list[str]:
    """Fault specs derived from the schedule: one transient window per
    depth (early / middle / last phase), each on a link that phase
    actually uses, plus one permanent fault for the surgery path."""
    from repro.recovery import physicalize

    usage: list[list[tuple[int, int]]] = []
    for op in physicalize(plan.ops):
        if isinstance(op, PhaseOp):
            usage.append(sorted({(m.src, m.dst) for m in op.messages}))
        elif isinstance(op, IdleOp):
            usage.append([])
    phases = [p for p, links in enumerate(usage) if links]
    targets = sorted({phases[0], phases[len(phases) // 2], phases[-1]})
    specs = []
    for p in targets:
        src, dst = usage[p][0]
        specs.append(f"tlinks={src}-{dst}@{p}-{p + 2}")
    specs.append("links=0-1")
    return specs


def restart_replay_bill(params, plan, faults) -> int:
    """Phases a restart-based executor would discard at the first fault."""
    network = CubeNetwork(params, faults=faults)
    try:
        replay_plan(plan, network)
    except FaultError:
        return network.phase_index  # the whole completed prefix
    return 0  # fault window never intersected the schedule


def sweep_depth():
    params, plan = captured()
    total = plan_phases(plan)
    policy = RecoveryPolicy(checkpoint_every=CADENCE)
    rows = []
    for spec in depth_specs(plan):
        faults = FaultPlan.from_spec(N, spec)
        restart = restart_replay_bill(params, plan, faults)
        outcome = execute_with_recovery(
            plan, CubeNetwork(params, faults=faults), policy=policy
        )
        assert outcome.verified
        rows.append(
            [
                spec,
                total,
                restart if restart else "-",
                outcome.report.replayed_phases,
                outcome.report.rollbacks,
                outcome.report.checkpoints_taken,
                outcome.report.backoff_phases,
                outcome.report.wasted_elements,
                outcome.report.resolved,
            ]
        )
    return rows


def sweep_cadence():
    params, plan = captured()
    # The deepest transient window from the depth sweep: the point where
    # cadence matters most.
    faults = FaultPlan.from_spec(N, depth_specs(plan)[-2])
    rows = []
    for every in (1, 2, 4, 8, 16):
        outcome = execute_with_recovery(
            plan,
            CubeNetwork(params, faults=faults),
            policy=RecoveryPolicy(checkpoint_every=every),
        )
        assert outcome.verified
        rows.append(
            [
                every,
                outcome.report.checkpoints_taken,
                outcome.report.replayed_phases,
                outcome.report.wasted_elements,
                outcome.elapsed,
            ]
        )
    return rows


def test_resume_beats_restart(benchmark):
    rows = benchmark.pedantic(sweep_depth, rounds=1, iterations=1)
    emit_table(
        "recovery_resume_vs_restart",
        "Replay bill per fault: resume-from-checkpoint vs restart "
        f"(CM {N}-cube, {ELEMENTS} elements, {ALGORITHM}, "
        f"checkpoint every {CADENCE})",
        ["fault spec", "plan phases", "restart replays", "resume replays",
         "rollbacks", "checkpoints", "backoff", "wasted elems", "resolved"],
        rows,
        notes="restart replays = completed phases a restart-based system "
        "discards at the fault ('-' = fault at phase 0, nothing to "
        "discard); resume replays are bounded by the checkpoint cadence "
        "regardless of fault depth.  For the permanent fault a restart "
        "would loop forever (same fault on every attempt; the column "
        "shows the first attempt's bill) — resume repairs the plan "
        "and finishes.",
    )
    hit = [r for r in rows if r[2] != "-" and r[4] > 0]
    assert hit, "no sweep point actually encountered its fault"
    # The headline claim: past the first checkpoint interval, resume
    # strictly beats restart.
    deep = [r for r in hit if r[2] > CADENCE]
    assert deep, "no fault landed after the first checkpoint interval"
    for row in deep:
        assert row[3] < row[2], (
            f"resume replayed {row[3]} phase(s) but restart only "
            f"{row[2]} for {row[0]}"
        )
    # And the bound itself: replays never exceed rollbacks x cadence.
    for row in hit:
        assert row[3] <= row[4] * CADENCE


def test_cadence_trades_snapshots_for_replay(benchmark):
    rows = benchmark.pedantic(sweep_cadence, rounds=1, iterations=1)
    emit_table(
        "recovery_cadence_tradeoff",
        "Checkpoint cadence vs replay length (same mid-run transient "
        f"fault, CM {N}-cube, {ELEMENTS} elements, {ALGORITHM})",
        ["every", "checkpoints", "resume replays", "wasted elems",
         "model time"],
        rows,
        notes="Finer cadence takes more snapshots and replays less; the "
        "modelled time is flat because snapshots are priced as memory "
        "copies, not communication.",
    )
    assert rows[0][2] <= rows[-1][2]  # finest cadence replays the least
    assert rows[0][1] >= rows[-1][1]  # ...by taking the most snapshots
