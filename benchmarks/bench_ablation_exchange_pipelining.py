"""Ablation: n-port all-to-all — plain exchange, pipelined exchange, SBnT.

§3.2 in one table: the plain exchange wastes the extra ports entirely;
pipelining it helps but "the algorithm so modified is suboptimal"
(descending dimension order funnels half of each node's traffic through
one port on the first hop); SBnT's base-rotation port assignment
balances the load and approaches the ``M/(2N) t_c + n tau`` bound.
"""

from benchmarks.reporting import emit_table
from repro.analysis.models import all_to_all_nport_min_time
from repro.comm.all_to_all import (
    all_to_all_exchange,
    all_to_all_personalized_data,
    all_to_all_pipelined_exchange,
    all_to_all_sbnt,
)
from repro.machine import CubeNetwork, custom_machine
from repro.machine.params import PortModel

CASES = [(3, 32), (4, 16), (5, 16), (6, 8)]
TAU, T_C = 1.0, 1.0

RUNNERS = {
    "exchange": all_to_all_exchange,
    "pipelined": all_to_all_pipelined_exchange,
    "sbnt": all_to_all_sbnt,
}


def run_case(n: int, K: int, name: str) -> float:
    net = CubeNetwork(
        custom_machine(n, tau=TAU, t_c=T_C, port_model=PortModel.N_PORT)
    )
    all_to_all_personalized_data(net, K)
    RUNNERS[name](net)
    return net.time


def sweep():
    rows = []
    for n, K in CASES:
        M = (1 << n) ** 2 * K
        params = custom_machine(
            n, tau=TAU, t_c=T_C, port_model=PortModel.N_PORT
        )
        model = all_to_all_nport_min_time(params, M)
        rows.append(
            [
                n,
                run_case(n, K, "exchange"),
                run_case(n, K, "pipelined"),
                run_case(n, K, "sbnt"),
                model,
            ]
        )
    return rows


def test_ablation_exchange_pipelining(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "ablation_exchange_pipelining",
        "Ablation: n-port all-to-all — exchange vs pipelined exchange vs "
        "SBnT (abstract units)",
        ["n", "exchange", "pipelined", "SBnT", "model M/(2N)tc + n tau"],
        rows,
        notes="§3.2: pipelining helps the exchange but stays suboptimal; "
        "SBnT tracks the n-port bound.",
    )
    for n, plain, piped, sbnt, model in rows:
        assert sbnt <= piped <= plain
        assert sbnt <= 2.0 * model
    # The pipelined/SBnT gap widens with the cube dimension.
    first, last = rows[0], rows[-1]
    assert last[2] / last[3] > first[2] / first[3]
