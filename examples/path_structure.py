#!/usr/bin/env python
"""Reproduce the paper's structural figures: the MPT path family (Figs 3-4)
and dimension permutation by parallel swapping (Fig 8).

Prints the 2H(x) edge-disjoint paths from x = (000111) to tr(x) = (111000)
on a 6-cube (Figure 4), the ~_s equivalence class containing x (Figure 3),
and a log(n)-round parallel-swapping decomposition of an 8-dimension
permutation (Figure 8).

Run:  python examples/path_structure.py
"""

from repro.cube.paths import (
    mpt_paths,
    same_set_relation,
    transpose_hamming,
    transpose_partner,
)
from repro.cube.topology import path_dims_to_nodes
from repro.permute.dimperm import decompose_parallel_swappings

N = 6
X = 0b000111


def fmt(node: int) -> str:
    return format(node, f"0{N}b")


def main() -> None:
    tr = transpose_partner(X, N)
    h = transpose_hamming(X, N)
    print(f"Figure 4: the {2 * h} edge-disjoint MPT paths")
    print(f"  from x = ({fmt(X)}) to tr(x) = ({fmt(tr)}), H(x) = {h}\n")
    for p, dims in enumerate(mpt_paths(X, N)):
        nodes = path_dims_to_nodes(X, dims)
        arrow = " -> ".join(fmt(v) for v in nodes)
        print(f"  path {p} (dims {dims}): {arrow}")

    key = same_set_relation(X, N)
    members = [v for v in range(1 << N) if same_set_relation(v, N) == key]
    print(f"\nFigure 3: the ~_s class of x (same anti-diagonal, same "
          f"x XOR tr(x)) — a logical {h}-cube of {len(members)} nodes:")
    print("  " + ", ".join(fmt(v) for v in members))

    edges = set()
    total = 0
    for v in members:
        for dims in mpt_paths(v, N):
            nodes = path_dims_to_nodes(v, dims)
            for e in zip(nodes, nodes[1:]):
                edges.add(e)
                total += 1
    print(f"  the class's paths reuse edges across cycles: {total} edge "
          f"traversals over {len(edges)} distinct directed edges "
          f"((2, 2H)-disjoint schedule, Lemma 14)")

    print("\nFigure 8: permuting 8 dimensions by parallel swappings")
    delta = [3, 0, 4, 7, 1, 6, 2, 5]
    print(f"  target permutation delta = {delta}")
    for i, swaps in enumerate(decompose_parallel_swappings(delta), 1):
        print(f"  round {i}: swap dimension pairs {swaps}")
    rounds = decompose_parallel_swappings(delta)
    assert len(rounds) <= 3  # ceil(log2 8)


if __name__ == "__main__":
    main()
