#!/usr/bin/env python
"""Print the paper's illustrative figures from the implementation itself.

* Figures 1-2: cyclic vs consecutive assignment pictures, straight from
  ``Layout.render_assignment`` (the implementation's owner map, not a
  drawing);
* Figures 6-7: the movement pattern of the combined transpose /
  Gray-code-conversion algorithm (§6.3), one grid per routing step —
  the clockwise/counterclockwise rotations of Figure 7 appear as the
  direction each processor forwards its block.

Run:  python examples/paper_figures.py
"""

import numpy as np

from repro.layout import partition as pt
from repro.transpose.two_dim import pairwise_maps


def figures_1_and_2() -> None:
    print("Figure 1 — one-dimensional partitioning (16 x 8, 4 processors)")
    print("\ncyclic rows:")
    print(pt.row_cyclic(4, 3, 2).render_assignment(max_rows=8))
    print("\nconsecutive rows:")
    print(pt.row_consecutive(4, 3, 2).render_assignment(max_rows=8))

    print("\nFigure 2 — two-dimensional partitioning (8 x 8, 2 x 2 processors)")
    print("\ncyclic:")
    print(pt.two_dim_cyclic(3, 3, 1, 1).render_assignment(max_rows=8))
    print("\nconsecutive:")
    print(pt.two_dim_consecutive(3, 3, 1, 1).render_assignment(max_rows=8))


def figures_6_and_7(n: int = 8) -> None:
    """Movement grids of the §6.3 combined algorithm on an n-cube."""
    half = n // 2
    p = half  # one block per processor suffices for the pattern
    before = pt.two_dim_mixed(
        p, p, half, half, rows="cyclic", cols="cyclic", col_gray=True
    )
    after = pt.two_dim_mixed(
        p, p, half, half, rows="cyclic", cols="cyclic", col_gray=True
    )
    partner, _ = pairwise_maps(before, after)

    side = 1 << half
    cur = np.arange(1 << n, dtype=np.int64)
    print(f"\nFigures 6-7 — combined transpose + code conversion on an "
          f"{n}-cube ({side} x {side} processors); per step, the direction "
          f"each processor's block moves ('.' = holds position):")
    for j in range(half - 1, -1, -1):
        for dim, label in ((j + half, "row step"), (j, "column step")):
            grid = [["." for _ in range(side)] for _ in range(side)]
            for x in range(1 << n):
                here = int(cur[x])
                target_bit = (int(partner[x]) >> dim) & 1
                r, c = here >> half, here & (side - 1)
                if ((here >> dim) & 1) != target_bit:
                    if dim >= half:  # vertical (row-field) movement
                        grid[r][c] = "v" if target_bit else "^"
                    else:  # horizontal (column-field) movement
                        grid[r][c] = ">" if target_bit else "<"
                    cur[x] = here ^ (1 << dim)
            print(f"\n  iteration j={j}, {label} (dimension {dim}):")
            for row in grid:
                print("    " + " ".join(row))
    moved = sum(int(cur[x]) != x for x in range(1 << n))
    ok = all(int(cur[x]) == int(partner[x]) for x in range(1 << n))
    print(f"\n  all {moved} moving blocks reached (G^-1(col) || G(row)): {ok}")
    assert ok


def main() -> None:
    figures_1_and_2()
    figures_6_and_7()


if __name__ == "__main__":
    main()
