#!/usr/bin/env python
"""Distributed radix-2 FFT with the library's bit-reversal permutation.

§7's point is that the transpose machinery generalizes: the *general
exchange algorithm* with pairs ``(i, m-1-i)`` realizes the bit-reversal
permutation every decimation-in-frequency FFT needs.  This example runs
a full distributed FFT of ``2^m`` samples on the simulated cube:

* butterfly stages over the high-order (processor) address bits exchange
  whole local arrays with the neighbour across that cube dimension;
* stages over low-order (local) bits are node-local NumPy butterflies;
* the final bit-reversed ordering is repaired with
  :func:`repro.permute.bit_reversal_permute`.

The spectrum is verified against ``numpy.fft.fft``.

Run:  python examples/distributed_fft.py
"""

import numpy as np

from repro import CubeNetwork, DistributedMatrix, Layout, ProcField, intel_ipsc
from repro.machine import Block, Message
from repro.permute.bit_reversal import bit_reversal_permute

M_BITS = 9  # 512 samples
CUBE_DIM = 3  # 8 processors


def vector_layout() -> Layout:
    """A 2^m vector as a 2^m x 1 matrix, cyclic over the low address bits.

    Cyclic assignment keeps each butterfly stage's partner pattern
    simple: the high m - n address bits are local, the low n bits select
    the processor.
    """
    dims = tuple(range(CUBE_DIM - 1, -1, -1))
    return Layout(M_BITS, 0, (ProcField(dims),), name="vector-cyclic")


def butterfly(a: np.ndarray, b: np.ndarray, twiddle: np.ndarray):
    """One DIF butterfly: (a + b, (a - b) * w)."""
    return a + b, (a - b) * twiddle


def distributed_fft(x: np.ndarray) -> tuple[np.ndarray, float]:
    layout = vector_layout()
    dm = DistributedMatrix.from_global(
        x.astype(np.complex128).reshape(-1, 1), layout
    )
    local = dm.local_data.copy()  # shape (N, L); slot j holds sample bits
    net = CubeNetwork(intel_ipsc(CUBE_DIM))
    N, L = local.shape
    m = M_BITS

    # Decimation in frequency: stages from the most significant address
    # bit down.  With the cyclic layout, address bit b >= n is local
    # offset bit b - n; address bits < n live on the processor address.
    for b in range(m - 1, -1, -1):
        span = 1 << b
        if b >= CUBE_DIM:
            # Local butterfly between offset bits.
            off = 1 << (b - CUBE_DIM)
            shaped = local.reshape(N, L // (2 * off), 2, off)
            top = shaped[:, :, 0, :].copy()
            bot = shaped[:, :, 1, :].copy()
            # Twiddle exponent = (top sample index mod span) over the DFT
            # size remaining at this stage (2 * span).
            idx_top = _sample_indices(layout, N, L).reshape(
                N, L // (2 * off), 2, off
            )[:, :, 0, :]
            w = np.exp(-2j * np.pi * (idx_top % span) / (2 * span))
            new_top, new_bot = butterfly(top, bot, w)
            shaped[:, :, 0, :] = new_top
            shaped[:, :, 1, :] = new_bot
        else:
            # Exchange the whole local array with the neighbour across
            # cube dimension b, then combine.
            messages = []
            for proc in range(N):
                net.place(proc, Block(("fft", b, proc), data=local[proc].copy()))
                messages.append(Message(proc, proc ^ (1 << b), (("fft", b, proc),)))
            net.execute_phase(messages)
            combined = np.empty_like(local)
            sample_idx = _sample_indices(layout, N, L)
            for proc in range(N):
                other = net.memory(proc).pop(("fft", b, proc ^ (1 << b))).data
                if (proc >> b) & 1:  # holds the "bottom" halves
                    w = np.exp(
                        -2j * np.pi * (sample_idx[proc] % span) / (2 * span)
                    )
                    combined[proc] = (other - local[proc]) * w
                else:
                    combined[proc] = local[proc] + other
            local = combined
    result = DistributedMatrix(layout, local)

    # The DIF output is in bit-reversed sample order; restore it with the
    # general exchange algorithm (§7).
    restored = bit_reversal_permute(net, result)
    return restored.to_global().reshape(-1), net.time


def _sample_indices(layout: Layout, N: int, L: int) -> np.ndarray:
    """sample_index[proc, slot] = global address stored at (proc, slot)."""
    w = np.arange(N * L, dtype=np.int64)
    owners = layout.owner_array(w)
    offsets = layout.offset_array(w)
    out = np.empty(N * L, dtype=np.int64)
    out[owners * L + offsets] = w
    return out.reshape(N, L)


def main() -> None:
    rng = np.random.default_rng(7)
    x = rng.standard_normal(1 << M_BITS) + 1j * rng.standard_normal(1 << M_BITS)
    spectrum, comm_time = distributed_fft(x)
    reference = np.fft.fft(x)
    err = np.max(np.abs(spectrum - reference)) / np.max(np.abs(reference))
    print(f"{1 << M_BITS}-point FFT on {1 << CUBE_DIM} simulated nodes")
    print(f"max relative error vs numpy.fft: {err:.3e}")
    print(f"modelled communication time (iPSC): {comm_time * 1e3:.1f} ms")
    assert err < 1e-12


if __name__ == "__main__":
    main()
