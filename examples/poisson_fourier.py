#!/usr/bin/env python
"""Poisson's equation by the Fourier (FACR-family) method, distributed.

The paper's second motivating application (§1): "the solution of
Poisson's problem by the Fourier Analysis Cyclic Reduction (FACR)
method" — Fourier-analyze along one axis, solve independent tridiagonal
systems along the other, synthesize back.  Between the two phases the
data must be *transposed*, which is where this library earns its keep.

We solve  u_xx + u_yy = f  on a grid periodic in x and Dirichlet in y:

1. rows (fixed y) are node-local under the consecutive-row layout, so
   the FFT along x is local;
2. transpose (all-to-all exchange on the simulated iPSC);
3. each Fourier mode's tridiagonal system in y is now node-local;
4. transpose back, inverse FFT along x.

The result is verified by applying the discrete Laplacian and checking
the residual against f to machine precision.

Run:  python examples/poisson_fourier.py
"""

import numpy as np

from repro import (
    BufferPolicy,
    CubeNetwork,
    DistributedMatrix,
    intel_ipsc,
    row_consecutive,
)
from repro.transpose import one_dim_transpose_exchange

GRID_BITS = 5  # 32 x 32
CUBE_DIM = 3  # 8 nodes
H = 1.0  # grid spacing (unit)


def tridiag_dirichlet_solve(diag: float, rhs: np.ndarray) -> np.ndarray:
    """Solve tridiag(1, diag, 1) u = rhs along the last axis (complex)."""
    m = rhs.shape[-1]
    cp = np.empty(m, dtype=np.complex128)
    u = np.array(rhs, dtype=np.complex128, copy=True)
    cp[0] = 1.0 / diag
    u[..., 0] = u[..., 0] / diag
    for i in range(1, m):
        denom = diag - cp[i - 1]
        cp[i] = 1.0 / denom
        u[..., i] = (u[..., i] - u[..., i - 1]) / denom
    for i in range(m - 2, -1, -1):
        u[..., i] -= cp[i] * u[..., i + 1]
    return u


def discrete_laplacian(u: np.ndarray) -> np.ndarray:
    """Periodic in axis 1 (x), Dirichlet (zero) in axis 0 (y)."""
    lap = -4.0 * u
    lap += np.roll(u, 1, axis=1) + np.roll(u, -1, axis=1)  # periodic x
    lap[1:, :] += u[:-1, :]
    lap[:-1, :] += u[1:, :]
    return lap / H**2


class DistributedPoissonSolver:
    """FFT_x -> transpose -> tridiag_y -> transpose -> IFFT_x."""

    def __init__(self) -> None:
        self.layout = row_consecutive(GRID_BITS, GRID_BITS, CUBE_DIM)
        self.policy = BufferPolicy(mode="threshold")
        self.comm_time = 0.0
        n_grid = 1 << GRID_BITS
        k = np.arange(n_grid)
        self.eigen_x = 2.0 * np.cos(2.0 * np.pi * k / n_grid) - 2.0

    def _transpose(self, dm: DistributedMatrix) -> DistributedMatrix:
        net = CubeNetwork(intel_ipsc(CUBE_DIM))
        out = one_dim_transpose_exchange(net, dm, self.layout, policy=self.policy)
        self.comm_time += net.time
        return out

    def _map_rows(self, dm: DistributedMatrix, fn) -> DistributedMatrix:
        rows_per = dm.layout.local_block_shape()[0]
        return dm.map_local(lambda tile, proc: fn(tile, proc, rows_per))

    def solve(self, f: np.ndarray) -> np.ndarray:
        n_grid = 1 << GRID_BITS
        # Complex-valued distributed state (FFT coefficients in flight).
        dm = DistributedMatrix(
            self.layout,
            DistributedMatrix.from_global(
                f.astype(np.complex128), self.layout
            ).local_data,
        )
        # 1. FFT along x: rows are local.
        dm = self._map_rows(dm, lambda b, x, r: np.fft.fft(b, axis=1))
        # 2. Transpose: Fourier modes become rows.
        dm = self._transpose(dm)

        # 3. Per-mode tridiagonal solve in y.  After the transpose, node x
        # holds modes k = x*rows_per .. as its local rows.
        def solve_modes(block, node, rows_per):
            out = np.empty_like(block)
            for r in range(block.shape[0]):
                k = node * rows_per + r
                diag = self.eigen_x[k] - 2.0
                out[r] = tridiag_dirichlet_solve(diag, H**2 * block[r])
            return out

        dm = self._map_rows(dm, solve_modes)
        # 4. Transpose back and synthesize.
        dm = self._transpose(dm)
        dm = self._map_rows(dm, lambda b, x, r: np.fft.ifft(b, axis=1))
        return dm.to_global().real


def main() -> None:
    n_grid = 1 << GRID_BITS
    rng = np.random.default_rng(3)
    f = rng.standard_normal((n_grid, n_grid))

    solver = DistributedPoissonSolver()
    u = solver.solve(f)
    residual = discrete_laplacian(u) - f
    err = np.max(np.abs(residual)) / np.max(np.abs(f))
    print(f"Poisson {n_grid}x{n_grid} (periodic x, Dirichlet y) on "
          f"{1 << CUBE_DIM} simulated nodes")
    print(f"relative residual |Au - f| / |f|: {err:.3e}")
    print(f"modelled transpose communication (iPSC): "
          f"{solver.comm_time * 1e3:.1f} ms over 2 transposes")
    assert err < 1e-10


if __name__ == "__main__":
    main()
