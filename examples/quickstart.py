#!/usr/bin/env python
"""Quickstart: transpose a distributed matrix on a simulated hypercube.

Builds a 64 x 64 matrix, spreads it over a 16-node Boolean 4-cube in the
two-dimensional cyclic layout, transposes it with the planner's automatic
algorithm choice on both machine presets, and verifies the result against
``numpy``'s transpose.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CubeNetwork,
    DistributedMatrix,
    connection_machine,
    intel_ipsc,
    transpose,
    two_dim_cyclic,
)


def main() -> None:
    rng = np.random.default_rng(2026)
    A = rng.standard_normal((64, 64))

    # 64 x 64 = 2^6 x 2^6 elements; 2 processor bits per axis -> 4-cube.
    layout = two_dim_cyclic(p=6, q=6, n_r=2, n_c=2)
    print(f"layout: {layout.describe()}")
    print(f"machine: {1 << layout.n} processors, {layout.local_size} elements each\n")

    for preset in (intel_ipsc, connection_machine):
        net = CubeNetwork(preset(layout.n))
        dm = DistributedMatrix.from_global(A, layout)
        result = transpose(net, dm)
        ok = result.verify_against(A)
        print(f"{net.params.name}")
        print(f"  algorithm: {result.algorithm} ({result.comm_class.value})")
        print(f"  correct:   {ok}")
        print(f"  modelled:  {result.stats.summary()}\n")
        assert ok

    # The same call works for any of the paper's layouts — for instance a
    # one-dimensional consecutive row partitioning, which the planner
    # recognizes as all-to-all personalized communication.
    from repro import row_consecutive

    layout_1d = row_consecutive(p=6, q=6, n=4)
    net = CubeNetwork(intel_ipsc(4))
    result = transpose(net, DistributedMatrix.from_global(A, layout_1d))
    print(f"1D layout -> {result.algorithm} ({result.comm_class.value}), "
          f"correct: {result.verify_against(A)}")


if __name__ == "__main__":
    main()
