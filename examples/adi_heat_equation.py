#!/usr/bin/env python
"""ADI heat-equation solver with transposition between sweep directions.

The paper's opening motivation: "the solution of partial differential
equations by the Alternating Direction Method is typically carried out by
transposing the data between the solution phases in the different
directions".  This example does exactly that, on the simulated cube:

* the 2D grid is distributed by consecutive block rows, so tridiagonal
  solves along ``x`` are node-local;
* before each ``y``-direction phase the grid is *transposed* with the
  library's all-to-all exchange algorithm, making the ``y`` solves local;
* a Peaceman-Rachford step needs the orthogonal second difference on its
  right-hand side, so each half-step is: transpose, form the RHS locally,
  transpose back, solve locally.

The distributed result is checked step by step against a sequential
reference solver on the gathered grid.

Run:  python examples/adi_heat_equation.py
"""

import numpy as np

from repro import (
    BufferPolicy,
    CubeNetwork,
    DistributedMatrix,
    intel_ipsc,
    row_consecutive,
)
from repro.transpose import one_dim_transpose_exchange

GRID_BITS = 5  # 32 x 32 grid
CUBE_DIM = 3  # 8 processors
STEPS = 5
R = 0.4  # diffusion number r = alpha dt / h^2


def tridiag_solve(c: float, rhs: np.ndarray) -> np.ndarray:
    """Solve (I - c * d2) u = rhs along the last axis (Thomas algorithm).

    ``d2`` is the 1-D second-difference with Dirichlet (zero) boundaries:
    diagonal ``1 + 2c``, off-diagonals ``-c``.  Vectorized over leading
    axes.
    """
    m = rhs.shape[-1]
    diag = 1 + 2 * c
    cp = np.empty(m)
    u = np.array(rhs, dtype=np.float64, copy=True)
    cp[0] = -c / diag
    u[..., 0] = u[..., 0] / diag
    for i in range(1, m):
        denom = diag + c * cp[i - 1]
        cp[i] = -c / denom
        u[..., i] = (u[..., i] + c * u[..., i - 1]) / denom
    for i in range(m - 2, -1, -1):
        u[..., i] -= cp[i] * u[..., i + 1]
    return u


def second_difference(u: np.ndarray) -> np.ndarray:
    """Second difference along the last axis, zero boundaries."""
    d = -2 * u
    d[..., 1:] += u[..., :-1]
    d[..., :-1] += u[..., 1:]
    return d


def reference_adi_step(U: np.ndarray) -> np.ndarray:
    """One sequential Peaceman-Rachford step on the global grid."""
    half = R / 2
    rhs = U + half * second_difference(U.T).T  # (I + r/2 dyy) U
    U_star = tridiag_solve(half, rhs)  # x-implicit
    rhs2 = U_star + half * second_difference(U_star)  # (I + r/2 dxx)
    return tridiag_solve(half, rhs2.T).T  # y-implicit


class DistributedAdi:
    """The same step, with each directional phase local to the nodes."""

    def __init__(self, U0: np.ndarray) -> None:
        self.row_layout = row_consecutive(GRID_BITS, GRID_BITS, CUBE_DIM)
        self.col_view = row_consecutive(GRID_BITS, GRID_BITS, CUBE_DIM)
        self.dm = DistributedMatrix.from_global(U0, self.row_layout)
        self.policy = BufferPolicy(mode="threshold")
        self.comm_time = 0.0

    def _transpose(self, dm: DistributedMatrix) -> DistributedMatrix:
        net = CubeNetwork(intel_ipsc(CUBE_DIM))
        out = one_dim_transpose_exchange(
            net, dm, self.row_layout, policy=self.policy
        )
        self.comm_time += net.time
        return out

    @staticmethod
    def _map_local(dm: DistributedMatrix, fn) -> DistributedMatrix:
        return dm.map_local(lambda tile, proc: fn(tile))

    def step(self) -> None:
        half = R / 2
        # Phase 1: x-implicit.  The RHS needs the y second difference:
        # transpose, difference locally (rows of U^T are grid columns),
        # transpose back.
        t = self._transpose(self.dm)
        t = self._map_local(t, lambda b: b + half * second_difference(b))
        rhs = self._transpose(t)
        u_star = self._map_local(rhs, lambda b: tridiag_solve(half, b))
        # Phase 2: y-implicit, by the mirror dance.
        u_star = self._map_local(
            u_star, lambda b: b + half * second_difference(b)
        )
        t = self._transpose(u_star)
        t = self._map_local(t, lambda b: tridiag_solve(half, b))
        self.dm = self._transpose(t)

    def grid(self) -> np.ndarray:
        return self.dm.to_global()


def main() -> None:
    n_grid = 1 << GRID_BITS
    x = np.linspace(0, 1, n_grid)
    U0 = np.outer(np.sin(np.pi * x), np.sin(2 * np.pi * x))

    solver = DistributedAdi(U0)
    reference = U0.copy()
    for step in range(1, STEPS + 1):
        solver.step()
        reference = reference_adi_step(reference)
        err = np.max(np.abs(solver.grid() - reference))
        print(f"step {step}: max |distributed - sequential| = {err:.3e}")
        assert err < 1e-12

    energy0 = float(np.sum(U0**2))
    energyT = float(np.sum(reference**2))
    print(f"\ndiffusion sanity: energy {energy0:.4f} -> {energyT:.4f} (decreasing)")
    print(
        f"modelled communication spent in {4 * STEPS} transposes on the "
        f"{1 << CUBE_DIM}-node iPSC: {solver.comm_time * 1e3:.1f} ms"
    )


if __name__ == "__main__":
    main()
