#!/usr/bin/env python
"""The §7 permutation toolkit: everything a transpose engine gives you free.

Demonstrates, on one simulated machine:

1. the bit-reversal permutation (general exchange with pairs (i, m-1-i));
2. a k-shuffle realized as a dimension permutation by parallel swapping
   (Lemma 15), moving real per-node blocks;
3. an arbitrary node permutation via two all-to-all rounds, with its
   cost compared against the dedicated transpose — quantifying §7's
   "the communication complexity is higher than that of the best
   transpose algorithm".

Run:  python examples/permutation_toolkit.py
"""

import numpy as np

from repro import CubeNetwork, DistributedMatrix, custom_machine, two_dim_cyclic
from repro.codes.bits import bit_reverse
from repro.cube.paths import transpose_partner
from repro.machine.params import PortModel
from repro.permute import (
    apply_dimension_permutation,
    arbitrary_node_permutation,
    bit_reversal_permute,
    decompose_parallel_swappings,
)
from repro.transpose import two_dim_transpose_mpt

N_CUBE = 4


def machine():
    return CubeNetwork(
        custom_machine(N_CUBE, tau=2.0, t_c=1.0, port_model=PortModel.N_PORT)
    )


def demo_bit_reversal() -> None:
    layout = two_dim_cyclic(4, 4, 2, 2)
    flat = np.arange(1 << layout.m, dtype=np.float64)
    dm = DistributedMatrix.from_global(flat.reshape(16, 16), layout)
    net = machine()
    out = bit_reversal_permute(net, dm)
    result = out.to_global().reshape(-1)
    ok = all(result[bit_reverse(w, layout.m)] == flat[w] for w in range(256))
    print(f"1. bit reversal of 2^{layout.m} elements: correct={ok}, "
          f"time={net.time:.1f} units, phases={net.stats.phases}")
    assert ok


def demo_shuffle_as_dimension_permutation() -> None:
    n = N_CUBE
    delta = [(i - 1) % n for i in range(n)]  # one-step left shuffle sh^1
    rounds = decompose_parallel_swappings(delta)
    net = machine()
    local = np.arange((1 << n) * 4, dtype=np.float64).reshape(1 << n, 4)
    out = apply_dimension_permutation(net, local, delta)
    # sh^1 on node addresses: node x's data lands at rotate_left(x).
    from repro.codes.bits import rotate_left

    ok = all(
        np.array_equal(out[rotate_left(x, 1, n)], local[x])
        for x in range(1 << n)
    )
    print(f"2. sh^1 as a dimension permutation: {len(rounds)} parallel-"
          f"swapping rounds (Lemma 15 bound {max(1, (n - 1).bit_length())}), "
          f"correct={ok}, time={net.time:.1f} units")
    assert ok


def demo_arbitrary_vs_dedicated() -> None:
    n = N_CUBE
    N = 1 << n
    layout = two_dim_cyclic(4, 4, n // 2, n // 2)
    A = np.arange(256, dtype=np.float64).reshape(16, 16)
    dm = DistributedMatrix.from_global(A, layout)

    direct = machine()
    two_dim_transpose_mpt(direct, dm, layout, rounds=2)

    generic = machine()
    pi = [transpose_partner(x, n) for x in range(N)]
    arbitrary_node_permutation(generic, dm.local_data, pi)

    print(f"3. transpose as arbitrary permutation (2x all-to-all): "
          f"{generic.time:.1f} units / {generic.stats.element_hops} hops "
          f"vs dedicated MPT {direct.time:.1f} units / "
          f"{direct.stats.element_hops} hops")
    assert generic.stats.element_hops > direct.stats.element_hops


def main() -> None:
    demo_bit_reversal()
    demo_shuffle_as_dimension_permutation()
    demo_arbitrary_vs_dedicated()


if __name__ == "__main__":
    main()
