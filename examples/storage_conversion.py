#!/usr/bin/env python
"""Storage-form conversions for a banded-solver workflow (§2, Corollary 6).

The paper motivates *combined* assignments with banded linear system
solvers: the same matrix wants cyclic storage in one phase (load balance
during elimination) and consecutive storage in another (locality during
substitution).  Corollary 6: any conversion among the six one-dimensional
storage forms is all-to-all personalized communication, so every pairing
costs roughly the same.

This example converts a matrix through all storage forms, checks data
integrity after each hop, and tabulates the modelled iPSC time — which
is flat across pairings, as the corollary predicts.

Run:  python examples/storage_conversion.py
"""

import numpy as np

from repro import (
    BufferPolicy,
    CubeNetwork,
    DistributedMatrix,
    classify_transpose,
    column_consecutive,
    column_cyclic,
    combined_contiguous,
    intel_ipsc,
    row_consecutive,
    row_cyclic,
)
from repro.transpose import exchange_transpose

P = Q = 6  # 64 x 64
N_CUBE = 3

FORMS = {
    "consecutive-row": lambda: row_consecutive(P, Q, N_CUBE),
    "cyclic-row": lambda: row_cyclic(P, Q, N_CUBE),
    "consecutive-col": lambda: column_consecutive(P, Q, N_CUBE),
    "cyclic-col": lambda: column_cyclic(P, Q, N_CUBE),
    "combined-row": lambda: combined_contiguous(P, Q, N_CUBE, offset=1, axis="row"),
    "combined-col": lambda: combined_contiguous(P, Q, N_CUBE, offset=2, axis="column"),
}


def logical_fanout(before, after) -> int:
    """Distinct destinations each source communicates with (minimum over
    sources) — Corollary 6 says 2^|R_a| - 1 when I is empty."""
    p, q = before.p, before.q
    w = np.arange(1 << (p + q), dtype=np.int64)
    src = before.owner_array(w)
    u, v = w >> q, w & ((1 << q) - 1)
    dst = after.owner_array((v << p) | u)
    pairs = set(zip(src.tolist(), dst.tolist()))
    fanout = {}
    for s, d in pairs:
        if d != s:
            fanout[s] = fanout.get(s, 0) + 1
    return min(fanout.values(), default=0)


def main() -> None:
    rng = np.random.default_rng(11)
    A = rng.standard_normal((1 << P, 1 << Q))
    policy = BufferPolicy(mode="threshold")
    N = 1 << N_CUBE

    names = list(FORMS)
    header = f"{'conversion':34s} {'class':12s} {'fanout':>6s} {'time (ms)':>10s} {'startups':>9s}"
    print(header)
    a2a_times = []
    for i, src in enumerate(names):
        dst = names[(i + 1) % len(names)]
        before = FORMS[src]()
        after = FORMS[dst]()  # applied to the transposed matrix
        info = classify_transpose(before, after)
        dm = DistributedMatrix.from_global(A, before)
        net = CubeNetwork(intel_ipsc(N_CUBE))
        out = exchange_transpose(net, dm, after, policy=policy)
        assert np.array_equal(out.to_global(), A.T), (src, dst)
        fan = logical_fanout(before, after)
        print(
            f"{src + ' -> ' + dst:34s} {info.comm_class.value:12s} "
            f"{fan:6d} {net.time * 1e3:10.1f} {net.stats.startups:9d}"
        )
        if not info.intersection:
            # Corollary 6: with I empty, everyone talks to everyone.
            assert fan == N - 1, (src, dst, fan)
            # Compare on communication time: the corollary is about the
            # global communication; local buffering copies vary by form.
            a2a_times.append(net.stats.comm_time)
        else:
            # Overlapping processor fields reduce the communication —
            # the I != 0 cases the companion report [4] studies.
            assert fan <= N - 1

    spread = max(a2a_times) / min(a2a_times)
    print(
        f"\nCorollary 6: every I = {{}} conversion is all-to-all "
        f"(fanout {N - 1}); their communication times agree within "
        f"{spread:.2f}x (start-up packaging sets the residual spread)."
    )
    assert spread < 2.5


if __name__ == "__main__":
    main()
