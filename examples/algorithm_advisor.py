#!/usr/bin/env python
"""Algorithm advisor: §9's decision procedure, then a reality check.

For a grid of (machine, matrix size) points this example ranks every
applicable algorithm with the paper's closed-form models, prints the
advisor report, and then *runs* the top recommendation on the simulator
to confirm the prediction is honest (within the scheduling constants).

Run:  python examples/algorithm_advisor.py
"""

import numpy as np

from repro import CubeNetwork, DistributedMatrix, transpose, two_dim_cyclic, row_consecutive
from repro.analysis.report import estimate_transpose_options, format_report
from repro.machine.presets import connection_machine, intel_ipsc


def check_prediction(machine, M_bits: int) -> tuple[str, float, float]:
    """Run the planner's choice and compare with the top estimate."""
    p = M_bits // 2
    n = machine.n
    best = estimate_transpose_options(machine, 1 << M_bits)[0]
    if best.partitioning == "1D":
        layout = row_consecutive(p, M_bits - p, n)
    else:
        layout = two_dim_cyclic(p, M_bits - p, n // 2, n // 2)
    A = np.zeros((1 << p, 1 << (M_bits - p)))
    net = CubeNetwork(machine)
    result = transpose(net, DistributedMatrix.from_global(A, layout))
    return best.name, best.time, net.time


def main() -> None:
    scenarios = [
        (intel_ipsc(6), 16),
        (intel_ipsc(4), 20),
        (connection_machine(6), 16),
        (connection_machine(10), 20),
    ]
    for machine, bits in scenarios:
        print(format_report(machine, 1 << bits))
        name, predicted, measured = check_prediction(machine, bits)
        ratio = measured / predicted
        print(
            f"reality check: ran the recommended partitioning -> "
            f"{measured * 1e3:.2f} ms measured vs {predicted * 1e3:.2f} ms "
            f"predicted for '{name}' ({ratio:.2f}x)\n"
        )
        assert 0.3 < ratio < 4.0, "model and simulator disagree badly"


if __name__ == "__main__":
    main()
