"""Composite permutation pipelines: §6-§7 workloads as compiled plans.

A *workload* chains the paper's data-movement repertoire — transpose
(§4-§5), bit-reversal and dimension permutation (§7), binary <-> Gray
storage conversion (§2, §6) — into one typed stage pipeline, compiles it
to a single :class:`~repro.plans.ir.CompiledPlan` (fusing adjacent
bit-permutation stages into one exchange sequence), and rides the
entire existing stack unchanged: plan cache, replay, checkpointed
recovery, integrity, tracing and the serving layer.  Arbitrary matrix
shapes embed into the power-of-two domain via
:mod:`repro.layout.embed`.

The first composite consumer is the ``fft`` preset — the APE FFT
schedule (dimension permutation + bit-reversal + transpose) of Lippert
et al. — requestable end to end as ``workload="fft@64x64"`` or
``pipeline:bitrev+transpose@13x11``.
"""

from repro.workloads.pipeline import (
    Pipeline,
    chain_plans,
    fuse_ops,
    start_layout,
)
from repro.workloads.serve import WorkloadServe, serve_workload
from repro.workloads.spec import (
    PRESETS,
    Workload,
    WorkloadSpecError,
    build_pipeline,
    parse_workload,
)
from repro.workloads.stages import (
    BitReversalStage,
    DimPermStage,
    GrayConvertStage,
    Stage,
    TransposeStage,
    axis_permutation_order,
)

__all__ = [
    "BitReversalStage",
    "DimPermStage",
    "GrayConvertStage",
    "PRESETS",
    "Pipeline",
    "Stage",
    "TransposeStage",
    "Workload",
    "WorkloadServe",
    "WorkloadSpecError",
    "axis_permutation_order",
    "build_pipeline",
    "chain_plans",
    "fuse_ops",
    "parse_workload",
    "serve_workload",
    "start_layout",
]
