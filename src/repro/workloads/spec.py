"""The ``pipeline:`` workload spec grammar and its typed validation.

::

    spec   := [ "pipeline:" ] stages [ "@" shape ]
    stages := stage ( "+" stage )*
    stage  := "transpose" | "bitrev" | "gray" | "binary"
            | "dimperm:" ( "shuffle" | "unshuffle" | INT ("," INT)* )
            | "fft"                      -- preset, expands in place
    shape  := ROWS "x" COLS              -- arbitrary positive extents

Examples: ``pipeline:bitrev+transpose@13x11``, ``fft@64x64``,
``pipeline:dimperm:2,0,1,3+transpose``.  The ``fft`` preset is the APE
schedule (Lippert et al.): dimension permutation (the perfect shuffle)
+ bit-reversal + transpose, chained as one data-movement plan.

Every malformed token raises :class:`WorkloadSpecError` — a
:class:`ValueError` subclass carrying the offending token and its
position, so CLI and server admission reject requests synchronously
with a per-token message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.embed import EmbeddedShape
from repro.workloads.pipeline import Pipeline
from repro.workloads.stages import (
    BitReversalStage,
    DimPermStage,
    GrayConvertStage,
    Stage,
    TransposeStage,
)

__all__ = [
    "PRESETS",
    "Workload",
    "WorkloadSpecError",
    "build_pipeline",
    "parse_workload",
]

#: Named composite workloads, expanded in place during parsing.
PRESETS: dict[str, tuple[str, ...]] = {
    "fft": ("dimperm:shuffle", "bitrev", "transpose"),
}

_STAGE_VOCABULARY = (
    "transpose|bitrev|gray|binary|dimperm:<perm>|" + "|".join(sorted(PRESETS))
)


class WorkloadSpecError(ValueError):
    """A workload spec failed validation at one specific token.

    ``token`` is the offending text, ``position`` its 1-based index in
    the stage list (or the string ``"shape"`` for the ``@...`` suffix).
    """

    def __init__(self, spec: str, token: str, position, reason: str) -> None:
        self.spec = spec
        self.token = token
        self.position = position
        self.reason = reason
        super().__init__(
            f"workload spec {spec!r}, token {position} ({token!r}): {reason}"
        )


@dataclass(frozen=True)
class Workload:
    """A parsed, canonicalized workload spec."""

    stages: tuple[Stage, ...]
    #: True (unpadded) extents, ``None`` when the spec omitted ``@RxC``.
    rows: int | None
    cols: int | None

    @property
    def canonical(self) -> str:
        base = "pipeline:" + "+".join(s.token for s in self.stages)
        if self.rows is not None:
            base += f"@{self.rows}x{self.cols}"
        return base


def _parse_stage(spec: str, token: str, position: int) -> Stage:
    if token == "transpose":
        return TransposeStage()
    if token == "bitrev":
        return BitReversalStage()
    if token == "gray":
        return GrayConvertStage(to_gray=True)
    if token == "binary":
        return GrayConvertStage(to_gray=False)
    if token.startswith("dimperm:"):
        arg = token[len("dimperm:") :]
        if arg in ("shuffle", "unshuffle"):
            return DimPermStage(named=arg)
        if not arg:
            raise WorkloadSpecError(
                spec, token, position,
                "dimperm needs an argument: shuffle, unshuffle or a "
                "comma-separated bit permutation",
            )
        entries = []
        for part in arg.split(","):
            part = part.strip()
            try:
                entries.append(int(part))
            except ValueError:
                raise WorkloadSpecError(
                    spec, token, position,
                    f"dimperm entry {part!r} is not an integer",
                ) from None
        if sorted(entries) != list(range(len(entries))):
            raise WorkloadSpecError(
                spec, token, position,
                f"{entries} is not a permutation of 0..{len(entries) - 1}",
            )
        return DimPermStage(order=tuple(entries))
    raise WorkloadSpecError(
        spec, token, position,
        f"unknown stage (expected {_STAGE_VOCABULARY})",
    )


def _parse_shape(spec: str, text: str) -> tuple[int, int]:
    parts = text.split("x")
    if len(parts) != 2:
        raise WorkloadSpecError(
            spec, text, "shape", "shape must be ROWSxCOLS, e.g. 13x11"
        )
    extents = []
    for part in parts:
        try:
            extents.append(int(part))
        except ValueError:
            raise WorkloadSpecError(
                spec, text, "shape",
                f"extent {part!r} is not an integer",
            ) from None
    rows, cols = extents
    if rows < 1 or cols < 1:
        raise WorkloadSpecError(
            spec, text, "shape", "extents must be positive"
        )
    return rows, cols


def parse_workload(spec: str) -> Workload:
    """Parse and canonicalize a workload spec (typed per-token errors)."""
    if not isinstance(spec, str) or not spec.strip():
        raise WorkloadSpecError(
            str(spec), str(spec), 1, "empty workload spec"
        )
    body = spec.strip()
    if body.startswith("pipeline:"):
        body = body[len("pipeline:") :]
    rows = cols = None
    if "@" in body:
        body, shape_text = body.split("@", 1)
        rows, cols = _parse_shape(spec, shape_text)
    tokens: list[str] = []
    for raw in body.split("+"):
        token = raw.strip()
        if token in PRESETS:
            tokens.extend(PRESETS[token])
        else:
            tokens.append(token)
    stages = []
    for position, token in enumerate(tokens, start=1):
        if not token:
            raise WorkloadSpecError(
                spec, token, position, "empty stage token"
            )
        stages.append(_parse_stage(spec, token, position))
    return Workload(stages=tuple(stages), rows=rows, cols=cols)


def build_pipeline(
    workload: Workload | str,
    n: int,
    *,
    layout: str = "2d",
    elements: int | None = None,
) -> Pipeline:
    """Materialize a parsed spec on a concrete cube and layout.

    ``elements`` supplies a square default shape when the spec carries
    no ``@RxC`` suffix (exactly the CLI's element vocabulary); layout
    fit and stage ordering problems surface here as ``ValueError``.
    """
    if isinstance(workload, str):
        workload = parse_workload(workload)
    rows, cols = workload.rows, workload.cols
    if rows is None:
        if not elements or elements < 1:
            raise ValueError(
                "workload spec has no @RxC shape; pass an element count"
            )
        bits = elements.bit_length() - 1
        if 1 << bits != elements:
            raise ValueError("element count must be a power of two")
        rows, cols = 1 << (bits // 2), 1 << (bits - bits // 2)
    # Floor the padded extents so the partitioning fits — and, when any
    # stage transposes, so its mirrored layout fits too.
    if layout == "2d":
        min_p = min_q = n // 2
    elif layout == "1d-rows":
        min_p, min_q = n, 0
    elif layout == "1d-cols":
        min_p, min_q = 0, n
    else:
        raise ValueError(f"unknown layout {layout!r}")
    if any(isinstance(s, TransposeStage) for s in workload.stages):
        min_p = min_q = max(min_p, min_q)
    shape = EmbeddedShape.for_shape(rows, cols, min_p=min_p, min_q=min_q)
    return Pipeline(workload.stages, shape, n, layout=layout)
