"""Compile composite stage pipelines into one :class:`CompiledPlan`.

The compiler threads a single location frame through every stage: the
run's *before* layout fixes the frame (exactly as in
:class:`~repro.transpose.exchange.ExchangeExecutor`), each stage
contributes its address map, and the plan records whatever communication
realizes the composite.

**Fusion rules** (see ``docs/workloads.md``):

1. *Compose* — adjacent bit-permutation stages (transpose, bit-reversal,
   dimension permutation) compose algebraically: the fused group plans
   **one** exchange sequence for the *composed* position permutation,
   so cycles shared between stages merge or cancel outright
   (``transpose+transpose`` compiles to zero communication;
   ``bitrev+transpose`` needs half the exchange steps of the two
   schedules run back to back).  Gray re-encodings are not bit
   rearrangements (§2), so a :class:`GrayConvertStage` is a fusion
   barrier executed through the block-routed converter.
2. *Relabel* — when separately captured plans are chained
   (:func:`chain_plans`), XOR node-relabelled segments
   (:meth:`CompiledPlan.relabeled`, the COSTA-style §6.2 remap)
   contribute leading :class:`~repro.plans.ir.RemapOp`s;
   :func:`fuse_ops` folds adjacent masks into one (XOR composes),
   drops identity masks and elides empty phases, so relabel-only
   stages cost nothing at replay.

The output is a plain :class:`~repro.plans.ir.CompiledPlan` with a
content-addressed key (:meth:`Pipeline.key` — the ordinary
:func:`~repro.plans.cache.plan_key` with the canonical spec as the
algorithm), so the cache, replay, recovery, integrity and serving
stacks apply unchanged.  Arbitrary shapes ride along via the padded
embedding of :mod:`repro.layout.embed`: two shapes padding to the same
domain share one plan by construction.
"""

from __future__ import annotations

from dataclasses import replace as _dc_replace

import numpy as np

from repro.layout import partition as pt
from repro.layout.embed import EmbeddedShape, embed, extract
from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.params import MachineParams
from repro.obs.instrumentation import instrumentation_of
from repro.plans.cache import plan_key
from repro.plans.ir import CompiledPlan, PhaseOp, PlanOp, RemapOp
from repro.plans.recorder import RecordingNetwork
from repro.transpose.exchange import (
    BufferPolicy,
    ExchangeExecutor,
    bit_permutation_for_map,
    convert_layout,
    plan_exchange_sequence,
)
from repro.workloads.stages import GrayConvertStage, Stage, TransposeStage

__all__ = ["Pipeline", "chain_plans", "fuse_ops", "start_layout"]


def start_layout(kind: str, p: int, q: int, n: int) -> Layout:
    """The pipeline's initial layout — CLI vocabulary, rectangular-aware."""
    if kind == "2d":
        if n % 2:
            raise ValueError("2d layout needs an even cube dimension")
        return pt.two_dim_cyclic(p, q, n // 2, n // 2)
    if kind == "1d-rows":
        return pt.row_consecutive(p, q, n)
    if kind == "1d-cols":
        return pt.column_cyclic(p, q, n)
    raise ValueError(f"unknown layout {kind!r}")


def _mirror_layout(layout: Layout, kind: str, n: int) -> Layout:
    """The transpose target: the same partitioning kind on ``A^T``."""
    return start_layout(kind, layout.q, layout.p, n)


class Pipeline:
    """A validated stage sequence on one embedded shape, ready to compile."""

    def __init__(
        self,
        stages,
        shape: EmbeddedShape,
        n: int,
        *,
        layout: str = "2d",
        machine_kind: str | None = None,
    ) -> None:
        stages = tuple(stages)
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        for stage in stages:
            if not isinstance(stage, Stage):
                raise TypeError(f"not a pipeline stage: {stage!r}")
        self.stages = stages
        self.shape = shape
        self.n = n
        self.layout_kind = layout
        # Thread the layout/shape through every stage eagerly: this is
        # where barrier ordering ("transpose after gray") and layout/fit
        # problems surface as ValueError, at admission time.
        layouts = [start_layout(layout, shape.p, shape.q, n)]
        shapes = [shape]
        for stage in stages:
            current = layouts[-1]
            if stage.fusible and current.is_gray:
                raise ValueError(
                    f"stage {stage.token!r} needs a binary-encoded frame; "
                    f"insert a 'binary' stage after 'gray'"
                )
            if isinstance(stage, TransposeStage):
                layouts.append(_mirror_layout(current, layout, n))
                shapes.append(shapes[-1].transposed())
            else:
                target = stage.out_layout(current)
                layouts.append(current if target is None else target)
                shapes.append(shapes[-1])
        self.layouts = tuple(layouts)
        self.shapes = tuple(shapes)

    # -- identity ------------------------------------------------------------

    @property
    def algorithm(self) -> str:
        """Canonical stage spec — the plan's algorithm / cache identity."""
        return "pipeline:" + "+".join(s.token for s in self.stages)

    @property
    def spec(self) -> str:
        """Canonical spec including the true (unpadded) shape."""
        return f"{self.algorithm}@{self.shape.rows}x{self.shape.cols}"

    @property
    def before(self) -> Layout:
        return self.layouts[0]

    @property
    def after(self) -> Layout:
        return self.layouts[-1]

    @property
    def out_shape(self) -> EmbeddedShape:
        return self.shapes[-1]

    def key(
        self,
        params: MachineParams,
        *,
        policy: BufferPolicy | None = None,
        packet_size: int | None = None,
        dtype: str = "float64",
        topology: str = "cube",
    ) -> str:
        """Content address: the ordinary plan key with the spec as the
        algorithm.  The true shape is *not* part of the key — plans are
        functions of the padded domain, so ``13x11`` and ``14x12``
        deliberately share one cache entry."""
        return plan_key(
            params,
            self.before,
            self.after,
            self.algorithm,
            policy=policy,
            packet_size=packet_size,
            dtype=dtype,
            topology=topology,
        )

    # -- numpy semantics -----------------------------------------------------

    def reference_padded(self, padded: np.ndarray) -> np.ndarray:
        """Compose every stage's numpy semantics on the padded domain."""
        out = np.asarray(padded)
        p, q = self.shape.p, self.shape.q
        if out.shape != (1 << p, 1 << q):
            raise ValueError(
                f"padded input must be {1 << p}x{1 << q}, got {out.shape}"
            )
        for stage in self.stages:
            out = stage.reference(out)
            p, q = stage.out_shape(p, q)
        return out

    def reference(self, a: np.ndarray, *, fill=0.0) -> np.ndarray:
        """The composed semantics on a true-shape input, extracted."""
        padded = np.full(
            (self.shape.padded_rows, self.shape.padded_cols),
            fill,
            dtype=np.asarray(a).dtype,
        )
        padded[: self.shape.rows, : self.shape.cols] = a
        out = self.reference_padded(padded)
        return out[: self.out_shape.rows, : self.out_shape.cols].copy()

    # -- execution -----------------------------------------------------------

    def _groups(self, fuse: bool):
        """Runs of fusible stages (plus their layout indices); barriers
        stay singleton.  With ``fuse=False`` every stage is its own
        group — the naive chained schedule the fused one is benchmarked
        against."""
        groups: list[tuple[int, list[Stage]]] = []
        for idx, stage in enumerate(self.stages):
            if (
                fuse
                and stage.fusible
                and groups
                and groups[-1][1][-1].fusible
            ):
                groups[-1][1].append(stage)
            else:
                groups.append((idx, [stage]))
        return groups

    def _run(
        self,
        network: CubeNetwork,
        dm: DistributedMatrix,
        *,
        policy: BufferPolicy | None = None,
        fuse: bool = True,
    ) -> DistributedMatrix:
        instr = instrumentation_of(network)
        with instr.span(
            "pipeline",
            category="algorithm",
            spec=self.spec,
            stages=len(self.stages),
            fused=fuse,
        ):
            for start, group in self._groups(fuse):
                label = "+".join(s.token for s in group)
                in_layout = self.layouts[start]
                out_layout = self.layouts[start + len(group)]
                if not group[0].fusible:
                    with instr.span(
                        f"stage({label})", category="workload", kind="convert"
                    ):
                        if out_layout is not in_layout:
                            dm = convert_layout(network, dm, out_layout)
                    continue
                # Compose the group's address maps in one pass; the
                # fused position permutation plans a single exchange
                # sequence (fusion rule 1).
                maps = []
                p, q = in_layout.p, in_layout.q
                for stage in group:
                    maps.append(stage.address_map(p, q))
                    p, q = stage.out_shape(p, q)

                def composed(w: int, _maps=tuple(maps)) -> int:
                    for fn in _maps:
                        w = fn(w)
                    return w

                perm = bit_permutation_for_map(
                    in_layout, out_layout, composed
                )
                pairs = plan_exchange_sequence(perm, in_layout)
                with instr.span(
                    f"stage({label})",
                    category="workload",
                    kind="exchange",
                    stages=len(group),
                    steps=len(pairs),
                ):
                    executor = ExchangeExecutor(network, dm, policy=policy)
                    executor.run(pairs)
                    dm = executor.finish(out_layout)
        return dm

    def synthetic(self, dtype=np.float64) -> np.ndarray:
        """Deterministic padded payload for virtual captures."""
        rows, cols = self.shape.padded_rows, self.shape.padded_cols
        return np.arange(rows * cols, dtype=dtype).reshape(rows, cols)

    def compile(
        self,
        params: MachineParams,
        *,
        policy: BufferPolicy | None = None,
        observer=None,
        topology=None,
        fuse: bool = True,
        dtype: str = "float64",
        record_payloads: bool = False,
    ):
        """Capture the whole pipeline as one :class:`CompiledPlan`.

        Returns ``(plan, payloads)`` — ``payloads`` is the block->array
        ledger when ``record_payloads`` is set (for payload-true
        recovery runs), else ``None``.
        """
        kwargs = {} if topology is None else {"topology": topology}
        network = RecordingNetwork(
            params, record_payloads=record_payloads, **kwargs
        )
        if observer is not None:
            network.observer = observer
        dm = DistributedMatrix.from_global(
            self.synthetic(np.dtype(dtype)), self.before
        )
        self._run(network, dm, policy=policy, fuse=fuse)
        plan = network.compile(
            algorithm=self.algorithm,
            before=self.before,
            after=self.after,
            requested=self.spec,
            comm_class="pipeline",
            dtype=dtype,
        )
        plan = _dc_replace(plan, ops=fuse_ops(plan.ops))
        return plan, (network.payloads if record_payloads else None)

    def execute(
        self,
        network: CubeNetwork,
        a: np.ndarray,
        *,
        policy: BufferPolicy | None = None,
        fuse: bool = True,
        fill=0.0,
    ) -> np.ndarray:
        """Run the pipeline on real data; returns the extracted result."""
        dm = embed(np.asarray(a), self.shape, self.before, fill=fill)
        dm = self._run(network, dm, policy=policy, fuse=fuse)
        return extract(dm, self.out_shape)


def fuse_ops(ops) -> tuple[PlanOp, ...]:
    """Plan-level fusion pass: fold relabels, drop no-op phases.

    Adjacent :class:`RemapOp` masks XOR-compose into one; identity masks
    and empty phases are elided.  Replay semantics are unchanged — the
    replay mask-folding loop applies exactly the composed mask.
    """
    fused: list[PlanOp] = []
    for op in ops:
        if isinstance(op, PhaseOp) and not op.messages:
            continue
        if isinstance(op, RemapOp):
            if fused and isinstance(fused[-1], RemapOp):
                mask = fused[-1].mask ^ op.mask
                fused.pop()
                if mask:
                    fused.append(RemapOp(mask))
                continue
            if not op.mask:
                continue
        fused.append(op)
    return tuple(fused)


def chain_plans(plans, *, algorithm: str | None = None) -> CompiledPlan:
    """Chain separately captured plans into one, applying fusion rule 2.

    Every plan must target the same machine and the layouts must be
    continuous (each plan's *after* is the next plan's *before*).  The
    chained op stream goes through :func:`fuse_ops`, so relabel-only
    segments (plans spliced via :meth:`CompiledPlan.relabeled`)
    collapse to a single mask — or to nothing when masks cancel.
    """
    plans = list(plans)
    if not plans:
        raise ValueError("chain_plans needs at least one plan")
    first = plans[0]
    ops: list[PlanOp] = []
    for prev, nxt in zip(plans, plans[1:]):
        if nxt.machine.as_dict(with_name=False) != first.machine.as_dict(
            with_name=False
        ):
            raise ValueError("chained plans must share one machine model")
        if prev.after.as_dict() != nxt.before.as_dict():
            raise ValueError(
                f"plan layouts are not continuous: {prev.algorithm!r} ends "
                f"in {prev.after.name!r} but {nxt.algorithm!r} starts from "
                f"{nxt.before.name!r}"
            )
        if nxt.dtype != first.dtype:
            raise ValueError("chained plans must agree on dtype")
    for plan in plans:
        ops.extend(plan.ops)
    name = algorithm or "+".join(p.algorithm for p in plans)
    return CompiledPlan(
        algorithm=name,
        machine=first.machine,
        before=first.before,
        after=plans[-1].after,
        ops=fuse_ops(ops),
        requested=name,
        comm_class="pipeline",
        dtype=first.dtype,
        code_version=first.code_version,
    )
