"""Serve compiled pipelines: cache, replay, and checkpointed recovery.

The pipeline analogue of :func:`repro.plans.replay.replay_degraded`.
A pipeline has no §9 degradation ladder — there is no slower tier of
"the same pipeline" to fall back to — so the fault story is exactly the
recovery executor's: transient faults resume from checkpoints, permanent
faults go through plan surgery, and when recovery is exhausted the
request fails (the server's retry budget takes it from there).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.engine import CubeNetwork
from repro.machine.faults import FaultPlan
from repro.machine.metrics import TransferStats
from repro.machine.params import MachineParams
from repro.plans.cache import PlanCache
from repro.plans.replay import replay_plan
from repro.recovery.executor import execute_with_recovery
from repro.recovery.policy import RecoveryPolicy
from repro.transpose.exchange import BufferPolicy
from repro.workloads.pipeline import Pipeline

__all__ = ["WorkloadServe", "serve_workload"]


@dataclass
class WorkloadServe:
    """Outcome of one served pipeline request."""

    #: Canonical pipeline algorithm (the plan identity).
    algorithm: str
    #: Full spec including the true shape, as requested.
    requested: str
    stats: TransferStats
    cache_hit: bool
    #: True when the compiled plan ran to completion (always, on
    #: success — pipelines have no direct-fallback tier).
    replayed: bool
    #: Recovery accounting when the run went through the executor.
    recovery: object | None = None
    #: Recovery self-verification verdict (None off the recovery path).
    verified: bool | None = None

    @property
    def resolved(self) -> str:
        if self.recovery is None:
            return "clean"
        return self.recovery.resolved


def serve_workload(
    pipeline: Pipeline,
    params: MachineParams,
    *,
    faults: FaultPlan | None = None,
    cache: PlanCache | None = None,
    policy: BufferPolicy | None = None,
    packet_size: int | None = None,
    observer=None,
    recovery: RecoveryPolicy | None = None,
    dtype: str = "float64",
) -> WorkloadServe:
    """Compile-or-fetch the pipeline's plan and run it once.

    Mirrors the serving layer's clean/faulted split: fault-free requests
    replay the cached plan on a fresh machine; faulted ones run through
    :func:`~repro.recovery.executor.execute_with_recovery` —  under
    ``recovery`` when given, else the default
    :class:`~repro.recovery.policy.RecoveryPolicy`.
    """
    key = pipeline.key(
        params, policy=policy, packet_size=packet_size, dtype=dtype
    )

    def compile_fn():
        plan, _ = pipeline.compile(
            params, policy=policy, dtype=dtype
        )
        return plan

    if cache is not None:
        plan, hit = cache.get_or_compile(
            key, compile_fn, observer=observer
        )
    else:
        plan, hit = compile_fn(), False

    network = CubeNetwork(
        params, faults=None if faults is None else faults.fork()
    )
    if observer is not None:
        observer.attach(network)
    if faults is not None:
        outcome = execute_with_recovery(
            plan, network, policy=recovery or RecoveryPolicy()
        )
        return WorkloadServe(
            algorithm=pipeline.algorithm,
            requested=pipeline.spec,
            stats=network.stats,
            cache_hit=hit,
            replayed=True,
            recovery=outcome.report,
            verified=outcome.verified,
        )
    replay_plan(plan, network)
    return WorkloadServe(
        algorithm=pipeline.algorithm,
        requested=pipeline.spec,
        stats=network.stats,
        cache_hit=hit,
        replayed=True,
    )
