"""Typed stage IR for composite permutation pipelines (§6-§7).

Each stage describes one data-movement step of a composite workload as
three coupled views:

* an **address map** on the flat ``m``-bit element address space — the
  mathematical meaning (what :meth:`Stage.reference` computes in numpy);
* a **shape/layout effect** — whether the stage transposes the extents,
  re-encodes processor fields, or leaves the frame alone;
* a **fusibility class** — stages whose address map is a *bit
  permutation* of the address space compose algebraically, so adjacent
  runs of them compile to a single exchange sequence
  (:mod:`repro.workloads.pipeline`); Gray re-encodings are not bit
  rearrangements (§2) and act as fusion barriers.

The four concrete stages cover the paper's repertoire: transposition
(§4-§5), bit-reversal and dimension permutation (§7), and storage-scheme
conversion between binary and Gray encodings (§2, §6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.fields import Layout
from repro.layout.partition import two_dim_cyclic

__all__ = [
    "BitReversalStage",
    "DimPermStage",
    "GrayConvertStage",
    "Stage",
    "TransposeStage",
    "axis_permutation_order",
]


class Stage:
    """Base protocol: one pipeline step on a ``2^p x 2^q`` domain."""

    #: Spec-grammar token (:mod:`repro.workloads.spec`).
    token: str = ""
    #: Bit-permutation stages fuse; barrier stages run standalone.
    fusible: bool = True

    def out_shape(self, p: int, q: int) -> tuple[int, int]:
        """The ``(p, q)`` extents after this stage."""
        return (p, q)

    def address_map(self, p: int, q: int):
        """``w -> w'`` on flat addresses: datum ``w`` ends at ``w'``.

        The flat address of element ``(u, v)`` is ``u * 2^q + v`` —
        exactly the row-major index, so :meth:`reference` and this map
        agree by construction.
        """
        raise NotImplementedError

    def reference(self, a: np.ndarray) -> np.ndarray:
        """Numpy semantics on the (padded) global matrix."""
        raise NotImplementedError

    def out_layout(self, layout: Layout) -> Layout | None:
        """Target layout for barrier stages (``None`` = unchanged)."""
        return None

    def describe(self) -> str:
        return self.token


@dataclass(frozen=True)
class TransposeStage(Stage):
    """Matrix transposition: ``(u || v) -> (v || u)``, extents mirrored."""

    token = "transpose"
    fusible = True

    def out_shape(self, p: int, q: int) -> tuple[int, int]:
        return (q, p)

    def address_map(self, p: int, q: int):
        mask = (1 << q) - 1

        def remap(w: int) -> int:
            return ((w & mask) << p) | (w >> q)

        return remap

    def reference(self, a: np.ndarray) -> np.ndarray:
        return a.T.copy()


@dataclass(frozen=True)
class BitReversalStage(Stage):
    """Radix-2 FFT reordering: datum ``w`` moves to ``reverse_m(w)``."""

    token = "bitrev"
    fusible = True

    def address_map(self, p: int, q: int):
        m = p + q

        def remap(w: int) -> int:
            out = 0
            for i in range(m):
                out |= ((w >> i) & 1) << (m - 1 - i)
            return out

        return remap

    def reference(self, a: np.ndarray) -> np.ndarray:
        m = a.size.bit_length() - 1
        flat = a.reshape(-1)
        out = np.empty_like(flat)
        idx = np.arange(a.size)
        rev = np.zeros(a.size, dtype=np.int64)
        for i in range(m):
            rev |= ((idx >> i) & 1) << (m - 1 - i)
        out[rev] = flat
        return out.reshape(a.shape)


def axis_permutation_order(
    axis_bits: tuple[int, ...], axes: tuple[int, ...]
) -> tuple[int, ...]:
    """Address-bit gather order induced by a d-dimensional axis permutation.

    A ``2^{b_0} x ... x 2^{b_{d-1}}`` array stores axis 0 in the top
    ``b_0`` address bits (row-major).  ``numpy.transpose(a, axes)``
    then rearranges whole *bit fields*; this returns the flat
    ``order`` tuple (``order[i]`` = source bit of output bit ``i``,
    LSB first) for :class:`DimPermStage`.
    """
    d = len(axis_bits)
    if sorted(axes) != list(range(d)):
        raise ValueError(f"{list(axes)} is not a permutation of 0..{d - 1}")
    if any(b < 0 for b in axis_bits):
        raise ValueError("axis bit widths must be non-negative")
    m = sum(axis_bits)
    # starts[k] = LSB position of axis k's field in the input address.
    starts: list[int] = []
    pos = m
    for b in axis_bits:
        pos -= b
        starts.append(pos)
    order: list[int] = [0] * m
    out_pos = m
    for axis in axes:
        b = axis_bits[axis]
        out_pos -= b
        for i in range(b):
            order[out_pos + i] = starts[axis] + i
    return tuple(order)


@dataclass(frozen=True)
class DimPermStage(Stage):
    """General dimension permutation of the address space (§7, Def. 17).

    ``order`` gathers: output address bit ``i`` takes input address bit
    ``order[i]`` (LSB first), so datum ``w`` moves to the address built
    by that gather.  Must be a full permutation of the ``m`` address
    bits.  The named forms ``shuffle`` / ``unshuffle`` (the FFT perfect
    shuffle: rotate the address left / right by one) resolve against the
    concrete ``m`` at compile time.
    """

    order: tuple[int, ...] | None = None
    #: ``None``, ``"shuffle"`` or ``"unshuffle"``.
    named: str | None = None
    fusible = True

    def __post_init__(self) -> None:
        if (self.order is None) == (self.named is None):
            raise ValueError(
                "DimPermStage needs exactly one of order= or named="
            )
        if self.named is not None and self.named not in (
            "shuffle",
            "unshuffle",
        ):
            raise ValueError(f"unknown named dimension permutation "
                             f"{self.named!r}")
        if self.order is not None and sorted(self.order) != list(
            range(len(self.order))
        ):
            raise ValueError(
                f"{list(self.order)} is not a permutation of "
                f"0..{len(self.order) - 1}"
            )

    @classmethod
    def from_axes(
        cls, axis_bits: tuple[int, ...], axes: tuple[int, ...]
    ) -> "DimPermStage":
        """The stage realizing ``numpy.transpose(a, axes)`` on a
        power-of-two d-dimensional view of the matrix."""
        return cls(order=axis_permutation_order(axis_bits, axes))

    @property
    def token(self) -> str:  # type: ignore[override]
        if self.named is not None:
            return f"dimperm:{self.named}"
        return "dimperm:" + ",".join(str(d) for d in self.order)

    def _resolved_order(self, m: int) -> tuple[int, ...]:
        if self.named == "shuffle":
            # Rotate the address left by one: bit i <- bit i-1 (mod m).
            return tuple((i - 1) % m for i in range(m))
        if self.named == "unshuffle":
            return tuple((i + 1) % m for i in range(m))
        assert self.order is not None
        if len(self.order) != m:
            raise ValueError(
                f"dimension permutation covers {len(self.order)} bits but "
                f"the address space has {m}"
            )
        return self.order

    def address_map(self, p: int, q: int):
        order = self._resolved_order(p + q)

        def remap(w: int) -> int:
            out = 0
            for i, src in enumerate(order):
                out |= ((w >> src) & 1) << i
            return out

        return remap

    def reference(self, a: np.ndarray) -> np.ndarray:
        m = a.size.bit_length() - 1
        order = self._resolved_order(m)
        flat = a.reshape(-1)
        out = np.empty_like(flat)
        idx = np.arange(a.size)
        dst = np.zeros(a.size, dtype=np.int64)
        for i, src in enumerate(order):
            dst |= ((idx >> src) & 1) << i
        out[dst] = flat
        return out.reshape(a.shape)

    def describe(self) -> str:
        return self.token


@dataclass(frozen=True)
class GrayConvertStage(Stage):
    """Binary <-> Gray storage-scheme re-encoding (§2) — a fusion barrier.

    The global matrix is unchanged (the *assignment* of elements to
    processors changes), and a pure re-encoding is not a bit
    rearrangement of the address space, so the stage executes standalone
    through :func:`repro.transpose.exchange.convert_layout`'s
    block-routed path.
    """

    #: ``True`` converts every field to Gray, ``False`` back to binary.
    to_gray: bool = True
    fusible = False

    @property
    def token(self) -> str:  # type: ignore[override]
        return "gray" if self.to_gray else "binary"

    def address_map(self, p: int, q: int):
        return lambda w: w

    def reference(self, a: np.ndarray) -> np.ndarray:
        return a.copy()

    def out_layout(self, layout: Layout) -> Layout | None:
        from dataclasses import replace as _replace

        fields = tuple(
            _replace(f, gray=self.to_gray) for f in layout.fields
        )
        if fields == layout.fields:
            return None
        return Layout(layout.p, layout.q, fields, layout.name)

    def describe(self) -> str:
        return self.token


def _mirror_layout(layout: Layout, kind: str, n: int) -> Layout:
    """The transpose target: the same partitioning kind on ``A^T``."""
    from repro.layout import partition as pt

    p, q = layout.q, layout.p
    if kind == "2d":
        return two_dim_cyclic(p, q, n // 2, n // 2)
    if kind == "1d-rows":
        return pt.row_consecutive(p, q, n)
    if kind == "1d-cols":
        return pt.column_cyclic(p, q, n)
    raise ValueError(f"unknown layout {kind!r}")
