"""Other permutations built from transposition machinery (§7).

* bit-reversal via the general exchange algorithm (pairs ``(i, m-1-i)``);
* *dimension permutations* (Definition 17) via at most ``ceil(log2 n)``
  rounds of *parallel swapping* (Definition 18, Lemma 15);
* arbitrary node permutations via two all-to-all personalized
  communications (Stout & Wagar [20, 21]).
"""

from repro.permute.bit_reversal import bit_reversal_pairs, bit_reversal_permute
from repro.permute.dimperm import (
    apply_dimension_permutation,
    decompose_parallel_swappings,
)
from repro.permute.general import arbitrary_node_permutation

__all__ = [
    "apply_dimension_permutation",
    "arbitrary_node_permutation",
    "bit_reversal_pairs",
    "bit_reversal_permute",
    "decompose_parallel_swappings",
]
