"""Dimension permutations via parallel swapping (§7, Lemma 15).

A *dimension permutation* sends the data of processor
``(x_{n-1} ... x_0)`` to processor ``(x_{delta(n-1)} ... x_{delta(0)})``.
A *parallel swapping* is the special case where ``delta`` is an
involution — a set of disjoint dimension transpositions, each executable
as a distance-2 pairwise exchange.  Lemma 15: any dimension permutation
decomposes into at most ``ceil(log2 n)`` parallel swappings, by
repeatedly splitting the dimension set in half and crossing over the
content that belongs in the other half.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message
from repro.obs.instrumentation import instrumentation_of

__all__ = ["decompose_parallel_swappings", "apply_dimension_permutation"]


def _validate_permutation(delta: Sequence[int]) -> list[int]:
    n = len(delta)
    if sorted(delta) != list(range(n)):
        raise ValueError(f"{list(delta)} is not a permutation of 0..{n - 1}")
    return list(delta)


def decompose_parallel_swappings(
    delta: Sequence[int],
) -> list[list[tuple[int, int]]]:
    """Split a dimension permutation into parallel-swapping rounds.

    ``delta`` maps destination position to source position:
    the content of dimension ``delta(i)`` ends up in dimension ``i``
    (Definition 17 read as a gather).  Returns rounds of disjoint
    transpositions; applying the rounds in order realizes ``delta``.
    The number of rounds is at most ``ceil(log2 n)`` (Lemma 15).
    """
    delta = _validate_permutation(delta)
    n = len(delta)
    # content[i] = origin of the content currently at position i.
    content = list(range(n))
    target = list(delta)  # position i must end holding origin delta[i]
    rounds: list[list[tuple[int, int]]] = []
    segments = [list(range(n))]
    while any(len(seg) > 1 for seg in segments):
        swaps: list[tuple[int, int]] = []
        next_segments: list[list[int]] = []
        for seg in segments:
            if len(seg) <= 1:
                next_segments.append(seg)
                continue
            half = len(seg) // 2
            s1, s2 = seg[:half], seg[half:]
            want1 = {target[i] for i in s1}
            cross1 = [i for i in s1 if content[i] not in want1]
            want2 = {target[i] for i in s2}
            cross2 = [i for i in s2 if content[i] not in want2]
            assert len(cross1) == len(cross2)
            swaps.extend(zip(cross1, cross2))
            next_segments.extend([s1, s2])
        for a, b in swaps:
            content[a], content[b] = content[b], content[a]
        if swaps:
            rounds.append(swaps)
        segments = next_segments
    assert content == target, "decomposition failed to realize delta"
    return rounds


def apply_dimension_permutation(
    network: CubeNetwork,
    local_data: np.ndarray,
    delta: Sequence[int],
    *,
    observer=None,
) -> np.ndarray:
    """Physically permute per-node blocks by a dimension permutation.

    Executes the parallel-swapping rounds; each round routes every
    node's block through the (at most two per transposition) dimensions
    where its address bits differ, most-significant first.  Greedy
    bit-correction toward a bit-permuted target is conflict-free, so the
    phases run in the engine's exclusive mode.  Returns the permuted
    array: ``out[y] = in[x]`` with ``y`` = ``x`` bits gathered by
    ``delta``.
    """
    delta = _validate_permutation(delta)
    n = network.params.n
    if len(delta) != n:
        raise ValueError(f"permutation is over {len(delta)} dims, cube has {n}")
    N = 1 << n
    if local_data.shape[0] != N:
        raise ValueError("local data must have one row per processor")

    def rho(x: int) -> int:
        y = 0
        for i in range(n):
            y |= ((x >> delta[i]) & 1) << i
        return y

    if observer is not None:
        observer.attach(network)
    instr = instrumentation_of(network)
    cur = np.arange(N, dtype=np.int64)
    rounds = decompose_parallel_swappings(delta)
    with instr.span(
        "dimension-permutation",
        category="algorithm",
        n=n,
        rounds=len(rounds),
    ):
        for x in range(N):
            network.place(x, Block(("dp", x), data=local_data[x]))
        # Round-local targets: apply this round's transpositions to
        # current positions; route both dimensions of each transposition
        # in order.
        for rnd, swaps in enumerate(rounds):
            target = cur.copy()
            for a, b in swaps:
                for x in range(N):
                    t = int(target[x])
                    ba, bb = (t >> a) & 1, (t >> b) & 1
                    if ba != bb:
                        target[x] = t ^ (1 << a) ^ (1 << b)
            dims = [d for pair in swaps for d in pair]
            with instr.span(
                "parallel-swapping",
                category="permute",
                round=rnd,
                swaps=len(swaps),
            ):
                for d in dims:
                    messages = []
                    movers = []
                    for x in range(N):
                        here = int(cur[x])
                        if ((here >> d) & 1) != ((int(target[x]) >> d) & 1):
                            dst = here ^ (1 << d)
                            messages.append(Message(here, dst, (("dp", x),)))
                            movers.append((x, dst))
                    network.execute_phase(messages, exclusive=True)
                    for x, dst in movers:
                        cur[x] = dst

        out = np.empty_like(local_data)
        for x in range(N):
            final = int(cur[x])
            out[final] = network.memory(final).pop(("dp", x)).data
            if final != rho(x):
                raise AssertionError(
                    "parallel swapping did not realize delta"
                )
    return out
