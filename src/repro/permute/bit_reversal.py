"""Bit-reversal permutation by the general exchange algorithm (§7).

The correspondence for matrix transposition is ``f(i) = i``,
``g(i) = i + n/2``; changing it to ``f(i) = i``, ``g(i) = n - 1 - i``
realizes the bit-reversal permutation
``(x_{n-1} ... x_0) <- (x_0 ... x_{n-1})`` — the data reordering of
radix-2 FFTs.  Every machinery piece (send policies, cost model,
distance classification of Lemma 6) carries over unchanged.
"""

from __future__ import annotations

from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.obs.instrumentation import instrumentation_of
from repro.transpose.exchange import BufferPolicy, ExchangeExecutor

__all__ = ["bit_reversal_pairs", "bit_reversal_permute"]


def bit_reversal_pairs(m: int) -> list[tuple[int, int]]:
    """General-exchange pairs for an ``m``-bit bit-reversal."""
    if m < 0:
        raise ValueError("address width must be non-negative")
    return [(m - 1 - i, i) for i in range(m // 2)]


def bit_reversal_permute(
    network: CubeNetwork,
    dm: DistributedMatrix,
    *,
    policy: BufferPolicy | None = None,
    observer=None,
) -> DistributedMatrix:
    """Permute distributed data so element ``w`` lands at address
    ``reverse(w)`` under the same layout.

    The layout is unchanged; gathering the result gives
    ``out.flat[reverse(w)] == in.flat[w]`` over the full ``m``-bit
    address space.  ``observer`` (an
    :class:`~repro.obs.instrumentation.Instrumentation` hub) is
    installed on the network so the run's ``bit-reversal`` span and its
    per-step exchange leaves land in traces and heatmaps exactly like
    transpose phases.
    """
    if observer is not None:
        observer.attach(network)
    with instrumentation_of(network).span(
        "bit-reversal", category="algorithm", m=dm.layout.m
    ):
        executor = ExchangeExecutor(network, dm, policy=policy)
        executor.run(bit_reversal_pairs(dm.layout.m))
        return executor.finish(dm.layout)
