"""Arbitrary permutations via two all-to-all personalized communications.

§7 (after Stout & Wagar [20, 21]): any permutation ``pi`` of per-node
data can be realized by two all-to-all personalized communications when
every node holds at least ``N`` elements: node ``x`` first scatters its
data in ``N`` equal slices (slice ``i`` to node ``i``); node ``i`` then
forwards the slice belonging to ``x`` to ``pi(x)``.  Both rounds are
perfectly balanced regardless of ``pi``, which is what makes the method
oblivious — at the price of roughly double the traffic of a direct
algorithm, which is why §7 notes it never beats the dedicated transpose.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.comm.all_to_all import all_to_all_exchange
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block
from repro.obs.instrumentation import instrumentation_of

__all__ = ["arbitrary_node_permutation"]


def arbitrary_node_permutation(
    network: CubeNetwork,
    local_data: np.ndarray,
    pi: Sequence[int],
    *,
    observer=None,
) -> np.ndarray:
    """Send each node's block to node ``pi[x]`` via two all-to-all rounds.

    Returns the permuted array (``out[pi[x]] = in[x]``).  Time and
    traffic land on ``network.stats``; each round moves
    ``N * (N-1)/N * L`` elements like a standard all-to-all.  With
    ``observer`` (or a hub already attached to the network) the run
    emits a ``node-permutation`` span with one ``scatter`` and one
    ``forward`` child per all-to-all round.
    """
    N, L = local_data.shape
    n = network.params.n
    if N != 1 << n:
        raise ValueError("local data must have one row per processor")
    if sorted(pi) != list(range(N)):
        raise ValueError("pi is not a permutation of the node set")
    if L < N:
        raise ValueError(
            f"the two-round method needs at least N={N} elements per node, "
            f"got {L} (§7: message size at least N per processor)"
        )

    if observer is not None:
        observer.attach(network)
    instr = instrumentation_of(network)
    slices = [np.array_split(local_data[x], N) for x in range(N)]
    out = np.empty_like(local_data)
    with instr.span(
        "node-permutation", category="algorithm", nodes=N, elements=L
    ):
        # Round 1: node x scatters slice i of its data to node i.
        with instr.span("scatter", category="permute", round=1):
            for x in range(N):
                for i in range(N):
                    if i == x or slices[x][i].size == 0:
                        continue
                    network.place(
                        x, Block(("perm1", x, i), data=slices[x][i])
                    )
            all_to_all_exchange(network, dest_of=lambda key: key[2])
            for x in range(N):
                for i in range(N):
                    if i == x:
                        continue
                    network.memory(i).pop(("perm1", x, i))

        # Round 2: node i forwards x's slice to pi(x).
        with instr.span("forward", category="permute", round=2):
            for i in range(N):
                for x in range(N):
                    dest = pi[x]
                    if dest == i or slices[x][i].size == 0:
                        continue
                    network.place(
                        i, Block(("perm2", x, i, dest), data=slices[x][i])
                    )
            all_to_all_exchange(network, dest_of=lambda key: key[3])

        for x in range(N):
            dest = pi[x]
            mem = network.memory(dest)
            parts = []
            for i in range(N):
                if slices[x][i].size == 0:
                    continue
                if dest == i:
                    parts.append(slices[x][i])
                else:
                    parts.append(mem.pop(("perm2", x, i, dest)).data)
            out[dest] = np.concatenate(parts)
    return out
