"""Matrix transposition algorithms — the paper's core contribution.

* :mod:`repro.transpose.exchange` — the *standard* and *general exchange
  algorithms* (Definitions 10-11): sequences of address-dimension pair
  exchanges executed on real distributed data, with the §8.1 buffered /
  unbuffered / optimum-threshold send policies.
* :mod:`repro.transpose.one_dim` — one-dimensional partitionings (§5):
  all-to-all personalized communication by the exchange algorithm
  (one-port) or the spanning-balanced-n-tree router (n-port).
* :mod:`repro.transpose.two_dim` — two-dimensional partitionings (§6.1):
  the Single, Dual and Multiple Paths Transpose algorithms (SPT/DPT/MPT)
  with pipelined packet schedules, plus the routing-logic baseline.
* :mod:`repro.transpose.remap` — transposition combined with a change of
  assignment scheme (§6.2, Algorithms 1-3).
* :mod:`repro.transpose.mixed` — transposition combined with Gray/binary
  re-encoding (§6.3): the n-step combined algorithm and the (2n-2)-step
  naive one.
* :mod:`repro.transpose.planner` — the public entry point: classify the
  layout pair, pick an algorithm, run it, report cost.
"""

from repro.transpose.exchange import (
    BufferPolicy,
    ExchangeExecutor,
    conversion_bit_permutation,
    convert_layout,
    exchange_transpose,
    general_exchange_pairs,
    plan_exchange_sequence,
    standard_exchange_pairs,
    transpose_bit_permutation,
)
from repro.transpose.one_dim import (
    block_convert,
    block_transpose,
    one_dim_transpose_exchange,
    one_dim_transpose_sbnt,
)
from repro.transpose.two_dim import (
    two_dim_transpose_dpt,
    two_dim_transpose_mpt,
    two_dim_transpose_router,
    two_dim_transpose_spt,
)
from repro.transpose.fallback import routed_universal_transpose
from repro.transpose.remap import remap_transpose
from repro.transpose.mixed import (
    mixed_code_transpose_combined,
    mixed_code_transpose_naive,
)
from repro.transpose.planner import (
    TransposeInvariantError,
    TransposeResult,
    check_transpose_invariants,
    default_after_layout,
    schedule_links,
    transpose,
)

__all__ = [
    "BufferPolicy",
    "ExchangeExecutor",
    "TransposeInvariantError",
    "TransposeResult",
    "check_transpose_invariants",
    "block_convert",
    "block_transpose",
    "conversion_bit_permutation",
    "convert_layout",
    "default_after_layout",
    "exchange_transpose",
    "general_exchange_pairs",
    "mixed_code_transpose_combined",
    "mixed_code_transpose_naive",
    "one_dim_transpose_exchange",
    "one_dim_transpose_sbnt",
    "plan_exchange_sequence",
    "remap_transpose",
    "routed_universal_transpose",
    "schedule_links",
    "standard_exchange_pairs",
    "transpose",
    "transpose_bit_permutation",
    "two_dim_transpose_dpt",
    "two_dim_transpose_mpt",
    "two_dim_transpose_router",
    "two_dim_transpose_spt",
]
