"""Two-dimensional matrix transposition (§6.1): SPT, DPT, MPT.

With equally many row and column partitions and the same assignment
scheme on both axes, communication is restricted to distinct
source/destination pairs: node ``x`` sends *all* its data to
``tr(x) = (x_c || x_r)`` at distance ``2 H(x)``.  The three algorithms
trade start-ups against bandwidth:

============  ======  ==========================================  =========================
algorithm     paths   pipelined time (packets of B elements)       requirement
============  ======  ==========================================  =========================
SPT           1       ``(ceil(L/B) + n - 1)(B t_c + tau)``         n concurrent ops/node
DPT           2       ``(ceil(L/2B) + n - 1)(B t_c + tau)``        bidirectional links
MPT           2H(x)   ``(2kH+1)(tau + L t_c / (4kH))`` per class   n-port, Lemmas 9-14
============  ======  ==========================================  =========================

Every pipelined schedule here is executed with the engine's *exclusive*
phase mode, so the edge-disjointness lemmas are machine-checked on every
run.  :func:`two_dim_transpose_spt` with ``packet_size=None`` is the
non-pipelined step-by-step variant implemented on the iPSC (§8.2),
including its ``2 L t_copy`` array-rearrangement charge.
"""

from __future__ import annotations

import numpy as np

from repro.cube.paths import (
    dpt_itineraries,
    mpt_paths,
    spt_itinerary,
    transpose_hamming,
    transpose_partner,
)
from repro.cube.topology import path_dims_to_nodes
from repro.layout.classify import CommClass, classify_transpose
from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message
from repro.machine.routing import RoutedTransfer, route_messages
from repro.obs.instrumentation import instrumentation_of

__all__ = [
    "pairwise_maps",
    "two_dim_transpose_spt",
    "two_dim_transpose_dpt",
    "two_dim_transpose_mpt",
    "two_dim_transpose_router",
]


def pairwise_maps(
    before: Layout, after: Layout
) -> tuple[np.ndarray, np.ndarray]:
    """Destination node per source node, and destination offset per element.

    Valid only for PAIRWISE layout pairs (``R_a == R_b``): all elements
    of node ``x`` share one destination.  Returns ``partner`` of shape
    ``(N,)`` and ``dest_offset`` of shape ``(N, L)``.
    """
    info = classify_transpose(before, after)
    if info.comm_class not in (CommClass.PAIRWISE, CommClass.LOCAL):
        raise ValueError(
            f"two-dimensional pairwise transpose needs R_a == R_b, got "
            f"{info.comm_class.value} communication; use the exchange or "
            "block algorithms instead"
        )
    p, q = before.p, before.q
    PQ = 1 << before.m
    L = before.local_size
    w = np.arange(PQ, dtype=np.int64)
    owners = before.owner_array(w)
    offsets = before.offset_array(w)
    w_of_slot = np.empty(PQ, dtype=np.int64)
    w_of_slot[owners * L + offsets] = w
    u, v = w_of_slot >> q, w_of_slot & ((1 << q) - 1)
    w_prime = (v << p) | u
    dest_node = after.owner_array(w_prime).reshape(-1, L)
    dest_offset = after.offset_array(w_prime).reshape(-1, L)
    partner = dest_node[:, 0].copy()
    if np.any(dest_node != partner[:, None]):
        raise AssertionError("pairwise classification violated by layouts")
    return partner, dest_offset


def _finalize(
    network: CubeNetwork,
    after: Layout,
    received: np.ndarray,
    dest_offset: np.ndarray,
    partner: np.ndarray,
    *,
    charge_copy: bool,
) -> DistributedMatrix:
    """Scatter received per-source-order data into final local offsets."""
    N, L = received.shape
    out = np.empty_like(received)
    for y in range(N):
        x = int(partner[y])  # the node whose data y received (tr is an involution)
        out[y][dest_offset[x]] = received[y]
    if charge_copy:
        network.charge_copy({y: L for y in range(N)})
    return DistributedMatrix(after, out)


def _check_network(network: CubeNetwork, before: Layout) -> None:
    if network.params.n != before.n:
        raise ValueError("network dimension does not match the layout")


def _check_partner_is_tr(partner: np.ndarray, n: int) -> None:
    """The SPT/DPT/MPT path families route toward tr(x) specifically."""
    expected = [transpose_partner(x, n) for x in range(len(partner))]
    if not np.array_equal(partner, expected):
        raise ValueError(
            "destination map is pairwise but not tr(x); use the exchange "
            "or block transpose algorithms for this layout pair"
        )


def two_dim_transpose_spt(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    packet_size: int | None = None,
    charge_copy: bool = False,
    greedy: bool = False,
) -> DistributedMatrix:
    """Single Path Transpose (§6.1.1).

    ``packet_size=None`` runs the step-by-step iPSC variant: the whole
    local array crosses one dimension per phase (n phases for the
    anti-diagonal), and with ``charge_copy=True`` the §8.2 two-sided
    array rearrangement is priced.  A packet size enables pipelining:
    packet ``c`` enters the (edge-disjoint) path at cycle ``c``.

    ``greedy`` drops the idle slots of the synchronized schedule — the
    paper's "nodes which are not on the anti-diagonal can either finish
    the transposition earlier in a 'greedy' manner, or synchronize".
    Off-diagonal nodes then complete in ``2 H(x)`` hops instead of ``n``;
    the SPT family's global edge-disjointness keeps even the greedy
    schedule conflict-free, but the port discipline no longer lines up,
    so greedy wants n-port communication (one-port serializes it).
    """
    from repro.cube.paths import spt_path

    before = dm.layout
    _check_network(network, before)
    partner, dest_offset = pairwise_maps(before, after)
    n = before.n
    _check_partner_is_tr(partner, n)
    make = (
        (lambda x: list(spt_path(x, n)))
        if greedy
        else (lambda x: spt_itinerary(x, n))
    )
    itineraries = {
        x: [make(x)]
        for x in range(before.num_procs)
        if transpose_hamming(x, n) > 0
    }
    if charge_copy:
        # Rearranging the 2D local array into a contiguous send buffer.
        network.charge_copy({x: before.local_size for x in itineraries})
    received = _run_pipelined(network, dm.local_data, itineraries, packet_size)
    return _finalize(
        network, after, received, dest_offset, partner, charge_copy=charge_copy
    )


def two_dim_transpose_dpt(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    packet_size: int | None = None,
) -> DistributedMatrix:
    """Dual Paths Transpose (§6.1.2): each node splits its data over the
    two mutually edge-disjoint paths (SPT order and its pairwise
    permutation), halving the transfer term."""
    before = dm.layout
    _check_network(network, before)
    partner, dest_offset = pairwise_maps(before, after)
    n = before.n
    _check_partner_is_tr(partner, n)
    itineraries = {
        x: dpt_itineraries(x, n)
        for x in range(before.num_procs)
        if transpose_hamming(x, n) > 0
    }
    received = _run_pipelined(network, dm.local_data, itineraries, packet_size)
    return _finalize(
        network, after, received, dest_offset, partner, charge_copy=False
    )


def two_dim_transpose_mpt(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    rounds: int = 1,
) -> DistributedMatrix:
    """Multiple Paths Transpose (§6.1.3) — the paper's headline algorithm.

    Node ``x`` splits its data into ``4 * rounds * H(x)`` packets and
    injects one packet per path during the two leading cycles of each
    ``2H(x)``-cycle period; the (2, 2H)-disjointness of Lemma 14
    guarantees a conflict-free schedule, which the engine verifies.
    Completion takes ``2 * rounds * H + 1`` cycles.
    """
    if rounds < 1:
        raise ValueError("rounds must be at least 1")
    before = dm.layout
    _check_network(network, before)
    partner, dest_offset = pairwise_maps(before, after)
    n = before.n
    _check_partner_is_tr(partner, n)
    N, L = dm.local_data.shape

    # Build per-packet itineraries: (inject cycle, path nodes, payload).
    packets: list[dict] = []
    arrival: dict[tuple[int, int], list[np.ndarray]] = {}
    max_cycle = 0
    for x in range(N):
        h = transpose_hamming(x, n)
        if h == 0:
            continue
        paths = [path_dims_to_nodes(x, dims) for dims in mpt_paths(x, n)]
        pieces = np.array_split(dm.local_data[x], 4 * rounds * h)
        idx = 0
        for r in range(rounds):
            for slot in (0, 1):
                for path in paths:
                    if idx >= len(pieces):
                        break
                    packets.append(
                        {
                            "src": x,
                            "seq": idx,
                            "inject": r * 2 * h + slot,
                            "path": path,
                            "size": pieces[idx].size,
                        }
                    )
                    if pieces[idx].size:
                        max_cycle = max(max_cycle, r * 2 * h + slot + 2 * h)
                    idx += 1
        assert idx == len(pieces)
        for i, piece in enumerate(pieces):
            arrival.setdefault((x, i), []).append(piece)

    # Place payloads and run the synchronized cycles.
    for pk in packets:
        if pk["size"] == 0:
            continue
        network.place(
            pk["src"],
            Block(("mpt", pk["src"], pk["seq"]), data=arrival[(pk["src"], pk["seq"])][0]),
        )
    with instrumentation_of(network).span(
        "mpt-pipeline",
        category="tree-level",
        cycles=max_cycle,
        packets=len(packets),
        rounds=rounds,
    ):
        for cycle in range(max_cycle):
            phase: list[Message] = []
            for pk in packets:
                if pk["size"] == 0:
                    continue
                hop = cycle - pk["inject"]
                if 0 <= hop < len(pk["path"]) - 1:
                    phase.append(
                        Message(
                            pk["path"][hop],
                            pk["path"][hop + 1],
                            (("mpt", pk["src"], pk["seq"]),),
                        )
                    )
            network.execute_phase(phase, exclusive=True)

    received = np.empty_like(dm.local_data)
    for y in range(N):
        x = int(partner[y])
        if x == y:
            received[y] = dm.local_data[y]
            continue
        mem = network.memory(y)
        chunks = []
        h = transpose_hamming(x, n)
        for seq in range(4 * rounds * h):
            key = ("mpt", x, seq)
            if key in mem:
                chunks.append(mem.pop(key).data)
        received[y] = np.concatenate(chunks)
    return _finalize(
        network, after, received, dest_offset, partner, charge_copy=False
    )


def two_dim_transpose_router(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
) -> DistributedMatrix:
    """Transpose by handing whole blocks to the e-cube routing logic —
    the Fig. 14b / Fig. 16-18 baseline.  Conflicts queue; no schedule."""
    before = dm.layout
    _check_network(network, before)
    partner, dest_offset = pairwise_maps(before, after)
    N = before.num_procs
    transfers = []
    for x in range(N):
        y = int(partner[x])
        if y == x:
            continue
        network.place(x, Block(("rt", x), data=dm.local_data[x]))
        transfers.append(RoutedTransfer(x, y, (("rt", x),)))
    route_messages(network, transfers)
    received = np.empty_like(dm.local_data)
    for y in range(N):
        x = int(partner[y])
        if x == y:
            received[y] = dm.local_data[y]
        else:
            received[y] = network.memory(y).pop(("rt", x)).data
    return _finalize(
        network, after, received, dest_offset, partner, charge_copy=False
    )


def _run_pipelined(
    network: CubeNetwork,
    local_data: np.ndarray,
    itineraries: dict[int, list[list[int | None]]],
    packet_size: int | None,
) -> np.ndarray:
    """Drive SPT/DPT packet pipelines; returns per-node received arrays.

    ``itineraries[x]`` lists, per path, the globally synchronized
    dimension schedule (length ``n``; ``None`` slots idle).  Packet ``c``
    of every path enters at cycle ``c`` — the paper's schedule where "the
    packet with the same ordinal number of all the nodes uses the same
    dimension (or idles) during the same step".  The synchronization is
    what keeps the one-port SPT free of port contention.
    """
    N, L = local_data.shape
    packets: list[dict] = []
    for x, node_its in itineraries.items():
        shares = np.array_split(local_data[x], len(node_its))
        for pi, (slots, share) in enumerate(zip(node_its, shares)):
            dst = x
            for d in slots:
                if d is not None:
                    dst ^= 1 << d
            if packet_size is None:
                pieces = [share]
            else:
                if packet_size < 1:
                    raise ValueError("packet size must be at least 1")
                count = max(1, -(-share.size // packet_size))
                pieces = np.array_split(share, count)
            for c, piece in enumerate(pieces):
                if piece.size == 0:
                    continue
                key = ("pp", x, pi, c)
                network.place(x, Block(key, data=piece))
                packets.append(
                    {
                        "key": key,
                        "inject": c,
                        "slots": slots,
                        "at": x,
                        "dst": dst,
                    }
                )
    max_cycle = max(
        (pk["inject"] + len(pk["slots"]) for pk in packets), default=0
    )
    with instrumentation_of(network).span(
        "packet-pipeline",
        category="tree-level",
        cycles=max_cycle,
        packets=len(packets),
    ):
        for cycle in range(max_cycle):
            phase = []
            movers = []
            for pk in packets:
                s = cycle - pk["inject"]
                if 0 <= s < len(pk["slots"]) and pk["slots"][s] is not None:
                    src = pk["at"]
                    dst = src ^ (1 << pk["slots"][s])
                    phase.append(Message(src, dst, (pk["key"],)))
                    movers.append((pk, dst))
            network.execute_phase(phase, exclusive=True)
            for pk, dst in movers:
                pk["at"] = dst

    received = np.empty_like(local_data)
    by_dest: dict[int, list[dict]] = {}
    for pk in packets:
        by_dest.setdefault(pk["dst"], []).append(pk)
    for y in range(N):
        arrivals = by_dest.get(y)
        if arrivals is None:
            received[y] = local_data[y]  # diagonal node keeps its data
            continue
        mem = network.memory(y)
        arrivals.sort(key=lambda pk: (pk["key"][2], pk["key"][3]))
        received[y] = np.concatenate([mem.pop(pk["key"]).data for pk in arrivals])
    return received
