"""The standard and general exchange algorithms (Definitions 10-11).

An *exchange step* on the pair of address dimensions ``(g, f)`` moves
every datum whose current location address ``l`` has ``l_g != l_f`` to
the location with both bits complemented.  Depending on where the two
dimensions live (Lemma 6):

* both real-processor dimensions  → communication at distance **2**
  (the two-dimensional transpose steps);
* one real, one virtual           → neighbour exchange at distance **1**
  (the one-dimensional transpose / storage-conversion steps);
* both virtual                    → purely local data movement.

:class:`ExchangeExecutor` executes a sequence of such steps on a
:class:`~repro.layout.matrix.DistributedMatrix`, moving real data through
the :class:`~repro.machine.engine.CubeNetwork` (which prices it and
enforces the topology).  The *before* layout fixes the location-address
frame for the whole run; a datum's location address evolves by the step
involutions, and the final frame is reinterpreted under the target
layout.

Send policies reproduce §8.1: *unbuffered* sends each contiguous run of
moving elements as its own message (one start-up per run), *buffered*
copies all runs into one buffer (copy cost, single start-up set),
*threshold* buffers only runs shorter than ``B_copy`` — the iPSC's
optimum scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message
from repro.obs.instrumentation import instrumentation_of

__all__ = [
    "BufferPolicy",
    "ExchangeExecutor",
    "bit_permutation_for_map",
    "conversion_bit_permutation",
    "convert_layout",
    "exchange_transpose",
    "general_exchange_pairs",
    "plan_blocked_exchange_sequence",
    "plan_exchange_sequence",
    "plan_gray_local_permutations",
    "standard_exchange_pairs",
    "strip_encoding",
    "transpose_bit_permutation",
]


@dataclass(frozen=True)
class BufferPolicy:
    """How a node packages the moving runs of one exchange step.

    ``mode`` is one of:

    * ``"unbuffered"`` — one message per contiguous run (no copy cost,
      many start-ups; §8.1's first scheme, linear in N);
    * ``"buffered"``   — copy all runs into a buffer, send one message
      (copy cost on every element, minimum start-ups);
    * ``"threshold"``  — runs of at least ``min_unbuffered_run`` elements
      go directly, shorter runs are buffered together (the paper's
      optimum scheme; on the iPSC the break-even run is 64 elements).

    ``charge_local_moves`` prices vp-vp steps at ``t_copy`` per moved
    element; by default they are free, modelling the paper's "implicitly
    by indirect addressing" local transposition.
    """

    mode: str = "unbuffered"
    min_unbuffered_run: int = 64
    charge_local_moves: bool = False

    def __post_init__(self) -> None:
        if self.mode not in ("unbuffered", "buffered", "threshold"):
            raise ValueError(f"unknown buffer mode {self.mode!r}")
        if self.min_unbuffered_run < 1:
            raise ValueError("minimum unbuffered run must be >= 1")

    def run_is_buffered(self, run_length: int) -> bool:
        if self.mode == "unbuffered":
            return False
        if self.mode == "buffered":
            return True
        return run_length < self.min_unbuffered_run


class ExchangeExecutor:
    """Executes exchange steps on distributed data through the network."""

    def __init__(
        self,
        network: CubeNetwork,
        dm: DistributedMatrix,
        *,
        policy: BufferPolicy | None = None,
    ) -> None:
        layout = dm.layout
        if layout.is_gray:
            raise ValueError(
                "the exchange executor requires binary-encoded processor "
                "fields; recode Gray layouts locally first (§5) or use the "
                "combined algorithms of repro.transpose.mixed"
            )
        if network.params.n != layout.n:
            raise ValueError(
                f"network is a {network.params.n}-cube but the layout uses "
                f"{layout.n} processor dimensions"
            )
        self.network = network
        self.layout = layout
        self.data = dm.local_data.copy()
        self.policy = policy or BufferPolicy()
        self._step_counter = 0
        self._vp_count = layout.m - layout.n

    # -- steps -----------------------------------------------------------

    def step(self, g: int, f: int) -> None:
        """One exchange on the address-dimension pair ``(g, f)``."""
        if g == f:
            raise ValueError("exchange dimensions must be distinct")
        layout = self.layout
        in_proc = layout.proc_dim_set
        g_proc, f_proc = g in in_proc, f in in_proc
        if g_proc and f_proc:
            kind, execute = "proc-proc", lambda: self._step_proc_proc(g, f)
        elif g_proc or f_proc:
            proc_dim, vp_dim = (g, f) if g_proc else (f, g)
            kind = "proc-vp"
            execute = lambda: self._step_proc_vp(proc_dim, vp_dim)  # noqa: E731
        else:
            kind, execute = "local", lambda: self._step_local(g, f)
        with instrumentation_of(self.network).span(
            f"exchange({g},{f})",
            category="exchange",
            g=g,
            f=f,
            kind=kind,
            step=self._step_counter,
        ):
            execute()
        self._step_counter += 1

    def run(self, pairs: Iterable[tuple[int, int]]) -> None:
        pairs = list(pairs)
        with instrumentation_of(self.network).span(
            "exchange-sequence", category="sequence", steps=len(pairs)
        ):
            for g, f in pairs:
                self.step(g, f)

    def finish(self, after: Layout) -> DistributedMatrix:
        """Reinterpret the final data under the target layout.

        The caller guarantees the step sequence realizes the permutation
        the target layout expects; tests verify via
        :meth:`DistributedMatrix.to_global`.
        """
        return DistributedMatrix(after, self.data)

    # -- distance-2: both dimensions on real processors ---------------------

    def _step_proc_proc(self, g: int, f: int) -> None:
        layout, net = self.layout, self.network
        cg, cf = layout.cube_dim_of(g), layout.cube_dim_of(f)
        moving = [
            x
            for x in range(layout.num_procs)
            if ((x >> cg) & 1) != ((x >> cf) & 1)
        ]
        tag = ("xpp", self._step_counter)
        # Hop 1: across dimension cg to the intermediate node.
        first: list[Message] = []
        for x in moving:
            key = (*tag, x)
            net.place(x, Block(key, data=self.data[x].copy()))
            first.append(Message(x, x ^ (1 << cg), (key,)))
        net.execute_phase(first)
        # Hop 2: across dimension cf to the destination.
        second = [
            Message(x ^ (1 << cg), x ^ (1 << cg) ^ (1 << cf), ((*tag, x),))
            for x in moving
        ]
        net.execute_phase(second)
        for x in moving:
            dst = x ^ (1 << cg) ^ (1 << cf)
            block = net.memory(dst).pop((*tag, x))
            self.data[dst] = block.data

    # -- distance-1: one real, one virtual dimension -------------------------

    def _step_proc_vp(self, proc_dim: int, vp_dim: int) -> None:
        layout, net, policy = self.layout, self.network, self.policy
        c = layout.cube_dim_of(proc_dim)
        b = layout.offset_bit_of(vp_dim)
        run_len = 1 << b
        runs_per_half = self.data.shape[1] // (2 * run_len)
        tag = ("xpv", self._step_counter)

        # All runs in one step share a length, so the policy decision is
        # uniform — which lets the buffered path use a single vectorized
        # gather instead of a per-run Python loop.
        buffer_all = policy.run_is_buffered(run_len)
        messages: list[Message] = []
        copy_elements: dict[int, int] = {}
        manifests: list[tuple[int, int, tuple]] = []  # (dst, moving_bit, key)
        for x in range(layout.num_procs):
            beta = (x >> c) & 1
            moving_bit = beta ^ 1  # slots with offset bit b == not beta move
            dst = x ^ (1 << c)
            # View the local array as (runs, 2, run_len): axis 1 is bit b.
            shaped = self.data[x].reshape(runs_per_half, 2, run_len)
            moving = shaped[:, moving_bit, :]
            if buffer_all:
                key = (*tag, x, "buf")
                payload = moving.copy().reshape(-1)
                net.place(x, Block(key, data=payload))
                messages.append(Message(x, dst, (key,)))
                copy_elements[x] = payload.size
            else:
                # Unbuffered: each run is its own message (start-up each).
                for r in range(runs_per_half):
                    key = (*tag, x, r)
                    net.place(x, Block(key, data=moving[r].copy()))
                    messages.append(Message(x, dst, (key,)))
            manifests.append((dst, moving_bit, (*tag, x)))
        if copy_elements:
            net.charge_copy(copy_elements)
        net.execute_phase(messages)

        # Unpack at destinations: arriving runs land at the same run index
        # with offset bit b complemented — which is the half the receiver
        # just vacated.  Buffered payloads are scattered out of the buffer,
        # which costs another copy (the §8.1 estimate charges PQ/N per
        # buffered step: L/2 gathered at the sender, L/2 scattered here).
        unpack_elements: dict[int, int] = {}
        for dst, moving_bit, base_key in manifests:
            landing_bit = moving_bit ^ 1
            shaped = self.data[dst].reshape(runs_per_half, 2, run_len)
            mem = net.memory(dst)
            if buffer_all:
                buf_block = mem.pop((*base_key, "buf"))
                shaped[:, landing_bit, :] = buf_block.data.reshape(
                    runs_per_half, run_len
                )
                unpack_elements[dst] = buf_block.size
            else:
                for r in range(runs_per_half):
                    shaped[r, landing_bit, :] = mem.pop((*base_key, r)).data
        if unpack_elements:
            net.charge_copy(unpack_elements)

    # -- local: both dimensions virtual --------------------------------------

    def _step_local(self, g: int, f: int) -> None:
        layout = self.layout
        bg, bf = layout.offset_bit_of(g), layout.offset_bit_of(f)
        lo, hi = sorted((bg, bf))
        L = self.data.shape[1]
        # Shape (outer, 2, mid, 2, inner): the two singleton axes are the
        # offset bits hi and lo; swapping them where they differ is the
        # (01) <-> (10) exchange.
        inner = 1 << lo
        mid = 1 << (hi - lo - 1)
        outer = L // (inner * mid * 4)
        shaped = self.data.reshape(-1, outer, 2, mid, 2, inner)
        tmp = shaped[:, :, 0, :, 1, :].copy()
        shaped[:, :, 0, :, 1, :] = shaped[:, :, 1, :, 0, :]
        shaped[:, :, 1, :, 0, :] = tmp
        if self.policy.charge_local_moves:
            moved = L // 2  # half the slots move in each node
            self.network.charge_copy(
                {x: moved for x in range(layout.num_procs)}
            )


# -- pair-sequence constructors ------------------------------------------------


def standard_exchange_pairs(
    g_dims: Sequence[int], f_dims: Sequence[int]
) -> list[tuple[int, int]]:
    """Definition 10: pair two disjoint monotone dimension sequences."""
    if len(g_dims) != len(f_dims):
        raise ValueError("g and f sequences must have equal length")
    if set(g_dims) & set(f_dims):
        raise ValueError("standard exchange requires disjoint sequences")
    _check_monotone(g_dims, "g")
    _check_monotone(f_dims, "f")
    return list(zip(g_dims, f_dims))


def general_exchange_pairs(
    pairs: Sequence[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Definition 11: arbitrary pairs with injective ``g`` and ``f``."""
    gs = [g for g, _ in pairs]
    fs = [f for _, f in pairs]
    if len(set(gs)) != len(gs) or len(set(fs)) != len(fs):
        raise ValueError("general exchange requires injective g(i) and f(i)")
    for g, f in pairs:
        if g == f:
            raise ValueError(f"degenerate pair ({g}, {f})")
    return list(pairs)


def _check_monotone(dims: Sequence[int], label: str) -> None:
    if len(dims) < 2:
        return
    increasing = all(a < b for a, b in zip(dims, dims[1:]))
    decreasing = all(a > b for a, b in zip(dims, dims[1:]))
    if not (increasing or decreasing):
        raise ValueError(f"{label} sequence must be monotone: {list(dims)}")


# -- target permutations and planning -------------------------------------------


def _bit_permutation_from_map(before: Layout, after: Layout, remap) -> dict[int, int]:
    """Position permutation moving datum ``w`` to the location the
    ``after`` layout assigns to ``remap(w)``; both layouts binary."""
    if before.is_gray or after.is_gray:
        raise ValueError("bit permutations require binary-encoded layouts")
    m = before.m

    def target_location(w: int) -> int:
        w_after = remap(w)
        return before.address_of(after.owner(w_after), after.offset(w_after))

    if target_location(0) != 0:
        raise AssertionError("binary layouts must map address 0 to location 0")
    perm: dict[int, int] = {}
    for d in range(m):
        image = target_location(1 << d)
        if image == 0 or image & (image - 1):
            raise AssertionError("layout map is not a bit permutation")
        perm[d] = image.bit_length() - 1
    return perm


def bit_permutation_for_map(
    before: Layout, after: Layout, remap
) -> dict[int, int]:
    """Position permutation realizing an arbitrary address map.

    ``remap`` maps each flat address ``w`` of the *before* frame to the
    address whose *after*-layout position the datum must occupy; both
    layouts must be binary-encoded and the induced location map must be
    a bit permutation.  :func:`transpose_bit_permutation` and
    :func:`conversion_bit_permutation` are the two classic instances;
    :mod:`repro.workloads` uses this directly to plan whole *composed*
    stage pipelines as a single exchange sequence.
    """
    return _bit_permutation_from_map(before, after, remap)


def transpose_bit_permutation(before: Layout, after: Layout) -> dict[int, int]:
    """Position permutation ``T_pos`` realized by the transpose.

    ``T_pos[d] = d'`` means: the content of location-address bit ``d``
    must end up at location-address bit ``d'`` (both in the *before*
    frame) for datum ``w`` to land at the processor/offset the *after*
    layout assigns to the transposed address.  Both layouts must be
    binary-encoded (Gray fields are not bit rearrangements).
    """
    if (after.p, after.q) != (before.q, before.p):
        raise ValueError("after-layout must describe the transposed shape")
    p, q = before.p, before.q
    mask = (1 << q) - 1
    return _bit_permutation_from_map(
        before, after, lambda w: ((w & mask) << p) | (w >> q)
    )


def conversion_bit_permutation(before: Layout, after: Layout) -> dict[int, int]:
    """Position permutation realized by a storage-form *conversion*.

    Same matrix, different layout: datum ``w`` must move to the location
    the ``after`` layout assigns to ``w`` itself.  This is the §2
    "conversion between any two of the 16 assignment schemes" operation
    — cyclic <-> consecutive, re-encodings, field moves — without a
    transpose.
    """
    if (after.p, after.q) != (before.p, before.q):
        raise ValueError("a conversion keeps the matrix shape")
    return _bit_permutation_from_map(before, after, lambda w: w)


def strip_encoding(layout: Layout) -> Layout:
    """The same layout with all fields binary-encoded."""
    from dataclasses import replace as _replace

    fields = tuple(_replace(f, gray=False) for f in layout.fields)
    return Layout(layout.p, layout.q, fields, layout.name)


def exchange_transpose(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    policy: BufferPolicy | None = None,
    pairs: Sequence[tuple[int, int]] | None = None,
    strategy: str = "direct",
) -> DistributedMatrix:
    """Transpose by the (general) exchange algorithm — the generic driver.

    Computes the bit permutation the layout change requires, decomposes
    it into exchange steps (unless an explicit ``pairs`` schedule is
    given), executes them on the network, and returns the data under the
    target layout.

    Gray-encoded layouts are handled per the paper's §5/§6.1 remarks: the
    *binary* exchange schedule is run unchanged, sandwiched between local
    data rearrangements computed by :func:`plan_gray_local_permutations`.
    For same-encoding two-dimensional transposes those rearrangements
    degenerate to the identity (the algorithm "commutes with the
    encoding"); mixed binary/Gray encodings that would force data to the
    wrong processor are rejected — use :mod:`repro.transpose.mixed`.
    """
    return _exchange_remap(
        network,
        dm,
        after,
        policy=policy,
        pairs=pairs,
        transposed=True,
        strategy=strategy,
    )


def convert_layout(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    policy: BufferPolicy | None = None,
    pairs: Sequence[tuple[int, int]] | None = None,
    strategy: str = "direct",
) -> DistributedMatrix:
    """Convert between storage forms *without* transposing (§2).

    The same matrix is redistributed under a different layout: cyclic to
    consecutive (Corollary 7's all-to-all case), a binary to Gray-code
    re-encoding of the processor field, a combined-assignment field move,
    or any mixture — Lemma 7's observation that conversions ride the
    standard exchange algorithm, here without the transpose component.

    Pure re-encodings (binary <-> Gray with the fields otherwise fixed)
    are not bit permutations of the address space, so they cannot ride
    the exchange schedule; those fall back to block-level correction
    routing (:func:`repro.transpose.one_dim.block_convert`), the §2
    "n - 1 routing steps with additional local data rearrangement".
    """
    if (after.p, after.q) != (dm.layout.p, dm.layout.q):
        raise ValueError("a conversion keeps the matrix shape")
    try:
        return _exchange_remap(
            network,
            dm,
            after,
            policy=policy,
            pairs=pairs,
            transposed=False,
            strategy=strategy,
        )
    except ValueError:
        if pairs is not None:
            raise
        from repro.transpose.one_dim import block_convert

        return block_convert(network, dm, after)


def _exchange_remap(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    policy: BufferPolicy | None,
    pairs: Sequence[tuple[int, int]] | None,
    transposed: bool,
    strategy: str = "direct",
) -> DistributedMatrix:
    before = dm.layout
    perm_fn = transpose_bit_permutation if transposed else conversion_bit_permutation
    if strategy == "direct":
        planner = plan_exchange_sequence
    elif strategy == "blocked":
        planner = plan_blocked_exchange_sequence
    else:
        raise ValueError(f"unknown pair strategy {strategy!r}")
    if not (before.is_gray or after.is_gray):
        frame = DistributedMatrix(before, dm.local_data)
        if pairs is None:
            perm = perm_fn(before, after)
            pairs = planner(perm, before)
        executor = ExchangeExecutor(network, frame, policy=policy)
        executor.run(pairs)
        return executor.finish(after)

    s_before = strip_encoding(before)
    s_after = strip_encoding(after)
    perm = perm_fn(s_before, s_after)
    if pairs is None:
        pairs = planner(perm, s_before)
    pre, post = plan_gray_local_permutations(
        before, after, perm, transposed=transposed
    )

    policy = policy or BufferPolicy()
    data = dm.local_data
    num, L = data.shape
    if pre is not None:
        rearranged = np.empty_like(data)
        rearranged.reshape(-1)[pre] = data.reshape(-1)
        data = rearranged
        if policy.charge_local_moves:
            moved = _moved_per_node(pre, num, L)
            network.charge_copy(moved)
    executor = ExchangeExecutor(
        network, DistributedMatrix(s_before, data), policy=policy
    )
    executor.run(pairs)
    transported = executor.finish(s_after).local_data
    if post is not None:
        final = np.empty_like(transported)
        final.reshape(-1)[post] = transported.reshape(-1)
        transported = final
        if policy.charge_local_moves:
            network.charge_copy(_moved_per_node(post, num, L))
    return DistributedMatrix(after, transported)


def _moved_per_node(flat_perm: np.ndarray, num: int, L: int) -> dict[int, int]:
    """Per-node count of elements a local permutation actually relocates."""
    identity = np.arange(flat_perm.size)
    moved = (flat_perm != identity).reshape(num, L).sum(axis=1)
    return {x: int(c) for x, c in enumerate(moved) if c}


def plan_gray_local_permutations(
    before: Layout,
    after: Layout,
    perm: Mapping[int, int],
    *,
    transposed: bool = True,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Local pre/post rearrangements that adapt the binary schedule to
    Gray-encoded layouts (§5: "first perform a transformation locally
    such that block w is moved to block location G(w), then carry out the
    above algorithms").

    The binary exchange schedule realizes a fixed bit permutation
    ``sigma`` of physical (processor, offset) locations.  For each datum
    we know its physical start (from the Gray ``before`` layout) and its
    required physical end (from the Gray ``after`` layout); the only
    freedom is *local*: the offset a datum occupies before the schedule
    runs (``pre``) and after it finishes (``post``).  This function
    solves for those offsets:

    * location bits that ``sigma`` feeds into the destination-processor
      field from the *source offset* are set so the datum routes to its
      required processor;
    * location bits fed from the *source processor* field are forced —
      if they disagree with the required destination, no local fix
      exists and we raise (the §6.3 mixed-encoding case);
    * the remaining free offset bits are assigned by rank within each
      (source node, destination) group, keeping ``pre`` a bijection.

    Returns flattened index maps (``new.flat[map] = old.flat``) of length
    ``N * L`` for the pre and post steps, or ``None`` for an identity.
    For same-encoding two-dimensional transposes both are ``None``.
    """
    s_before = strip_encoding(before)
    m, n = before.m, before.n
    L = before.local_size
    p, q = before.p, before.q
    PQ = 1 << m

    w = np.arange(PQ, dtype=np.int64)
    x_arr = before.owner_array(w)
    j_arr = before.offset_array(w)
    if transposed:
        u, v = w >> q, w & ((1 << q) - 1)
        w_prime = (v << p) | u
    else:
        w_prime = w
    y_arr = after.owner_array(w_prime)
    k_arr = after.offset_array(w_prime)

    # Classify each destination-processor location slot by what feeds it.
    inv_perm = {t: s for s, t in perm.items()}
    proc_positions = s_before.proc_dims  # MSB-first; cube dim n-1-i
    proc_pos_set = set(proc_positions)
    forced: list[tuple[int, int]] = []  # (dest cube dim, source cube dim)
    routed: list[tuple[int, int]] = []  # (dest cube dim, source offset bit)
    for i, t in enumerate(proc_positions):
        dest_cube = n - 1 - i
        s = inv_perm[t]
        if s in proc_pos_set:
            forced.append((dest_cube, s_before.cube_dim_of(s)))
        else:
            routed.append((dest_cube, s_before.offset_bit_of(s)))

    for dest_cube, src_cube in forced:
        if np.any(((y_arr >> dest_cube) & 1) != ((x_arr >> src_cube) & 1)):
            raise ValueError(
                "Gray-encoded data cannot reach its destination processor "
                "by local rearrangement under this schedule; use the "
                "combined Gray/binary algorithms (repro.transpose.mixed)"
            )

    # Constrained offset bits of the pre-rearranged position j2.
    j2 = np.zeros(PQ, dtype=np.int64)
    constrained_mask = 0
    for dest_cube, off_bit in routed:
        j2 |= ((y_arr >> dest_cube) & 1) << off_bit
        constrained_mask |= 1 << off_bit
    free_bits = [b for b in range(m - n) if not (constrained_mask >> b) & 1]

    # Rank each datum within its (source node, constrained pattern) group
    # and spread the rank over the free offset bits.
    order = np.lexsort((j_arr, j2, x_arr))
    group_key = x_arr[order] * L + j2[order]
    starts = np.empty(PQ, dtype=bool)
    starts[0] = True
    starts[1:] = group_key[1:] != group_key[:-1]
    group_ids = np.cumsum(starts) - 1
    group_start = np.zeros(group_ids[-1] + 1, dtype=np.int64)
    group_start[group_ids[starts]] = np.flatnonzero(starts)
    rank_sorted = np.arange(PQ, dtype=np.int64) - group_start[group_ids]
    rank = np.empty(PQ, dtype=np.int64)
    rank[order] = rank_sorted
    if int(rank.max(initial=0)) >> len(free_bits):
        raise ValueError(
            "destination groups overflow the free offset bits; the layout "
            "pair is not realizable by this schedule"
        )
    for i, b in enumerate(free_bits):
        j2 |= ((rank >> i) & 1) << b

    # Location addresses and their image under sigma.
    loc0 = np.zeros(PQ, dtype=np.int64)
    for i, t in enumerate(proc_positions):
        loc0 |= ((x_arr >> (n - 1 - i)) & 1) << t
    vp = s_before.vp_dims
    for i, d in enumerate(vp):
        loc0 |= ((j2 >> (len(vp) - 1 - i)) & 1) << d
    dest = np.zeros(PQ, dtype=np.int64)
    for d in range(m):
        dest |= ((loc0 >> d) & 1) << perm[d]
    y_check = s_before.owner_array(dest)
    if np.any(y_check != y_arr):
        raise AssertionError("gray routing plan failed to reach destinations")
    j_after = s_before.offset_array(dest)

    pre = np.empty(PQ, dtype=np.int64)
    pre[x_arr * L + j_arr] = x_arr * L + j2
    post = np.empty(PQ, dtype=np.int64)
    post[y_arr * L + j_after] = y_arr * L + k_arr

    identity = np.arange(PQ, dtype=np.int64)
    pre_map = None if np.array_equal(pre, identity) else pre
    post_map = None if np.array_equal(post, identity) else post
    return pre_map, post_map


def plan_blocked_exchange_sequence(
    perm: Mapping[int, int], layout: Layout
) -> list[tuple[int, int]]:
    """Decompose a bit permutation in the paper's §5 *blocked* order.

    The §5/§8.1 implementation exchanges each processor dimension with
    the **highest-order virtual dimensions** in turn, so the data sent in
    step ``j`` consists of ``2^{j-1}`` contiguous fragments (1, 2, 4, ...)
    — the fragmentation behind the unbuffered iPSC cost formula, whose
    start-up count totals ``~N`` rather than the per-target-bit counts of
    :func:`plan_exchange_sequence`.  Logical re-indexing ("shuffle my
    blocked array", or the final local transposition) becomes leading and
    trailing virtual-virtual steps.

    The construction: (A) local steps that park, under the ``i``-th
    highest offset bit, the content destined for the ``i``-th processor
    slot; (B) the ``n`` communication steps pairing processor slot ``i``
    with that offset bit; (C) local residue to the exact target.  Raises
    if the permutation requires processor-to-processor movement (use the
    direct planner for 2D pairwise transposes).
    """
    m, n = layout.m, layout.n
    proc = list(layout.proc_dims)  # MSB-first; step order of §5's loop
    vp = list(layout.vp_dims)  # MSB-first
    if n == 0:
        return plan_exchange_sequence(perm, layout)
    if len(vp) < n:
        raise ValueError(
            "the blocked strategy needs at least n virtual dimensions"
        )
    inv = {t: s for s, t in perm.items()}
    participating: list[tuple[int, int]] = []  # (proc slot, feeding vp slot)
    for p_dim in proc:
        s = inv[p_dim]
        if s == p_dim:
            continue  # this processor slot keeps its content
        if s in layout.proc_dim_set:
            raise ValueError(
                "blocked strategy requires each processor slot to be fed "
                "from a virtual dimension (1D transposes/conversions); "
                "use the direct planner"
            )
        participating.append((p_dim, s))
    top = vp[: len(participating)]

    # Phase A: a vp-only permutation parking each feeding slot under the
    # i-th highest offset bit.
    phase_a: dict[int, int] = {}
    used_targets = set()
    for (p_dim, s), h in zip(participating, top):
        phase_a[s] = h
        used_targets.add(h)
    remaining_src = [d for d in vp if d not in phase_a]
    remaining_dst = [d for d in vp if d not in used_targets]
    for s, t in zip(remaining_src, remaining_dst):
        phase_a[s] = t
    for d in proc:
        phase_a[d] = d
    pairs = plan_exchange_sequence(phase_a, layout)

    # Phase B: the §5 loop, highest processor dimension first.
    applied = dict(phase_a)
    for (p_dim, _), h in zip(participating, top):
        pairs.append((p_dim, h))
        # Track contents: swap whatever sits at p_dim and h.
        at_p = [o for o, loc in applied.items() if loc == p_dim]
        at_h = [o for o, loc in applied.items() if loc == h]
        for o in at_p:
            applied[o] = h
        for o in at_h:
            applied[o] = p_dim

    # Phase C: local residue to the exact target permutation.
    residual = {applied[o]: perm[o] for o in applied}
    tail = plan_exchange_sequence(residual, layout)
    for a, b in tail:
        if a in layout.proc_dim_set or b in layout.proc_dim_set:
            raise AssertionError("blocked strategy left a non-local residue")
    return pairs + tail


def plan_exchange_sequence(
    perm: Mapping[int, int], layout: Layout
) -> list[tuple[int, int]]:
    """Decompose a bit permutation into exchange steps, minimizing traffic.

    Each permutation cycle of length ``k`` costs ``k - 1`` exchanges.
    Cycles are pivoted on a virtual dimension when one is available, so
    that every exchange touching a processor dimension is a distance-1
    (processor, virtual) step rather than a distance-2 step; a 2-cycle of
    two processor dimensions (the basic two-dimensional transpose step)
    necessarily stays at distance 2.
    """
    proc = layout.proc_dim_set
    remaining = dict(perm)
    for d, t in remaining.items():
        if not 0 <= d < layout.m or not 0 <= t < layout.m:
            raise ValueError("permutation entries outside the address space")
    seen: set[int] = set()
    steps: list[tuple[int, int]] = []
    for start in sorted(remaining, reverse=True):
        if start in seen:
            continue
        cycle = [start]
        seen.add(start)
        nxt = remaining[start]
        while nxt != start:
            cycle.append(nxt)
            seen.add(nxt)
            nxt = remaining[nxt]
        if len(cycle) == 1:
            continue
        # Pivot on a vp dimension if the cycle has one.
        pivot_idx = next(
            (i for i, d in enumerate(cycle) if d not in proc), None
        )
        if pivot_idx is not None:
            cycle = cycle[pivot_idx:] + cycle[:pivot_idx]
        pivot = cycle[0]
        # Swaps (pivot, c1), (pivot, c2), ... realize "content at c_i
        # moves to c_{i+1}" with the pivot's content closing the cycle.
        for c in cycle[1:]:
            steps.append((pivot, c))
    return steps
