"""Transposition with change of assignment scheme (§6.2).

The paper's worked case: a matrix stored *consecutively* in both axes
(two-dimensional, ``n_r = n_c``) transposed into a *cyclically* stored
result, with ``p = q >= 2 n_r``.  Three exchange-based algorithms differ
in how dimension pairs are ordered:

1. convert row assignment, convert column assignment, then transpose
   globally — ``2n`` communication steps;
2. transpose locally first, then the two conversions, then local
   transposes of the per-node sub-matrices — ``n`` communication steps;
3. pair the conversion and transpose exchanges directly (consecutive-
   column to cyclic-column *between rows*, and vice versa) — ``n``
   communication steps and no pre-transposition, at the cost of a final
   local shuffle.

Each algorithm is expressed as an explicit pair sequence for the
exchange executor; whatever local (virtual-virtual) residue the comm
steps leave is computed against the exact target permutation and
appended as free local steps, so all three provably produce ``A^T``.
"""

from __future__ import annotations

from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.transpose.exchange import (
    BufferPolicy,
    exchange_transpose,
    plan_exchange_sequence,
    transpose_bit_permutation,
)

__all__ = ["remap_transpose", "remap_pair_sequence"]


def _field_positions(p: int, q: int, nr: int) -> dict[str, list[int]]:
    """MSB-first position lists of the six §6.2 sub-fields.

    ``u1``/``v1`` are the consecutive (before) processor fields, ``u3`` /
    ``v3`` the cyclic (after) fields, ``u2``/``v2`` the middles.
    """
    m = p + q
    return {
        "u1": list(range(m - 1, m - nr - 1, -1)),
        "u2": list(range(m - nr - 1, q + nr - 1, -1)),
        "u3": list(range(q + nr - 1, q - 1, -1)),
        "v1": list(range(q - 1, q - nr - 1, -1)),
        "v2": list(range(q - nr - 1, nr - 1, -1)),
        "v3": list(range(nr - 1, -1, -1)),
    }


def remap_pair_sequence(
    before: Layout, after: Layout, algorithm: int, *, columns_first: bool = False
) -> list[tuple[int, int]]:
    """The §6.2 exchange schedule for consecutive -> cyclic transposition.

    The sequence starts with the algorithm's communication steps (pairs
    touching processor dimensions) and ends with the residual local
    steps that align the virtual dimensions with the target layout.
    """
    p, q = before.p, before.q
    if p != q:
        raise ValueError("the §6.2 algorithms assume a square matrix (p == q)")
    nr = before.fields[0].width
    if any(f.width != nr for f in before.fields + after.fields):
        raise ValueError("the §6.2 algorithms assume n_r == n_c")
    if p < 2 * nr:
        raise ValueError("the §6.2 algorithms assume p, q >= 2 n_r")
    f = _field_positions(p, q, nr)

    if algorithm == 1:
        # Convert rows (u1 <-> u3), convert columns (v1 <-> v3), then
        # transpose globally: 2n communication steps.  §6.2: "the order
        # between exchange-row and exchange-column operations can be
        # reversed".
        row_conv = list(zip(f["u1"], f["u3"]))
        col_conv = list(zip(f["v1"], f["v3"]))
        pairs = col_conv + row_conv if columns_first else row_conv + col_conv
        pairs += [(q + j, j) for j in range(q - 1, -1, -1)]
    elif algorithm == 2:
        # Local transpose of the vp sub-matrix (u2u3 <-> v2v3) first;
        # the conversions then run within each axis — after the local
        # transpose the v3 content sits at the u3 *positions*, so the
        # row conversion (u1 <-> u3 positions) deposits it into the row
        # processor field directly.  n communication steps; the final
        # local sub-matrix transposes fall out of the residual.
        pairs = [(q + j, j) for j in range(q - nr - 1, -1, -1)]
        row_conv = list(zip(f["u1"], f["u3"]))
        col_conv = list(zip(f["v1"], f["v3"]))
        pairs += col_conv + row_conv if columns_first else row_conv + col_conv
    elif algorithm == 3:
        # Pair conversion with transposition directly: u1 <-> v3 within
        # column subcubes, v1 <-> u3 within row subcubes; n communication
        # steps, a local shuffle patches the rest.
        row_part = list(zip(f["u1"], f["v3"]))
        col_part = list(zip(f["v1"], f["u3"]))
        pairs = col_part + row_part if columns_first else row_part + col_part
    else:
        raise ValueError(f"§6.2 defines algorithms 1, 2 and 3; got {algorithm}")

    # Residual: whatever remains to reach the exact target permutation
    # must involve only virtual dimensions (free local movement).
    target = transpose_bit_permutation(before, after)
    pos = {d: d for d in range(before.m)}
    for a, b in pairs:
        for o, loc in pos.items():
            if loc == a:
                pos[o] = b
            elif loc == b:
                pos[o] = a
    residual = {pos[o]: target[o] for o in pos}
    proc = before.proc_dim_set
    local_steps = plan_exchange_sequence(residual, before)
    for a, b in local_steps:
        if a in proc or b in proc:
            raise AssertionError(
                f"algorithm {algorithm} left a non-local residual ({a},{b})"
            )
    return pairs + local_steps


def remap_transpose(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    algorithm: int = 3,
    columns_first: bool = False,
    policy: BufferPolicy | None = None,
) -> DistributedMatrix:
    """Transpose 2D-consecutive data into 2D-cyclic layout (§6.2).

    ``columns_first`` reverses the exchange-row / exchange-column order,
    which §6.2 notes is immaterial — a property the tests verify.
    """
    pairs = remap_pair_sequence(
        dm.layout, after, algorithm, columns_first=columns_first
    )
    return exchange_transpose(network, dm, after, policy=policy, pairs=pairs)
