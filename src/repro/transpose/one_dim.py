"""One-dimensional matrix transposition (§5).

With a one-dimensional partitioning the transpose is all-to-all
personalized communication: every node sends ``PQ/N^2`` elements to every
other node, whatever the assignment schemes before and after.  Two
implementations:

* :func:`one_dim_transpose_exchange` — element-level standard exchange
  algorithm (optimal within 2x for one-port), with the §8.1 buffered /
  unbuffered / optimum-threshold send policies;
* :func:`one_dim_transpose_sbnt` — block-level transpose routed by the
  spanning-balanced-n-tree algorithm of the §5 pseudocode (the n-port
  winner), via :func:`repro.comm.all_to_all.all_to_all_sbnt`.

:func:`block_transpose` is the general block-level driver: it works for
*any* pair of equal-``n`` layouts (including Gray and mixed encodings,
and the partially-overlapping ``I != 0`` cases) because it derives each
element's destination directly from the layout algebra and hands the
blocks to a cube router.
"""

from __future__ import annotations

import numpy as np

from repro.comm.all_to_all import all_to_all_sbnt, dimension_sweep
from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block
from repro.transpose.exchange import BufferPolicy, exchange_transpose

__all__ = [
    "block_convert",
    "block_transpose",
    "one_dim_transpose_exchange",
    "one_dim_transpose_sbnt",
]


def _check_one_dim(layout: Layout, role: str) -> None:
    if len(layout.fields) > 1:
        raise ValueError(
            f"{role} layout has {len(layout.fields)} processor fields; "
            "one-dimensional partitioning has a single field"
        )


def one_dim_transpose_exchange(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    policy: BufferPolicy | None = None,
    strategy: str = "blocked",
) -> DistributedMatrix:
    """Transpose a 1D-partitioned matrix by the standard exchange algorithm.

    Each of the ``n`` steps pairs one real-processor dimension with one
    virtual dimension and exchanges half of every node's data with a
    neighbour — the §5 pseudocode.  The default ``"blocked"`` strategy
    reproduces §5's exact step structure (step ``j`` sends ``2^{j-1}``
    contiguous fragments — the fragmentation behind the §8.1 unbuffered
    cost); ``"direct"`` instead targets each processor dimension's final
    position immediately, trading fewer local moves for many small runs.
    """
    _check_one_dim(dm.layout, "before")
    _check_one_dim(after, "after")
    return exchange_transpose(
        network, dm, after, policy=policy, strategy=strategy
    )


def _destinations(
    before: Layout, after: Layout, *, transposed: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per (node, offset): element address, destination node, destination offset."""
    p, q = before.p, before.q
    PQ = 1 << before.m
    L = before.local_size
    w = np.arange(PQ, dtype=np.int64)
    owners = before.owner_array(w)
    offsets = before.offset_array(w)
    w_of_slot = np.empty(PQ, dtype=np.int64)
    w_of_slot[owners * L + offsets] = w  # slot-ordered element addresses
    if transposed:
        u, v = w_of_slot >> q, w_of_slot & ((1 << q) - 1)
        w_prime = (v << p) | u
    else:
        w_prime = w_of_slot
    dest_node = after.owner_array(w_prime)
    dest_offset = after.offset_array(w_prime)
    return w_of_slot, dest_node, dest_offset


def block_transpose(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    router: str = "exchange",
    charge_local: bool = False,
    transposed: bool = True,
) -> DistributedMatrix:
    """Transpose by grouping elements into destination blocks and routing.

    Works for any equal-``n`` layout pair: each node packages its
    elements by destination node (one block per destination, elements
    pre-sorted by destination offset) and the blocks travel by the chosen
    router — ``"exchange"`` (one-port dimension sweep) or ``"sbnt"``
    (n-port balanced-tree routing).  Final placement needs no further
    communication, only local scatter (free, or priced with
    ``charge_local=True``).
    """
    if router not in ("exchange", "sbnt"):
        raise ValueError(f"unknown router {router!r}")
    before = dm.layout
    if before.n != after.n:
        raise ValueError(
            "block_transpose requires the same number of processor "
            "dimensions before and after (introduce virtual elements "
            "otherwise, §5)"
        )
    if network.params.n != before.n:
        raise ValueError("network dimension does not match the layout")
    expected_shape = (before.q, before.p) if transposed else (before.p, before.q)
    if (after.p, after.q) != expected_shape:
        raise ValueError(
            f"after-layout is {2**after.p}x{2**after.q}, expected "
            f"{2**expected_shape[0]}x{2**expected_shape[1]}"
        )
    _, dest_node, dest_offset = _destinations(
        before, after, transposed=transposed
    )
    N, L = dm.local_data.shape
    dest_node = dest_node.reshape(N, L)
    dest_offset = dest_offset.reshape(N, L)

    # Package per (source, destination) blocks, elements ordered by
    # destination offset so receivers can scatter them directly.  One
    # lexsort per node groups its elements by destination, avoiding the
    # O(N) masks-per-node of the naive formulation.
    manifests: dict[tuple[int, int], np.ndarray] = {}
    payloads: dict[tuple[int, int], np.ndarray] = {}
    for x in range(N):
        order = np.lexsort((dest_offset[x], dest_node[x]))
        nodes_sorted = dest_node[x][order]
        offsets_sorted = dest_offset[x][order]
        data_sorted = dm.local_data[x][order]
        boundaries = np.flatnonzero(np.diff(nodes_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [L]))
        for s, e in zip(starts, ends):
            y = int(nodes_sorted[s])
            manifests[(x, y)] = offsets_sorted[s:e]
            payloads[(x, y)] = data_sorted[s:e]
            if y != x:
                network.place(x, Block(("t1d", x, y), data=data_sorted[s:e]))

    if router == "exchange":
        dimension_sweep(
            network,
            list(range(before.n - 1, -1, -1)),
            dest_of=lambda key: key[2],
        )
    else:
        all_to_all_sbnt(network, dest_of=lambda key: key[2])

    out = np.empty_like(dm.local_data)
    moved: dict[int, int] = {}
    for y in range(N):
        mem = network.memory(y)
        count = 0
        for x in range(N):
            offsets = manifests.get((x, y))
            if offsets is None:
                continue
            if x == y:
                out[y][offsets] = payloads[(x, y)]
            else:
                out[y][offsets] = mem.pop(("t1d", x, y)).data
                count += offsets.size
        if count:
            moved[y] = count
    if charge_local and moved:
        network.charge_copy(moved)
    return DistributedMatrix(after, out)


def block_convert(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    router: str = "exchange",
    charge_local: bool = False,
) -> DistributedMatrix:
    """Redistribute the *same* matrix under a new layout, block-routed.

    The conversion counterpart of :func:`block_transpose`: handles any
    equal-``n`` layout pair, including the binary <-> Gray re-encodings
    of §2 that are not bit permutations of the address space.
    """
    return block_transpose(
        network,
        dm,
        after,
        router=router,
        charge_local=charge_local,
        transposed=False,
    )


def one_dim_transpose_sbnt(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    charge_local: bool = False,
) -> DistributedMatrix:
    """Transpose a 1D-partitioned matrix by SBnT routing (§5 pseudocode).

    The n-port algorithm: each destination block leaves its source on the
    port given by the *base* of the relative address and crosses the
    remaining dimensions in ascending cyclic order; all blocks advance
    each phase, finishing in ``n`` phases with per-port balanced traffic.
    """
    _check_one_dim(dm.layout, "before")
    _check_one_dim(after, "after")
    return block_transpose(
        network, dm, after, router="sbnt", charge_local=charge_local
    )
