"""Combined transposition and Gray/binary code conversion (§6.3).

A matrix with rows in binary and columns in Gray code stores block
``(u, v)`` on processor ``(u || G(v))``; its transpose with the same
encoding scheme needs block ``(v, u)`` on ``(v || G(u))``.  Performing
the code conversions separately costs ``2n - 2`` routing steps on top of
nothing — conversion (n/2 - 1), conversion (n/2 - 1), transpose (n).
The paper's combined algorithm interleaves the corrections and finishes
in ``n`` steps: iteration ``j`` fixes bit ``j`` of both the row and the
column processor fields.

Both algorithms here work for any mix of binary/Gray encodings on
either axis (including plain-to-plain, where the combined algorithm
degenerates to the step-by-step SPT).  Correction routing is greedy
most-significant-bit-first; because ``G`` and ``G^{-1}`` are
prefix-preserving bijections, at every step each node holds at most one
block, so the schedule is conflict-free — the engine's exclusive mode
verifies this on every run.
"""

from __future__ import annotations

import numpy as np

from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message
from repro.transpose.two_dim import pairwise_maps

__all__ = [
    "mixed_code_transpose_combined",
    "mixed_code_transpose_naive",
]


def _setup(network: CubeNetwork, dm: DistributedMatrix, after: Layout):
    before = dm.layout
    if network.params.n != before.n:
        raise ValueError("network dimension does not match the layout")
    if before.n % 2:
        raise ValueError("two-dimensional transpose needs an even cube")
    partner, dest_offset = pairwise_maps(before, after)
    return partner, dest_offset


def _correction_phase(
    network: CubeNetwork,
    cur: np.ndarray,
    partner: np.ndarray,
    dim: int,
) -> None:
    """Move every block whose current bit ``dim`` mismatches its target."""
    messages = []
    movers = []
    for x in range(len(cur)):
        here = int(cur[x])
        if ((here >> dim) & 1) != ((int(partner[x]) >> dim) & 1):
            dst = here ^ (1 << dim)
            messages.append(Message(here, dst, (("mx", x),)))
            movers.append((x, dst))
    network.execute_phase(messages, exclusive=True)
    for x, dst in movers:
        cur[x] = dst


def _place_blocks(network: CubeNetwork, dm: DistributedMatrix) -> None:
    # Every node participates: even a block whose final destination is its
    # own node can travel through intermediate conversion stages.
    for x in range(dm.layout.num_procs):
        network.place(x, Block(("mx", x), data=dm.local_data[x]))


def _collect(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    partner: np.ndarray,
    dest_offset: np.ndarray,
) -> DistributedMatrix:
    N, L = dm.local_data.shape
    out = np.empty_like(dm.local_data)
    for y in range(N):
        x = int(partner[y])  # the transpose permutation is an involution
        data = network.memory(y).pop(("mx", x)).data
        out[y][dest_offset[x]] = data
    return DistributedMatrix(after, out)


def mixed_code_transpose_combined(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
    *,
    packet_size: int | None = None,
) -> DistributedMatrix:
    """The n-step combined algorithm of §6.3.

    Iteration ``j`` (descending) routes first the row-field dimension
    ``j + n/2`` and then the column-field dimension ``j``, each time
    moving exactly the blocks whose current processor bit disagrees with
    the destination ``(G^{-1}(x_c) || G(x_r))`` — the Gray-code induced
    extra horizontal/vertical exchanges of Figures 6-7 emerge from the
    bit comparison rather than an explicit parity case analysis.

    ``packet_size`` enables the pipelining the paper mentions and omits
    "for simplicity": blocks split into packets, packet ``c`` entering
    the (per-source conflict-free) correction path at cycle ``c``; the
    schedule runs in the engine's exclusive mode, so the claimed
    disjointness is machine-checked.
    """
    partner, dest_offset = _setup(network, dm, after)
    n = dm.layout.n
    half = n // 2
    if packet_size is None:
        cur = np.arange(len(partner), dtype=np.int64)
        _place_blocks(network, dm)
        for j in range(half - 1, -1, -1):
            _correction_phase(network, cur, partner, j + half)
            _correction_phase(network, cur, partner, j)
        if not np.array_equal(cur, partner):
            raise AssertionError("combined routing did not reach destinations")
        return _collect(network, dm, after, partner, dest_offset)
    if packet_size < 1:
        raise ValueError("packet size must be at least 1")

    # Pipelined: precompute each source's node path through the global
    # dimension order (j+half, j for j descending), with idle slots.
    N, L = dm.local_data.shape
    dims_order = [
        d for j in range(half - 1, -1, -1) for d in (j + half, j)
    ]
    packets: list[dict] = []
    for x in range(N):
        target = int(partner[x])
        here = x
        slots: list[int | None] = []
        for d in dims_order:
            if ((here >> d) & 1) != ((target >> d) & 1):
                here ^= 1 << d
                slots.append(d)
            else:
                slots.append(None)
        count = max(1, -(-L // packet_size))
        for c, piece in enumerate(np.array_split(dm.local_data[x], count)):
            if piece.size == 0:
                continue
            key = ("mxp", x, c)
            network.place(x, Block(key, data=piece))
            packets.append(
                {"key": key, "src": x, "inject": c, "slots": slots, "at": x}
            )
    max_cycle = max(pk["inject"] + len(pk["slots"]) for pk in packets)
    for cycle in range(max_cycle):
        phase = []
        movers = []
        for pk in packets:
            s = cycle - pk["inject"]
            if 0 <= s < len(pk["slots"]) and pk["slots"][s] is not None:
                src = pk["at"]
                dst = src ^ (1 << pk["slots"][s])
                phase.append(Message(src, dst, (pk["key"],)))
                movers.append((pk, dst))
        network.execute_phase(phase, exclusive=True)
        for pk, dst in movers:
            pk["at"] = dst

    out = np.empty_like(dm.local_data)
    for y in range(N):
        x = int(partner[y])
        mem = network.memory(y)
        chunks = [
            mem.pop(("mxp", x, c)).data
            for c in range(L)
            if ("mxp", x, c) in mem
        ]
        data = np.concatenate(chunks) if chunks else dm.local_data[y][:0]
        if data.size != L:
            raise AssertionError("pipelined routing lost data")
        out[y][dest_offset[x]] = data
    return DistributedMatrix(after, out)


def mixed_code_transpose_naive(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
) -> DistributedMatrix:
    """The (2n - 2)-step naive algorithm (§6.3).

    Stage 1 re-encodes the row field within column subcubes so both
    fields carry the same code as the eventual column field; stage 2 is
    the plain n-step transpose; stage 3 re-encodes the (new) row field.
    Each re-encoding fixes bits most-significant-first and skips the top
    bit (binary and Gray codes agree there), costing ``n/2 - 1`` steps.
    """
    partner, dest_offset = _setup(network, dm, after)
    n = dm.layout.n
    half = n // 2
    mask = (1 << half) - 1
    cur = np.arange(len(partner), dtype=np.int64)
    _place_blocks(network, dm)

    # Stage 1 target: swap the row field's encoding for the encoding the
    # column field of the destination uses, i.e. row field becomes
    # G(x_r) when the destination column field is G(x_r) (and
    # analogously for the inverse direction).  That is precisely the
    # destination's column field, so aim the row field at it.
    stage1 = ((partner & mask) << half) | (cur & mask)
    for j in range(half - 2, -1, -1):
        _correction_phase(network, cur, stage1, j + half)
    # Stage 2: exchange fields (the plain transpose on the re-encoded
    # embedding): target has row/column fields swapped.
    stage2 = ((cur & mask) << half) | (cur >> half)
    # Take a snapshot: stage-2 targets must be fixed, not chase cur.
    stage2 = stage2.copy()
    for j in range(half - 1, -1, -1):
        _correction_phase(network, cur, stage2, j + half)
        _correction_phase(network, cur, stage2, j)
    # Stage 3: fix the row field to the final destination.
    for j in range(half - 2, -1, -1):
        _correction_phase(network, cur, partner, j + half)
    if not np.array_equal(cur, partner):
        raise AssertionError("naive routing did not reach destinations")
    return _collect(network, dm, after, partner, dest_offset)
