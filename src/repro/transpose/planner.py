"""The public transpose entry point: classify, pick, run, report.

:func:`transpose` is what a downstream user calls: given a distributed
matrix, a target layout and a machine, it classifies the communication
(§2), selects the algorithm the paper recommends for that class and port
model, executes it on the simulated network, and returns the transposed
matrix together with the cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.layout.classify import CommClass, classify_transpose
from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.metrics import TransferStats
from repro.machine.params import MachineParams, PortModel
from repro.transpose.exchange import BufferPolicy, exchange_transpose
from repro.transpose.mixed import mixed_code_transpose_combined
from repro.transpose.one_dim import block_transpose
from repro.transpose.two_dim import (
    two_dim_transpose_mpt,
    two_dim_transpose_router,
    two_dim_transpose_spt,
)

__all__ = ["TransposeResult", "transpose", "default_after_layout"]


@dataclass
class TransposeResult:
    """Outcome of a planned transpose."""

    matrix: DistributedMatrix
    stats: TransferStats
    algorithm: str
    comm_class: CommClass

    def verify_against(self, original: np.ndarray) -> bool:
        """Does the gathered result equal ``original.T``?"""
        return bool(np.array_equal(self.matrix.to_global(), original.T))


def default_after_layout(before: Layout) -> Layout:
    """The canonical target: the same field structure on ``A^T``.

    Defined for square matrices (``p == q``), where "the same scheme on
    the transposed matrix" keeps every field's bit positions: the
    dimensions that encoded row bits now encode the same-numbered column
    bits.  Rectangular matrices need an explicit target layout (or
    virtual-element squaring, Definition 2).
    """
    if before.p != before.q:
        raise ValueError(
            "a default target layout exists only for square matrices; "
            "pass `after` explicitly (or square up with virtual elements)"
        )
    return Layout(before.p, before.q, before.fields, before.name)


def transpose(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout | None = None,
    *,
    algorithm: str = "auto",
    policy: BufferPolicy | None = None,
    packet_size: int | None = None,
) -> TransposeResult:
    """Transpose ``dm`` into layout ``after`` on the given machine.

    ``algorithm="auto"`` follows the paper's guidance:

    * pairwise communication, one-port   → step-by-step SPT (§8.2);
    * pairwise, n-port                   → MPT (Theorem 2);
    * pairwise with Gray/binary mixes the bit machinery cannot commute →
      the §6.3 combined algorithm;
    * all-to-all or mixed overlap, one-port → the exchange algorithm
      with the optimum-threshold buffering of §8.1;
    * all-to-all or mixed, n-port        → block transpose over SBnT
      routing (§5).

    Explicit names: ``"spt"``, ``"dpt"``, ``"mpt"``, ``"router"``,
    ``"exchange"``, ``"block-exchange"``, ``"block-sbnt"``,
    ``"mixed-combined"``, ``"mixed-naive"``.
    """
    before = dm.layout
    if after is None:
        after = default_after_layout(before)
    info = classify_transpose(before, after)
    if before.n != after.n:
        raise ValueError(
            "the planner handles layouts using the full machine on both "
            "sides (|R_b| == |R_a|); for some-to-all / all-to-some cases "
            "use repro.comm.all_to_some directly with virtual elements"
        )

    n_port = network.params.port_model is PortModel.N_PORT
    name = algorithm
    if algorithm == "auto":
        if info.comm_class in (CommClass.PAIRWISE, CommClass.LOCAL):
            name = _pick_pairwise(before, after, n_port)
        else:
            name = "block-sbnt" if n_port else "exchange"

    if name == "spt":
        out = two_dim_transpose_spt(
            network, dm, after, packet_size=packet_size, charge_copy=True
        )
    elif name == "dpt":
        from repro.transpose.two_dim import two_dim_transpose_dpt

        out = two_dim_transpose_dpt(network, dm, after, packet_size=packet_size)
    elif name == "mpt":
        out = two_dim_transpose_mpt(network, dm, after)
    elif name == "router":
        out = two_dim_transpose_router(network, dm, after)
    elif name == "mixed-combined":
        out = mixed_code_transpose_combined(network, dm, after)
    elif name == "mixed-naive":
        from repro.transpose.mixed import mixed_code_transpose_naive

        out = mixed_code_transpose_naive(network, dm, after)
    elif name == "exchange":
        chosen = policy or BufferPolicy(mode="threshold")
        out = exchange_transpose(network, dm, after, policy=chosen)
    elif name == "block-exchange":
        out = block_transpose(network, dm, after, router="exchange")
    elif name == "block-sbnt":
        out = block_transpose(network, dm, after, router="sbnt")
    else:
        raise ValueError(f"unknown algorithm {name!r}")
    return TransposeResult(out, network.stats, name, info.comm_class)


def _pick_pairwise(before: Layout, after: Layout, n_port: bool) -> str:
    """Choose among the pairwise algorithms (§6.1 / §6.3)."""
    from repro.cube.paths import transpose_partner
    from repro.transpose.two_dim import pairwise_maps

    if before.n == 0:
        return "block-exchange"  # degenerates to a local rearrangement
    partner, _ = pairwise_maps(before, after)
    is_tr = before.n % 2 == 0 and all(
        int(partner[x]) == transpose_partner(x, before.n)
        for x in range(len(partner))
    )
    if is_tr:
        return "mpt" if n_port else "spt"
    # Pairwise but not tr(x): mixed Gray/binary encodings (§6.3) or a
    # combined assignment; the greedy correction router handles both.
    return "mixed-combined"
