"""The public transpose entry point: classify, pick, run, report.

:func:`transpose` is what a downstream user calls: given a distributed
matrix, a target layout and a machine, it classifies the communication
(§2), selects the algorithm the paper recommends for that class and port
model, executes it on the simulated network, and returns the transposed
matrix together with the cost accounting.

When the network carries a :class:`~repro.machine.faults.FaultPlan`, the
planner *degrades gracefully* instead of crashing: an exclusive
SPT/DPT/MPT schedule whose link set intersects the plan's faulted links
is skipped proactively (its edge-disjointness lemma no longer holds on
the surviving cube), falling down the ladder MPT → DPT → SPT → router;
a fault that still aborts a run mid-flight (possible for strategies the
planner cannot pre-check, such as the exchange family) triggers one
reactive retry on the terminal fault-tolerant tier.  Every run —
degraded or not — passes a run-level
invariant checker: element conservation, drained node memories and
exact transposed placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.cube.paths import (
    dpt_itineraries,
    mpt_paths,
    spt_itinerary,
    transpose_hamming,
)
from repro.cube.topology import path_dims_to_nodes
from repro.layout.classify import CommClass, classify_transpose
from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.faults import (
    DisconnectedCubeError,
    FaultError,
    FaultPlan,
    RoutingStalledError,
)
from repro.machine.metrics import TransferStats
from repro.machine.params import PortModel
from repro.obs.instrumentation import instrumentation_of
from repro.topology import Topology
from repro.topology.capabilities import CUBE_ALGORITHMS, supported_algorithms
from repro.transpose.exchange import BufferPolicy, exchange_transpose
from repro.transpose.fallback import routed_universal_transpose
from repro.transpose.mixed import mixed_code_transpose_combined
from repro.transpose.one_dim import block_transpose
from repro.transpose.two_dim import (
    two_dim_transpose_mpt,
    two_dim_transpose_router,
    two_dim_transpose_spt,
)

__all__ = [
    "TransposeInvariantError",
    "TransposeResult",
    "check_transpose_invariants",
    "default_after_layout",
    "degrade_strategy",
    "schedule_links",
    "select_algorithm",
    "transpose",
]


class TransposeInvariantError(AssertionError):
    """A run-level invariant failed after an algorithm completed.

    Raised by :func:`check_transpose_invariants`: either elements were
    lost/duplicated, blocks were left stranded in node memories, or the
    final placement is not the exact transpose.
    """


@dataclass
class TransposeResult:
    """Outcome of a planned transpose."""

    matrix: DistributedMatrix
    stats: TransferStats
    algorithm: str
    comm_class: CommClass
    #: The strategy initially selected (or requested); equals
    #: ``algorithm`` unless the planner degraded around faults.
    requested: str = ""
    #: Tiers skipped (infeasible under the fault plan) or aborted by a
    #: mid-run fault, in the order they were considered.
    fallbacks: tuple[str, ...] = ()
    #: Modelled extra time the degradation cost: the faulted run's total
    #: time minus a clean-machine run of the requested strategy.  Zero
    #: when no degradation happened.
    recovery_overhead: float = 0.0

    def __post_init__(self) -> None:
        if not self.requested:
            self.requested = self.algorithm

    @property
    def degraded(self) -> bool:
        return bool(self.fallbacks)

    def verify_against(self, original: np.ndarray) -> bool:
        """Does the gathered result equal ``original.T``?"""
        return bool(np.array_equal(self.matrix.to_global(), original.T))


def default_after_layout(before: Layout) -> Layout:
    """The canonical target: the same field structure on ``A^T``.

    Defined for square matrices (``p == q``), where "the same scheme on
    the transposed matrix" keeps every field's bit positions: the
    dimensions that encoded row bits now encode the same-numbered column
    bits.  Rectangular matrices need an explicit target layout (or
    virtual-element squaring, Definition 2).
    """
    if before.p != before.q:
        raise ValueError(
            "a default target layout exists only for square matrices; "
            "pass `after` explicitly (or square up with virtual elements)"
        )
    return Layout(before.p, before.q, before.fields, before.name)


def check_transpose_invariants(
    network: CubeNetwork,
    original: np.ndarray,
    result: DistributedMatrix,
    *,
    baseline_elements: int = 0,
) -> None:
    """Assert the run-level invariants of a completed transpose.

    * **conservation** — the result holds exactly as many elements as
      the input (nothing lost to a dropped message or double pop);
    * **drained memories** — the network's node memories are back to
      their pre-run element count (no stranded in-flight blocks);
    * **placement** — gathering the result yields exactly ``original.T``.

    Raises :class:`TransposeInvariantError` naming the violated invariant.
    """
    if result.total_elements != original.size:
        raise TransposeInvariantError(
            f"element conservation violated: result holds "
            f"{result.total_elements} elements, input had {original.size}"
        )
    leftover = network.total_elements() - baseline_elements
    if leftover:
        raise TransposeInvariantError(
            f"{leftover} element(s) left stranded in node memories "
            "after the run"
        )
    if not np.array_equal(result.to_global(), original.T):
        raise TransposeInvariantError(
            "final placement is not the exact transpose of the input"
        )


# -- fault-aware strategy selection ---------------------------------------------

#: The degradation ladder for ``tr(x)`` pairwise transposes, fastest
#: (most schedule structure, most links) to slowest (no schedule at all).
_LADDER = ("mpt", "dpt", "spt", "router")


@lru_cache(maxsize=None)
def schedule_links(tier: str, n: int) -> frozenset[tuple[int, int]]:
    """Every directed link the tier's exclusive schedule traverses.

    The SPT path of a node is DPT's first itinerary, and the two DPT
    paths are MPT paths 0 and H, so ``spt ⊆ dpt ⊆ mpt`` as link sets —
    which is what makes the fallback ladder worth descending: a fault on
    an MPT-only link leaves DPT (and SPT) intact.
    """
    links: set[tuple[int, int]] = set()
    for x in range(1 << n):
        if transpose_hamming(x, n) == 0:
            continue
        if tier == "spt":
            dim_paths = [[d for d in spt_itinerary(x, n) if d is not None]]
        elif tier == "dpt":
            dim_paths = [
                [d for d in it if d is not None]
                for it in dpt_itineraries(x, n)
            ]
        elif tier == "mpt":
            dim_paths = [list(dims) for dims in mpt_paths(x, n)]
        else:
            raise ValueError(f"no link schedule for tier {tier!r}")
        for dims in dim_paths:
            nodes = path_dims_to_nodes(x, dims)
            links.update(zip(nodes, nodes[1:]))
    return frozenset(links)


def _tier_feasible(tier: str, n: int, plan: FaultPlan) -> bool:
    """Can this exclusive schedule run to completion under the plan?

    Conservative: any fault *ever* active on a scheduled link (or any
    node fault at all — every node participates in a full transpose)
    rules the tier out, because the exclusive schedules have no slack to
    wait out a transient window.
    """
    if plan.faulted_nodes_ever():
        return False
    return not (schedule_links(tier, n) & plan.faulted_links_ever())


def _degrade(
    name: str, n: int, plan: FaultPlan
) -> tuple[str, tuple[str, ...]]:
    """First feasible tier at or below ``name``; also the skipped tiers.

    The router tier is terminal: its adaptive fault tolerance needs no
    feasibility proof, so the ladder always bottoms out.
    """
    start = _LADDER.index(name)
    skipped: list[str] = []
    for tier in _LADDER[start:]:
        if tier == "router" or _tier_feasible(tier, n, plan):
            return tier, tuple(skipped)
        skipped.append(tier)
    return "router", tuple(skipped)


def degrade_strategy(
    name: str, n: int, plan: FaultPlan | None
) -> tuple[str, tuple[str, ...]]:
    """Public tier selection: ``(surviving_tier, skipped_tiers)``.

    The same proactive feasibility walk :func:`transpose` performs
    before executing, exposed so plan-replay entry points can pick the
    tier a fault plan leaves standing *without* re-planning it.  Names
    outside the MPT → DPT → SPT ladder (and empty fault plans) pass
    through unchanged.
    """
    if plan is None or plan.is_empty or name not in _LADDER[:-1]:
        return name, ()
    return _degrade(name, n, plan)


def select_algorithm(
    before: Layout,
    after: Layout,
    port_model: PortModel | str,
    topology: Topology | None = None,
) -> str:
    """The strategy ``algorithm="auto"`` resolves to (§6.1/§6.3/§9).

    Deterministic in the layout pair, port model and topology alone,
    which makes it usable as a cache-key ingredient: an ``auto`` request
    and an explicit request for the resolved name address the same plan.
    On a non-cube topology the paper's scheduled algorithms do not
    apply, so ``auto`` resolves straight to the routed-universal floor
    (see :mod:`repro.topology.capabilities`).
    """
    if topology is not None and topology.name != "cube":
        return "routed-universal"
    if isinstance(port_model, str):
        port_model = PortModel(port_model)
    n_port = port_model is PortModel.N_PORT
    info = classify_transpose(before, after)
    if info.comm_class in (CommClass.PAIRWISE, CommClass.LOCAL):
        return _pick_pairwise(before, after, n_port)
    return "block-sbnt" if n_port else "exchange"


def _execute(
    network: CubeNetwork,
    name: str,
    dm: DistributedMatrix,
    after: Layout,
    policy: BufferPolicy | None,
    packet_size: int | None,
) -> DistributedMatrix:
    """Dispatch one algorithm by name (no fault awareness here)."""
    if name == "spt":
        return two_dim_transpose_spt(
            network, dm, after, packet_size=packet_size, charge_copy=True
        )
    if name == "dpt":
        from repro.transpose.two_dim import two_dim_transpose_dpt

        return two_dim_transpose_dpt(
            network, dm, after, packet_size=packet_size
        )
    if name == "mpt":
        return two_dim_transpose_mpt(network, dm, after)
    if name == "router":
        return two_dim_transpose_router(network, dm, after)
    if name == "routed-universal":
        return routed_universal_transpose(network, dm, after)
    if name == "mixed-combined":
        return mixed_code_transpose_combined(network, dm, after)
    if name == "mixed-naive":
        from repro.transpose.mixed import mixed_code_transpose_naive

        return mixed_code_transpose_naive(network, dm, after)
    if name == "exchange":
        chosen = policy or BufferPolicy(mode="threshold")
        return exchange_transpose(network, dm, after, policy=chosen)
    if name == "block-exchange":
        return block_transpose(network, dm, after, router="exchange")
    if name == "block-sbnt":
        return block_transpose(network, dm, after, router="sbnt")
    raise ValueError(f"unknown algorithm {name!r}")


def transpose(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout | None = None,
    *,
    algorithm: str = "auto",
    policy: BufferPolicy | None = None,
    packet_size: int | None = None,
    degrade: bool = True,
) -> TransposeResult:
    """Transpose ``dm`` into layout ``after`` on the given machine.

    ``algorithm="auto"`` follows the paper's guidance:

    * pairwise communication, one-port   → step-by-step SPT (§8.2);
    * pairwise, n-port                   → MPT (Theorem 2);
    * pairwise with Gray/binary mixes the bit machinery cannot commute →
      the §6.3 combined algorithm;
    * all-to-all or mixed overlap, one-port → the exchange algorithm
      with the optimum-threshold buffering of §8.1;
    * all-to-all or mixed, n-port        → block transpose over SBnT
      routing (§5).

    Explicit names: ``"spt"``, ``"dpt"``, ``"mpt"``, ``"router"``,
    ``"exchange"``, ``"block-exchange"``, ``"block-sbnt"``,
    ``"mixed-combined"``, ``"mixed-naive"``, ``"routed-universal"``.

    With a fault plan on the network and ``degrade=True`` (the default),
    a strategy whose exclusive schedule would traverse a faulted link is
    replaced by the next feasible tier of MPT → DPT → SPT → router
    before running (so at most one strategy executes); a fault that
    still aborts a run mid-flight triggers exactly one reactive retry on
    the terminal fault-tolerant tier.  The result reports the requested
    strategy, the tiers skipped, and the modelled recovery overhead
    (faulted run time minus a clean run of the requested strategy).
    ``degrade=False`` restores fail-fast behaviour: fault errors
    propagate.
    """
    before = dm.layout
    if after is None:
        after = default_after_layout(before)
    info = classify_transpose(before, after)
    if before.n != after.n:
        raise ValueError(
            "the planner handles layouts using the full machine on both "
            "sides (|R_b| == |R_a|); for some-to-all / all-to-some cases "
            "use repro.comm.all_to_some directly with virtual elements"
        )

    topo = network.topology
    name = algorithm
    if algorithm == "auto":
        name = select_algorithm(
            before, after, network.params.port_model, topology=topo
        )

    requested = name
    fallbacks: tuple[str, ...] = ()
    caps = supported_algorithms(topo)
    if name not in caps:
        if name not in CUBE_ALGORITHMS:
            raise ValueError(f"unknown algorithm {name!r}")
        if not degrade:
            raise ValueError(
                f"algorithm {name!r} needs a Boolean cube; topology "
                f"{topo.spec!r} supports: {', '.join(caps)}"
            )
        # Per-topology capability floor: the scheduled tiers' lemmas are
        # cube-shaped, so the request degrades to routed-universal.
        fallbacks = (name,)
        name = "routed-universal"
    plan = network.faults
    if plan is not None and plan.is_empty:
        plan = None
    if plan is not None and degrade:
        if not plan.surviving_connected():
            raise DisconnectedCubeError(
                "the surviving topology is not strongly connected; no "
                f"transpose can complete ({plan.describe()})"
            )
        if name in _LADDER[:-1]:  # mpt/dpt/spt: proactively checkable
            name, fallbacks = _degrade(name, before.n, plan)

    original = dm.to_global()
    baseline_elements = network.total_elements()
    pre_keys = [frozenset(mem.keys()) for mem in network.memories]
    instr = instrumentation_of(network)
    stats = network.stats
    pre_faults = stats.fault_events
    pre_retries = stats.retries
    pre_detours = stats.detour_hops
    pre_phases = stats.phases
    pre_hops = stats.element_hops
    with instr.span(
        "transpose",
        category="run",
        requested=requested,
        comm_class=info.comm_class.value,
    ) as run_span:
        if fallbacks:
            run_span.annotate(skipped=list(fallbacks))
            instr.event(
                "degrade",
                "planner",
                requested=requested,
                tier=name,
                skipped=list(fallbacks),
            )
        try:
            with instr.span(name, category="algorithm", algorithm=name):
                out = _execute(network, name, dm, after, policy, packet_size)
        except (FaultError, RoutingStalledError):
            if plan is None or not degrade:
                raise
            # Reactive safety net: clear in-flight blocks, rerun on the
            # terminal fault-tolerant tier.  At most one retry by design.
            # Unlike the resume-based recovery executor
            # (repro.recovery.executor), a live restart forfeits every
            # completed phase — account that honestly so restart and
            # resume are comparable in the same counters.
            for mem, keys in zip(network.memories, pre_keys):
                for key in list(mem.keys()):
                    if key not in keys:
                        mem.pop(key)
            stats.record_rollback(stats.phases - pre_phases)
            stats.record_wasted(stats.element_hops - pre_hops)
            fallbacks = (*fallbacks, name)
            terminal = (
                "router"
                if name in _LADDER and info.comm_class
                in (CommClass.PAIRWISE, CommClass.LOCAL)
                else "routed-universal"
            )
            aborted = name
            name = terminal
            instr.event(
                "degrade", "planner", requested=requested, tier=name,
                reactive=True,
            )
            if instr.enabled:
                instr.recovery(
                    "ladder", aborted=aborted, tier=name,
                    wasted_phases=stats.phases - pre_phases,
                )
            with instr.span(
                "recover", category="recovery", action="ladder",
                aborted=aborted, tier=name,
            ), instr.span(
                name, category="algorithm", algorithm=name,
                reactive_retry=True,
            ):
                out = _execute(network, name, dm, after, policy, packet_size)

        check_transpose_invariants(
            network, original, out, baseline_elements=baseline_elements
        )

        overhead = 0.0
        if name != requested and requested in caps:
            overhead = network.stats.time - _clean_run_time(
                network, requested, dm, after, policy, packet_size
            )
        run_span.annotate(
            algorithm=name,
            fallbacks=list(fallbacks),
            recovery_overhead=overhead,
            faults=stats.fault_events - pre_faults,
            retries=stats.retries - pre_retries,
            detours=stats.detour_hops - pre_detours,
        )
    return TransposeResult(
        out,
        network.stats,
        name,
        info.comm_class,
        requested=requested,
        fallbacks=fallbacks,
        recovery_overhead=overhead,
    )


def _clean_run_time(
    network: CubeNetwork,
    name: str,
    dm: DistributedMatrix,
    after: Layout,
    policy: BufferPolicy | None,
    packet_size: int | None,
) -> float:
    """Modelled time of the requested strategy on a fault-free machine.

    The shadow run is what prices the degradation: recovery overhead is
    the faulted run's actual time minus this baseline.
    """
    shadow = CubeNetwork(network.params, topology=network.topology)
    _execute(shadow, name, dm, after, policy, packet_size)
    return shadow.stats.time


def _pick_pairwise(before: Layout, after: Layout, n_port: bool) -> str:
    """Choose among the pairwise algorithms (§6.1 / §6.3)."""
    from repro.cube.paths import transpose_partner
    from repro.transpose.two_dim import pairwise_maps

    if before.n == 0:
        return "block-exchange"  # degenerates to a local rearrangement
    partner, _ = pairwise_maps(before, after)
    is_tr = before.n % 2 == 0 and all(
        int(partner[x]) == transpose_partner(x, before.n)
        for x in range(len(partner))
    )
    if is_tr:
        return "mpt" if n_port else "spt"
    # Pairwise but not tr(x): mixed Gray/binary encodings (§6.3) or a
    # combined assignment; the greedy correction router handles both.
    return "mixed-combined"
