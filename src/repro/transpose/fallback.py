"""The universal routed fallback: transpose anything the cube can carry.

The scheduled algorithms each demand structure — SPT/DPT/MPT need the
``tr(x)`` pairwise pattern, the exchange algorithms a dimension-pair
plan.  When the planner must degrade below all of them (a fault plan has
broken every schedule, or the layout pair fits none), this module
computes each element's destination directly from the layout algebra
(owner and offset of the transposed index) and hands per-destination
blocks to the fault-tolerant e-cube router.  No disjointness lemma is
assumed, so no fault can invalidate it: as long as the surviving
topology is connected and every node is alive, the transfer completes —
slowly, with queueing and detours, but correctly.
"""

from __future__ import annotations

import numpy as np

from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block
from repro.machine.routing import RoutedTransfer, route_messages

__all__ = ["routed_universal_transpose"]


def routed_universal_transpose(
    network: CubeNetwork,
    dm: DistributedMatrix,
    after: Layout,
) -> DistributedMatrix:
    """Transpose by per-destination blocks over the routing logic.

    Works for every layout pair the planner accepts (pairwise,
    all-to-all, mixed encodings, rectangular with matching machine use):
    element ``w = (u || v)`` of the source simply travels to the node
    that owns ``w' = (v || u)`` under ``after``.  This is the terminal
    tier of the planner's degradation ladder.
    """
    before = dm.layout
    if network.params.n != before.n:
        raise ValueError("network dimension does not match the layout")
    if before.n != after.n:
        raise ValueError("source and target layouts use different machines")
    p, q = before.p, before.q
    PQ = 1 << before.m
    L = before.local_size
    N = before.num_procs

    # Invert the source placement: which element sits in each local slot.
    w = np.arange(PQ, dtype=np.int64)
    owners = before.owner_array(w)
    offsets = before.offset_array(w)
    w_of_slot = np.empty(PQ, dtype=np.int64)
    w_of_slot[owners * L + offsets] = w
    u, v = w_of_slot >> q, w_of_slot & ((1 << q) - 1)
    w_prime = (v << p) | u
    dest_node = after.owner_array(w_prime).reshape(N, L)
    dest_offset = after.offset_array(w_prime).reshape(N, L)

    out = np.empty_like(dm.local_data)
    transfers: list[RoutedTransfer] = []
    arrivals: list[tuple[int, tuple, np.ndarray]] = []
    for x in range(N):
        for y in np.unique(dest_node[x]):
            y = int(y)
            sel = dest_node[x] == y
            if y == x:
                out[x][dest_offset[x][sel]] = dm.local_data[x][sel]
                continue
            key = ("fb", x, y)
            network.place(x, Block(key, data=dm.local_data[x][sel]))
            transfers.append(RoutedTransfer(x, y, (key,)))
            arrivals.append((y, key, dest_offset[x][sel]))
    if transfers:
        route_messages(network, transfers)
    for y, key, offs in arrivals:
        out[y][offs] = network.memory(y).pop(key).data
    return DistributedMatrix(after, out)
