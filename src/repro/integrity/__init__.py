"""End-to-end data integrity: checksums, retransmit, link quarantine.

Fail-stop faults (:mod:`repro.machine.faults`) announce themselves; a
*silent* fault delivers damaged bytes and says nothing.  This package
closes that hole end to end:

* :mod:`repro.integrity.checksum` — per-block CRC-32 checksums bound to
  block keys, the seeded checksum-visible damage model, and the memory
  digest that seals checkpoints;
* :mod:`repro.integrity.manager` — the ARQ delivery path armed inside
  ``CubeNetwork.execute_phase``: checksum at send, verify at delivery,
  retransmit within a bounded budget (each retransmission re-occupies
  the link and is priced by the cost model), then quarantine the link
  and escalate with a typed error;
* :mod:`repro.integrity.scoreboard` — per-link health counters backing
  the quarantine decision and the integrity reports;
* :mod:`repro.integrity.errors` — the typed escalations, all
  ``FaultError`` subclasses with permanent kind so the planner ladder,
  the fault-tolerant router and ``execute_with_recovery`` absorb
  detected corruption with their existing fail-stop control flow.

The escalation ladder is **retransmit → route around → re-plan**: a
transient strike is absorbed by a retransmission, a flaky link is
quarantined and detoured like a permanently dead one, and an
unrecoverable corrupted delivery surfaces as a typed error — never a
silently wrong matrix.  With no corruption faults and no manager armed,
the engine's delivery path is untouched: the null path stays zero-cost
and pinned baselines hold.
"""

from repro.integrity.checksum import (
    block_checksum,
    damaged_checksum,
    memories_digest,
)
from repro.integrity.errors import (
    CorruptedCheckpointError,
    CorruptedDeliveryError,
    LinkQuarantinedError,
)
from repro.integrity.manager import IntegrityConfig, IntegrityManager
from repro.integrity.scoreboard import LinkHealth, LinkScoreboard

__all__ = [
    "CorruptedCheckpointError",
    "CorruptedDeliveryError",
    "IntegrityConfig",
    "IntegrityManager",
    "LinkHealth",
    "LinkQuarantinedError",
    "LinkScoreboard",
    "block_checksum",
    "damaged_checksum",
    "memories_digest",
]
