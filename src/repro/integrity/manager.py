"""The ARQ delivery path: checksum, verify, retransmit, quarantine.

One :class:`IntegrityManager` per :class:`~repro.machine.engine.CubeNetwork`
arms end-to-end checksums: every message is checksummed at send time and
verified at delivery inside ``execute_phase``.  A delivery struck by an
active :class:`~repro.machine.faults.CorruptionFault` fails verification
(the damage model is checksum-visible by construction) and is
retransmitted — each retransmission re-occupies the link, so the phase
pays for it under the machine's cost model — up to
:attr:`IntegrityConfig.retransmit_budget` times.  A delivery that stays
damaged through the whole budget quarantines the link and raises
:class:`~repro.integrity.errors.CorruptedDeliveryError`; a link that
accumulates :attr:`IntegrityConfig.quarantine_after` detected corruptions
is quarantined even if every individual delivery eventually got through.

Quarantined links are permanently dead from the next phase on: the
engine refuses to schedule over them
(:class:`~repro.integrity.errors.LinkQuarantinedError`), the
fault-tolerant router detours around them, and recovery's plan surgery
treats them exactly like permanent link faults — the escalation ladder
is *retransmit → route around → re-plan*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.integrity.checksum import block_checksum, damaged_checksum
from repro.integrity.errors import CorruptedDeliveryError, LinkQuarantinedError
from repro.integrity.scoreboard import LinkScoreboard
from repro.machine.faults import CorruptionFault
from repro.machine.message import Block, Message
from repro.machine.metrics import TransferStats

__all__ = ["IntegrityConfig", "IntegrityManager"]


@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs for the detect-and-retransmit path."""

    #: Retransmissions allowed per message delivery before escalating.
    retransmit_budget: int = 3
    #: Detected corruptions on one link before it is quarantined outright
    #: (even when every delivery eventually succeeded — a repeat offender
    #: is routed around rather than trusted again).
    quarantine_after: int = 4
    #: Modelled seconds charged per element for checksum computation,
    #: per transmission.  The default keeps checksums free under the
    #: cost model so pinned timing baselines hold.
    checksum_time_per_element: float = 0.0

    def __post_init__(self) -> None:
        if self.retransmit_budget < 0:
            raise ValueError("retransmit budget must be non-negative")
        if self.quarantine_after < 1:
            raise ValueError("quarantine threshold must be at least 1")
        if self.checksum_time_per_element < 0:
            raise ValueError("checksum time must be non-negative")


class IntegrityManager:
    """Per-network integrity state: scoreboard plus quarantine set."""

    def __init__(self, config: IntegrityConfig | None = None) -> None:
        self.config = config if config is not None else IntegrityConfig()
        self.scoreboard = LinkScoreboard()
        self._quarantined: set[tuple[int, int]] = set()

    # -- quarantine queries ---------------------------------------------------

    @property
    def has_quarantined(self) -> bool:
        return bool(self._quarantined)

    def is_quarantined(self, src: int, dst: int) -> bool:
        return (src, dst) in self._quarantined

    def quarantined_links(self) -> frozenset[tuple[int, int]]:
        return frozenset(self._quarantined)

    def check_link(self, src: int, dst: int, phase: int) -> None:
        """Raise if ``src->dst`` is quarantined (engine pre-movement gate)."""
        if (src, dst) in self._quarantined:
            raise LinkQuarantinedError(src, dst, phase)

    # -- the delivery path ----------------------------------------------------

    def deliver(
        self,
        msg: Message,
        blocks: list[Block],
        elements: int,
        cost: float,
        fault: CorruptionFault | None,
        phase: int,
        stats: TransferStats,
    ) -> float:
        """Checksummed delivery of one message; returns the extra link cost.

        The returned cost (retransmissions re-occupying the link, plus
        any configured checksum compute time) is folded into the phase's
        per-link load *before* the duration is computed, so integrity
        overhead is priced under the same model as the payload itself.
        Raises :class:`CorruptedDeliveryError` — after quarantining the
        link — when the retransmit budget is exhausted; the phase aborts
        before any block moves, so memories stay untouched.
        """
        cfg = self.config
        board = self.scoreboard
        link = (msg.src, msg.dst)
        stats.record_checksum_overhead(elements)
        checksum_cost = cfg.checksum_time_per_element * elements
        extra = checksum_cost
        if fault is None:
            board.record_delivery(link)
            return extra
        attempt = 0
        while fault.strikes(phase, attempt):
            # Detection: the damaged payload's checksum must differ from
            # the send-side one.  The damage model guarantees it; verify
            # anyway so a future damage-model bug fails loudly here
            # instead of shipping corrupt data.
            victim = blocks[fault.damage_seed(phase, attempt) % len(blocks)]
            if damaged_checksum(victim, fault, phase, attempt) == (
                block_checksum(victim)
            ):  # pragma: no cover - unreachable by construction
                raise AssertionError(
                    "corruption damage model produced a checksum-invisible "
                    f"change on link {msg.src}->{msg.dst} at phase {phase}"
                )
            stats.record_corrupted_delivery()
            board.record_corruption(link)
            if attempt >= cfg.retransmit_budget:
                self._quarantine(link, stats)
                raise CorruptedDeliveryError(
                    msg.src, msg.dst, phase, attempts=attempt + 1
                )
            attempt += 1
            board.record_retransmit(link)
            stats.record_retransmit()
            stats.record_checksum_overhead(elements)
            extra += cost + checksum_cost
        board.record_delivery(link)
        if (
            link not in self._quarantined
            and board.corruptions(link) >= cfg.quarantine_after
        ):
            # Repeat offender: delivered this time, but dead from the
            # next phase on.
            self._quarantine(link, stats)
        return extra

    def _quarantine(
        self, link: tuple[int, int], stats: TransferStats
    ) -> None:
        if link not in self._quarantined:
            self._quarantined.add(link)
            self.scoreboard.mark_quarantined(link)
            stats.record_quarantine()

    # -- reporting ------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "config": {
                "retransmit_budget": self.config.retransmit_budget,
                "quarantine_after": self.config.quarantine_after,
            },
            "quarantined": [
                f"{src}->{dst}" for src, dst in sorted(self._quarantined)
            ],
            "links": self.scoreboard.as_dict(),
        }
