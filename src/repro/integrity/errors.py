"""Typed errors raised by the end-to-end integrity machinery.

All of them are :class:`~repro.machine.faults.FaultError` subclasses with
``kind = FaultKind.PERMANENT``, so every consumer that already dispatches
on fail-stop faults — the planner's reactive ladder, ``replay_degraded``,
``execute_with_recovery`` — handles detected corruption with zero new
control flow: an unrecoverable corrupted delivery *is* a permanent fault
of the offending link (it has just been quarantined).
"""

from __future__ import annotations

from repro.machine.faults import FaultError, FaultKind, LinkFailureError

__all__ = [
    "CorruptedCheckpointError",
    "CorruptedDeliveryError",
    "LinkQuarantinedError",
]


class CorruptedDeliveryError(FaultError):
    """Every transmission of a message failed checksum verification.

    Raised by :class:`~repro.integrity.manager.IntegrityManager` when a
    delivery over a corrupting link stays damaged through the whole
    retransmit budget.  The link is quarantined *before* the raise, so
    any retry — the router's next round, the recovery executor's plan
    surgery, the planner ladder — already sees it as dead.
    """

    def __init__(self, src: int, dst: int, phase: int, attempts: int) -> None:
        self.src = src
        self.dst = dst
        self.phase = phase
        self.attempts = attempts
        self.kind = FaultKind.PERMANENT
        super().__init__(
            f"delivery over directed link {src}->{dst} at phase {phase} "
            f"failed checksum verification {attempts} time(s); retransmit "
            "budget exhausted, link quarantined"
        )


class LinkQuarantinedError(LinkFailureError):
    """A message was scheduled over a quarantined (flaky) link.

    Subclasses :class:`~repro.machine.faults.LinkFailureError` so every
    existing fail-stop consumer treats a quarantined link exactly like a
    permanently faulted one.
    """

    def __init__(self, src: int, dst: int, phase: int) -> None:
        # Bypass LinkFailureError.__init__ to carry a quarantine-specific
        # message while keeping its attribute contract.
        FaultError.__init__(
            self,
            f"directed link {src}->{dst} is quarantined for repeated "
            f"payload corruption at phase {phase}",
        )
        self.src = src
        self.dst = dst
        self.phase = phase
        self.kind = FaultKind.PERMANENT


class CorruptedCheckpointError(FaultError):
    """No retained checkpoint passes digest validation.

    Resuming from damaged state would silently propagate corruption into
    the final matrix — the one outcome the integrity subsystem exists to
    prevent — so rollback refuses and recovery fails loudly instead.
    """

    def __init__(self, phase_index: int, discarded: int) -> None:
        self.phase_index = phase_index
        self.discarded = discarded
        self.kind = FaultKind.PERMANENT
        super().__init__(
            f"all {discarded} retained checkpoint(s) failed digest "
            f"validation at phase {phase_index}; refusing to resume from "
            "corrupted state"
        )
