"""Payload checksums and the seeded damage model.

Checksums are CRC-32 over a block's canonical bytes, mixed with its key:
a block delivered under the wrong key (a routing bug) fails verification
just like damaged bytes do.  Virtual blocks (size-only, used by the
benchmark harness to price huge matrices) checksum their ``(key, size)``
identity — there are no payload bytes to protect, but the integrity
machinery still exercises the same control flow.

The damage model is *checksum-visible by construction*: ``bitflip``
flips a single seeded bit (always CRC-32-detectable), ``scramble``
XOR-damages and reverses a seeded byte span, and both re-strike until
the damaged checksum actually differs from the clean one — so a struck
delivery can never be a silent no-op and detection is exact, not
probabilistic.  That is what makes the chaos acceptance property
("never a silently wrong matrix") absolute.
"""

from __future__ import annotations

import random
import zlib
from typing import Hashable

import numpy as np

from repro.machine.faults import CorruptionFault
from repro.machine.message import Block

__all__ = [
    "block_checksum",
    "damaged_checksum",
    "memories_digest",
]


def _key_crc(key: Hashable, crc: int = 0) -> int:
    return zlib.crc32(repr(key).encode(), crc)


def block_checksum(block: Block) -> int:
    """CRC-32 of the block's payload bytes, bound to its key."""
    if block.data is not None:
        crc = zlib.crc32(np.ascontiguousarray(block.data).tobytes())
    else:
        crc = zlib.crc32(repr(block.virtual_size).encode())
    return _key_crc(block.key, crc)


def damaged_checksum(
    block: Block, fault: CorruptionFault, phase: int, attempt: int
) -> int:
    """Checksum of the payload as one strike would damage it.

    Guaranteed to differ from :func:`block_checksum`: the damage loop
    keeps flipping seeded bits until the CRC moves (a single extra flip
    always suffices for CRC-32).
    """
    clean = block_checksum(block)
    rng = random.Random(fault.damage_seed(phase, attempt))
    if block.data is None:
        # Virtual payloads have no bytes; damage the identity token.
        return clean ^ (1 + rng.randrange(0xFFFFFFFE))
    buf = bytearray(np.ascontiguousarray(block.data).tobytes())
    if not buf:
        return clean ^ (1 + rng.randrange(0xFFFFFFFE))
    if fault.mode == "scramble":
        lo = rng.randrange(len(buf))
        hi = min(len(buf), lo + 1 + rng.randrange(8))
        buf[lo:hi] = reversed(buf[lo:hi])
        buf[lo] ^= 1 + rng.randrange(255)
    else:  # bitflip
        bit = rng.randrange(len(buf) * 8)
        buf[bit >> 3] ^= 1 << (bit & 7)
    crc = _key_crc(block.key, zlib.crc32(bytes(buf)))
    while crc == clean:  # pragma: no cover - CRC-32 detects single flips
        bit = rng.randrange(len(buf) * 8)
        buf[bit >> 3] ^= 1 << (bit & 7)
        crc = _key_crc(block.key, zlib.crc32(bytes(buf)))
    return crc


def memories_digest(snapshots: list[dict[Hashable, Block]]) -> int:
    """Order-independent digest of a full memory snapshot set.

    Used by :class:`~repro.recovery.checkpoint.CheckpointManager` to seal
    each checkpoint at capture and validate it before any rollback —
    "never resume from a corrupted checkpoint".  Keys within a node are
    visited in ``repr`` order so the digest does not depend on dict
    insertion history.
    """
    crc = 0
    for node, snap in enumerate(snapshots):
        crc = zlib.crc32(str(node).encode(), crc)
        for key in sorted(snap, key=repr):
            crc = _key_crc(key, crc)
            crc = zlib.crc32(
                block_checksum(snap[key]).to_bytes(4, "little"), crc
            )
    return crc
