"""Per-link health accounting: who delivers clean, who keeps corrupting.

The scoreboard is pure bookkeeping — no policy.  It counts, per directed
link, clean deliveries, detected corruptions and retransmissions, and
remembers which links the :class:`~repro.integrity.manager.IntegrityManager`
has quarantined.  Reports (chaos trials, the CLI, CI artifacts) serialize
it via :meth:`LinkScoreboard.as_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkHealth", "LinkScoreboard"]


@dataclass
class LinkHealth:
    """Counters for one directed link."""

    deliveries: int = 0
    corruptions: int = 0
    retransmits: int = 0
    quarantined: bool = False

    def as_dict(self) -> dict:
        return {
            "deliveries": self.deliveries,
            "corruptions": self.corruptions,
            "retransmits": self.retransmits,
            "quarantined": self.quarantined,
        }


class LinkScoreboard:
    """Health counters for every directed link that moved checksummed data."""

    def __init__(self) -> None:
        self._links: dict[tuple[int, int], LinkHealth] = {}

    def health(self, link: tuple[int, int]) -> LinkHealth:
        entry = self._links.get(link)
        if entry is None:
            entry = self._links[link] = LinkHealth()
        return entry

    # -- recording -----------------------------------------------------------

    def record_delivery(self, link: tuple[int, int]) -> None:
        self.health(link).deliveries += 1

    def record_corruption(self, link: tuple[int, int]) -> None:
        self.health(link).corruptions += 1

    def record_retransmit(self, link: tuple[int, int]) -> None:
        self.health(link).retransmits += 1

    def mark_quarantined(self, link: tuple[int, int]) -> None:
        self.health(link).quarantined = True

    # -- queries -------------------------------------------------------------

    def corruptions(self, link: tuple[int, int]) -> int:
        entry = self._links.get(link)
        return 0 if entry is None else entry.corruptions

    def quarantined_links(self) -> set[tuple[int, int]]:
        return {
            link for link, h in self._links.items() if h.quarantined
        }

    def flaky_links(self) -> set[tuple[int, int]]:
        """Links with at least one detected corruption (quarantined or not)."""
        return {link for link, h in self._links.items() if h.corruptions}

    def as_dict(self) -> dict:
        """JSON-safe summary, links stringified and sorted."""
        return {
            f"{src}->{dst}": self._links[(src, dst)].as_dict()
            for src, dst in sorted(self._links)
        }
