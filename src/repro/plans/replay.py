"""Execute a :class:`~repro.plans.ir.CompiledPlan` on a fresh network.

Replay re-performs the captured schedule with *virtual* blocks (sizes
only): every phase, message, copy and local charge is re-executed
through the engine, so the resulting
:class:`~repro.machine.metrics.TransferStats` — times, phases, messages,
start-ups, element hops, per-link loads — is identical to the original
run's, at a fraction of the wall-clock cost (no planning, no NumPy
payload movement).  Exclusive phases are replayed exclusively, so the
paper's edge-disjointness lemmas are re-checked on every replay.

A replay network may carry a :class:`~repro.machine.faults.FaultPlan`;
deliveries over faulted resources raise the usual typed errors.
:func:`replay_degraded` combines this with the PR 1 degradation ladder:
it selects the surviving tier for a fault plan *without re-planning*,
replays the cached plan of that tier, and only falls back to direct
execution if a mid-replay fault aborts the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.fields import Layout
from repro.machine.engine import CubeNetwork
from repro.machine.faults import (
    DisconnectedCubeError,
    FaultError,
    FaultPlan,
    RoutingStalledError,
)
from repro.machine.message import Block, Message
from repro.machine.metrics import TransferStats
from repro.machine.params import MachineParams
from repro.obs.instrumentation import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    instrumentation_of,
)
from repro.plans.ir import (
    CollectOp,
    CompiledPlan,
    CopyOp,
    IdleOp,
    LocalOp,
    PhaseOp,
    PlaceOp,
    RemapOp,
)

__all__ = ["DegradedReplay", "PlanReplayError", "replay_degraded", "replay_plan"]


class PlanReplayError(RuntimeError):
    """The plan cannot run on this network (wrong machine, corrupt ops)."""


def replay_plan(
    plan: CompiledPlan,
    network: CubeNetwork,
    *,
    check_params: bool = True,
    verify_sizes: bool = True,
    checkpoints=None,
) -> float:
    """Replay every op of ``plan`` on ``network``; returns modelled time.

    ``check_params`` insists the network's cost model equals the plan's
    provenance (names aside) — replaying a schedule on a machine with
    different constants would silently produce wrong times.
    ``verify_sizes`` cross-checks each message's element count against
    the blocks actually present, catching corrupt or mis-bound plans.

    ``checkpoints`` optionally attaches a
    :class:`~repro.recovery.checkpoint.CheckpointManager` to the network
    for the duration of the replay: the engine then snapshots node
    memories on the manager's phase cadence, giving even a plain replay
    rollback points (the resume path itself lives in
    :func:`repro.recovery.executor.execute_with_recovery`).

    Fault errors from a faulted network propagate untouched, exactly as
    they would from direct execution, so callers can ladder down.
    """
    if check_params:
        if not plan.machine.compatible_with(network.params):
            raise PlanReplayError(
                f"plan was compiled for {plan.machine.as_dict(with_name=False)} "
                f"but the network is {network.params.name!r} "
                f"(n={network.params.n})"
            )
        if plan.machine.topology != network.topology.spec:
            raise PlanReplayError(
                f"plan was compiled for topology {plan.machine.topology!r} "
                f"but the network interconnect is {network.topology.spec!r}"
            )
    start_time = network.stats.time
    mask = 0
    if checkpoints is not None:
        network.checkpoints = checkpoints
    try:
        with instrumentation_of(network).span(
            "replay",
            category="algorithm",
            algorithm=plan.algorithm,
            ops=len(plan.ops),
            fingerprint=plan.fingerprint[:12],
        ):
            _replay_ops(plan, network, mask, verify_sizes)
    finally:
        if checkpoints is not None:
            network.checkpoints = None
    return network.stats.time - start_time


def _replay_ops(
    plan: CompiledPlan, network: CubeNetwork, mask: int, verify_sizes: bool
) -> None:
    for op in plan.ops:
        if isinstance(op, PhaseOp):
            messages = [
                Message(m.src ^ mask, m.dst ^ mask, m.keys)
                for m in op.messages
            ]
            if verify_sizes:
                for msg, pm in zip(messages, op.messages):
                    have = _held_elements(network, msg.src, msg.keys)
                    if have is not None and have != pm.elements:
                        raise PlanReplayError(
                            f"message {msg.src}->{msg.dst} carries {have} "
                            f"element(s) but the plan recorded {pm.elements}"
                        )
            network.execute_phase(messages, exclusive=op.exclusive)
        elif isinstance(op, PlaceOp):
            network.place(
                op.node ^ mask, Block(op.key, virtual_size=op.size)
            )
        elif isinstance(op, CollectOp):
            network.memories[op.node ^ mask].pop(op.key)
        elif isinstance(op, CopyOp):
            network.charge_copy({n ^ mask: c for n, c in op.per_node})
        elif isinstance(op, LocalOp):
            costs = (
                op.costs
                if isinstance(op.costs, float)
                else {n ^ mask: c for n, c in op.costs}
            )
            elements = (
                op.elements
                if op.elements is None or isinstance(op.elements, int)
                else {n ^ mask: c for n, c in op.elements}
            )
            network.execute_local(costs, elements)
        elif isinstance(op, IdleOp):
            network.idle_phase()
        elif isinstance(op, RemapOp):
            mask ^= op.mask
        else:
            raise PlanReplayError(f"unknown op in plan: {op!r}")


def _held_elements(network: CubeNetwork, node: int, keys) -> int | None:
    try:
        return sum(network.memories[node].get(key).size for key in keys)
    except KeyError:
        return None  # let the engine raise its canonical error


# -- fault-ladder integration ----------------------------------------------------


@dataclass(frozen=True)
class DegradedReplay:
    """Outcome of :func:`replay_degraded`."""

    algorithm: str
    requested: str
    #: Tiers skipped by the proactive feasibility check, plus — if the
    #: replay itself aborted on a fault — the tier whose replay failed.
    skipped: tuple[str, ...]
    stats: TransferStats
    #: True when the cached/compiled plan replayed to completion; False
    #: when a mid-replay fault forced a direct fault-tolerant run.
    replayed: bool
    #: True when the plan came out of the cache rather than a fresh capture.
    cache_hit: bool
    #: Recovery accounting when serving with ``recovery=`` (else None).
    recovery: object | None = None
    #: Resume-mode final-state verification verdict (None when the run
    #: was not served through the recovery executor).
    verified: bool | None = None

    @property
    def degraded(self) -> bool:
        return self.algorithm != self.requested or bool(self.skipped)


def replay_degraded(
    params: MachineParams,
    before: Layout,
    after: Layout | None = None,
    *,
    faults: FaultPlan,
    algorithm: str = "auto",
    cache=None,
    policy=None,
    packet_size: int | None = None,
    observer=None,
    recovery=None,
    topology=None,
) -> DegradedReplay:
    """Serve a transpose under faults from cached plans where possible.

    The PR 1 ladder (MPT -> DPT -> SPT -> router) is walked *before*
    execution using the fault plan's link/node sets — the same proactive
    feasibility check the planner uses — but instead of re-planning the
    surviving tier from scratch, its :class:`CompiledPlan` is fetched
    from ``cache`` (compiled and stored on miss) and replayed on a fresh
    faulted network.  Only a fault that aborts the replay mid-flight
    (possible for strategies the ladder cannot pre-check) falls back to
    one direct fault-tolerant run.

    ``recovery`` (a :class:`~repro.recovery.policy.RecoveryPolicy`)
    switches the serve from restart-based to *resume-based*: proactive
    tier degradation is skipped entirely — the requested tier's plan is
    executed under :func:`repro.recovery.executor.execute_with_recovery`,
    which backs off transient faults and rewrites the remaining schedule
    around permanent ones.  The ladder is taken only when recovery
    itself gives up or its final-state verification fails; the returned
    :class:`DegradedReplay` then carries the recovery report with
    ``resolved="ladder"``.

    ``observer`` is installed on every network this call creates (the
    replay network and, if needed, the direct-fallback network); pass an
    :class:`~repro.obs.instrumentation.Instrumentation` hub to get a
    ``serve`` span annotated with tier selection, cache outcome and
    fault counters, with the replay/transpose spans nested inside.
    """
    from repro.plans.cache import plan_key
    from repro.topology import (
        parse_topology,
        supported_algorithms,
    )
    from repro.topology.capabilities import CUBE_ALGORITHMS
    from repro.transpose.planner import (
        default_after_layout,
        degrade_strategy,
        select_algorithm,
    )

    topo = parse_topology(topology, before.n)
    on_cube = topo.name == "cube"
    if recovery is not None and not on_cube:
        raise ValueError(
            "resume-based recovery rewrites cube schedules (checkpoint "
            "surgery, XOR relabeling) and is unavailable on topology "
            f"{topo.spec!r}; serve with recovery=None instead"
        )
    target = after if after is not None else default_after_layout(before)
    name = algorithm
    if name == "auto":
        name = select_algorithm(
            before, target, params.port_model, topology=topo
        )
    requested = name
    skipped: tuple[str, ...] = ()
    caps = supported_algorithms(topo)
    if name not in caps:
        if name not in CUBE_ALGORITHMS:
            raise ValueError(f"unknown algorithm {name!r}")
        skipped = (name,)
        name = "routed-universal"
    if not faults.is_empty:
        if not faults.surviving_connected():
            raise DisconnectedCubeError(
                "the surviving topology is not strongly connected; no "
                f"transpose can complete ({faults.describe()})"
            )
        if recovery is None and on_cube:
            name, more = degrade_strategy(name, before.n, faults)
            skipped = (*skipped, *more)

    key = plan_key(
        params,
        before,
        target,
        name,
        policy=policy,
        packet_size=packet_size,
        topology=topo.spec,
    )
    instr = (
        observer
        if isinstance(observer, Instrumentation)
        else NULL_INSTRUMENTATION
    )
    return _serve(
        instr, cache, key, params, before, target, after, faults,
        name, requested, skipped, policy, packet_size, observer,
        recovery, topo,
    )


def _serve(
    instr, cache, key, params, before, target, after, faults,
    name, requested, skipped, policy, packet_size, observer,
    recovery=None, topo=None,
) -> DegradedReplay:
    from repro.plans.recorder import capture_transpose, synthetic_matrix
    from repro.transpose.planner import transpose

    cache_obs = instr if instr.enabled else None
    # The attr is named fault_spec, not faults: on_fault calls
    # span.count("faults") on every open span, which would collide with
    # a string-valued "faults" annotation the moment a fault fires.
    with instr.span(
        "serve", category="run", requested=requested, tier=name,
        skipped=list(skipped), fault_spec=faults.describe(),
        mode="resume" if recovery is not None else "restart",
    ) as serve_span:
        plan = (
            cache.get(key, observer=cache_obs) if cache is not None else None
        )
        cache_hit = plan is not None
        serve_span.annotate(cache_hit=cache_hit)
        if plan is None:
            _, plan = capture_transpose(
                params,
                synthetic_matrix(before),
                target,
                algorithm=name,
                policy=policy,
                packet_size=packet_size,
                topology=topo,
            )
            if cache is not None:
                cache.put(key, plan, observer=cache_obs)

        if recovery is not None:
            return _serve_with_recovery(
                instr, serve_span, plan, params, before, after, faults,
                name, requested, policy, packet_size, observer, recovery,
                cache_hit,
            )

        network = CubeNetwork(params, faults=faults, topology=topo)
        if observer is not None:
            network.observer = observer
        try:
            replay_plan(plan, network)
            return DegradedReplay(
                algorithm=name,
                requested=requested,
                skipped=skipped,
                stats=network.stats,
                replayed=True,
                cache_hit=cache_hit,
            )
        except (FaultError, RoutingStalledError):
            # Reactive safety net: one direct fault-tolerant run, exactly as
            # the planner would do when a schedule aborts mid-flight.
            serve_span.annotate(replay_aborted=name)
            direct = CubeNetwork(params, faults=faults, topology=topo)
            if observer is not None:
                direct.observer = observer
            result = transpose(
                direct,
                synthetic_matrix(before),
                after,
                algorithm=requested,
                policy=policy,
                packet_size=packet_size,
            )
            return DegradedReplay(
                algorithm=result.algorithm,
                requested=requested,
                skipped=(*skipped, name),
                stats=direct.stats,
                replayed=False,
                cache_hit=cache_hit,
            )


def _serve_with_recovery(
    instr, serve_span, plan, params, before, after, faults,
    name, requested, policy, packet_size, observer, recovery, cache_hit,
) -> DegradedReplay:
    """Resume-based serve: recover in place, ladder only as last resort."""
    from repro.plans.recorder import synthetic_matrix
    from repro.recovery.executor import (
        RecoveryFailedError,
        execute_with_recovery,
    )
    from repro.transpose.planner import transpose

    network = CubeNetwork(params, faults=faults)
    if observer is not None:
        network.observer = observer
    report = None
    try:
        outcome = execute_with_recovery(plan, network, policy=recovery)
        report = outcome.report
        serve_span.annotate(
            resolved=report.resolved, verified=outcome.verified
        )
        if outcome.verified:
            return DegradedReplay(
                algorithm=name,
                requested=requested,
                skipped=(),
                stats=network.stats,
                replayed=True,
                cache_hit=cache_hit,
                recovery=report,
                verified=True,
            )
    except (RecoveryFailedError, FaultError, RoutingStalledError) as exc:
        report = getattr(exc, "report", report)
        serve_span.annotate(recovery_failed=type(exc).__name__)
    # Last resort: the restart ladder, on a fresh network (the recovery
    # attempt may have left partial state behind).
    if report is not None:
        report.resolved = "ladder"
    if instr.enabled:
        instr.recovery("ladder", tier=name, aborted=name)
    direct = CubeNetwork(params, faults=faults)
    if observer is not None:
        direct.observer = observer
    result = transpose(
        direct,
        synthetic_matrix(before),
        after,
        algorithm=requested,
        policy=policy,
        packet_size=packet_size,
    )
    return DegradedReplay(
        algorithm=result.algorithm,
        requested=requested,
        skipped=(name,),
        stats=direct.stats,
        replayed=False,
        cache_hit=cache_hit,
        recovery=report,
        verified=False,
    )
