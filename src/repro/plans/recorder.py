"""Capture a running algorithm into a :class:`CompiledPlan`.

:class:`RecordingNetwork` is a drop-in :class:`~repro.machine.engine.CubeNetwork`
that logs every operation an algorithm performs — communication phases,
block placements and collections, local-work charges — as plan ops.  No
algorithm needs modification: the one_dim/two_dim/exchange/mixed/routed
transposes and the ``repro.comm`` tree algorithms all

* move blocks through ``place`` / ``execute_phase`` /
  ``memory(x).pop(...)``, and
* charge local work through ``charge_copy`` / ``execute_local``,

which are exactly the methods this subclass intercepts.  The engine's
*internal* block movement inside ``execute_phase`` is deliberately not
recorded — it is implied by the :class:`~repro.plans.ir.PhaseOp` and
re-performed by the replay executor.

Capture runs on a healthy machine: the recorded schedule is the clean
static schedule of the paper, which the fault-aware entry points
(:func:`repro.plans.replay.replay_degraded`) then replay on faulted
networks after tier selection.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.layout.fields import Layout
from repro.layout.matrix import DistributedMatrix
from repro.machine.engine import CubeNetwork
from repro.machine.message import Block, Message
from repro.machine.params import MachineParams
from repro.plans.ir import (
    PLAN_FORMAT_VERSION,
    CollectOp,
    CompiledPlan,
    CopyOp,
    IdleOp,
    LayoutSpec,
    LocalOp,
    MachineSpec,
    PhaseOp,
    PlaceOp,
    PlanMessage,
    canonical_key,
)

__all__ = [
    "RecordingNetwork",
    "capture_permutation",
    "capture_transpose",
    "synthetic_matrix",
]


class _RecordingMemory:
    """Proxy over :class:`~repro.machine.memory.NodeMemory` that records
    the algorithm's explicit pops and puts as plan ops."""

    __slots__ = ("_mem", "_ops", "_payloads")

    def __init__(self, mem, ops: list, payloads: dict | None = None) -> None:
        self._mem = mem
        self._ops = ops
        self._payloads = payloads

    # -- recorded mutations ------------------------------------------------

    def pop(self, key: Hashable) -> Block:
        block = self._mem.pop(key)
        self._ops.append(CollectOp(self._mem.node, canonical_key(key)))
        return block

    def put(self, block: Block) -> None:
        self._mem.put(block)
        key = canonical_key(block.key)
        self._ops.append(PlaceOp(self._mem.node, block.size, key))
        if self._payloads is not None and block.data is not None:
            self._payloads.setdefault(key, []).append(block.data)

    def replace(self, block: Block) -> None:
        self._mem.replace(block)
        key = canonical_key(block.key)
        self._ops.append(CollectOp(self._mem.node, key))
        self._ops.append(PlaceOp(self._mem.node, block.size, key))
        if self._payloads is not None and block.data is not None:
            self._payloads.setdefault(key, []).append(block.data)

    def clear(self) -> None:
        for key in self._mem.keys():
            self.pop(key)

    # -- pass-through reads ------------------------------------------------

    @property
    def node(self) -> int:
        return self._mem.node

    def get(self, key: Hashable) -> Block:
        return self._mem.get(key)

    def keys(self) -> list[Hashable]:
        return self._mem.keys()

    def blocks(self) -> list[Block]:
        return self._mem.blocks()

    def total_elements(self) -> int:
        return self._mem.total_elements()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._mem

    def __iter__(self):
        return iter(self._mem)

    def __len__(self) -> int:
        return len(self._mem)


class RecordingNetwork(CubeNetwork):
    """A cube network that compiles whatever runs on it into a plan.

    Only *successful* operations are recorded: an aborted phase (link
    conflict, fault) raises before its op is appended, so a plan never
    contains work that did not happen.
    """

    def __init__(
        self,
        params: MachineParams,
        *,
        faults=None,
        record_payloads: bool = False,
        topology=None,
    ) -> None:
        super().__init__(params, faults=faults, topology=topology)
        self.ops: list = []
        #: Optional payload ledger: canonical key -> the real arrays each
        #: successive placement of that key carried, in placement order.
        #: The recovery executor (:mod:`repro.recovery.executor`) binds
        #: these back to :class:`~repro.plans.ir.PlaceOp`s to replay a
        #: plan with real data, enabling bit-identical verification of a
        #: recovered run against the fault-free original.
        self.payloads: dict[Hashable, list] | None = (
            {} if record_payloads else None
        )

    # -- interception ------------------------------------------------------

    def memory(self, node: int) -> _RecordingMemory:
        return _RecordingMemory(super().memory(node), self.ops, self.payloads)

    def place(self, node: int, block: Block) -> None:
        super().place(node, block)
        key = canonical_key(block.key)
        self.ops.append(PlaceOp(node, block.size, key))
        if self.payloads is not None and block.data is not None:
            self.payloads.setdefault(key, []).append(block.data)

    def execute_phase(
        self, messages: Sequence[Message], *, exclusive: bool = False
    ) -> float:
        if not messages:
            return super().execute_phase(messages, exclusive=exclusive)
        try:
            plan_messages = tuple(
                PlanMessage(
                    msg.src,
                    msg.dst,
                    sum(
                        self.memories[msg.src].get(key).size
                        for key in msg.keys
                    ),
                    tuple(canonical_key(key) for key in msg.keys),
                )
                for msg in messages
            )
        except KeyError:
            plan_messages = None  # let the engine raise its own error
        duration = super().execute_phase(messages, exclusive=exclusive)
        assert plan_messages is not None
        self.ops.append(PhaseOp(plan_messages, exclusive))
        return duration

    def idle_phase(self) -> float:
        duration = super().idle_phase()
        self.ops.append(IdleOp())
        return duration

    def execute_local(
        self,
        costs: Mapping[int, float] | float,
        elements: Mapping[int, int] | int | None = None,
    ) -> float:
        duration = super().execute_local(costs, elements)
        if isinstance(costs, (int, float)):
            canon_costs: float | tuple = float(costs)
        else:
            canon_costs = tuple(
                sorted((int(k), float(v)) for k, v in costs.items())
            )
        if elements is None or isinstance(elements, int):
            canon_elements = elements
        else:
            canon_elements = tuple(
                sorted((int(k), int(v)) for k, v in elements.items())
            )
        self.ops.append(LocalOp(canon_costs, canon_elements))
        return duration

    def charge_copy(self, per_node_elements: Mapping[int, int]) -> float:
        duration = super().charge_copy(per_node_elements)
        self.ops.append(
            CopyOp(
                tuple(
                    sorted(
                        (int(k), int(v))
                        for k, v in per_node_elements.items()
                    )
                )
            )
        )
        return duration

    # -- compilation -------------------------------------------------------

    def compile(
        self,
        *,
        algorithm: str,
        before: Layout,
        after: Layout,
        requested: str = "",
        comm_class: str = "",
        dtype: str = "float64",
    ) -> CompiledPlan:
        """Freeze the recorded ops into an immutable plan."""
        from repro import __version__

        return CompiledPlan(
            algorithm=algorithm,
            machine=MachineSpec.from_params(
                self.params, topology=self.topology.spec
            ),
            before=LayoutSpec.from_layout(before),
            after=LayoutSpec.from_layout(after),
            ops=tuple(self.ops),
            requested=requested or algorithm,
            comm_class=comm_class,
            dtype=dtype,
            code_version=__version__,
            format_version=PLAN_FORMAT_VERSION,
        )


def synthetic_matrix(before: Layout, dtype=np.float64) -> DistributedMatrix:
    """A cheap deterministic payload for planning-only captures.

    Plan capture needs real arrays to drive the algorithms, but the
    schedule depends only on the layouts and machine — not on the
    values — so an ``arange`` matrix is sufficient and allocation-cheap.
    """
    shape = (1 << before.p, 1 << before.q)
    data = np.arange(shape[0] * shape[1], dtype=dtype).reshape(shape)
    return DistributedMatrix.from_global(data, before)


def capture_transpose(
    params: MachineParams,
    dm: DistributedMatrix,
    after: Layout | None = None,
    *,
    algorithm: str = "auto",
    policy=None,
    packet_size: int | None = None,
    observer=None,
    topology=None,
):
    """Run one planned transpose on a clean machine and capture its plan.

    Returns ``(TransposeResult, CompiledPlan)``.  The result is the full
    verified outcome (real data moved, invariants checked); the plan is
    the payload-free schedule that reproduces the result's
    :class:`~repro.machine.metrics.TransferStats` under
    :func:`repro.plans.replay.replay_plan`.  ``observer`` (e.g. an
    :class:`~repro.obs.instrumentation.Instrumentation` hub) is installed
    on the recording network, so even a planning run is fully traced.
    """
    from repro.transpose.planner import default_after_layout, transpose

    before = dm.layout
    target = after if after is not None else default_after_layout(before)
    network = RecordingNetwork(params, topology=topology)
    if observer is not None:
        network.observer = observer
    result = transpose(
        network,
        dm,
        after,
        algorithm=algorithm,
        policy=policy,
        packet_size=packet_size,
    )
    plan = network.compile(
        algorithm=result.algorithm,
        before=before,
        after=target,
        requested=algorithm,
        comm_class=result.comm_class.value,
        dtype=str(dm.local_data.dtype),
    )
    return result, plan


def capture_permutation(
    params: MachineParams,
    permutation,
    *,
    kind: str = "address",
    dm: DistributedMatrix | None = None,
    before: Layout | None = None,
    policy=None,
    observer=None,
    topology=None,
):
    """Run one :mod:`repro.permute` algorithm and capture its plan.

    The permute counterpart of :func:`capture_transpose` — the
    algorithms run **unmodified** on a :class:`RecordingNetwork`, so the
    captured :class:`~repro.plans.ir.CompiledPlan` replays, caches,
    recovers and serves exactly like a transpose plan.  ``kind`` selects
    the algorithm family:

    * ``"address"`` — a bit permutation of the element address space,
      executed by the exchange machinery.  ``permutation`` is either the
      string ``"reverse"`` (:func:`~repro.permute.bit_reversal.bit_reversal_permute`)
      or a position-permutation mapping for
      :func:`~repro.transpose.exchange.plan_exchange_sequence`;
    * ``"dims"`` — a cube dimension permutation ``delta`` applied by
      parallel swappings
      (:func:`~repro.permute.dimperm.apply_dimension_permutation`);
    * ``"nodes"`` — an arbitrary node permutation ``pi`` via two
      all-to-all rounds
      (:func:`~repro.permute.general.arbitrary_node_permutation`).

    Data comes from ``dm`` or, when omitted, a synthetic matrix on
    ``before``.  Returns ``(result, plan)`` where ``result`` is whatever
    the algorithm returns (a :class:`DistributedMatrix` for
    ``"address"``, the permuted per-node array otherwise).
    """
    from repro.permute.bit_reversal import bit_reversal_permute
    from repro.permute.dimperm import apply_dimension_permutation
    from repro.permute.general import arbitrary_node_permutation
    from repro.transpose.exchange import (
        ExchangeExecutor,
        plan_exchange_sequence,
    )

    if dm is None:
        if before is None:
            raise ValueError("capture_permutation needs dm= or before=")
        dm = synthetic_matrix(before)
    layout = dm.layout
    network = RecordingNetwork(params, topology=topology)
    if observer is not None:
        network.observer = observer
    if kind == "address":
        if permutation == "reverse":
            result = bit_reversal_permute(network, dm, policy=policy)
            algorithm = "permute-reverse"
        else:
            executor = ExchangeExecutor(network, dm, policy=policy)
            executor.run(plan_exchange_sequence(permutation, layout))
            result = executor.finish(layout)
            algorithm = "permute-address"
    elif kind == "dims":
        result = apply_dimension_permutation(
            network, dm.local_data, permutation
        )
        algorithm = "permute-dims"
    elif kind == "nodes":
        result = arbitrary_node_permutation(
            network, dm.local_data, permutation
        )
        algorithm = "permute-nodes"
    else:
        raise ValueError(
            f"unknown permutation kind {kind!r} "
            "(expected address, dims or nodes)"
        )
    plan = network.compile(
        algorithm=algorithm,
        before=layout,
        after=layout,
        comm_class="permute",
        dtype=str(dm.local_data.dtype),
    )
    return result, plan
