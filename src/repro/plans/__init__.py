"""Compiled schedule IR, plan capture/replay, and the plan cache.

The paper's transposes are static phase schedules; this package
separates *planning* (running an algorithm once, under a recorder) from
*execution* (replaying the resulting :class:`CompiledPlan` on any
compatible network, faulted or not), with a content-addressed cache in
between so repeated requests never re-plan.
"""

from repro.plans.batch import (
    BatchOutcome,
    BatchReport,
    BatchRequest,
    resolve_problem,
    run_batch,
)
from repro.plans.cache import PlanCache, plan_key
from repro.plans.ir import (
    PLAN_FORMAT_VERSION,
    CollectOp,
    CompiledPlan,
    CopyOp,
    IdleOp,
    LayoutSpec,
    LocalOp,
    MachineSpec,
    PhaseOp,
    PlaceOp,
    PlanError,
    PlanMessage,
    PlanOp,
    RemapOp,
    canonical_key,
)
from repro.plans.recorder import (
    RecordingNetwork,
    capture_permutation,
    capture_transpose,
    synthetic_matrix,
)
from repro.plans.replay import (
    DegradedReplay,
    PlanReplayError,
    replay_degraded,
    replay_plan,
)
from repro.plans.symbolic import (
    SymbolicError,
    SymbolicState,
    holdings_to_symbolic,
    simulate_ops,
)

__all__ = [
    "PLAN_FORMAT_VERSION",
    "BatchOutcome",
    "BatchReport",
    "BatchRequest",
    "CollectOp",
    "CompiledPlan",
    "CopyOp",
    "DegradedReplay",
    "IdleOp",
    "LayoutSpec",
    "LocalOp",
    "MachineSpec",
    "PhaseOp",
    "PlaceOp",
    "PlanCache",
    "PlanError",
    "PlanMessage",
    "PlanOp",
    "PlanReplayError",
    "RecordingNetwork",
    "RemapOp",
    "SymbolicError",
    "SymbolicState",
    "canonical_key",
    "capture_permutation",
    "capture_transpose",
    "holdings_to_symbolic",
    "plan_key",
    "replay_degraded",
    "replay_plan",
    "resolve_problem",
    "run_batch",
    "simulate_ops",
    "synthetic_matrix",
]
