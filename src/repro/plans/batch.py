"""Serve many transpose requests through the plan cache.

This is the plan-once/replay-many surface: each request is resolved to a
content address (:func:`~repro.plans.cache.plan_key`); on a miss the
schedule is captured once from a real run, on a hit the cached
:class:`~repro.plans.ir.CompiledPlan` replays on a fresh network with no
planning and no payload movement.  A second batch over the same request
set is therefore served entirely from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Mapping

from repro.layout.fields import Layout
from repro.machine.engine import CubeNetwork
from repro.machine.params import MachineParams
from repro.plans.cache import PlanCache, plan_key
from repro.plans.recorder import capture_transpose, synthetic_matrix
from repro.plans.replay import replay_plan

__all__ = [
    "BatchOutcome",
    "BatchReport",
    "BatchRequest",
    "resolve_problem",
    "run_batch",
]


def resolve_problem(
    n: int, elements: int, layout: str
) -> tuple[Layout, Layout | None]:
    """Map CLI-style problem parameters to a ``(before, after)`` pair.

    Mirrors the ``run`` subcommand exactly: ``after`` is ``None`` for a
    square matrix (planner default), the mirrored layout otherwise.
    Raises :class:`ValueError` with the CLI's own messages on bad input.
    """
    from repro.layout import partition as pt

    bits = elements.bit_length() - 1
    if elements <= 0 or 1 << bits != elements:
        raise ValueError("element count must be a power of two")
    p = bits // 2
    q = bits - p
    if layout == "2d":
        if n % 2:
            raise ValueError("2d layout needs an even cube dimension")
        before = pt.two_dim_cyclic(p, q, n // 2, n // 2)
        after = (
            None if p == q else pt.two_dim_cyclic(q, p, n // 2, n // 2)
        )
    elif layout == "1d-rows":
        before = pt.row_consecutive(p, q, n)
        after = None if p == q else pt.row_consecutive(q, p, n)
    elif layout == "1d-cols":
        before = pt.column_cyclic(p, q, n)
        after = None if p == q else pt.column_cyclic(q, p, n)
    else:
        raise ValueError(f"unknown layout {layout!r}")
    return before, after


@dataclass(frozen=True)
class BatchRequest:
    """One transpose request in CLI vocabulary."""

    #: Element count (power of two).  Optional for ``workload`` requests
    #: whose spec carries an explicit ``@RxC`` shape.
    elements: int = 0
    n: int = 6
    layout: str = "2d"
    machine: str = "ipsc"
    algorithm: str = "auto"
    tau: float = 1.0
    t_c: float = 1.0
    n_port: bool = False
    #: Optional fault scenario (``FaultPlan.from_spec`` syntax); faulted
    #: requests are served through :func:`repro.plans.replay.replay_degraded`.
    faults: str | None = None
    #: Interconnect spec (``repro.topology.parse_topology`` syntax); the
    #: topology's node count must equal ``2**n``.
    topology: str = "cube"
    #: Composite pipeline spec (``repro.workloads.parse_workload``
    #: grammar, e.g. ``pipeline:bitrev+transpose@13x11`` or
    #: ``fft@64x64``).  When set, the request is served as a compiled
    #: workload pipeline; ``elements`` supplies a square default shape
    #: for specs without an ``@RxC`` suffix and ``algorithm`` is ignored.
    workload: str | None = None

    @classmethod
    def from_dict(cls, d: Mapping) -> "BatchRequest":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown batch request field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**d)

    def machine_params(self) -> MachineParams:
        from repro.machine.params import PortModel
        from repro.machine.presets import (
            connection_machine,
            custom_machine,
            intel_ipsc,
        )

        if self.machine == "ipsc":
            return intel_ipsc(self.n)
        if self.machine == "cm":
            return connection_machine(self.n)
        if self.machine == "custom":
            return custom_machine(
                self.n,
                tau=self.tau,
                t_c=self.t_c,
                port_model=PortModel.N_PORT
                if self.n_port
                else PortModel.ONE_PORT,
            )
        raise ValueError(f"unknown machine {self.machine!r}")


@dataclass(frozen=True)
class BatchOutcome:
    """What happened to one request."""

    index: int
    elements: int
    algorithm: str
    cache_hit: bool
    modelled_time: float
    wall_seconds: float
    key: str
    #: How a faulted request completed (``clean`` for fault-free ones).
    resolved: str = "clean"
    #: Recovery accounting (``RecoveryReport.as_dict()``) when the
    #: request was served resume-based; None otherwise.
    recovery: dict | None = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "elements": self.elements,
            "algorithm": self.algorithm,
            "cache_hit": self.cache_hit,
            "modelled_time": self.modelled_time,
            "wall_seconds": self.wall_seconds,
            "key": self.key,
            "resolved": self.resolved,
            "recovery": self.recovery,
        }


@dataclass
class BatchReport:
    """Aggregate outcome of one :func:`run_batch` call."""

    outcomes: list[BatchOutcome] = field(default_factory=list)

    @property
    def hits(self) -> int:
        return sum(1 for o in self.outcomes if o.cache_hit)

    @property
    def misses(self) -> int:
        return sum(1 for o in self.outcomes if not o.cache_hit)

    @property
    def wall_seconds(self) -> float:
        return sum(o.wall_seconds for o in self.outcomes)

    def summary(self) -> str:
        base = (
            f"{len(self.outcomes)} request(s): {self.hits} served from "
            f"cache, {self.misses} compiled; "
            f"wall {self.wall_seconds * 1e3:.1f} ms"
        )
        rec = self.recovery_summary()
        if rec["faulted_requests"]:
            base += (
                f"; {rec['faulted_requests']} faulted "
                f"({rec['recovered']} recovered, {rec['ladders']} laddered)"
            )
        return base

    def recovery_summary(self) -> dict:
        """Aggregate recovery accounting over every faulted request."""
        faulted = [o for o in self.outcomes if o.resolved != "clean"]
        reports = [o.recovery for o in self.outcomes if o.recovery]
        return {
            "faulted_requests": len(faulted),
            "recovered": sum(1 for r in reports if r.get("recovered")),
            "ladders": sum(1 for o in faulted if o.resolved == "ladder"),
            "fault_encounters": sum(
                r.get("fault_encounters", 0) for r in reports
            ),
            "checkpoints_taken": sum(
                r.get("checkpoints_taken", 0) for r in reports
            ),
            "rollbacks": sum(r.get("rollbacks", 0) for r in reports),
            "replayed_phases": sum(
                r.get("replayed_phases", 0) for r in reports
            ),
            "backoff_phases": sum(
                r.get("backoff_phases", 0) for r in reports
            ),
            "wasted_elements": sum(
                r.get("wasted_elements", 0) for r in reports
            ),
        }

    def as_dict(self) -> dict:
        return {
            "requests": len(self.outcomes),
            "hits": self.hits,
            "misses": self.misses,
            "wall_seconds": self.wall_seconds,
            "recovery": self.recovery_summary(),
            "outcomes": [o.as_dict() for o in self.outcomes],
        }


def _serve_workload_request(
    index: int,
    req: BatchRequest,
    params: MachineParams,
    cache: PlanCache,
    recovery,
    started: float,
) -> BatchOutcome:
    """Serve one composite-pipeline request against the shared cache."""
    from repro.machine.faults import FaultPlan
    from repro.workloads import build_pipeline, serve_workload

    pipeline = build_pipeline(
        req.workload, req.n, layout=req.layout, elements=req.elements
    )
    faults = (
        FaultPlan.from_spec(req.n, req.faults) if req.faults else None
    )
    served = serve_workload(
        pipeline,
        params,
        faults=faults,
        cache=cache,
        recovery=recovery,
    )
    rec = served.recovery
    return BatchOutcome(
        index=index,
        elements=pipeline.shape.rows * pipeline.shape.cols,
        algorithm=served.algorithm,
        cache_hit=served.cache_hit,
        modelled_time=served.stats.time,
        wall_seconds=perf_counter() - started,
        key=pipeline.key(params),
        resolved=served.resolved,
        recovery=None if rec is None else rec.as_dict(),
    )


def run_batch(
    requests: Iterable[BatchRequest],
    *,
    cache: PlanCache | None = None,
    recovery=None,
) -> BatchReport:
    """Execute every request, compiling on miss and replaying on hit.

    ``auto`` algorithms are resolved through the planner's §9 selection
    *before* keying, so an explicit request for the same strategy and an
    ``auto`` request share one cached plan.

    A request carrying a ``faults`` spec is served through
    :func:`repro.plans.replay.replay_degraded` against the same cache;
    ``recovery`` (a :class:`~repro.recovery.policy.RecoveryPolicy`)
    switches those requests to resume-based serving, and each outcome
    then carries the recovery accounting.  Recovery applies to cube
    requests only — plan surgery is cube-specific, so faulted requests
    on other topologies always serve restart-based.
    """
    from repro.topology import parse_topology, supported_algorithms
    from repro.transpose.planner import default_after_layout, select_algorithm

    if cache is None:
        cache = PlanCache()
    report = BatchReport()
    for index, req in enumerate(requests):
        started = perf_counter()
        params = req.machine_params()
        topo = parse_topology(req.topology, req.n)
        if topo.num_nodes != 1 << req.n:
            raise ValueError(
                f"topology {topo.spec!r} has {topo.num_nodes} nodes but the "
                f"request needs 2^{req.n} = {1 << req.n}"
            )
        on_cube = topo.name == "cube"
        if req.workload:
            if not on_cube:
                raise ValueError(
                    "workload pipelines require the cube topology"
                )
            report.outcomes.append(
                _serve_workload_request(
                    index, req, params, cache, recovery, started
                )
            )
            continue
        before, after = resolve_problem(req.n, req.elements, req.layout)
        target = after if after is not None else default_after_layout(before)
        name = req.algorithm
        if name == "auto":
            name = select_algorithm(
                before, target, params.port_model, topology=topo
            )
        elif name not in supported_algorithms(topo):
            from repro.topology.capabilities import CUBE_ALGORITHMS

            if name not in CUBE_ALGORITHMS:
                raise ValueError(f"unknown algorithm {name!r}")
            name = "routed-universal"
        key = plan_key(params, before, target, name, topology=topo.spec)
        if req.faults:
            from repro.machine.faults import FaultPlan
            from repro.plans.replay import replay_degraded

            served = replay_degraded(
                params,
                before,
                target,
                faults=FaultPlan.from_spec(
                    req.n,
                    req.faults,
                    topology=None if on_cube else topo,
                ),
                algorithm=name,
                cache=cache,
                recovery=recovery if on_cube else None,
                topology=topo,
            )
            rec = served.recovery
            report.outcomes.append(
                BatchOutcome(
                    index=index,
                    elements=req.elements,
                    algorithm=served.algorithm,
                    cache_hit=served.cache_hit,
                    modelled_time=served.stats.time,
                    wall_seconds=perf_counter() - started,
                    key=key,
                    resolved=(
                        rec.resolved
                        if rec is not None
                        else ("ladder" if not served.replayed else "degraded")
                        if served.degraded
                        else "clean"
                    ),
                    recovery=None if rec is None else rec.as_dict(),
                )
            )
            continue
        plan = cache.get(key)
        hit = plan is not None
        if hit:
            network = CubeNetwork(params, topology=topo)
            replay_plan(plan, network)
            modelled = network.stats.time
        else:
            result, plan = capture_transpose(
                params,
                synthetic_matrix(before),
                target,
                algorithm=name,
                topology=topo,
            )
            cache.put(key, plan)
            modelled = result.stats.time
        report.outcomes.append(
            BatchOutcome(
                index=index,
                elements=req.elements,
                algorithm=plan.algorithm,
                cache_hit=hit,
                modelled_time=modelled,
                wall_seconds=perf_counter() - started,
                key=key,
            )
        )
    return report
