"""Content-addressed cache of :class:`~repro.plans.ir.CompiledPlan`.

Plans are keyed by a **stable hash of the inputs that determine the
schedule** — machine constants, the layout pair, the algorithm, the
buffer policy, the packet size and the payload dtype — never by object
identity or insertion order.  The key is the sha256 of a canonical
compact JSON document (sorted keys, no whitespace), so the same request
maps to the same key across processes and sessions; display names are
excluded because they do not affect the schedule.

The cache is two-tier: a bounded in-memory LRU in front of an optional
on-disk JSON store (one ``<key>.json`` file per plan, written
atomically).  Hits, misses and evictions are counted locally and can be
surfaced through :class:`~repro.machine.metrics.TransferStats` and a
:class:`~repro.machine.trace.TraceRecorder` observer.

The cache is safe for concurrent use: one lock guards the LRU order,
the counters and every notification, so a single instance can sit in
front of a pool of serving workers (:mod:`repro.service`).  Because a
worker usually wants cache events attributed to *its own* telemetry,
``get``/``put``/``get_or_compile`` also take per-call ``stats=`` /
``observer=`` overrides — mutating the shared instance's ``observer``
from worker threads (the old borrowing pattern) would cross-wire one
worker's events into another's span timeline.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.layout.fields import Layout
from repro.machine.params import MachineParams
from repro.plans.ir import (
    PLAN_FORMAT_VERSION,
    CompiledPlan,
    LayoutSpec,
    MachineSpec,
    PlanError,
)

__all__ = ["PlanCache", "plan_key"]


def plan_key(
    params: MachineParams,
    before: Layout,
    after: Layout | None = None,
    algorithm: str = "auto",
    *,
    policy=None,
    packet_size: int | None = None,
    dtype: str = "float64",
    topology: str = "cube",
) -> str:
    """Stable content address for the plan these inputs would compile to.

    ``after=None`` means the planner's default target layout; it is
    resolved here so explicit and implicit requests for the same pair
    share one key.  ``topology`` is the interconnect spec the plan
    targets; the default ``"cube"`` leaves the serialized machine dict
    (and therefore every pre-existing key) unchanged.
    """
    if after is None:
        from repro.transpose.planner import default_after_layout

        after = default_after_layout(before)
    doc = {
        "format": PLAN_FORMAT_VERSION,
        "algorithm": algorithm,
        "machine": MachineSpec.from_params(params, topology=topology).as_dict(
            with_name=False
        ),
        "before": LayoutSpec.from_layout(before).as_dict(with_name=False),
        "after": LayoutSpec.from_layout(after).as_dict(with_name=False),
        "packet_size": packet_size,
        "policy": None
        if policy is None
        else [
            policy.mode,
            policy.min_unbuffered_run,
            policy.charge_local_moves,
        ],
        "dtype": dtype,
    }
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


class PlanCache:
    """Bounded LRU of compiled plans with an optional on-disk tier.

    ``stats`` (a :class:`~repro.machine.metrics.TransferStats`) and
    ``observer`` (anything with an ``on_cache(key, event)`` method, e.g.
    :class:`~repro.machine.trace.TraceRecorder`) are notified of every
    ``hit`` / ``miss`` / ``eviction`` so cache behaviour shows up in the
    same instruments as the simulated communication itself.  The
    ``stats=`` / ``observer=`` keyword arguments on :meth:`get` /
    :meth:`put` / :meth:`get_or_compile` notify an *additional*
    per-call sink — this is how concurrent callers sharing one cache
    attribute events to their own telemetry without mutating shared
    state.

    All public methods are thread-safe: the LRU order and every counter
    are guarded by one reentrant lock, so N workers hammering one cache
    conserve counts exactly (``hits + misses`` equals the number of
    ``get`` calls, ``resident`` never exceeds ``capacity``).
    """

    def __init__(
        self,
        capacity: int = 128,
        path: str | os.PathLike | None = None,
        *,
        stats=None,
        observer=None,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        self.stats = stats
        self.observer = observer
        self._lock = threading.RLock()
        self._plans: OrderedDict[str, CompiledPlan] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.stores = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._plans:
                return True
        return self._disk_file(key) is not None

    # -- lookup ------------------------------------------------------------

    def get(self, key: str, *, stats=None, observer=None) -> CompiledPlan | None:
        """The cached plan for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self._note(key, "hit", stats, observer)
                return plan
        # Disk I/O happens outside the lock; admission re-takes it.
        plan = self._load_from_disk(key)
        with self._lock:
            if plan is not None:
                self.disk_hits += 1
                self._admit(key, plan, stats, observer)
                self._note(key, "hit", stats, observer)
                return plan
            self._note(key, "miss", stats, observer)
        return None

    def put(self, key: str, plan: CompiledPlan, *, stats=None, observer=None) -> None:
        """Store ``plan`` in memory and, when configured, on disk."""
        with self._lock:
            self._admit(key, plan, stats, observer)
            self.stores += 1
        if self.path is not None:
            self._write_to_disk(key, plan)

    def get_or_compile(
        self, key: str, compile_fn, *, stats=None, observer=None
    ) -> tuple[CompiledPlan, bool]:
        """``(plan, was_hit)`` — calls ``compile_fn()`` and stores on miss.

        ``compile_fn`` runs *outside* the cache lock so a slow compile
        never serializes other workers; two concurrent misses on the
        same key may therefore both compile, with the later ``put``
        winning (both plans are identical by construction, so the race
        costs duplicate work, never wrong results).
        """
        plan = self.get(key, stats=stats, observer=observer)
        if plan is not None:
            return plan, True
        plan = compile_fn()
        self.put(key, plan, stats=stats, observer=observer)
        return plan, False

    # -- bookkeeping -------------------------------------------------------

    def counters(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "disk_hits": self.disk_hits,
                "stores": self.stores,
                "resident": len(self._plans),
                "capacity": self.capacity,
            }

    def _admit(self, key: str, plan: CompiledPlan, stats=None, observer=None) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.capacity:
            evicted, _ = self._plans.popitem(last=False)
            self._note(evicted, "eviction", stats, observer)

    def _note(self, key: str, event: str, stats=None, observer=None) -> None:
        if event == "hit":
            self.hits += 1
        elif event == "miss":
            self.misses += 1
        elif event == "eviction":
            self.evictions += 1
        for sink in (self.stats, stats):
            if sink is not None:
                sink.record_plan_event(event)
        for obs in (self.observer, observer):
            if obs is not None:
                on_cache = getattr(obs, "on_cache", None)
                if on_cache is not None:
                    on_cache(key, event)

    # -- disk tier ---------------------------------------------------------

    def _disk_file(self, key: str) -> Path | None:
        if self.path is None:
            return None
        file = self.path / f"{key}.json"
        return file if file.is_file() else None

    def _load_from_disk(self, key: str) -> CompiledPlan | None:
        file = self._disk_file(key)
        if file is None:
            return None
        try:
            return CompiledPlan.loads(file.read_text())
        except (OSError, PlanError):
            return None  # unreadable or corrupt entry behaves as a miss

    def _write_to_disk(self, key: str, plan: CompiledPlan) -> None:
        assert self.path is not None
        tmp = self.path / f".{key}.tmp"
        tmp.write_text(plan.dumps())
        os.replace(tmp, self.path / f"{key}.json")
