"""The compiled-schedule intermediate representation.

The paper's algorithms are *static* phase schedules: for a fixed layout
pair, machine and algorithm, every message of every phase is determined
before any data moves (§4-§5 build the paths, §6 the schedules).  A
:class:`CompiledPlan` materializes one such schedule as an immutable,
JSON-serializable sequence of typed operations plus provenance — the
layout pair, the machine constants, the algorithm and the code version
that produced it.  A plan is *payload-free*: it names blocks by key and
size only, so replaying it on virtual blocks reproduces the exact cost
accounting of the original run without allocating or moving any matrix
data.

Operations
----------
``PhaseOp``
    One communication phase: the explicit message list (source,
    destination, block keys, element count) and the ``exclusive`` flag
    under which it originally ran, so the engine re-checks the paper's
    edge-disjointness lemmas on every replay.
``PlaceOp`` / ``CollectOp``
    A block deposited into / popped out of a node memory by the
    algorithm (initial distribution, final collection, staging).
``CopyOp`` / ``LocalOp``
    Concurrent local work charged through ``charge_copy`` /
    ``execute_local``, with the per-node costs preserved.
``IdleOp``
    A zero-duration phase that only advances the phase clock.
``RemapOp``
    A node relabeling ``x -> x ^ mask`` applied to all subsequent
    operations.  XOR-translation is a cube automorphism, so a plan
    compiled for one node numbering replays — with identical modelled
    cost — on any translate of it (COSTA-style processor relabeling).

Serialization is canonical: keys are sorted, floats round-trip exactly,
and tuples map to JSON arrays, so ``loads(dumps(plan)) == plan`` and the
content fingerprint is stable across sessions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Hashable, Mapping, Union

import numpy as np

from repro.layout.fields import Layout, ProcField
from repro.machine.params import MachineParams, PortModel

__all__ = [
    "PLAN_FORMAT_VERSION",
    "CollectOp",
    "CompiledPlan",
    "CopyOp",
    "IdleOp",
    "LayoutSpec",
    "LocalOp",
    "MachineSpec",
    "PhaseOp",
    "PlaceOp",
    "PlanError",
    "PlanMessage",
    "PlanOp",
    "RemapOp",
    "canonical_key",
]

#: Bumped whenever the serialized layout of a plan changes; plans with a
#: different format version are refused rather than misinterpreted.
PLAN_FORMAT_VERSION = 1


class PlanError(ValueError):
    """A plan could not be serialized, parsed or validated."""


# -- block keys -----------------------------------------------------------------


def canonical_key(key: Hashable) -> Hashable:
    """Normalize a block key so it survives a JSON round trip unchanged.

    Tuples become tuples of canonical components, NumPy integers become
    Python ints; strings, ints, floats, bools and ``None`` pass through.
    Anything else is not representable and raises :class:`PlanError`.
    """
    if isinstance(key, tuple):
        return tuple(canonical_key(k) for k in key)
    if isinstance(key, (np.integer,)):
        return int(key)
    if key is None or isinstance(key, (bool, int, float, str)):
        return key
    raise PlanError(
        f"block key {key!r} of type {type(key).__name__} is not "
        "JSON-representable; plans support ints, strings, floats, bools, "
        "None and (nested) tuples of those"
    )


def _encode_key(key: Hashable):
    if isinstance(key, tuple):
        return [_encode_key(k) for k in key]
    return key


def _decode_key(obj) -> Hashable:
    if isinstance(obj, list):
        return tuple(_decode_key(o) for o in obj)
    return obj


# -- provenance -----------------------------------------------------------------


@dataclass(frozen=True)
class MachineSpec:
    """The machine constants a plan was compiled against.

    ``topology`` is the canonical interconnect spec
    (:attr:`repro.topology.base.Topology.spec`); ``"cube"`` — the only
    value earlier releases could produce — is the default and is
    omitted from the serialized form, so every previously written plan
    (and its content fingerprint) is unchanged.
    """

    n: int
    tau: float
    t_c: float
    packet_capacity: int
    t_copy: float
    port_model: str
    pipelined: bool
    name: str = "custom"
    topology: str = "cube"

    @classmethod
    def from_params(
        cls, params: MachineParams, *, topology: str = "cube"
    ) -> "MachineSpec":
        return cls(
            n=params.n,
            tau=float(params.tau),
            t_c=float(params.t_c),
            packet_capacity=params.packet_capacity,
            t_copy=float(params.t_copy),
            port_model=params.port_model.value,
            pipelined=params.pipelined,
            name=params.name,
            topology=topology,
        )

    def to_params(self) -> MachineParams:
        return MachineParams(
            n=self.n,
            tau=self.tau,
            t_c=self.t_c,
            packet_capacity=self.packet_capacity,
            t_copy=self.t_copy,
            port_model=PortModel(self.port_model),
            pipelined=self.pipelined,
            name=self.name,
        )

    def compatible_with(self, params: MachineParams) -> bool:
        """Cost-model equality; the display name is irrelevant."""
        return (
            self.n == params.n
            and self.tau == params.tau
            and self.t_c == params.t_c
            and self.packet_capacity == params.packet_capacity
            and self.t_copy == params.t_copy
            and self.port_model == params.port_model.value
            and self.pipelined == params.pipelined
        )

    def as_dict(self, *, with_name: bool = True) -> dict:
        d = {
            "n": self.n,
            "tau": self.tau,
            "t_c": self.t_c,
            "packet_capacity": self.packet_capacity,
            "t_copy": self.t_copy,
            "port_model": self.port_model,
            "pipelined": self.pipelined,
        }
        if self.topology != "cube":
            d["topology"] = self.topology
        if with_name:
            d["name"] = self.name
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "MachineSpec":
        return cls(
            n=d["n"],
            tau=d["tau"],
            t_c=d["t_c"],
            packet_capacity=d["packet_capacity"],
            t_copy=d["t_copy"],
            port_model=d["port_model"],
            pipelined=d["pipelined"],
            name=d.get("name", "custom"),
            topology=d.get("topology", "cube"),
        )


@dataclass(frozen=True)
class LayoutSpec:
    """A serializable description of one side of the layout pair."""

    p: int
    q: int
    fields: tuple[tuple[tuple[int, ...], bool], ...]
    name: str = "layout"

    @classmethod
    def from_layout(cls, layout: Layout) -> "LayoutSpec":
        return cls(
            p=layout.p,
            q=layout.q,
            fields=tuple((tuple(f.dims), f.gray) for f in layout.fields),
            name=layout.name,
        )

    def to_layout(self) -> Layout:
        return Layout(
            self.p,
            self.q,
            tuple(ProcField(dims, gray) for dims, gray in self.fields),
            self.name,
        )

    def as_dict(self, *, with_name: bool = True) -> dict:
        d = {
            "p": self.p,
            "q": self.q,
            "fields": [[list(dims), gray] for dims, gray in self.fields],
        }
        if with_name:
            d["name"] = self.name
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "LayoutSpec":
        return cls(
            p=d["p"],
            q=d["q"],
            fields=tuple(
                (tuple(dims), bool(gray)) for dims, gray in d["fields"]
            ),
            name=d.get("name", "layout"),
        )


# -- operations -----------------------------------------------------------------


@dataclass(frozen=True)
class PlanMessage:
    """One neighbour-to-neighbour transfer within a phase."""

    src: int
    dst: int
    elements: int
    keys: tuple[Hashable, ...]


@dataclass(frozen=True)
class PhaseOp:
    """One communication phase with its explicit message list."""

    messages: tuple[PlanMessage, ...]
    exclusive: bool = False


@dataclass(frozen=True)
class PlaceOp:
    """A block of ``size`` elements deposited into a node memory."""

    node: int
    size: int
    key: Hashable


@dataclass(frozen=True)
class CollectOp:
    """A block popped out of a node memory by the algorithm."""

    node: int
    key: Hashable


@dataclass(frozen=True)
class CopyOp:
    """A concurrent buffer copy charged via ``charge_copy``."""

    per_node: tuple[tuple[int, int], ...]  # (node, elements), node-sorted


@dataclass(frozen=True)
class LocalOp:
    """Concurrent local work charged via ``execute_local``."""

    costs: Union[float, tuple[tuple[int, float], ...]]
    elements: Union[None, int, tuple[tuple[int, int], ...]] = None


@dataclass(frozen=True)
class IdleOp:
    """A zero-duration phase advancing the phase clock (stall rounds)."""


@dataclass(frozen=True)
class RemapOp:
    """Relabel every subsequent node id by XOR with ``mask``."""

    mask: int


PlanOp = Union[PhaseOp, PlaceOp, CollectOp, CopyOp, LocalOp, IdleOp, RemapOp]


def _encode_op(op: PlanOp) -> list:
    if isinstance(op, PhaseOp):
        return [
            "phase",
            1 if op.exclusive else 0,
            [
                [m.src, m.dst, m.elements, _encode_key(list(m.keys))]
                for m in op.messages
            ],
        ]
    if isinstance(op, PlaceOp):
        return ["place", op.node, op.size, _encode_key(op.key)]
    if isinstance(op, CollectOp):
        return ["collect", op.node, _encode_key(op.key)]
    if isinstance(op, CopyOp):
        return ["copy", [[n, c] for n, c in op.per_node]]
    if isinstance(op, LocalOp):
        costs = (
            op.costs
            if isinstance(op.costs, float)
            else [[n, c] for n, c in op.costs]
        )
        elements = (
            op.elements
            if op.elements is None or isinstance(op.elements, int)
            else [[n, c] for n, c in op.elements]
        )
        return ["local", costs, elements]
    if isinstance(op, IdleOp):
        return ["idle"]
    if isinstance(op, RemapOp):
        return ["remap", op.mask]
    raise PlanError(f"unknown plan op {op!r}")


def _decode_op(obj) -> PlanOp:
    try:
        tag = obj[0]
        if tag == "phase":
            return PhaseOp(
                messages=tuple(
                    PlanMessage(m[0], m[1], m[2], tuple(_decode_key(m[3])))
                    for m in obj[2]
                ),
                exclusive=bool(obj[1]),
            )
        if tag == "place":
            return PlaceOp(obj[1], obj[2], _decode_key(obj[3]))
        if tag == "collect":
            return CollectOp(obj[1], _decode_key(obj[2]))
        if tag == "copy":
            return CopyOp(tuple((n, c) for n, c in obj[1]))
        if tag == "local":
            costs = (
                float(obj[1])
                if isinstance(obj[1], (int, float))
                else tuple((n, float(c)) for n, c in obj[1])
            )
            elements = obj[2]
            if isinstance(elements, list):
                elements = tuple((n, c) for n, c in elements)
            return LocalOp(costs, elements)
        if tag == "idle":
            return IdleOp()
        if tag == "remap":
            return RemapOp(obj[1])
    except (IndexError, TypeError, KeyError) as exc:
        raise PlanError(f"malformed plan op {obj!r}") from exc
    raise PlanError(f"unknown plan op tag {obj!r}")


# -- the plan -------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledPlan:
    """An immutable, replayable schedule with provenance.

    ``algorithm`` is the strategy that actually executed; ``requested``
    the one originally asked for (they differ when the planner degraded
    around faults at capture time).  ``dtype`` records the payload dtype
    the capture ran with — replay is payload-free, but the fingerprint
    pins it so a cache key never silently aliases two element widths.
    """

    algorithm: str
    machine: MachineSpec
    before: LayoutSpec
    after: LayoutSpec
    ops: tuple[PlanOp, ...]
    requested: str = ""
    comm_class: str = ""
    dtype: str = "float64"
    code_version: str = "unknown"
    format_version: int = PLAN_FORMAT_VERSION

    def __post_init__(self) -> None:
        if not self.requested:
            object.__setattr__(self, "requested", self.algorithm)
        if not isinstance(self.ops, tuple):
            object.__setattr__(self, "ops", tuple(self.ops))

    # -- shape ------------------------------------------------------------

    @property
    def num_phases(self) -> int:
        return sum(1 for op in self.ops if isinstance(op, (PhaseOp, IdleOp)))

    @property
    def num_messages(self) -> int:
        return sum(
            len(op.messages) for op in self.ops if isinstance(op, PhaseOp)
        )

    @property
    def total_message_elements(self) -> int:
        return sum(
            m.elements
            for op in self.ops
            if isinstance(op, PhaseOp)
            for m in op.messages
        )

    def describe(self) -> str:
        where = (
            f"a {self.machine.n}-cube"
            if self.machine.topology == "cube"
            else self.machine.topology
        )
        return (
            f"{self.algorithm} plan: {len(self.ops)} ops, "
            f"{self.num_phases} phases, {self.num_messages} messages, "
            f"{self.total_message_elements} element-hops on "
            f"{where} ({self.machine.port_model})"
        )

    # -- relabeling -------------------------------------------------------

    def relabeled(self, mask: int) -> "CompiledPlan":
        """The same schedule under the cube automorphism ``x -> x ^ mask``.

        XOR-translation preserves edges, loads and therefore modelled
        cost exactly; only the node ids (not the block keys) change.
        XOR by a constant is an automorphism of the Boolean cube only,
        so relabeling a plan compiled for another topology is refused.
        """
        if self.machine.topology != "cube":
            raise PlanError(
                "XOR relabeling is a cube automorphism; plan was compiled "
                f"for topology {self.machine.topology!r}"
            )
        if not 0 <= mask < (1 << self.machine.n):
            raise PlanError(
                f"relabel mask {mask} outside the {self.machine.n}-cube"
            )
        if mask == 0:
            return self
        return CompiledPlan(
            algorithm=self.algorithm,
            machine=self.machine,
            before=self.before,
            after=self.after,
            ops=(RemapOp(mask), *self.ops),
            requested=self.requested,
            comm_class=self.comm_class,
            dtype=self.dtype,
            code_version=self.code_version,
            format_version=self.format_version,
        )

    # -- serialization ----------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "code_version": self.code_version,
            "algorithm": self.algorithm,
            "requested": self.requested,
            "comm_class": self.comm_class,
            "dtype": self.dtype,
            "machine": self.machine.as_dict(),
            "before": self.before.as_dict(),
            "after": self.after.as_dict(),
            "ops": [_encode_op(op) for op in self.ops],
        }

    def dumps(self, *, indent: int | None = None) -> str:
        """Canonical JSON text: sorted keys, exact float round-trip."""
        return json.dumps(
            self.to_json_dict(),
            sort_keys=True,
            indent=indent,
            separators=(",", ":") if indent is None else None,
        )

    @classmethod
    def from_json_dict(cls, d: Mapping) -> "CompiledPlan":
        version = d.get("format_version")
        if version != PLAN_FORMAT_VERSION:
            raise PlanError(
                f"plan format version {version!r} is not supported "
                f"(this build reads version {PLAN_FORMAT_VERSION})"
            )
        try:
            return cls(
                algorithm=d["algorithm"],
                machine=MachineSpec.from_dict(d["machine"]),
                before=LayoutSpec.from_dict(d["before"]),
                after=LayoutSpec.from_dict(d["after"]),
                ops=tuple(_decode_op(o) for o in d["ops"]),
                requested=d.get("requested", ""),
                comm_class=d.get("comm_class", ""),
                dtype=d.get("dtype", "float64"),
                code_version=d.get("code_version", "unknown"),
                format_version=version,
            )
        except (KeyError, TypeError) as exc:
            raise PlanError(f"malformed plan document: {exc}") from exc

    @classmethod
    def loads(cls, text: str) -> "CompiledPlan":
        try:
            d = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"plan is not valid JSON: {exc}") from exc
        if not isinstance(d, dict):
            raise PlanError("plan document must be a JSON object")
        return cls.from_json_dict(d)

    @property
    def fingerprint(self) -> str:
        """Stable content address of the full plan (sha256 hex)."""
        return hashlib.sha256(self.dumps().encode()).hexdigest()
