"""Symbolic, payload-free execution of plan operations.

Plan surgery (:mod:`repro.recovery.surgery`) must prove a rewritten op
suffix is equivalent to the original one *before* committing real blocks
to it.  This module provides that proof engine: it runs a sequence of
:class:`~repro.plans.ir.PlanOp` over an abstract machine state that
tracks only *which node holds which key* — no payloads, no costs — and
raises on anything that would be an execution error on the real engine
(moving a block a node does not hold, crossing a non-edge or a forbidden
link, duplicating a key).

The abstraction is sound because plans are payload-free by construction:
a :class:`~repro.plans.ir.PhaseOp` names blocks by key, and the engine's
per-phase semantics (pop everything, then put everything) depend only on
the key→node map.  It requires *globally unique* block keys — the same
invariant :class:`~repro.machine.memory.NodeMemory` enforces per node is
demanded cube-wide here, and every schedule the planner emits satisfies
it (keys embed their origin block coordinates).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Sequence

from repro.cube.topology import is_edge
from repro.plans.ir import (
    CollectOp,
    CopyOp,
    IdleOp,
    LocalOp,
    PhaseOp,
    PlaceOp,
    PlanOp,
    RemapOp,
)

__all__ = ["SymbolicError", "SymbolicState", "simulate_ops"]


class SymbolicError(RuntimeError):
    """Symbolic execution found an inconsistency in an op sequence."""


class SymbolicState:
    """Abstract machine state: who holds what, and what was collected."""

    __slots__ = ("residual", "collected")

    def __init__(
        self,
        residual: Mapping[Hashable, int] | None = None,
        collected: Mapping[Hashable, int] | None = None,
    ) -> None:
        #: key -> physical node currently holding it.
        self.residual: dict[Hashable, int] = dict(residual or {})
        #: key -> physical node it was collected (popped) at.
        self.collected: dict[Hashable, int] = dict(collected or {})

    def as_pair(self) -> tuple[dict, dict]:
        return dict(self.residual), dict(self.collected)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolicState):
            return NotImplemented
        return (
            self.residual == other.residual
            and self.collected == other.collected
        )

    def __repr__(self) -> str:
        return (
            f"SymbolicState({len(self.residual)} resident, "
            f"{len(self.collected)} collected)"
        )


def holdings_to_symbolic(
    holdings: Mapping[int, Iterable[Hashable]],
) -> dict[Hashable, int]:
    """Invert a node→keys map into the key→node map symbolic ops use.

    Raises :class:`SymbolicError` when two nodes hold the same key — the
    global-uniqueness precondition of the whole abstraction.
    """
    flat: dict[Hashable, int] = {}
    for node, keys in holdings.items():
        for key in keys:
            if key in flat:
                raise SymbolicError(
                    f"block key {key!r} held by both node {flat[key]} and "
                    f"node {node}; symbolic execution requires globally "
                    "unique keys"
                )
            flat[key] = node
    return flat


def simulate_ops(
    ops: Sequence[PlanOp],
    holdings: Mapping[Hashable, int],
    *,
    n: int,
    mask: int = 0,
    forbidden_links: frozenset[tuple[int, int]] | set = frozenset(),
    forbidden_nodes: frozenset[int] | set = frozenset(),
) -> SymbolicState:
    """Run ``ops`` symbolically from ``holdings`` (key → physical node).

    ``mask`` is the XOR relabeling in force when the sequence starts
    (plan node ids map to physical ids as ``id ^ mask``); ``RemapOp``
    updates it exactly as the replay executor does.  ``forbidden_links``
    and ``forbidden_nodes`` model permanently dead resources: any message
    crossing one raises — this is how surgery proves a rewritten suffix
    avoids every dead link.

    Returns the final :class:`SymbolicState`.  Cost-free ops
    (``CopyOp``/``LocalOp``/``IdleOp``) are ignored; they cannot change
    who holds what.
    """
    state = SymbolicState(residual=holdings)
    residual = state.residual
    for op in ops:
        if isinstance(op, PhaseOp):
            moved: list[tuple[Hashable, int]] = []
            for m in op.messages:
                src = m.src ^ mask
                dst = m.dst ^ mask
                if not is_edge(src, dst):
                    raise SymbolicError(
                        f"message {src}->{dst} does not cross a cube edge"
                    )
                if (src, dst) in forbidden_links:
                    raise SymbolicError(
                        f"message crosses forbidden link {src}->{dst}"
                    )
                if src in forbidden_nodes or dst in forbidden_nodes:
                    raise SymbolicError(
                        f"message {src}->{dst} touches a forbidden node"
                    )
                for key in m.keys:
                    holder = residual.get(key)
                    if holder is None:
                        raise SymbolicError(
                            f"message {src}->{dst} sends key {key!r} that "
                            "no node holds"
                        )
                    if holder != src:
                        raise SymbolicError(
                            f"message {src}->{dst} sends key {key!r} held "
                            f"by node {holder}, not the source"
                        )
                    moved.append((key, dst))
            # Pop-all-then-put, as the engine does; a key sent twice in
            # one phase would have been caught by the holder check above
            # only if both sends named the same source, so re-check.
            seen: set[Hashable] = set()
            for key, dst in moved:
                if key in seen:
                    raise SymbolicError(
                        f"key {key!r} is carried by two messages of one "
                        "phase"
                    )
                seen.add(key)
            for key, dst in moved:
                residual[key] = dst
        elif isinstance(op, PlaceOp):
            node = op.node ^ mask
            if node in forbidden_nodes:
                raise SymbolicError(
                    f"place of key {op.key!r} targets forbidden node {node}"
                )
            if op.key in residual:
                raise SymbolicError(
                    f"place of key {op.key!r} at node {node} duplicates a "
                    f"resident block at node {residual[op.key]}"
                )
            residual[op.key] = node
        elif isinstance(op, CollectOp):
            node = op.node ^ mask
            holder = residual.get(op.key)
            if holder is None:
                raise SymbolicError(
                    f"collect of key {op.key!r} at node {node}: no node "
                    "holds it"
                )
            if holder != node:
                raise SymbolicError(
                    f"collect of key {op.key!r} at node {node}: it is at "
                    f"node {holder}"
                )
            del residual[op.key]
            state.collected[op.key] = node
        elif isinstance(op, RemapOp):
            mask ^= op.mask
        elif isinstance(op, (CopyOp, LocalOp, IdleOp)):
            pass
        else:
            raise SymbolicError(f"unknown plan op {op!r}")
    return state
