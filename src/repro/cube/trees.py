"""Spanning trees of the Boolean cube (§3 of the paper).

Two families matter for personalized communication:

* the **spanning binomial tree** (SBT): children of a node are obtained by
  complementing *leading* zeroes of its relative address (the *reflected*
  SBT complements trailing zeroes).  One-port one-to-all personalized
  communication routed by an SBT is within a factor of two of the lower
  bound; ``n`` *rotated* SBTs achieve the n-port lower bound order.
* the **spanning balanced n-tree** (SBnT, Ho & Johnsson [5,6,7]): the
  ``N - 1`` non-root nodes are divided among the ``n`` ports nearly
  evenly, keyed by the *base* of the relative address (the rotation count
  that minimizes its value).  SBnT routing gives n-port one-to-all and
  all-to-all personalized communication within a small constant of the
  lower bound.

Trees are value objects: ``parent[x]`` / ``children[x]`` maps over node
addresses, plus derived queries (depth, subtree sizes, root-to-node path).
Rotation (Definition 8), reflection (Definition 9) and translation (§3.2)
are provided as constructors/transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes.bits import rotate_left, rotate_right
from repro.cube.topology import dimension_of_edge, num_nodes

__all__ = [
    "SpanningTree",
    "spanning_binomial_tree",
    "spanning_balanced_tree",
    "rotation_base",
    "sbnt_route_dims",
]


@dataclass(frozen=True)
class SpanningTree:
    """A rooted spanning tree of the n-cube, stored as a parent map.

    ``parent[x]`` is the parent address of node ``x`` (and
    ``parent[root] == root``).  Every tree edge must be a cube edge; the
    constructor verifies this, so an ill-formed routing construction fails
    fast rather than producing unroutable schedules.
    """

    n: int
    root: int
    parent: tuple[int, ...]
    _children: dict[int, list[int]] = field(
        default=None, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        size = num_nodes(self.n)
        if len(self.parent) != size:
            raise ValueError(
                f"parent map has {len(self.parent)} entries, expected {size}"
            )
        if self.parent[self.root] != self.root:
            raise ValueError("root must be its own parent")
        children: dict[int, list[int]] = {x: [] for x in range(size)}
        for x in range(size):
            if x == self.root:
                continue
            p = self.parent[x]
            dimension_of_edge(x, p)  # raises if not a cube edge
            children[p].append(x)
        # Reachability check: walking parents from any node must hit root.
        for x in range(size):
            seen = 0
            y = x
            while y != self.root:
                y = self.parent[y]
                seen += 1
                if seen > size:
                    raise ValueError(f"cycle detected walking parents from {x}")
        object.__setattr__(self, "_children", children)

    # -- queries ---------------------------------------------------------

    def children(self, x: int) -> list[int]:
        """Children of ``x``, in insertion (address) order."""
        return list(self._children[x])

    def depth(self, x: int) -> int:
        """Number of edges from the root to ``x``."""
        d = 0
        while x != self.root:
            x = self.parent[x]
            d += 1
        return d

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self.depth(x) for x in range(num_nodes(self.n)))

    def path_from_root(self, x: int) -> list[int]:
        """Node sequence from the root down to ``x`` (inclusive)."""
        rev = [x]
        while x != self.root:
            x = self.parent[x]
            rev.append(x)
        return rev[::-1]

    def subtree_nodes(self, x: int) -> list[int]:
        """All nodes in the subtree rooted at ``x`` (including ``x``)."""
        out = []
        stack = [x]
        while stack:
            y = stack.pop()
            out.append(y)
            stack.extend(self._children[y])
        return out

    def subtree_size(self, x: int) -> int:
        return len(self.subtree_nodes(x))

    def port_of_root_child(self, child: int) -> int:
        """Cube dimension connecting the root to one of its children."""
        return dimension_of_edge(self.root, child)

    def root_subtree_sizes(self) -> dict[int, int]:
        """Map from root port (dimension) to size of the subtree behind it.

        For the SBT the subtree behind dimension ``d`` contains half,
        quarter, ... of the nodes; for the SBnT all entries are within a
        small additive term of ``(N - 1) / n``.
        """
        return {
            self.port_of_root_child(c): self.subtree_size(c)
            for c in self._children[self.root]
        }

    # -- transformations --------------------------------------------------

    def translate(self, s: int) -> "SpanningTree":
        """Tree with every address XOR-ed by ``s`` (§3.2 *translation*).

        The exchange all-to-all algorithm routes from every node along the
        translation of the tree rooted at node 0.
        """
        size = num_nodes(self.n)
        parent = [0] * size
        for x in range(size):
            parent[x ^ s] = self.parent[x] ^ s
        return SpanningTree(self.n, self.root ^ s, tuple(parent))

    def rotate(self, k: int) -> "SpanningTree":
        """Tree with every address left-rotated by ``k`` (Definition 8)."""
        size = num_nodes(self.n)
        parent = [0] * size
        for x in range(size):
            parent[rotate_left(x, k, self.n)] = rotate_left(
                self.parent[x], k, self.n
            )
        return SpanningTree(
            self.n, rotate_left(self.root, k, self.n), tuple(parent)
        )


def spanning_binomial_tree(
    n: int, root: int = 0, *, reflected: bool = False, rotation: int = 0
) -> SpanningTree:
    """Spanning binomial tree rooted at ``root``.

    In relative coordinates (``d = x XOR root``) the parent of ``d != 0``
    clears its highest set bit; the *reflected* variant clears the lowest
    set bit (Definition 9's bit-reversal of the plain tree).  ``rotation``
    applies ``sh^rotation`` to all relative addresses (Definition 8),
    yielding the rotated SBTs used for n-port one-to-all personalized
    communication.
    """
    size = num_nodes(n)
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside {n}-cube")
    parent = [0] * size
    for x in range(size):
        d = rotate_right(x ^ root, rotation, n) if rotation else (x ^ root)
        if d == 0:
            parent[x] = x
            continue
        if reflected:
            pd = d & (d - 1)  # clear lowest set bit
        else:
            pd = d ^ (1 << (d.bit_length() - 1))  # clear highest set bit
        pd = rotate_left(pd, rotation, n) if rotation else pd
        parent[x] = pd ^ root
    return SpanningTree(n, root, tuple(parent))


def rotation_base(value: int, n: int) -> int:
    """The *base* of a non-zero relative address (SBnT port selector).

    Defined in the paper's SBnT pseudocode as "the minimum number of right
    rotations of ``value`` which yields the minimum value among all
    rotations".  Bit ``base(value)`` of ``value`` is always 1 (the minimal
    rotation representative of a non-zero word is odd), so the base is a
    usable first routing dimension.
    """
    if value <= 0:
        raise ValueError("base is defined for positive relative addresses")
    if value >> n:
        raise ValueError(f"address {value:#x} outside {n}-cube")
    best_k = 0
    best_v = value
    for k in range(1, n):
        v = rotate_right(value, k, n)
        if v < best_v:
            best_v = v
            best_k = k
    return best_k


def sbnt_route_dims(rel: int, n: int) -> list[int]:
    """Dimension order of the SBnT route for relative address ``rel``.

    The route crosses the set bits of ``rel`` in *ascending cyclic* order
    starting from ``base(rel)``: the paper's router complements, at each
    hop arriving over dimension ``j``, the nearest 1-bit of the remaining
    relative address to the left of ``j`` (cyclically).
    """
    if rel == 0:
        return []
    b = rotation_base(rel, n)
    dims = [b]
    remaining = rel ^ (1 << b)
    j = b
    while remaining:
        p = None
        for step in range(1, n + 1):
            cand = (j + step) % n
            if (remaining >> cand) & 1:
                p = cand
                break
        assert p is not None
        dims.append(p)
        remaining ^= 1 << p
        j = p
    return dims


def spanning_balanced_tree(n: int, root: int = 0) -> SpanningTree:
    """Spanning balanced n-tree (SBnT) rooted at ``root``.

    The tree is the union of the SBnT routes from the root to every node;
    node ``x``'s parent is the penultimate node of its route.  The root's
    n subtrees have nearly equal size, which is what buys the factor-n
    transfer-time speedup for n-port communication.
    """
    size = num_nodes(n)
    if not 0 <= root < size:
        raise ValueError(f"root {root} outside {n}-cube")
    parent = [0] * size
    parent[root] = root
    for x in range(size):
        if x == root:
            continue
        dims = sbnt_route_dims(x ^ root, n)
        parent[x] = x ^ (1 << dims[-1])
    return SpanningTree(n, root, tuple(parent))
