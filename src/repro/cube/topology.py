"""Boolean n-cube adjacency, routes and subcubes (Definition 5).

A Boolean n-cube has ``N = 2^n`` nodes; node ``x`` is adjacent to the
``n`` nodes obtained by complementing one address bit.  Between any pair
``(x, y)`` there are ``n`` parallel paths: ``Hamming(x, y)`` of length
``Hamming(x, y)`` and ``n - Hamming(x, y)`` of length
``Hamming(x, y) + 2`` (Saad & Schultz [18]); the transpose algorithms
exploit these for bandwidth.
"""

from __future__ import annotations

from repro.codes.bits import bit, hamming

__all__ = [
    "num_nodes",
    "neighbors",
    "is_edge",
    "dimension_of_edge",
    "ecube_route",
    "path_dims_to_nodes",
    "disjoint_paths",
    "subcube_nodes",
]


def num_nodes(n: int) -> int:
    """Number of nodes ``N = 2^n`` of an n-cube."""
    if n < 0:
        raise ValueError(f"cube dimension must be non-negative, got {n}")
    return 1 << n


def neighbors(x: int, n: int) -> list[int]:
    """All cube neighbours of node ``x``, lowest dimension first."""
    _check_node(x, n)
    return [x ^ (1 << d) for d in range(n)]


def is_edge(a: int, b: int, n: int | None = None) -> bool:
    """True iff ``a`` and ``b`` are adjacent in the cube."""
    if n is not None:
        _check_node(a, n)
        _check_node(b, n)
    diff = a ^ b
    return diff != 0 and (diff & (diff - 1)) == 0


def dimension_of_edge(a: int, b: int) -> int:
    """Cube dimension crossed by the edge ``(a, b)``."""
    diff = a ^ b
    if diff == 0 or diff & (diff - 1):
        raise ValueError(f"nodes {a:#x} and {b:#x} are not cube neighbours")
    return diff.bit_length() - 1


def ecube_route(src: int, dst: int, n: int, *, ascending: bool = True) -> list[int]:
    """Dimension-ordered ("e-cube") route from ``src`` to ``dst``.

    Returns the list of nodes visited, starting at ``src`` and ending at
    ``dst``.  Dimensions are corrected in ascending (default) or
    descending order; this is the oblivious routing used by the iPSC and
    Connection Machine routing logic the paper benchmarks against.
    """
    _check_node(src, n)
    _check_node(dst, n)
    dims = [d for d in range(n) if bit(src, d) != bit(dst, d)]
    if not ascending:
        dims.reverse()
    return path_dims_to_nodes(src, dims)


def path_dims_to_nodes(src: int, dims: list[int]) -> list[int]:
    """Expand a dimension sequence into the node sequence it visits."""
    nodes = [src]
    current = src
    for d in dims:
        current ^= 1 << d
        nodes.append(current)
    return nodes


def disjoint_paths(src: int, dst: int, n: int) -> list[list[int]]:
    """The ``n`` pairwise node-disjoint paths between ``src`` and ``dst``.

    Construction (standard): let ``D`` be the set of differing dimensions,
    ``H = |D|``.  For the i-th differing dimension ``d`` the path crosses
    the dimensions of ``D`` in cyclic order starting at ``d`` (length
    ``H``).  For a non-differing dimension ``d`` the path first crosses
    ``d``, then all of ``D`` in ascending order, then ``d`` again (length
    ``H + 2``).  Interior nodes of distinct paths are distinct.
    """
    _check_node(src, n)
    _check_node(dst, n)
    if src == dst:
        raise ValueError("disjoint paths require distinct endpoints")
    diff_dims = [d for d in range(n) if bit(src, d) != bit(dst, d)]
    h = len(diff_dims)
    paths: list[list[int]] = []
    for i in range(h):
        dims = diff_dims[i:] + diff_dims[:i]
        paths.append(path_dims_to_nodes(src, dims))
    for d in range(n):
        if bit(src, d) == bit(dst, d):
            dims = [d, *diff_dims, d]
            paths.append(path_dims_to_nodes(src, dims))
    return paths


def subcube_nodes(n: int, fixed: dict[int, int]) -> list[int]:
    """Nodes of the subcube where dimension ``d`` is pinned to ``fixed[d]``.

    The remaining ``n - len(fixed)`` dimensions range freely; nodes are
    returned in increasing address order.  Used by the all-to-some
    algorithms, which operate concurrently within ``2^k`` subcubes.
    """
    for d, v in fixed.items():
        if not 0 <= d < n:
            raise ValueError(f"dimension {d} outside cube of dimension {n}")
        if v not in (0, 1):
            raise ValueError(f"pinned value must be 0 or 1, got {v}")
    free = [d for d in range(n) if d not in fixed]
    base = 0
    for d, v in fixed.items():
        base |= v << d
    nodes = []
    for combo in range(1 << len(free)):
        x = base
        for j, d in enumerate(free):
            x |= ((combo >> j) & 1) << d
        nodes.append(x)
    return sorted(nodes)


def _check_node(x: int, n: int) -> None:
    if x < 0 or x >> n:
        raise ValueError(f"node {x:#x} outside {n}-cube")


def diameter_pairs(n: int) -> list[tuple[int, int]]:
    """All ordered antipodal pairs ``(x, x XOR (N-1))`` of the n-cube."""
    mask = (1 << n) - 1
    return [(x, x ^ mask) for x in range(1 << n)]


def distance(a: int, b: int) -> int:
    """Shortest-path distance in the cube (= Hamming distance)."""
    return hamming(a, b)
