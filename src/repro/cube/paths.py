"""SPT / DPT / MPT path families for the two-dimensional transpose (§6.1).

For an even-dimensional cube (``n = 2 n_c``) with node ``x = (x_r || x_c)``
the transpose partner is ``tr(x) = (x_c || x_r)``, at distance
``2 H(x)`` where ``H(x) = Hamming(x_r, x_c)``.  The three algorithms use
1, 2 and ``2 H(x)`` directed edge-disjoint paths between each pair:

* **SPT** routes dimensions in descending pair order
  ``alpha_{H-1}, beta_{H-1}, ..., alpha_0, beta_0`` where ``alpha_i`` are
  the differing row-field dimensions (descending) and ``beta_i`` the
  matching column-field dimensions.
* **DPT** adds the pairwise-permuted order (``beta`` before ``alpha``).
* **MPT** uses all ``2 H(x)`` rotations of these two orders; the paper
  proves the resulting path set is (2, 2H(x))-disjoint across each
  equivalence class of the relation ``~_s`` (same anti-diagonal and same
  ``x XOR tr(x)``), and fully edge-disjoint across classes.
"""

from __future__ import annotations

from repro.codes.bits import bit

__all__ = [
    "transpose_partner",
    "transpose_hamming",
    "transpose_routing_dims",
    "spt_path",
    "dpt_paths",
    "mpt_paths",
    "mpt_path_dims",
    "anti_diagonal_class",
    "same_set_relation",
]


def _check_even(n: int) -> int:
    if n < 0 or n % 2:
        raise ValueError(f"two-dimensional transpose needs an even cube, got n={n}")
    return n // 2


def transpose_partner(x: int, n: int) -> int:
    """``tr(x) = (x_c || x_r)``: exchange the two halves of the address."""
    half = _check_even(n)
    mask = (1 << half) - 1
    return ((x & mask) << half) | (x >> half)


def transpose_hamming(x: int, n: int) -> int:
    """``H(x) = Hamming(x_r, x_c)``; the cube distance to ``tr(x)`` is 2H."""
    half = _check_even(n)
    mask = (1 << half) - 1
    return int(((x >> half) ^ (x & mask)).bit_count())


def transpose_routing_dims(x: int, n: int) -> tuple[list[int], list[int]]:
    """The dimension pairs that must be routed, descending.

    Returns ``(alphas, betas)`` with ``alphas[i]`` in the row field
    (``>= n/2``) and ``betas[i]`` the matching column-field dimension;
    index ``H-1`` (first entry) is the highest-order differing pair, so
    ``alphas == [alpha_{H-1}, ..., alpha_0]`` in the paper's notation.
    """
    half = _check_even(n)
    alphas: list[int] = []
    betas: list[int] = []
    for k in range(half - 1, -1, -1):
        if bit(x, k + half) != bit(x, k):
            alphas.append(k + half)
            betas.append(k)
    return alphas, betas


def spt_path(x: int, n: int) -> list[int]:
    """SPT dimension order: ``alpha_{H-1}, beta_{H-1}, ..., alpha_0, beta_0``."""
    alphas, betas = transpose_routing_dims(x, n)
    dims: list[int] = []
    for a, b in zip(alphas, betas):
        dims.append(a)
        dims.append(b)
    return dims


def spt_itinerary(x: int, n: int) -> list[int | None]:
    """SPT dimension schedule padded to the global synchronized order.

    The routing order is the same for all nodes —
    ``g(n/2-1), f(n/2-1), ..., g(0), f(0)`` — and a node idles in the
    slots whose dimension it does not need ("the packet with the same
    ordinal number of all the nodes uses the same dimension (or idles)
    during the same step", §6.1.1).  Entry ``s`` is the cube dimension to
    cross at relative cycle ``s`` or ``None`` to hold position.
    """
    half = _check_even(n)
    slots: list[int | None] = []
    for k in range(half - 1, -1, -1):
        differs = bit(x, k + half) != bit(x, k)
        slots.append(k + half if differs else None)
        slots.append(k if differs else None)
    return slots


def dpt_itineraries(x: int, n: int) -> list[list[int | None]]:
    """The two DPT schedules in the global synchronized order.

    The second path permutes each (row, column) dimension pair, giving
    the order ``f(n/2-1), g(n/2-1), ..., f(0), g(0)``.
    """
    half = _check_even(n)
    first = spt_itinerary(x, n)
    second: list[int | None] = []
    for k in range(half - 1, -1, -1):
        differs = bit(x, k + half) != bit(x, k)
        second.append(k if differs else None)
        second.append(k + half if differs else None)
    if all(s is None for s in first):
        return []
    return [first, second]


def mpt_path_dims(x: int, n: int, p: int) -> list[int]:
    """Dimension order of MPT path ``p`` of node ``x``.

    For ``0 <= p < H`` the order is
    ``alpha_{(p+H-1) mod H}, beta_{(p+H-1) mod H}, ..., alpha_p, beta_p``
    (indices in the paper's *ascending-subscript* convention, i.e. our
    ``alphas[H-1-i]``); for ``H <= p < 2H`` the roles of alpha and beta
    are swapped with ``j = p - H``.
    """
    alphas, betas = transpose_routing_dims(x, n)
    h = len(alphas)
    if h == 0:
        if p == 0:
            return []
        raise ValueError(f"node {x:#x} is its own transpose partner")
    if not 0 <= p < 2 * h:
        raise ValueError(f"path index {p} outside [0, {2 * h})")
    # alphas[i] holds subscript H-1-i; subscript s maps to list index H-1-s.
    def a(s: int) -> int:
        return alphas[h - 1 - s]

    def b(s: int) -> int:
        return betas[h - 1 - s]

    dims: list[int] = []
    if p < h:
        for step in range(h):
            s = (p + h - 1 - step) % h
            dims.append(a(s))
            dims.append(b(s))
    else:
        j = p - h
        for step in range(h):
            s = (j + h - 1 - step) % h
            dims.append(b(s))
            dims.append(a(s))
    return dims


def mpt_paths(x: int, n: int) -> list[list[int]]:
    """All ``2 H(x)`` MPT dimension orders for node ``x``."""
    h = transpose_hamming(x, n)
    return [mpt_path_dims(x, n, p) for p in range(2 * h)]


def dpt_paths(x: int, n: int) -> list[list[int]]:
    """The two DPT dimension orders (MPT paths 0 and H)."""
    h = transpose_hamming(x, n)
    if h == 0:
        return []
    return [mpt_path_dims(x, n, 0), mpt_path_dims(x, n, h)]


def anti_diagonal_class(x: int, n: int) -> int:
    """Invariant of the relation ``~_ad``: ``x_r + x_c`` (Definition 12)."""
    half = _check_even(n)
    mask = (1 << half) - 1
    return (x >> half) + (x & mask)


def same_set_relation(x: int, n: int) -> tuple[int, int]:
    """Invariant of the relation ``~_s`` (Definition 15).

    ``x' ~_s x''`` iff they lie on the same anti-diagonal *and*
    ``x' XOR tr(x') == x'' XOR tr(x'')``; nodes in the same class share
    their MPT edge set in a (2, 2H)-disjoint schedule, while classes are
    mutually edge-disjoint (Lemma 13).
    """
    return anti_diagonal_class(x, n), x ^ transpose_partner(x, n)
