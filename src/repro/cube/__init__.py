"""Boolean n-cube topology substrate.

Implements Definition 5 of the paper (node adjacency), the Saad-Schultz
disjoint-path property used by the multi-path transpose algorithms, the
spanning-tree families used by the personalized-communication algorithms
(spanning binomial trees — plain, rotated, reflected, translated — and
spanning balanced n-trees), and the SPT/DPT/MPT path families of §6.1.
"""

from repro.cube.topology import (
    dimension_of_edge,
    disjoint_paths,
    ecube_route,
    is_edge,
    neighbors,
    num_nodes,
    path_dims_to_nodes,
    subcube_nodes,
)
from repro.cube.trees import (
    SpanningTree,
    rotation_base,
    sbnt_route_dims,
    spanning_balanced_tree,
    spanning_binomial_tree,
)
from repro.cube.paths import (
    anti_diagonal_class,
    dpt_paths,
    mpt_paths,
    same_set_relation,
    spt_path,
    transpose_partner,
    transpose_routing_dims,
)

__all__ = [
    "SpanningTree",
    "anti_diagonal_class",
    "dimension_of_edge",
    "disjoint_paths",
    "dpt_paths",
    "ecube_route",
    "is_edge",
    "mpt_paths",
    "neighbors",
    "num_nodes",
    "path_dims_to_nodes",
    "rotation_base",
    "same_set_relation",
    "sbnt_route_dims",
    "spanning_balanced_tree",
    "spanning_binomial_tree",
    "spt_path",
    "subcube_nodes",
    "transpose_partner",
    "transpose_routing_dims",
]
