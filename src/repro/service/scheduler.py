"""Resolve requests to plan keys and order them for the worker pool.

The scheduler is the seam between the admission queue and the plan
cache: every request is resolved **once, at submission** — machine
parameters, layout pair, the §9 algorithm selection, and the resulting
content address (:func:`~repro.plans.cache.plan_key`).  The content
address doubles as the *batching compatibility key*: requests resolving
to the same key replay the same :class:`~repro.plans.ir.CompiledPlan`,
so the queue hands them to a single worker back-to-back and the first
compile is amortised across the whole group (compile-once,
serve-many).

Rejections surface synchronously at :meth:`Scheduler.submit` as typed
:class:`~repro.service.request.AdmissionRejectedError`; admitted
requests return a :class:`PendingResult` the caller can wait on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.layout.fields import Layout
from repro.machine.params import MachineParams
from repro.obs.trace import TraceContext
from repro.plans.batch import resolve_problem
from repro.plans.cache import plan_key
from repro.service.queue import AdmissionPolicy, AdmissionQueue, QueueEntry
from repro.service.request import ServeOutcome, TransposeRequest

__all__ = ["PendingResult", "ResolvedRequest", "Scheduler", "resolve_request"]


@dataclass(frozen=True)
class ResolvedRequest:
    """A request after one-time planning-side resolution."""

    request: TransposeRequest
    params: MachineParams
    before: Layout
    #: Explicit target layout (``None`` keeps the planner's default).
    after: Layout | None
    #: Concrete algorithm tier (``auto`` resolved through §9 selection).
    algorithm: str
    key: str
    #: Canonical interconnect spec.  Workers re-parse it per request so
    #: no Topology instance (or its mutable BFS distance cache) is ever
    #: shared across worker threads.
    topology: str = "cube"
    #: Canonical composite-pipeline spec for ``workload=`` requests
    #: (``None`` for ordinary transposes).  Workers re-parse it per
    #: request — a Pipeline is cheap and never shared across threads.
    workload: str | None = None
    #: Trace identity minted by the server at submission (``None`` when
    #: tracing is off); the worker opens the request's root span in it.
    trace: TraceContext | None = None
    #: Wall seconds spent in admission-time resolution — the worker
    #: backdates the trace's admission leaf by this much.
    resolve_s: float = 0.0


def resolve_request(request: TransposeRequest) -> ResolvedRequest:
    """Map a request to machine/layouts/algorithm/plan-key, validating it.

    Raises :class:`ValueError` on malformed problems (bad element
    counts, unknown layouts, machines or topologies), exactly as the
    batch layer does — the server turns that into a synchronous
    rejection rather than a dead queue entry.
    """
    from repro.topology import parse_topology, supported_algorithms
    from repro.transpose.planner import default_after_layout, select_algorithm

    problem = request.problem
    params = problem.machine_params()
    topo = parse_topology(problem.topology, problem.n)
    if topo.num_nodes != 1 << problem.n:
        raise ValueError(
            f"topology {topo.spec!r} has {topo.num_nodes} nodes but the "
            f"request needs 2^{problem.n} = {1 << problem.n}"
        )
    if problem.workload:
        # Composite pipeline: the spec is parsed (typed per-token
        # errors), the pipeline built (layout fit / stage ordering
        # errors) and keyed — all at admission, like the transpose path.
        from repro.workloads import build_pipeline

        if topo.name != "cube":
            raise ValueError(
                "workload pipelines require the cube topology "
                f"(requested {topo.spec!r})"
            )
        pipeline = build_pipeline(
            problem.workload,
            problem.n,
            layout=problem.layout,
            elements=problem.elements,
        )
        if problem.faults:
            from repro.machine.faults import FaultPlan

            FaultPlan.from_spec(problem.n, problem.faults)
        return ResolvedRequest(
            request=request,
            params=params,
            before=pipeline.before,
            after=pipeline.after,
            algorithm=pipeline.algorithm,
            key=pipeline.key(params),
            topology=topo.spec,
            workload=pipeline.spec,
        )
    before, after = resolve_problem(problem.n, problem.elements, problem.layout)
    target = after if after is not None else default_after_layout(before)
    name = problem.algorithm
    if name == "auto":
        name = select_algorithm(
            before, target, params.port_model, topology=topo
        )
    elif name not in supported_algorithms(topo):
        from repro.topology.capabilities import CUBE_ALGORITHMS

        if name not in CUBE_ALGORITHMS:
            raise ValueError(f"unknown algorithm {name!r}")
        name = "routed-universal"
    if problem.faults:
        # Validate the fault spec at admission; workers re-parse it
        # per-request so no fault state is ever shared across machines.
        from repro.machine.faults import FaultPlan

        FaultPlan.from_spec(
            problem.n,
            problem.faults,
            topology=None if topo.name == "cube" else topo,
        )
    key = plan_key(params, before, target, name, topology=topo.spec)
    return ResolvedRequest(
        request=request,
        params=params,
        before=before,
        after=after,
        algorithm=name,
        key=key,
        topology=topo.spec,
    )


class PendingResult:
    """A slot the submitting thread can wait on for the outcome.

    Fulfilment is idempotent, first writer wins: once the supervisor
    re-dispatches a request, *two* executions can race to resolve the
    same slot (the retry, and the abandoned original limping home
    late).  :meth:`fulfill` reports whether this call won, so exactly
    one side records the outcome and the loser's result is dropped.
    """

    __slots__ = ("_done", "_lock", "_outcome")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._outcome: ServeOutcome | None = None

    def fulfill(self, outcome: ServeOutcome) -> bool:
        """Resolve the slot; ``False`` when it was already resolved."""
        with self._lock:
            if self._outcome is not None:
                return False
            self._outcome = outcome
        self._done.set()
        return True

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServeOutcome:
        if not self._done.wait(timeout):
            raise TimeoutError("request outcome not available yet")
        assert self._outcome is not None
        return self._outcome


class Scheduler:
    """Admission front-end plus dequeue order for the worker pool."""

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        *,
        max_batch: int = 4,
        clock=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        kwargs = {} if clock is None else {"clock": clock}
        self.queue = AdmissionQueue(policy, **kwargs)
        self.max_batch = max_batch
        self._results: dict[int, tuple[PendingResult, QueueEntry]] = {}
        self._lock = threading.Lock()

    def submit(
        self, resolved: ResolvedRequest, now: float | None = None
    ) -> PendingResult:
        """Admit a resolved request; returns the waitable result slot.

        Raises :class:`AdmissionRejectedError` when a shedding gate
        fires — nothing is enqueued and no slot is created.
        """
        entry = self.queue.submit(
            resolved.request, resolved.key, now, payload=resolved
        )
        pending = PendingResult()
        with self._lock:
            self._results[entry.seq] = (pending, entry)
        return pending

    def next_batch(self, timeout: float | None = None) -> list[QueueEntry]:
        """Worker-side: the next key-compatible batch (``[]`` on close)."""
        return self.queue.pop_batch(self.max_batch, timeout)

    def fulfill(self, entry: QueueEntry, outcome: ServeOutcome) -> bool:
        """Resolve the entry's pending slot; ``False`` when it lost.

        A ``False`` return means some earlier resolution won the slot —
        the supervisor already failed/re-dispatched the request, or an
        abandoned attempt beat this one home — and the caller must drop
        its outcome instead of recording it.
        """
        with self._lock:
            slot = self._results.pop(entry.seq, None)
        if slot is None:
            return False
        return slot[0].fulfill(outcome)

    def requeue(self, entry: QueueEntry) -> QueueEntry | None:
        """Supervisor-side: put an abandoned entry back for a retry.

        Moves the pending slot to the entry's fresh queue sequence so a
        late result from the abandoned attempt and the retry race
        idempotently for the same slot.  Returns ``None`` — and leaves
        the queue untouched — when the slot is already resolved (the
        abandoned attempt limped home first), which is not an error.
        """
        with self._lock:
            slot = self._results.pop(entry.seq, None)
            if slot is None or slot[0].done():
                return None
            self.queue.requeue(entry)  # re-keys entry.seq
            self._results[entry.seq] = slot
            return entry

    def resolve(self, entry: QueueEntry, outcome: ServeOutcome) -> bool:
        """Terminally resolve an entry without executing it.

        Supervisor-side: quarantines (poison), budget exhaustion and
        shutdown aborts land here.  Same first-wins contract as
        :meth:`fulfill`.
        """
        return self.fulfill(entry, outcome)

    def abort_all(self, make_outcome) -> list[ServeOutcome]:
        """Resolve every outstanding slot with ``make_outcome(entry)``.

        Called on drain timeout / stop so no :class:`PendingResult`
        blocks forever.  Returns the outcomes that actually won their
        slots (late results may still beat the abort, which is fine).
        """
        with self._lock:
            slots = list(self._results.values())
            self._results.clear()
        aborted: list[ServeOutcome] = []
        for pending, entry in slots:
            outcome = make_outcome(entry)
            if pending.fulfill(outcome):
                aborted.append(outcome)
        return aborted

    def outstanding(self) -> int:
        """Slots not yet resolved (queued, executing, or in backoff)."""
        with self._lock:
            return len(self._results)

    def close(self) -> None:
        self.queue.close()
